// A survey-operations walkthrough: nightly chunk loading, the archive
// publication pipeline, and the science queries of the paper's
// introduction -- run end to end.
//
//   $ ./galaxy_survey
//
// Demonstrates: (1) the OA -> SA two-phase clustered load sustaining the
// nightly data rate, (2) the multi-tier publication pipeline of Figure 2,
// (3) tag-partition selection and spatial pruning in the query engine,
// (4) the scan machine serving a mix of interactive predicates.

#include <cstdio>

#include "archive/archive.h"
#include "catalog/loader.h"
#include "catalog/schema.h"
#include "catalog/sky_generator.h"
#include "dataflow/scan_machine.h"
#include "query/query_engine.h"

using namespace sdss;
using catalog::ObjClass;
using catalog::PhotoObj;

int main() {
  // --- The archive schema, in its multiple representations. -----------
  catalog::Schema schema = catalog::Schema::Sdss();
  std::printf("archive schema: %zu classes; PhotoObj carries %zu fields "
              "(~%zu B/row)\n",
              schema.classes().size(),
              schema.FindClass("PhotoObj")->fields.size(),
              schema.FindClass("PhotoObj")->BytesPerInstance());

  // --- Nightly observing: chunks through the loader and pipeline. -----
  catalog::SkyModel model;
  model.seed = 2000;
  model.num_galaxies = 60'000;
  model.num_stars = 45'000;
  model.num_quasars = 600;
  auto chunks = catalog::SkyGenerator(model).GenerateChunks(14);

  catalog::ObjectStore science_archive;
  catalog::ChunkLoader loader;
  archive::ArchivePipeline pipeline;

  std::printf("\nloading %zu nightly chunks into the Science Archive:\n",
              chunks.size());
  SimSeconds night = 0.0;
  int first_observed_night = -1;
  for (const auto& chunk : chunks) {
    if (chunk.objects.empty()) continue;
    if (first_observed_night < 0) first_observed_night = chunk.night;
    auto stats = loader.LoadClustered(&science_archive, chunk);
    if (!stats.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    (void)pipeline.ObserveChunk(chunk.night, stats->objects,
                                chunk.PaperBytes(), night);
    std::printf("  night %2d: %6llu objects, %4llu container touches, "
                "load %s\n",
                chunk.night, (unsigned long long)stats->objects,
                (unsigned long long)stats->container_touches,
                FormatSimDuration(stats->sim_seconds).c_str());
    night += kSimDay;
  }
  std::printf("archive now holds %llu objects in %llu containers\n",
              (unsigned long long)science_archive.object_count(),
              (unsigned long long)science_archive.container_count());

  // The survey footprint does not cover every RA slice, so the first
  // chunks may be empty and unobserved; report the first real night.
  auto public_latency = pipeline.TimeToPublic(first_observed_night);
  if (public_latency.ok()) {
    std::printf("night-%d data reaches the public archive %s after "
                "observation\n",
                first_observed_night, FormatSimDuration(*public_latency).c_str());
  }

  // --- Science queries. -----------------------------------------------
  query::QueryEngine engine(&science_archive);

  struct NamedQuery {
    const char* label;
    const char* sql;
  };
  NamedQuery queries[] = {
      {"main galaxy sample (r < 17.8)",
       "SELECT COUNT(*) FROM photo WHERE class = 'GALAXY' AND r < 17.8"},
      {"red cluster galaxies",
       "SELECT COUNT(*) FROM photo WHERE class = 'GALAXY' AND g - r > 0.85"},
      {"UV-excess quasar candidates",
       "SELECT COUNT(*) FROM photo WHERE u - g < 0.2 AND class = 'QSO'"},
      {"bright high-latitude objects",
       "SELECT COUNT(*) FROM photo WHERE BAND('GAL', 60, 90) AND r < 19"},
      {"spectro targets with redshift",
       "SELECT COUNT(*) FROM photo WHERE redshift > 0.2"},
  };
  std::printf("\nscience queries:\n");
  for (const auto& q : queries) {
    auto r = engine.Execute(q.sql);
    if (!r.ok()) {
      std::printf("  %-34s ERROR %s\n", q.label,
                  r.status().ToString().c_str());
      continue;
    }
    std::printf("  %-34s %8.0f objects  [%s store, %llu of %llu examined]\n",
                q.label, r->aggregate_value,
                r->used_tag_store ? "tag" : "photo",
                (unsigned long long)r->exec.objects_examined,
                (unsigned long long)science_archive.object_count());
  }

  // --- The scan machine: interactive full-catalog predicates. ---------
  dataflow::ClusterConfig cfg;
  cfg.num_nodes = 20;
  dataflow::ClusterSim cluster(cfg);
  (void)cluster.LoadPartitioned(science_archive);
  dataflow::ScanMachine scan_machine(&cluster);
  scan_machine.Admit(
      [](const PhotoObj& o) { return (o.flags & catalog::kFlagVariable); },
      0.0);
  scan_machine.Admit(
      [](const PhotoObj& o) {
        return o.obj_class == ObjClass::kQuasar && o.redshift > 4.0f;
      },
      0.001);
  auto completions = scan_machine.RunUntilDrained();
  std::printf("\nscan machine (%zu nodes, cycle %s):\n",
              cluster.num_nodes(),
              FormatSimDuration(scan_machine.CycleSimSeconds()).c_str());
  for (const auto& c : completions) {
    std::printf("  query %llu: %llu matches, completed within one cycle "
                "(%s)\n",
                (unsigned long long)c.query_id,
                (unsigned long long)c.matches,
                FormatSimDuration(c.Latency()).c_str());
  }
  std::printf("  %llu data pass(es) served %zu queries (shared scans)\n",
              (unsigned long long)scan_machine.cycles_run(),
              completions.size());
  return 0;
}
