// EXPLAIN ANALYZE: the optimizer's predictions held against a real run.
//
// Builds a 3-server fleet, runs two statements under EXPLAIN ANALYZE,
// and prints the stitched report: per shard, the density-map prediction
// (containers, bytes) next to what the scan actually touched, plus the
// per-stage time breakdown. Pass a path as argv[1] to also dump the
// run's trace as chrome://tracing JSON (open it at ui.perfetto.dev).

#include <cstdio>
#include <string>

#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "core/io.h"
#include "query/federated_engine.h"

using sdss::archive::ReplicationOptions;
using sdss::archive::ShardedStore;
using sdss::query::FederatedQueryEngine;

int main(int argc, char** argv) {
  sdss::catalog::SkyModel model;
  model.seed = 11;
  model.num_galaxies = 40'000;
  model.num_stars = 30'000;
  model.num_quasars = 400;
  sdss::catalog::ObjectStore source;
  if (!source.BulkLoad(sdss::catalog::SkyGenerator(model).Generate()).ok()) {
    return 1;
  }
  ReplicationOptions repl;
  repl.num_servers = 3;
  repl.base_replicas = 1;
  ShardedStore sharded(source, repl);
  auto shards = sharded.LiveShards();
  if (!shards.ok()) return 1;
  FederatedQueryEngine engine(*shards);

  const char* statements[] = {
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 40, 60, 8) "
      "AND r < 21 ORDER BY r ASC LIMIT 100",
      "SELECT AVG(redshift) FROM photo WHERE class = 'QSO' AND r < 22",
  };

  std::string last_trace;
  for (const char* sql : statements) {
    std::printf("=== %s\n", sql);
    auto analysis = engine.ExplainAnalyze(sql);
    if (!analysis.ok()) {
      std::printf("  ERROR: %s\n", analysis.status().message().c_str());
      return 1;
    }
    std::printf("%s\n", analysis->report.c_str());
    last_trace = analysis->trace_json;
  }

  if (argc > 1 && !last_trace.empty()) {
    if (!sdss::WriteFileDurable(argv[1], last_trace).ok()) return 1;
    std::printf("trace written to %s\n", argv[1]);
  }
  return 0;
}
