// Quickstart: generate a synthetic sky, load the Science Archive store,
// and ask it questions -- through the HTM index directly and through the
// SQL query engine.
//
//   $ ./quickstart
//
// Walks through the 4 core concepts: (1) objects live in HTM-trixel
// containers, (2) spatial predicates become half-space Regions, (3) the
// cover algorithm prunes containers, (4) the query engine wraps it all in
// a SQL dialect with ASAP streaming.

#include <cstdio>

#include "catalog/finding_chart.h"
#include "catalog/object_store.h"
#include "catalog/sky_generator.h"
#include "core/coords.h"
#include "htm/htm_index.h"
#include "query/query_engine.h"

using namespace sdss;

int main() {
  // --- 1. Generate a small synthetic survey and load the store. -------
  catalog::SkyModel model;
  model.seed = 42;
  model.num_galaxies = 20'000;
  model.num_stars = 15'000;
  model.num_quasars = 200;
  catalog::SkyGenerator generator(model);

  catalog::ObjectStore store;  // Level-6 trixel containers by default.
  if (auto s = store.BulkLoad(generator.Generate()); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  catalog::StoreStats stats = store.Stats();
  std::printf("loaded %llu objects into %llu containers "
              "(largest holds %llu)\n",
              (unsigned long long)stats.object_count,
              (unsigned long long)stats.container_count,
              (unsigned long long)stats.max_container_objects);

  // --- 2. HTM basics: where on the sky is a position? -----------------
  htm::HtmIndex index(6);
  htm::HtmId id = index.Locate(/*ra=*/185.0, /*dec=*/35.0);
  std::printf("\n(185.0, +35.0) lives in trixel %s (raw id %llu), "
              "~%.2f sq deg\n",
              id.ToName().c_str(), (unsigned long long)id.raw(),
              htm::Trixel::FromId(id).AreaSquareDegrees());

  // --- 3. A spatial region and its trixel cover. ----------------------
  htm::Region cone = htm::Region::Circle(185.0, 35.0, 2.0);
  htm::CoverResult cover = index.CoverRegion(cone);
  std::printf("2-degree cone cover: %zu FULL + %zu PARTIAL trixels "
              "(of %llu at level 6)\n",
              cover.full.size(), cover.partial.size(),
              (unsigned long long)htm::TrixelCountAtLevel(6));

  auto prediction = store.PredictRegion(cone);
  std::printf("density-map prediction: ~%.0f objects, %llu bytes to scan\n",
              prediction.expected_objects,
              (unsigned long long)prediction.bytes_to_scan);

  // --- 4. The same search through the query engine. -------------------
  query::QueryEngine engine(&store);

  auto result = engine.Execute(
      "SELECT obj_id, ra, dec, r FROM photo "
      "WHERE CIRCLE(185.0, 35.0, 2.0) AND r < 20 "
      "ORDER BY r LIMIT 5");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbrightest 5 objects with r < 20 in the cone "
              "(%s store, index %s):\n",
              result->used_tag_store ? "tag" : "photo",
              result->used_spatial_index ? "used" : "unused");
  std::printf("%12s %10s %10s %7s\n", "obj_id", "ra", "dec", "r");
  for (const auto& row : result->rows) {
    std::printf("%12llu %10.4f %10.4f %7.2f\n",
                (unsigned long long)row.obj_id, row.values[1],
                row.values[2], row.values[3]);
  }

  // Aggregates and EXPLAIN.
  auto count = engine.Execute(
      "SELECT COUNT(*) FROM photo WHERE class = 'QSO' AND r < 22");
  if (count.ok()) {
    std::printf("\nquasars brighter than r=22: %.0f\n",
                count->aggregate_value);
  }
  auto plan = engine.Explain(
      "SELECT obj_id FROM photo WHERE CIRCLE(185.0, 35.0, 2.0) AND r < 20");
  if (plan.ok()) {
    std::printf("\nEXPLAIN output:\n%s", plan->c_str());
  }

  // --- 5. The paper's simplest service: a finding chart. --------------
  catalog::ChartOptions chart_opts;
  chart_opts.ra_deg = 185.0;
  chart_opts.dec_deg = 35.0;
  chart_opts.radius_deg = 1.0;
  chart_opts.faint_limit_r = 23.0f;
  auto chart = catalog::RenderFindingChart(store, chart_opts);
  if (chart.ok()) {
    std::printf("\n%s", chart->ascii.c_str());
  }
  return 0;
}
