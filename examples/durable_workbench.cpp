// The durable workbench: the same CasJobs-style service, but with the
// persistence subsystem attached -- MyDB tables live on disk as
// columnar snapshots, job transitions stream into a write-ahead
// journal, and a "power cut" (destroying every process-level object)
// loses nothing that was committed: the restarted service restores the
// personal store bit-exact, re-enqueues the jobs that were queued, and
// marks the one that was running as failed-retryable.
//
//   cmake --build build --target example_durable_workbench
//   ./build/examples/example_durable_workbench

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "query/federated_engine.h"
#include "workbench/scheduler.h"

using sdss::archive::MyDb;
using sdss::archive::ReplicationOptions;
using sdss::archive::ShardedStore;
using sdss::query::FederatedQueryEngine;
using sdss::workbench::JobScheduler;
using sdss::workbench::JobState;
using sdss::workbench::JobStateName;

namespace fs = std::filesystem;

namespace {

JobScheduler::Options SchedulerOptions() {
  JobScheduler::Options opt;
  opt.quick_workers = 1;
  opt.long_workers = 1;
  opt.per_user_running = 1;
  return opt;
}

bool AwaitRunning(JobScheduler& sched, uint64_t id) {
  for (;;) {
    auto snap = sched.Snapshot(id);
    if (!snap.ok()) return false;
    if (snap->state == JobState::kRunning) return true;
    if (snap->state != JobState::kQueued) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

int main() {
  const fs::path root = fs::temp_directory_path() / "sdss_durable_demo";
  fs::remove_all(root);
  const std::string mydb_dir = (root / "mydb").string();
  const std::string jobs_dir = (root / "jobs").string();

  // The fleet itself is rebuilt from base data on start (the paper's
  // archive reloads from the pipeline); it is the DERIVED state -- MyDB
  // tables and the job queue -- that must survive on its own.
  sdss::catalog::SkyModel model;
  model.seed = 31;
  model.num_galaxies = 20000;
  model.num_stars = 16000;
  model.num_quasars = 400;
  sdss::catalog::ObjectStore source;
  if (!source.BulkLoad(sdss::catalog::SkyGenerator(model).Generate())
           .ok()) {
    return 1;
  }
  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(source, repl);
  auto shards = sharded.LiveShards();
  if (!shards.ok()) return 1;
  FederatedQueryEngine engine(*shards);

  std::printf("=== session 1: a mining workflow, then the power cord ===\n");
  uint64_t running_id = 0;
  std::vector<uint64_t> queued_ids;
  {
    MyDb::Options mopt;
    mopt.persist_dir = mydb_dir;
    MyDb mydb(mopt);
    if (!mydb.AttachStorage().ok()) return 1;
    JobScheduler sched(&engine, &mydb, SchedulerOptions());
    if (!sched.RecoverFrom(jobs_dir).ok()) return 1;

    auto bright = sched.Submit(
        "alice", "SELECT * INTO mydb.bright FROM photo WHERE r < 20.5");
    if (!bright.ok()) return 1;
    auto done = sched.Wait(*bright);
    if (!done.ok() || done->state != JobState::kSucceeded) return 1;
    std::printf("  mydb.bright committed: %" PRIu64
                " objects (snapshot on disk, journaled CREATE)\n",
                done->rows);

    auto mining = sched.Submit(
        "alice",
        "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b WITHIN 3 DEG");
    if (!mining.ok() || !AwaitRunning(sched, *mining)) return 1;
    running_id = *mining;
    for (int i = 0; i < 3; ++i) {
      auto q = sched.Submit(
          "alice",
          "SELECT COUNT(*) FROM mydb.bright WHERE CIRCLE('GAL', 30, 70, 5)");
      if (!q.ok()) return 1;
      queued_ids.push_back(*q);
    }
    std::printf("  crash point: job %" PRIu64
                " RUNNING, jobs %" PRIu64 "-%" PRIu64 " QUEUED\n",
                running_id, queued_ids.front(), queued_ids.back());
    // Scope exit destroys the scheduler and MyDb without journaling the
    // teardown: indistinguishable from SIGKILL to the recovery path.
  }

  std::printf("\n=== session 2: restart and recover ===\n");
  MyDb::Options mopt;
  mopt.persist_dir = mydb_dir;
  MyDb mydb(mopt);
  auto mrep = mydb.AttachStorage();
  if (!mrep.ok()) return 1;
  std::printf("  mydb: %" PRIu64 " table(s) restored, %" PRIu64
              " orphan file(s) swept, %" PRIu64 " journal records\n",
              mrep->tables_loaded, mrep->orphans_removed,
              mrep->journal.records);
  auto bright = mydb.Find("alice", "bright");
  if (!bright.ok()) return 1;
  std::printf("  mydb.bright: %" PRIu64 " objects, %zu containers "
              "(clustering intact)\n",
              (*bright)->object_count(), (*bright)->container_count());

  JobScheduler sched(&engine, &mydb, SchedulerOptions());
  auto jrep = sched.RecoverFrom(jobs_dir);
  if (!jrep.ok()) return 1;
  std::printf("  jobs: %" PRIu64 " seen; %zu re-enqueued in order; "
              "%" PRIu64 " failed-retryable\n",
              jrep->jobs_seen, jrep->requeued_ids.size(),
              jrep->failed_running);
  auto crashed = sched.Snapshot(running_id);
  if (crashed.ok()) {
    std::printf("  job %" PRIu64 ": %s (%s; retryable=%s)\n", running_id,
                JobStateName(crashed->state),
                crashed->error.ToString().substr(0, 52).c_str(),
                crashed->retryable ? "yes" : "no");
  }
  for (uint64_t id : jrep->requeued_ids) {
    auto done = sched.Wait(id);
    if (!done.ok()) return 1;
    std::printf("  job %" PRIu64 " (requeued) -> %s, %" PRIu64 " row(s)\n",
                id, JobStateName(done->state), done->rows);
  }

  std::printf("\nDurable state lives under %s (delete to reset).\n",
              root.string().c_str());
  fs::remove_all(root);
  return 0;
}
