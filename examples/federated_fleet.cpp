// Federated fleet: partition + replicate a survey across a fleet of
// archive servers, query the whole federation through one engine, then
// kill a server and watch routing fail over to the surviving replicas.
//
//   $ ./example_federated_fleet
//
// Walks through the distributed story of the paper: (1) the replication
// manager places every container on a primary plus replicas, (2)
// ShardedStore materializes one store per server, (3) the federated
// engine plans once and fans out to every live shard, merging streams
// and partial aggregates, (4) failover keeps answers identical as long
// as one replica of everything survives.

#include <cstdio>

#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "query/federated_engine.h"
#include "query/query_engine.h"

using namespace sdss;

namespace {

bool RunAndReport(query::FederatedQueryEngine* fed, const char* label,
                  const char* sql) {
  auto r = fed->Execute(sql);
  if (!r.ok()) {
    std::printf("  %-28s ERROR: %s\n", label, r.status().ToString().c_str());
    return false;
  }
  if (r->is_aggregate) {
    std::printf("  %-28s = %.3f   (%llu containers scanned, %.1f ms)\n",
                label, r->aggregate_value,
                (unsigned long long)r->exec.containers_scanned,
                r->exec.seconds_total * 1e3);
  } else {
    std::printf("  %-28s %zu rows  (%llu containers scanned, %.1f ms, "
                "first row %.1f ms)\n",
                label, r->rows.size(),
                (unsigned long long)r->exec.containers_scanned,
                r->exec.seconds_total * 1e3,
                r->exec.seconds_to_first_row * 1e3);
  }
  return true;
}

}  // namespace

int main() {
  // --- 1. A survey, and the fleet that will hold it. ------------------
  catalog::SkyModel model;
  model.seed = 42;
  model.num_galaxies = 30'000;
  model.num_stars = 25'000;
  model.num_quasars = 300;
  catalog::ObjectStore store;
  if (auto s = store.BulkLoad(catalog::SkyGenerator(model).Generate());
      !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  archive::ReplicationOptions repl;
  repl.num_servers = 6;
  repl.base_replicas = 2;
  archive::ShardedStore fleet(store, repl);
  archive::PlacementStats placement = fleet.Stats();
  std::printf("fleet: %zu servers, %llu containers x%zu replicas, "
              "%llu bytes total (imbalance %.2f)\n",
              fleet.num_servers(),
              (unsigned long long)placement.containers,
              repl.base_replicas,
              (unsigned long long)placement.total_bytes,
              placement.imbalance);
  for (size_t s = 0; s < fleet.num_servers(); ++s) {
    std::printf("  server %zu: %zu containers, %llu objects\n", s,
                fleet.server_store(s).container_count(),
                (unsigned long long)fleet.server_store(s).object_count());
  }

  // --- 2. One engine over the whole federation. -----------------------
  auto shards = fleet.LiveShards();
  if (!shards.ok()) {
    std::fprintf(stderr, "routing failed: %s\n",
                 shards.status().ToString().c_str());
    return 1;
  }
  query::FederatedQueryEngine fed(*shards);

  const char* kChart =
      "SELECT obj_id, ra, dec, r FROM photo WHERE "
      "CIRCLE('GAL', 30, 70, 6) AND r < 22 AND g - r < 1.2";
  std::printf("\nall %zu servers up:\n", fleet.num_servers());
  RunAndReport(&fed, "finding chart (cone)", kChart);
  RunAndReport(&fed, "COUNT(*) galaxies",
               "SELECT COUNT(*) FROM photo WHERE class = 'GALAXY'");
  RunAndReport(&fed, "AVG(r) bright objects",
               "SELECT AVG(r) FROM photo WHERE r < 21");
  RunAndReport(&fed, "brightest 10 quasars",
               "SELECT obj_id, r FROM photo WHERE class = 'QSO' "
               "ORDER BY r LIMIT 10");

  // --- 3. The plan, with per-shard predictions. -----------------------
  if (auto explain = fed.Explain(kChart); explain.ok()) {
    std::printf("\nEXPLAIN %s\n%s", kChart, explain->c_str());
  }

  // --- 4. Kill a server; routing falls over to the replicas. ----------
  std::printf("\nmarking server 2 down (its containers re-route to "
              "surviving replicas)...\n");
  (void)fleet.MarkServerDown(2);
  auto rerouted = fleet.LiveShards();
  if (!rerouted.ok()) {
    std::fprintf(stderr, "routing failed: %s\n",
                 rerouted.status().ToString().c_str());
    return 1;
  }
  fed.SetShards(*rerouted);
  std::printf("%zu live shards now serve the same %llu containers:\n",
              rerouted->size(), (unsigned long long)placement.containers);
  RunAndReport(&fed, "finding chart (cone)", kChart);
  RunAndReport(&fed, "COUNT(*) galaxies",
               "SELECT COUNT(*) FROM photo WHERE class = 'GALAXY'");

  // --- 5. Without replication, a dead server means lost data -- and the
  // router says so instead of returning a silent partial result.
  archive::ReplicationOptions fragile = repl;
  fragile.base_replicas = 1;
  archive::ShardedStore unreplicated(store, fragile);
  (void)unreplicated.MarkServerDown(0);
  auto broken = unreplicated.LiveShards();
  std::printf("\nbase_replicas=1 with server 0 down: %s\n",
              broken.ok() ? "unexpectedly ok"
                          : broken.status().ToString().c_str());
  return broken.ok() ? 1 : 0;
}
