// Run the archive's TCP front end and talk to it over the wire.
//
// Builds a 4-server fleet, starts a QueryServer on an ephemeral
// loopback port, and drives it with the bundled Client: handshake,
// cone search, aggregate, an INTO mydb materialization mined by a
// follow-up query, a mid-stream cancellation, and a refused login.
// The same walkthrough, narrated, lives in BUILDING.md; the byte-level
// protocol is docs/PROTOCOL.md.
//
// Flags (all optional; without them the walkthrough runs as before):
//   --admin-port=N     also start the HTTP admin endpoint on port N
//                      (0 = ephemeral): /metrics /healthz /statusz
//                      /varz /tracez, plus the metric history sampler,
//                      health watchdog, trace ring, and event log.
//   --serve-seconds=S  keep both servers up S seconds after the
//                      walkthrough so a scraper (or CI's monitoring
//                      smoke job) can pull the endpoints.
//   --trip-watchdog    force the journal_poisoned rule to fire so
//                      /healthz demonstrably flips to 503.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "core/eventlog.h"
#include "core/metrics.h"
#include "core/metrics_history.h"
#include "core/watchdog.h"
#include "query/federated_engine.h"
#include "query/trace.h"
#include "server/client.h"
#include "server/http_admin.h"
#include "server/server.h"
#include "workbench/scheduler.h"

namespace {

using sdss::archive::MyDb;
using sdss::archive::ReplicationOptions;
using sdss::archive::ShardedStore;
using sdss::query::FederatedQueryEngine;
using sdss::server::Client;
using sdss::server::QueryOutcome;
using sdss::server::QueryServer;
using sdss::server::ServerOptions;
using sdss::server::HttpAdmin;
using sdss::workbench::JobScheduler;

void ShowOutcome(const char* what, const QueryOutcome& out) {
  switch (out.kind) {
    case QueryOutcome::Kind::kDone:
      std::printf("%-28s %llu rows in %.1f ms (lane %s, %llu containers "
                  "scanned)\n",
                  what, static_cast<unsigned long long>(out.done.rows),
                  out.done.seconds_running * 1e3,
                  out.header.lane == 0 ? "QUICK" : "LONG",
                  static_cast<unsigned long long>(
                      out.done.containers_scanned));
      break;
    case QueryOutcome::Kind::kError:
      std::printf("%-28s ERROR: %s\n", what, out.error.message.c_str());
      break;
    case QueryOutcome::Kind::kBusy:
      std::printf("%-28s BUSY, retry in %u ms\n", what,
                  out.busy.retry_after_ms);
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int admin_port = -1;  // -1 = monitoring plane off.
  int serve_seconds = 0;
  bool trip_watchdog = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--admin-port=", 0) == 0) {
      admin_port = std::atoi(arg.c_str() + std::strlen("--admin-port="));
    } else if (arg.rfind("--serve-seconds=", 0) == 0) {
      serve_seconds =
          std::atoi(arg.c_str() + std::strlen("--serve-seconds="));
    } else if (arg == "--trip-watchdog") {
      trip_watchdog = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--admin-port=N] [--serve-seconds=S] "
                   "[--trip-watchdog]\n",
                   argv[0]);
      return 2;
    }
  }

  // A small synthetic sky on a 4-server fleet.
  sdss::catalog::SkyModel model;
  model.seed = 7;
  model.num_galaxies = 30'000;
  model.num_stars = 25'000;
  model.num_quasars = 300;
  sdss::catalog::ObjectStore source;
  if (!source.BulkLoad(sdss::catalog::SkyGenerator(model).Generate()).ok()) {
    return 1;
  }
  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(source, repl);
  auto shards = sharded.LiveShards();
  if (!shards.ok()) return 1;

  // One registry wired through every layer: the engine's query/cache
  // counters, the scheduler's lane gauges, and the server's session
  // counters all land in it, so a single STATS frame reports the whole
  // process.
  sdss::metrics::Registry registry;
  FederatedQueryEngine::Options engine_options;
  engine_options.metrics = &registry;
  FederatedQueryEngine engine(*shards, engine_options);
  MyDb mydb;

  // The monitoring plane, when --admin-port asked for it: structured
  // events on disk, a 2 s metric-history sampler (so short runs still
  // accumulate /varz windows), the stock watchdog rules, and a trace
  // ring fed by every finished job (trace_sample_every = 1).
  std::unique_ptr<sdss::EventLog> events;
  std::unique_ptr<sdss::metrics::History> history;
  std::unique_ptr<sdss::HealthWatchdog> watchdog;
  sdss::query::TraceRing traces(64);
  if (admin_port >= 0) {
    const std::string events_dir =
        (std::filesystem::temp_directory_path() / "sdss_query_server_events")
            .string();
    auto opened = sdss::EventLog::Open(events_dir);
    if (opened.ok()) {
      events = std::move(*opened);
      std::printf("event log: %s\n", events_dir.c_str());
    }
    sdss::metrics::History::Options hopt;
    hopt.period_seconds = 2.0;
    hopt.capacity = 1800;  // Still an hour of history.
    history = std::make_unique<sdss::metrics::History>(&registry, hopt);
    sdss::HealthWatchdog::Options wopt;
    wopt.rules = sdss::HealthWatchdog::DefaultRules(/*quick_depth_max=*/16);
    wopt.events = events.get();
    watchdog =
        std::make_unique<sdss::HealthWatchdog>(history.get(), wopt);
  }

  JobScheduler::Options lanes;
  lanes.quick_workers = 2;
  lanes.long_workers = 1;
  lanes.metrics = &registry;
  lanes.events = events.get();
  lanes.trace_ring = &traces;
  lanes.trace_sample_every = 1;
  JobScheduler scheduler(&engine, &mydb, lanes);

  ServerOptions options;
  options.users = {{"ana", "tycho"}};
  options.metrics = &registry;
  options.events = events.get();
  QueryServer server(&scheduler, options);
  if (!server.Start().ok()) return 1;
  std::printf("query server listening on 127.0.0.1:%u\n\n", server.port());

  std::unique_ptr<HttpAdmin> admin;
  if (admin_port >= 0) {
    HttpAdmin::Options aopt;
    aopt.port = static_cast<uint16_t>(admin_port);
    aopt.metrics = &registry;
    aopt.history = history.get();
    aopt.watchdog = watchdog.get();
    aopt.traces = &traces;
    aopt.scheduler = &scheduler;
    aopt.events = events.get();
    aopt.build_info = "sdss-archive example_query_server";
    admin = std::make_unique<HttpAdmin>(aopt);
    if (!admin->Start().ok()) return 1;
    // The watchdog evaluates after every history sample, so readiness
    // flips within one sampler period of a condition appearing.
    history->Start([&watchdog] { watchdog->Evaluate(); });
    std::printf("admin endpoint on 127.0.0.1:%u -- try:\n", admin->port());
    std::printf("  curl http://127.0.0.1:%u/metrics\n", admin->port());
    std::printf("  curl http://127.0.0.1:%u/healthz\n", admin->port());
    std::printf("  curl http://127.0.0.1:%u/statusz\n", admin->port());
    std::printf("  curl http://127.0.0.1:%u/varz?window=60s\n",
                admin->port());
    std::printf("  curl http://127.0.0.1:%u/tracez?latest=1\n\n",
                admin->port());
    if (trip_watchdog) {
      // Fake the one latched failure an operator can stage without a
      // sick disk: the journal_poisoned rule reads this gauge.
      registry.GetGauge("persist_journal_poisoned")->Set(1);
      std::printf("tripped watchdog: persist_journal_poisoned = 1, "
                  "/healthz goes 503 within ~%.0f s\n\n",
                  history->period_seconds());
    }
  }

  auto client = Client::Connect("127.0.0.1", server.port(), "ana", "tycho");
  if (!client.ok()) return 1;
  std::printf("connected: session %llu, banner \"%s\"\n\n",
              static_cast<unsigned long long>(
                  client->welcome().session_id),
              client->welcome().banner.c_str());

  // A cone search and an aggregate, straight through the wire.
  auto cone = client->Query(
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 6) "
      "ORDER BY r ASC LIMIT 500");
  if (!cone.ok()) return 1;
  ShowOutcome("cone search:", *cone);
  if (cone->have_header && !cone->rows.empty()) {
    std::printf("  brightest: obj %llu at r=%.2f\n",
                static_cast<unsigned long long>(cone->rows[0].obj_id),
                cone->rows[0].values[1]);
  }
  auto count = client->Query(
      "SELECT COUNT(*) FROM photo WHERE class = 'QSO' AND r < 21");
  if (!count.ok()) return 1;
  ShowOutcome("quasar count:", *count);

  // Materialize a personal table, then mine it without re-scanning the
  // fleet (the CasJobs workflow, now over the network).
  auto into = client->Query(
      "SELECT * INTO mydb.bright FROM photo WHERE r < 19");
  if (!into.ok()) return 1;
  ShowOutcome("INTO mydb.bright:", *into);
  auto mine = client->Query(
      "SELECT obj_id, redshift FROM mydb.bright "
      "WHERE class = 'QSO' ORDER BY redshift DESC LIMIT 5");
  if (!mine.ok()) return 1;
  ShowOutcome("mine mydb.bright:", *mine);

  // Streaming with a change of heart: the row callback bails after the
  // first batch, the client sends CANCEL, the server ends the job.
  int batches = 0;
  auto cancelled = client->Query(
      "SELECT a.obj_id, b.obj_id, sep FROM photo AS a "
      "JOIN photoobj AS b WITHIN 30 ARCMIN",
      [&batches](const sdss::query::RowBatch&) { return ++batches < 2; });
  if (!cancelled.ok()) return 1;
  ShowOutcome("cancelled join:", *cancelled);

  // A login the server refuses (fatal ERROR, session never opens).
  auto intruder = Client::Connect("127.0.0.1", server.port(), "ana", "x");
  std::printf("%-28s %s\n", "bad token:",
              intruder.ok() ? "accepted?!"
                            : intruder.status().message().c_str());

  // The metrics snapshot, fetched over the wire (STATS frame): every
  // instrument the process registered, from engine to server.
  auto report = client->Stats();
  if (!report.ok()) return 1;
  std::printf("\nmetrics over the wire (%zu instruments):\n",
              report->instruments.size());
  for (const auto& inst : report->instruments) {
    switch (inst.kind) {
      case sdss::metrics::Kind::kCounter:
        if (inst.counter > 0) {
          std::printf("  %-28s %llu\n", inst.name.c_str(),
                      static_cast<unsigned long long>(inst.counter));
        }
        break;
      case sdss::metrics::Kind::kGauge:
        std::printf("  %-28s %lld\n", inst.name.c_str(),
                    static_cast<long long>(inst.gauge));
        break;
      case sdss::metrics::Kind::kHistogram:
        if (inst.hist.count > 0) {
          std::printf("  %-28s n=%llu p50=%llu us p99=%llu us\n",
                      inst.name.c_str(),
                      static_cast<unsigned long long>(inst.hist.count),
                      static_cast<unsigned long long>(inst.hist.P50()),
                      static_cast<unsigned long long>(inst.hist.P99()));
        }
        break;
    }
  }

  if (!client->Bye().ok()) return 1;
  auto stats = server.stats();
  std::printf("\nserver stats: %llu sessions, %llu queries submitted, "
              "%llu ok / %llu failed, %llu auth failures\n",
              static_cast<unsigned long long>(stats.sessions_accepted),
              static_cast<unsigned long long>(stats.queries_submitted),
              static_cast<unsigned long long>(stats.queries_succeeded),
              static_cast<unsigned long long>(stats.queries_failed),
              static_cast<unsigned long long>(stats.auth_failures));
  if (serve_seconds > 0) {
    std::printf("\nserving %d more seconds for scrapers...\n",
                serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  if (admin != nullptr) {
    history->Stop();
    admin->Stop();
  }
  server.Stop();
  return 0;
}
