// Run the archive's TCP front end and talk to it over the wire.
//
// Builds a 4-server fleet, starts a QueryServer on an ephemeral
// loopback port, and drives it with the bundled Client: handshake,
// cone search, aggregate, an INTO mydb materialization mined by a
// follow-up query, a mid-stream cancellation, and a refused login.
// The same walkthrough, narrated, lives in BUILDING.md; the byte-level
// protocol is docs/PROTOCOL.md.

#include <cstdio>
#include <memory>
#include <string>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "core/metrics.h"
#include "query/federated_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "workbench/scheduler.h"

namespace {

using sdss::archive::MyDb;
using sdss::archive::ReplicationOptions;
using sdss::archive::ShardedStore;
using sdss::query::FederatedQueryEngine;
using sdss::server::Client;
using sdss::server::QueryOutcome;
using sdss::server::QueryServer;
using sdss::server::ServerOptions;
using sdss::workbench::JobScheduler;

void ShowOutcome(const char* what, const QueryOutcome& out) {
  switch (out.kind) {
    case QueryOutcome::Kind::kDone:
      std::printf("%-28s %llu rows in %.1f ms (lane %s, %llu containers "
                  "scanned)\n",
                  what, static_cast<unsigned long long>(out.done.rows),
                  out.done.seconds_running * 1e3,
                  out.header.lane == 0 ? "QUICK" : "LONG",
                  static_cast<unsigned long long>(
                      out.done.containers_scanned));
      break;
    case QueryOutcome::Kind::kError:
      std::printf("%-28s ERROR: %s\n", what, out.error.message.c_str());
      break;
    case QueryOutcome::Kind::kBusy:
      std::printf("%-28s BUSY, retry in %u ms\n", what,
                  out.busy.retry_after_ms);
      break;
  }
}

}  // namespace

int main() {
  // A small synthetic sky on a 4-server fleet.
  sdss::catalog::SkyModel model;
  model.seed = 7;
  model.num_galaxies = 30'000;
  model.num_stars = 25'000;
  model.num_quasars = 300;
  sdss::catalog::ObjectStore source;
  if (!source.BulkLoad(sdss::catalog::SkyGenerator(model).Generate()).ok()) {
    return 1;
  }
  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(source, repl);
  auto shards = sharded.LiveShards();
  if (!shards.ok()) return 1;

  // One registry wired through every layer: the engine's query/cache
  // counters, the scheduler's lane gauges, and the server's session
  // counters all land in it, so a single STATS frame reports the whole
  // process.
  sdss::metrics::Registry registry;
  FederatedQueryEngine::Options engine_options;
  engine_options.metrics = &registry;
  FederatedQueryEngine engine(*shards, engine_options);
  MyDb mydb;

  JobScheduler::Options lanes;
  lanes.quick_workers = 2;
  lanes.long_workers = 1;
  lanes.metrics = &registry;
  JobScheduler scheduler(&engine, &mydb, lanes);

  ServerOptions options;
  options.users = {{"ana", "tycho"}};
  options.metrics = &registry;
  QueryServer server(&scheduler, options);
  if (!server.Start().ok()) return 1;
  std::printf("query server listening on 127.0.0.1:%u\n\n", server.port());

  auto client = Client::Connect("127.0.0.1", server.port(), "ana", "tycho");
  if (!client.ok()) return 1;
  std::printf("connected: session %llu, banner \"%s\"\n\n",
              static_cast<unsigned long long>(
                  client->welcome().session_id),
              client->welcome().banner.c_str());

  // A cone search and an aggregate, straight through the wire.
  auto cone = client->Query(
      "SELECT obj_id, r FROM photo WHERE CIRCLE('GAL', 30, 70, 6) "
      "ORDER BY r ASC LIMIT 500");
  if (!cone.ok()) return 1;
  ShowOutcome("cone search:", *cone);
  if (cone->have_header && !cone->rows.empty()) {
    std::printf("  brightest: obj %llu at r=%.2f\n",
                static_cast<unsigned long long>(cone->rows[0].obj_id),
                cone->rows[0].values[1]);
  }
  auto count = client->Query(
      "SELECT COUNT(*) FROM photo WHERE class = 'QSO' AND r < 21");
  if (!count.ok()) return 1;
  ShowOutcome("quasar count:", *count);

  // Materialize a personal table, then mine it without re-scanning the
  // fleet (the CasJobs workflow, now over the network).
  auto into = client->Query(
      "SELECT * INTO mydb.bright FROM photo WHERE r < 19");
  if (!into.ok()) return 1;
  ShowOutcome("INTO mydb.bright:", *into);
  auto mine = client->Query(
      "SELECT obj_id, redshift FROM mydb.bright "
      "WHERE class = 'QSO' ORDER BY redshift DESC LIMIT 5");
  if (!mine.ok()) return 1;
  ShowOutcome("mine mydb.bright:", *mine);

  // Streaming with a change of heart: the row callback bails after the
  // first batch, the client sends CANCEL, the server ends the job.
  int batches = 0;
  auto cancelled = client->Query(
      "SELECT a.obj_id, b.obj_id, sep FROM photo AS a "
      "JOIN photoobj AS b WITHIN 30 ARCMIN",
      [&batches](const sdss::query::RowBatch&) { return ++batches < 2; });
  if (!cancelled.ok()) return 1;
  ShowOutcome("cancelled join:", *cancelled);

  // A login the server refuses (fatal ERROR, session never opens).
  auto intruder = Client::Connect("127.0.0.1", server.port(), "ana", "x");
  std::printf("%-28s %s\n", "bad token:",
              intruder.ok() ? "accepted?!"
                            : intruder.status().message().c_str());

  // The metrics snapshot, fetched over the wire (STATS frame): every
  // instrument the process registered, from engine to server.
  auto report = client->Stats();
  if (!report.ok()) return 1;
  std::printf("\nmetrics over the wire (%zu instruments):\n",
              report->instruments.size());
  for (const auto& inst : report->instruments) {
    switch (inst.kind) {
      case sdss::metrics::Kind::kCounter:
        if (inst.counter > 0) {
          std::printf("  %-28s %llu\n", inst.name.c_str(),
                      static_cast<unsigned long long>(inst.counter));
        }
        break;
      case sdss::metrics::Kind::kGauge:
        std::printf("  %-28s %lld\n", inst.name.c_str(),
                    static_cast<long long>(inst.gauge));
        break;
      case sdss::metrics::Kind::kHistogram:
        if (inst.hist.count > 0) {
          std::printf("  %-28s n=%llu p50=%llu us p99=%llu us\n",
                      inst.name.c_str(),
                      static_cast<unsigned long long>(inst.hist.count),
                      static_cast<unsigned long long>(inst.hist.P50()),
                      static_cast<unsigned long long>(inst.hist.P99()));
        }
        break;
    }
  }

  if (!client->Bye().ok()) return 1;
  auto stats = server.stats();
  std::printf("\nserver stats: %llu sessions, %llu queries submitted, "
              "%llu ok / %llu failed, %llu auth failures\n",
              static_cast<unsigned long long>(stats.sessions_accepted),
              static_cast<unsigned long long>(stats.queries_submitted),
              static_cast<unsigned long long>(stats.queries_succeeded),
              static_cast<unsigned long long>(stats.queries_failed),
              static_cast<unsigned long long>(stats.auth_failures));
  server.Stop();
  return 0;
}
