// Cross-identification between surveys, plus FITS interchange.
//
// "Each subsequent astronomical survey will want to cross-identify its
// objects with the SDSS catalog." We simulate a second survey that
// re-observes part of the sky with small astrometric errors, match it
// against the reference catalog via the HTM index, and exchange the
// matched subset as a blocked binary FITS packet stream -- the archive-
// to-archive interchange path of the paper.
//
//   $ ./cross_match

#include <cstdio>
#include <set>

#include "catalog/cross_match.h"
#include "catalog/fits_io.h"
#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "core/random.h"

using namespace sdss;
using catalog::PhotoObj;

int main() {
  // Reference catalog (SDSS).
  catalog::SkyModel model;
  model.seed = 7;
  model.num_galaxies = 30'000;
  model.num_stars = 20'000;
  model.num_quasars = 300;
  auto reference_objects = catalog::SkyGenerator(model).Generate();
  catalog::ObjectStore sdss_catalog;
  (void)sdss_catalog.BulkLoad(reference_objects);

  // A "second survey": 40% of objects re-observed with 0.4" errors and
  // slightly different photometry; ids are its own.
  Rng rng(1234);
  std::vector<PhotoObj> second;
  uint64_t next_id = 1;
  for (const PhotoObj& o : reference_objects) {
    if (!rng.Bernoulli(0.4)) continue;
    PhotoObj copy = o;
    copy.obj_id = next_id++;
    copy.pos = rng.UnitCap(o.pos, ArcsecToRad(0.4)).Normalized();
    SphericalFromUnitVector(copy.pos, &copy.ra_deg, &copy.dec_deg);
    for (auto& m : copy.mag) {
      m += static_cast<float>(rng.Gaussian(0.0, 0.03));
    }
    second.push_back(copy);
  }
  catalog::ObjectStore new_survey;
  (void)new_survey.BulkLoad(second);
  std::printf("reference: %llu objects; new survey: %llu objects\n",
              (unsigned long long)sdss_catalog.object_count(),
              (unsigned long long)new_survey.object_count());

  // Cross-match: nearest counterpart within 2 arcsec.
  catalog::CrossMatchOptions options;
  options.radius_arcsec = 2.0;
  options.best_match_only = true;
  catalog::CrossMatchStats stats;
  auto matches =
      catalog::CrossMatch(new_survey, sdss_catalog, options, &stats);

  double match_rate = 100.0 * static_cast<double>(matches.size()) /
                      static_cast<double>(new_survey.object_count());
  std::printf("\ncross-match (2\" radius): %zu matches (%.1f%% of the new "
              "survey)\n",
              matches.size(), match_rate);
  std::printf("candidate distance tests: %llu -- vs %.2e for the naive "
              "cross product\n",
              (unsigned long long)stats.candidates_tested,
              static_cast<double>(sdss_catalog.object_count()) *
                  static_cast<double>(new_survey.object_count()));

  double sum_sep = 0;
  for (const auto& m : matches) sum_sep += m.separation_arcsec;
  std::printf("mean separation: %.3f arcsec (astrometric error recovered)\n",
              matches.empty() ? 0.0 : sum_sep / matches.size());

  // Exchange the matched objects as a blocked FITS packet stream.
  catalog::ObjectStore matched;
  {
    std::set<uint64_t> matched_ids;
    for (const auto& m : matches) matched_ids.insert(m.obj_id_a);
    std::vector<PhotoObj> rows;
    new_survey.ForEachObject([&](const PhotoObj& o) {
      if (matched_ids.count(o.obj_id)) rows.push_back(o);
    });
    (void)matched.BulkLoad(std::move(rows));
  }
  std::string stream = catalog::StoreToPacketStream(matched, 2048);
  std::printf("\nFITS interchange: matched subset serialized as %zu bytes "
              "(%zu-byte blocks)\n",
              stream.size(), fits::kBlockSize);

  auto reloaded = catalog::StoreFromPacketStream(stream);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round trip: %llu objects reloaded from the stream "
              "(%s containers preserved)\n",
              (unsigned long long)reloaded->object_count(),
              reloaded->DensityMap() == matched.DensityMap() ? "all"
                                                             : "NOT all");
  return 0;
}
