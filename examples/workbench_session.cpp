// The batch query workbench in one session: a 4-server fleet behind a
// job scheduler, cost-based QUICK/LONG admission, a CasJobs-style
// 3-step mining workflow through a personal MyDB store, cooperative
// cancellation, and the per-user storage quota.
//
//   cmake --build build --target example_workbench_session
//   ./build/examples/example_workbench_session

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "catalog/sky_generator.h"
#include "query/federated_engine.h"
#include "workbench/scheduler.h"

using sdss::archive::MyDb;
using sdss::archive::ReplicationOptions;
using sdss::archive::ShardedStore;
using sdss::query::FederatedQueryEngine;
using sdss::workbench::JobScheduler;
using sdss::workbench::JobSnapshot;
using sdss::workbench::JobStateName;
using sdss::workbench::LaneName;

namespace {

void PrintJob(const JobSnapshot& snap) {
  std::printf("  job %2" PRIu64 "  %-6s %-9s %8" PRIu64
              " rows  user=%-6s %s\n",
              snap.id, LaneName(snap.lane), JobStateName(snap.state),
              snap.rows, snap.user.c_str(),
              snap.error.ok() ? snap.sql.substr(0, 48).c_str()
                              : snap.error.ToString().substr(0, 48).c_str());
}

}  // namespace

int main() {
  // A deterministic synthetic sky, spatially partitioned over 4 servers
  // with 2 replicas of every container.
  sdss::catalog::SkyModel model;
  model.seed = 20;
  model.num_galaxies = 20000;
  model.num_stars = 16000;
  model.num_quasars = 400;
  sdss::catalog::ObjectStore source;
  if (!source.BulkLoad(sdss::catalog::SkyGenerator(model).Generate())
           .ok()) {
    return 1;
  }
  ReplicationOptions repl;
  repl.num_servers = 4;
  repl.base_replicas = 2;
  ShardedStore sharded(source, repl);
  auto shards = sharded.LiveShards();
  if (!shards.ok()) return 1;
  FederatedQueryEngine engine(*shards);
  std::printf("fleet: %zu servers, %" PRIu64 " objects\n",
              sharded.num_servers(), source.object_count());

  MyDb::Options quota;
  quota.per_user_quota_bytes = 32ull << 20;
  MyDb mydb(quota);
  JobScheduler::Options opts;
  opts.quick_workers = 2;
  opts.long_workers = 1;
  opts.quick_lane_max_bytes = 4ull << 20;
  JobScheduler scheduler(&engine, &mydb, opts);

  // -- The 3-step mining workflow ------------------------------------
  std::printf("\n[1] long job: SELECT * INTO mydb.bright ...\n");
  auto into = scheduler.Submit(
      "miner", "SELECT * INTO mydb.bright FROM photo WHERE r < 20.5");
  if (!into.ok()) return 1;

  // Quick-lane work is admitted and answered while the long job runs.
  auto cone = scheduler.Submit(
      "alice",
      "SELECT COUNT(*) FROM photo WHERE CIRCLE('GAL', 30, 70, 5)");
  if (!cone.ok()) return 1;
  auto cone_done = scheduler.Wait(*cone);
  std::printf("    quick cone search finished (%s) while INTO is %s\n",
              JobStateName(cone_done->state),
              JobStateName(scheduler.Snapshot(*into)->state));

  auto into_done = scheduler.Wait(*into);
  std::printf("    materialized %" PRIu64
              " bright objects into mydb.bright (%.0f KB used)\n",
              into_done->rows,
              static_cast<double>(mydb.UsedBytes("miner")) / 1024.0);

  std::printf("[2] quick job: refine mydb.bright (no base-data scan)\n");
  auto refine = scheduler.Submit(
      "miner",
      "SELECT obj_id, r FROM mydb.bright WHERE g - r < 0.6 "
      "ORDER BY r LIMIT 10");
  if (!refine.ok()) return 1;
  auto refine_done = scheduler.Wait(*refine);
  std::printf("    %" PRIu64 " rows, lane=%s\n", refine_done->rows,
              LaneName(refine_done->lane));

  std::printf("[3] quick job: aggregate the derived table\n");
  auto agg = scheduler.Submit("miner",
                              "SELECT AVG(r) FROM mydb.bright");
  if (!agg.ok()) return 1;
  (void)scheduler.Wait(*agg);
  auto avg = scheduler.TakeResult(*agg);
  if (avg.ok()) {
    std::printf("    AVG(r) over mydb.bright = %.4f\n",
                avg->aggregate_value);
  }

  // -- Cancellation ---------------------------------------------------
  std::printf("\ncancelling a long mining join mid-scan:\n");
  auto heavy = scheduler.Submit(
      "load",
      "SELECT COUNT(*) FROM photo AS a JOIN photoobj AS b WITHIN 2 DEG");
  if (heavy.ok()) {
    while (scheduler.Snapshot(*heavy)->state ==
           sdss::workbench::JobState::kQueued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (void)scheduler.Cancel(*heavy);
    auto done = scheduler.Wait(*heavy);
    std::printf("    job %" PRIu64 " -> %s (%s)\n", *heavy,
                JobStateName(done->state), done->error.ToString().c_str());
  }

  // -- Quota ----------------------------------------------------------
  std::printf("\nquota: a second INTO against a taken name is refused "
              "at submit:\n");
  auto dup = scheduler.Submit(
      "miner", "SELECT * INTO mydb.bright FROM photo WHERE r < 19");
  std::printf("    submit -> %s\n", dup.ok()
                                        ? "accepted (unexpected)"
                                        : dup.status().ToString().c_str());

  std::printf("\nsession job table:\n");
  for (const JobSnapshot& snap : scheduler.Jobs()) PrintJob(snap);
  std::printf("\nmydb tables of 'miner':");
  for (const std::string& name : mydb.List("miner")) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  return 0;
}
