// Spectroscopic survey planning: target selection and tiling.
//
// "The tile centers are determined by an optimization algorithm, which
// maximizes overlaps at areas of highest target density." This example
// selects the paper's three target classes from a photometric catalog,
// places overlapping 3-degree tiles greedily over the densest sky, and
// reports fiber utilization and the nights of observing implied by the
// instrument's 5000-spectra-per-night rate.
//
//   $ ./spectro_tiling

#include <cstdio>
#include <map>

#include "catalog/sky_generator.h"
#include "catalog/tiling.h"

using namespace sdss;
using catalog::Target;
using catalog::TargetClass;

int main() {
  // A clustered photometric catalog (clusters make tiling interesting).
  catalog::SkyModel model;
  model.seed = 5;
  model.num_galaxies = 60'000;
  model.num_stars = 25'000;
  model.num_quasars = 800;
  model.cluster_fraction = 0.4;
  catalog::ObjectStore store;
  (void)store.BulkLoad(catalog::SkyGenerator(model).Generate());
  std::printf("photometric catalog: %llu objects\n",
              (unsigned long long)store.object_count());

  // --- Target selection (the paper's three samples). -------------------
  auto targets = catalog::SelectTargets(store);
  std::map<TargetClass, int> counts;
  for (const auto& t : targets) ++counts[t.target_class];
  std::printf("\nspectroscopic targets: %zu\n", targets.size());
  std::printf("  main galaxy sample (r < 17.8, SB-limited): %d\n",
              counts[TargetClass::kMainGalaxy]);
  std::printf("  very red galaxies  (g-r > 0.85, r < 19.5): %d\n",
              counts[TargetClass::kRedGalaxy]);
  std::printf("  quasar candidates  (UV excess, point-like): %d\n",
              counts[TargetClass::kQuasar]);

  // --- Tile placement. --------------------------------------------------
  catalog::TilingOptions options;  // 3-deg tiles, 640 fibers, 55" limit.
  auto result = catalog::PlaceTiles(targets, options);
  if (!result.ok()) {
    std::fprintf(stderr, "tiling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntiling: %zu tiles placed, %.1f%% of targets assigned "
              "(%llu unreachable)\n",
              result->tiles.size(), 100.0 * result->CoverageFraction(),
              (unsigned long long)result->targets_unreachable);

  uint64_t fibers_used = 0, collisions = 0;
  for (const auto& tile : result->tiles) {
    fibers_used += tile.assigned.size();
    collisions += tile.collisions_skipped;
  }
  std::printf("fiber utilization: %.1f%% of %d per tile; %llu targets "
              "deferred by the 55\" collision limit\n",
              100.0 * static_cast<double>(fibers_used) /
                  (static_cast<double>(result->tiles.size()) *
                   options.fibers_per_tile),
              options.fibers_per_tile, (unsigned long long)collisions);

  std::printf("\nfirst tiles (greedy: densest sky first):\n");
  std::printf("%5s %10s %10s %8s %10s\n", "tile", "ra", "dec", "fibers",
              "skipped");
  for (size_t i = 0; i < result->tiles.size() && i < 8; ++i) {
    const auto& tile = result->tiles[i];
    double ra, dec;
    SphericalFromUnitVector(tile.center, &ra, &dec);
    std::printf("%5zu %10.3f %10.3f %8zu %10zu\n", i, ra, dec,
                tile.assigned.size(), tile.collisions_skipped);
  }

  // The instrument measures ~5000 spectra per night (640 fibers,
  // ~45-minute exposures): how many nights is this footprint?
  double nights = static_cast<double>(fibers_used) / 5000.0;
  std::printf("\nobserving time at 5000 spectra/night: %.1f nights for "
              "this demo footprint\n(the full survey's 10^6 targets need "
              "~200 nights -- the paper's 5-year plan)\n",
              nights);
  return 0;
}
