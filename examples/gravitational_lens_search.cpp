// Gravitational lens search on the hash machine.
//
// The paper's pair query: "find objects within 10 arcsec of each other
// which have identical colors, but may have a different brightness" --
// a high-dimensional neighborhood search (sky position x 4-color space)
// that no single-object index answers. We run it as the paper proposes:
// a two-phase parallel hash machine over a simulated commodity cluster.
//
//   $ ./gravitational_lens_search [num_nodes]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "catalog/object_store.h"
#include "catalog/sky_generator.h"
#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "dataflow/hash_machine.h"

using namespace sdss;
using catalog::kNumBands;
using catalog::ObjClass;
using catalog::PhotoObj;

namespace {

// Lens criterion: all four adjacent colors equal within photometric
// error; brightness free.
bool IdenticalColors(const PhotoObj& a, const PhotoObj& b) {
  for (int i = 0; i < kNumBands - 1; ++i) {
    float ca = a.mag[i] - a.mag[i + 1];
    float cb = b.mag[i] - b.mag[i + 1];
    if (std::fabs(ca - cb) > 0.05f) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;

  // Synthetic sky with planted lens systems: each lensed quasar gets a
  // second image within 8 arcsec, same colors, dimmed by 0.5-2 mag.
  catalog::SkyModel model;
  model.seed = 99;
  model.num_galaxies = 40'000;
  model.num_stars = 30'000;
  model.num_quasars = 600;
  auto objects = catalog::SkyGenerator(model).Generate();

  Rng rng(7);
  std::vector<PhotoObj> images;
  uint64_t next_id = 10'000'000;
  for (const PhotoObj& o : objects) {
    if (o.obj_class != ObjClass::kQuasar || !rng.Bernoulli(0.2)) continue;
    PhotoObj img = o;
    img.obj_id = next_id++;
    img.pos = rng.UnitCap(o.pos, ArcsecToRad(8.0)).Normalized();
    SphericalFromUnitVector(img.pos, &img.ra_deg, &img.dec_deg);
    float dimming = static_cast<float>(rng.Uniform(0.5, 2.0));
    for (int b = 0; b < kNumBands; ++b) img.mag[b] += dimming;
    images.push_back(img);
  }
  size_t planted = images.size();
  objects.insert(objects.end(), images.begin(), images.end());

  catalog::ObjectStore store;
  if (auto s = store.BulkLoad(std::move(objects)); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("catalog: %llu objects, %zu planted lens systems\n",
              (unsigned long long)store.object_count(), planted);

  // Partition across the simulated cluster.
  dataflow::ClusterConfig cfg;
  cfg.num_nodes = nodes;
  dataflow::ClusterSim cluster(cfg);
  if (auto s = cluster.LoadPartitioned(store); !s.ok()) {
    std::fprintf(stderr, "partition failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("cluster: %zu nodes x %.0f MB/s disks\n\n", cluster.num_nodes(),
              cfg.node.disk_mbps);

  // Phase 1 hashes every object to its HTM bucket (with edge ghosts);
  // phase 2 compares within buckets.
  dataflow::HashMachine machine(&cluster);
  dataflow::HashReport report;
  auto pairs = machine.FindPairs(
      [](const PhotoObj&) { return true; },  // Whole catalog.
      /*max_sep_arcsec=*/10.0, IdenticalColors,
      dataflow::PairSearchOptions{}, &report);

  std::printf("phase 1: %llu objects hashed into %llu buckets "
              "(+%llu edge ghosts), %s modeled\n",
              (unsigned long long)report.selected,
              (unsigned long long)report.buckets,
              (unsigned long long)report.ghosts,
              FormatSimDuration(report.phase1_sim_seconds).c_str());
  std::printf("phase 2: %llu pair tests, %s modeled\n",
              (unsigned long long)report.pair_tests,
              FormatSimDuration(report.phase2_sim_seconds).c_str());
  std::printf("\nfound %zu lens-candidate pairs "
              "(planted %zu; extras are chance color matches)\n\n",
              pairs.size(), planted);

  std::printf("first candidates:\n%14s %14s %10s\n", "obj A", "obj B",
              "sep (\")");
  for (size_t i = 0; i < pairs.size() && i < 8; ++i) {
    std::printf("%14llu %14llu %10.2f\n",
                (unsigned long long)pairs[i].obj_id_a,
                (unsigned long long)pairs[i].obj_id_b,
                pairs[i].separation_arcsec);
  }

  // Compare against the quadratic baseline on the quasar subset only
  // (the full-catalog brute force would be prohibitive -- that is the
  // point of the hash machine).
  uint64_t brute_tests = 0;
  auto brute = machine.FindPairsBruteForce(
      [](const PhotoObj& o) { return o.obj_class == ObjClass::kQuasar; },
      10.0, IdenticalColors, &brute_tests);
  std::printf("\nbrute force on just the quasar subset: %zu pairs, "
              "%llu pair tests\n(the bucketed machine used %llu over the "
              "whole catalog)\n",
              brute.size(), (unsigned long long)brute_tests,
              (unsigned long long)report.pair_tests);
  return 0;
}
