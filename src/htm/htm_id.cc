#include "htm/htm_id.h"

namespace sdss::htm {

Result<HtmId> HtmId::FromRaw(uint64_t raw) {
  if (Level(raw) < 0) {
    return Status::InvalidArgument("malformed HTM id: " + std::to_string(raw));
  }
  return HtmId(raw);
}

Result<HtmId> HtmId::FromName(const std::string& name) {
  if (name.size() < 2) {
    return Status::InvalidArgument("HTM name too short: '" + name + "'");
  }
  uint64_t raw;
  if (name[0] == 'N' || name[0] == 'n') {
    raw = 3;  // 0b11
  } else if (name[0] == 'S' || name[0] == 's') {
    raw = 2;  // 0b10
  } else {
    return Status::InvalidArgument("HTM name must start with N or S: '" +
                                   name + "'");
  }
  if (name.size() > static_cast<size_t>(kMaxLevel) + 2) {
    return Status::InvalidArgument("HTM name deeper than kMaxLevel: '" + name +
                                   "'");
  }
  for (size_t i = 1; i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '3') {
      return Status::InvalidArgument("HTM name digits must be 0-3: '" + name +
                                     "'");
    }
    raw = (raw << 2) | static_cast<uint64_t>(c - '0');
  }
  return HtmId(raw);
}

HtmId HtmId::Base(int index) {
  // 0..3 -> S0..S3 (raw 8..11), 4..7 -> N0..N3 (raw 12..15).
  return HtmId(8ull + static_cast<uint64_t>(index & 7));
}

std::string HtmId::ToName() const {
  if (!valid()) return "<invalid>";
  int lv = level();
  std::string name;
  name.reserve(static_cast<size_t>(lv) + 2);
  uint64_t top = raw_ >> (2 * lv);  // 8..15
  name.push_back((top & 4) ? 'N' : 'S');
  name.push_back(static_cast<char>('0' + (top & 3)));
  for (int i = lv - 1; i >= 0; --i) {
    name.push_back(static_cast<char>('0' + ((raw_ >> (2 * i)) & 3)));
  }
  return name;
}

}  // namespace sdss::htm
