#include "htm/trixel.h"

#include <algorithm>
#include <cmath>

#include "core/angle.h"
#include "core/coords.h"

namespace sdss::htm {
namespace {

// Octahedron corners (the roots of Figure 3 in the paper).
constexpr Vec3 kV0{0, 0, 1};    // North pole.
constexpr Vec3 kV1{1, 0, 0};
constexpr Vec3 kV2{0, 1, 0};
constexpr Vec3 kV3{-1, 0, 0};
constexpr Vec3 kV4{0, -1, 0};
constexpr Vec3 kV5{0, 0, -1};  // South pole.

// Corner triplets for the 8 base trixels, in raw-id order 8..15
// (S0..S3, N0..N3), each counterclockwise seen from outside the sphere.
struct BaseTriple {
  Vec3 a, b, c;
};
constexpr BaseTriple kBase[8] = {
    {kV1, kV5, kV2},  // S0 (raw 8)
    {kV2, kV5, kV3},  // S1 (raw 9)
    {kV3, kV5, kV4},  // S2 (raw 10)
    {kV4, kV5, kV1},  // S3 (raw 11)
    {kV1, kV0, kV4},  // N0 (raw 12)
    {kV4, kV0, kV3},  // N1 (raw 13)
    {kV3, kV0, kV2},  // N2 (raw 14)
    {kV2, kV0, kV1},  // N3 (raw 15)
};

// Tolerance for boundary point tests: points this close to an edge plane
// are treated as inside so that lookup never loses a point to roundoff.
constexpr double kEdgeEps = 1e-13;

bool InsideEps(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& p,
               double eps) {
  return a.Cross(b).Dot(p) >= -eps && b.Cross(c).Dot(p) >= -eps &&
         c.Cross(a).Dot(p) >= -eps;
}

Vec3 Mid(const Vec3& a, const Vec3& b) { return (a + b).Normalized(); }

}  // namespace

Trixel Trixel::FromId(HtmId id) {
  uint64_t raw = id.raw();
  int level = id.level();
  const BaseTriple& base = kBase[(raw >> (2 * level)) - 8];
  Vec3 a = base.a, b = base.b, c = base.c;
  for (int i = level - 1; i >= 0; --i) {
    int child = static_cast<int>((raw >> (2 * i)) & 3);
    Vec3 w0 = Mid(b, c), w1 = Mid(a, c), w2 = Mid(a, b);
    switch (child) {
      case 0:
        b = w2;
        c = w1;
        break;
      case 1:
        a = b;
        b = w0;
        c = w2;
        break;
      case 2:
        a = c;
        b = w1;
        c = w0;
        break;
      default:
        a = w0;
        b = w1;
        c = w2;
        break;
    }
  }
  return Trixel(id, a, b, c);
}

std::array<Trixel, 4> Trixel::Children() const {
  const Vec3 &a = v_[0], &b = v_[1], &c = v_[2];
  Vec3 w0 = Mid(b, c), w1 = Mid(a, c), w2 = Mid(a, b);
  return {Trixel(id_.Child(0), a, w2, w1), Trixel(id_.Child(1), b, w0, w2),
          Trixel(id_.Child(2), c, w1, w0), Trixel(id_.Child(3), w0, w1, w2)};
}

bool Trixel::Contains(const Vec3& p) const {
  return InsideEps(v_[0], v_[1], v_[2], p, kEdgeEps);
}

Cap Trixel::BoundingCap() const {
  Cap cap;
  cap.center = Center();
  double min_cos = 1.0;
  for (const Vec3& v : v_) min_cos = std::min(min_cos, cap.center.Dot(v));
  cap.radius_rad = std::acos(std::clamp(min_cos, -1.0, 1.0));
  return cap;
}

double Trixel::AreaSteradians() const {
  // L'Huilier: tan(E/4) = sqrt(tan(s/2) tan((s-a)/2) tan((s-b)/2)
  // tan((s-c)/2)) with a, b, c the arc side lengths.
  double a = v_[1].AngleTo(v_[2]);
  double b = v_[0].AngleTo(v_[2]);
  double c = v_[0].AngleTo(v_[1]);
  double s = 0.5 * (a + b + c);
  double t = std::tan(0.5 * s) * std::tan(0.5 * (s - a)) *
             std::tan(0.5 * (s - b)) * std::tan(0.5 * (s - c));
  return 4.0 * std::atan(std::sqrt(std::max(0.0, t)));
}

double Trixel::AreaSquareDegrees() const {
  return AreaSteradians() * kDegPerRad * kDegPerRad;
}

std::vector<HtmId> Trixel::Neighbors() const {
  int level = id_.level();
  Vec3 center = Center();
  std::vector<HtmId> out;
  auto add = [&](const Vec3& probe) {
    HtmId n = LookupId(probe.Normalized(), level);
    if (n != id_ &&
        std::find(out.begin(), out.end(), n) == out.end()) {
      out.push_back(n);
    }
  };
  // Edge neighbors: reflect the centroid across each edge's great-circle
  // plane; the reflected point lies in the adjacent trixel.
  for (int i = 0; i < 3; ++i) {
    const Vec3& a = v_[i];
    const Vec3& b = v_[(i + 1) % 3];
    Vec3 n = a.Cross(b).Normalized();
    Vec3 reflected = center - n * (2.0 * center.Dot(n));
    add(reflected);
  }
  // Vertex neighbors: probe just beyond each corner, on the far side from
  // the centroid, plus two side-steps to catch all trixels meeting there.
  for (int i = 0; i < 3; ++i) {
    const Vec3& v = v_[i];
    Vec3 away = (v - center).Normalized();
    Vec3 tangent = v.Cross(away).Normalized();
    double step = 1e-4;
    add(v + away * step);
    add(v + away * step + tangent * step);
    add(v + away * step - tangent * step);
  }
  std::sort(out.begin(), out.end());
  return out;
}

HtmId LookupId(const Vec3& p, int level) {
  Vec3 q = p.Normalized();
  // Find the base trixel. The epsilon test guarantees boundary points match
  // at least one face; take the first.
  int base = -1;
  for (int i = 0; i < 8; ++i) {
    if (InsideEps(kBase[i].a, kBase[i].b, kBase[i].c, q, kEdgeEps)) {
      base = i;
      break;
    }
  }
  if (base < 0) base = q.z >= 0 ? 4 : 0;  // Unreachable fallback.

  HtmId id = HtmId::Base(base >= 4 ? base : base);  // raw 8+base order.
  // HtmId::Base maps 0..3->S0..S3 (raw 8..11), 4..7->N0..N3 (raw 12..15),
  // matching kBase's ordering.
  Vec3 a = kBase[base].a, b = kBase[base].b, c = kBase[base].c;
  for (int l = 0; l < level; ++l) {
    Vec3 w0 = Mid(b, c), w1 = Mid(a, c), w2 = Mid(a, b);
    if (InsideEps(a, w2, w1, q, kEdgeEps)) {
      id = id.Child(0);
      b = w2;
      c = w1;
    } else if (InsideEps(b, w0, w2, q, kEdgeEps)) {
      id = id.Child(1);
      a = b;
      b = w0;
      c = w2;
    } else if (InsideEps(c, w1, w0, q, kEdgeEps)) {
      id = id.Child(2);
      a = c;
      b = w1;
      c = w0;
    } else {
      id = id.Child(3);
      a = w0;
      b = w1;
      c = w2;
    }
  }
  return id;
}

HtmId LookupId(double ra_deg, double dec_deg, int level) {
  return LookupId(UnitVectorFromSpherical(ra_deg, dec_deg), level);
}

}  // namespace sdss::htm
