// Facade tying the HTM pieces together: point location, covers, and the
// accept/filter decision the query engine applies per container.

#ifndef SDSS_HTM_HTM_INDEX_H_
#define SDSS_HTM_HTM_INDEX_H_

#include "core/angle.h"
#include "htm/cover.h"
#include "htm/htm_id.h"
#include "htm/range_set.h"
#include "htm/region.h"
#include "htm/trixel.h"

namespace sdss::htm {

/// A spatial index over the sky at a fixed leaf level. Stateless apart
/// from the level; all methods are thread-safe.
class HtmIndex {
 public:
  /// `level` is the subdivision depth used for both point location and
  /// covers; the catalog's container clustering depth in practice.
  explicit HtmIndex(int level = 6) : level_(level) {}

  int level() const { return level_; }

  /// Leaf trixel id of a unit vector / of (ra, dec) degrees.
  HtmId Locate(const Vec3& p_eq) const { return LookupId(p_eq, level_); }
  HtmId Locate(double ra_deg, double dec_deg) const {
    return LookupId(ra_deg, dec_deg, level_);
  }

  /// Trixel cover of a region at this index's level.
  CoverResult CoverRegion(const Region& region) const {
    return Cover(region, level_);
  }

  /// Average trixel area at this level in square degrees.
  double MeanTrixelAreaSquareDegrees() const {
    return kSquareDegreesOnSky /
           static_cast<double>(TrixelCountAtLevel(level_));
  }

 private:
  int level_;
};

}  // namespace sdss::htm

#endif  // SDSS_HTM_HTM_INDEX_H_
