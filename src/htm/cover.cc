#include "htm/cover.h"

#include <utility>

namespace sdss::htm {

RangeSet CoverResult::ToRangeSet() const {
  RangeSet rs = FullRangeSet();
  return rs.UnionWith(PartialRangeSet());
}

RangeSet CoverResult::FullRangeSet() const {
  RangeSet rs;
  for (HtmId id : full) rs.AddTrixel(id, level);
  return rs;
}

RangeSet CoverResult::PartialRangeSet() const {
  RangeSet rs;
  for (HtmId id : partial) rs.AddTrixel(id, level);
  return rs;
}

double CoverResult::FullAreaSquareDegrees() const {
  double a = 0.0;
  for (HtmId id : full) a += Trixel::FromId(id).AreaSquareDegrees();
  return a;
}

double CoverResult::PartialAreaSquareDegrees() const {
  double a = 0.0;
  for (HtmId id : partial) a += Trixel::FromId(id).AreaSquareDegrees();
  return a;
}

CoverResult Cover(const Region& region, const CoverOptions& options) {
  CoverResult out;
  out.level = options.level;
  out.level_stats.resize(static_cast<size_t>(options.level) + 1);

  std::vector<Trixel> frontier;  // PARTIAL trixels at the current level.
  frontier.reserve(64);

  auto classify_into = [&](const Trixel& t, int lv,
                           std::vector<Trixel>* next) {
    auto& stats = out.level_stats[static_cast<size_t>(lv)];
    ++stats.tested;
    switch (region.Classify(t)) {
      case Coverage::kFull:
        ++stats.full;
        out.full.push_back(t.id());
        break;
      case Coverage::kPartial:
        ++stats.partial;
        if (lv == options.level) {
          out.partial.push_back(t.id());
        } else {
          next->push_back(t);
        }
        break;
      case Coverage::kDisjoint:
        ++stats.disjoint;
        break;
    }
  };

  for (int i = 0; i < 8; ++i) {
    Trixel t = Trixel::FromId(HtmId::Base(i));
    classify_into(t, 0, &frontier);
  }

  for (int lv = 1; lv <= options.level && !frontier.empty(); ++lv) {
    if (options.max_trixels > 0 &&
        out.full.size() + out.partial.size() + frontier.size() * 4 >
            options.max_trixels) {
      break;  // Budget exhausted: emit the frontier coarse.
    }
    std::vector<Trixel> next;
    next.reserve(frontier.size() * 2);
    for (const Trixel& t : frontier) {
      for (const Trixel& child : t.Children()) {
        classify_into(child, lv, &next);
      }
    }
    frontier = std::move(next);
  }

  // Anything still in the frontier (budget cut-off) is PARTIAL, possibly
  // coarser than the leaf level; RangeAtLevel expansion handles that.
  for (const Trixel& t : frontier) out.partial.push_back(t.id());

  return out;
}

CoverResult Cover(const Region& region, int level) {
  CoverOptions opt;
  opt.level = level;
  return Cover(region, opt);
}

}  // namespace sdss::htm
