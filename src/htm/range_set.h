// Sorted, merged half-open ranges of HTM ids at one level.
//
// Because an HTM subtree is a contiguous id interval, the output of the
// cover algorithm compresses naturally into a handful of ranges -- the
// "coarse-grained density map" containers of the paper become interval
// lookups instead of big id lists.

#ifndef SDSS_HTM_RANGE_SET_H_
#define SDSS_HTM_RANGE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "htm/htm_id.h"

namespace sdss::htm {

/// An immutable-after-build set of half-open uint64 ranges [first, last),
/// kept sorted and coalesced.
class RangeSet {
 public:
  struct Range {
    uint64_t first = 0;
    uint64_t last = 0;  ///< Exclusive.
    bool operator==(const Range& o) const {
      return first == o.first && last == o.last;
    }
  };

  RangeSet() = default;

  /// Adds [first, last); merges with neighbors. Amortized O(log n) when
  /// insertions arrive roughly sorted.
  void Add(uint64_t first, uint64_t last);

  /// Adds the leaf-range of `id` expanded to `level`.
  void AddTrixel(HtmId id, int level);

  bool Contains(uint64_t value) const;
  bool empty() const { return ranges_.empty(); }
  size_t range_count() const { return ranges_.size(); }

  /// Total number of ids covered.
  uint64_t CardinalityCount() const;

  const std::vector<Range>& ranges() const { return ranges_; }

  /// Set union / intersection / difference.
  RangeSet UnionWith(const RangeSet& o) const;
  RangeSet IntersectWith(const RangeSet& o) const;
  RangeSet DifferenceWith(const RangeSet& o) const;

  std::string ToString() const;

  bool operator==(const RangeSet& o) const { return ranges_ == o.ranges_; }

 private:
  std::vector<Range> ranges_;
};

}  // namespace sdss::htm

#endif  // SDSS_HTM_RANGE_SET_H_
