#include "htm/region.h"

#include <algorithm>
#include <cmath>

#include "core/angle.h"

namespace sdss::htm {
namespace {

constexpr double kEps = 1e-12;

// Appends the points where the boundary circle of `h` (the small circle
// direction.p = dist) crosses the great-circle arc from `a` to `b`.
// Points on the arc are p(t) ~ (1-t)a + t b (normalized), t in [0,1].
// Substituting into direction.p = dist |p| and squaring yields a
// quadratic in t; each root is validated against the unsquared
// equation's sign before the point is emitted.
void EdgeConstraintCrossings(const Vec3& a, const Vec3& b,
                             const Halfspace& h, std::vector<Vec3>* out) {
  double g1 = a.Dot(h.direction);
  double g2 = b.Dot(h.direction);
  double u = a.Dot(b);
  double c = h.dist;

  // s(t) = g1 + t (g2 - g1);  |p(t)|^2 = 1 - 2 t (1-t) (1-u).
  double dg = g2 - g1;
  double k = c * c * (1.0 - u);  // Appears in the quadratic twice.
  double qa = dg * dg - 2.0 * k;
  double qb = 2.0 * g1 * dg + 2.0 * k;
  double qc = g1 * g1 - c * c;

  auto emit_root = [&](double t) {
    if (t < -kEps || t > 1.0 + kEps) return;
    double s = g1 + t * dg;
    // Sign of s must match sign of c (s = c * |p|, |p| > 0).
    if (c > kEps && s <= -kEps) return;
    if (c < -kEps && s >= kEps) return;
    Vec3 p = a * (1.0 - t) + b * t;
    double norm = p.Norm();
    if (norm > kEps) out->push_back(p * (1.0 / norm));
  };

  if (std::fabs(qa) < kEps) {
    if (std::fabs(qb) < kEps) return;  // Degenerate: no crossing.
    emit_root(-qc / qb);
    return;
  }
  double disc = qb * qb - 4.0 * qa * qc;
  if (disc < 0.0) return;
  double sq = std::sqrt(disc);
  emit_root((-qb - sq) / (2.0 * qa));
  emit_root((-qb + sq) / (2.0 * qa));
}

void TrixelConstraintCrossings(const Trixel& t, const Halfspace& h,
                               std::vector<Vec3>* out) {
  const auto& v = t.vertices();
  EdgeConstraintCrossings(v[0], v[1], h, out);
  EdgeConstraintCrossings(v[1], v[2], h, out);
  EdgeConstraintCrossings(v[2], v[0], h, out);
}

// The meridian plane normal for longitude `lon_deg` in a frame's own
// basis: points with longitude in [lon, lon+180] satisfy n . p >= 0.
Vec3 MeridianNormal(double lon_deg) {
  double lon = DegToRad(lon_deg);
  return {-std::sin(lon), std::cos(lon), 0.0};
}

}  // namespace

const char* CoverageName(Coverage c) {
  switch (c) {
    case Coverage::kDisjoint:
      return "DISJOINT";
    case Coverage::kPartial:
      return "PARTIAL";
    case Coverage::kFull:
      return "FULL";
  }
  return "?";
}

bool Convex::Contains(const Vec3& p) const {
  for (const Halfspace& h : constraints_) {
    if (!h.Contains(p)) return false;
  }
  return true;
}

std::optional<Cap> Convex::BoundingCap() const {
  const Halfspace* tightest = nullptr;
  for (const Halfspace& h : constraints_) {
    if (tightest == nullptr || h.dist > tightest->dist) tightest = &h;
  }
  if (tightest == nullptr || tightest->dist <= -1.0 + kEps) {
    return std::nullopt;  // Unconstrained (covers the sphere).
  }
  return Cap{tightest->direction, tightest->RadiusRad()};
}

std::optional<Vec3> Convex::InteriorPoint() const {
  if (constraints_.empty()) return Vec3{0, 0, 1};
  std::vector<Vec3> valid = InteriorCandidates();
  if (valid.empty()) return std::nullopt;
  return valid.front();
}

std::vector<Vec3> Convex::InteriorCandidates() const {
  std::vector<Vec3> candidates;
  Vec3 sum{0, 0, 0};
  for (const Halfspace& h : constraints_) {
    candidates.push_back(h.direction);
    sum += h.direction;
  }
  if (sum.Norm() > kEps) candidates.push_back(sum.Normalized());

  // Pairwise boundary-circle intersections: solve p = x di + y dj + z dixdj
  // with di.p = ci, dj.p = cj, |p| = 1.
  for (size_t i = 0; i < constraints_.size(); ++i) {
    for (size_t j = i + 1; j < constraints_.size(); ++j) {
      const Halfspace& hi = constraints_[i];
      const Halfspace& hj = constraints_[j];
      double u = hi.direction.Dot(hj.direction);
      double denom = 1.0 - u * u;
      if (denom < kEps) {
        if (u < 0.0 && hi.dist <= -hj.dist) {
          // Antipodal pair (e.g. a latitude band): any point whose
          // projection on di lies midway between the two cutoffs works.
          double m = 0.5 * (hi.dist - hj.dist);
          Vec3 helper =
              std::fabs(hi.direction.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
          Vec3 orth = hi.direction.Cross(helper).Normalized();
          double t = std::sqrt(std::max(0.0, 1.0 - m * m));
          candidates.push_back(hi.direction * m + orth * t);
        }
        continue;  // Parallel constraints.
      }
      double x = (hi.dist - hj.dist * u) / denom;
      double y = (hj.dist - hi.dist * u) / denom;
      double z2 = 1.0 - (x * x + y * y + 2.0 * x * y * u);
      if (z2 < 0.0) continue;
      Vec3 base = hi.direction * x + hj.direction * y;
      Vec3 axis = hi.direction.Cross(hj.direction);
      double z = std::sqrt(z2) / std::max(axis.Norm(), kEps);
      candidates.push_back((base + axis * z).Normalized());
      candidates.push_back((base - axis * z).Normalized());
    }
  }

  std::vector<Vec3> valid;
  for (const Vec3& c : candidates) {
    // Accept points within tolerance of every constraint boundary.
    bool ok = true;
    for (const Halfspace& h : constraints_) {
      if (h.direction.Dot(c) < h.dist - 1e-9) {
        ok = false;
        break;
      }
    }
    if (ok) valid.push_back(c);
  }
  return valid;
}

Coverage Convex::Classify(const Trixel& t) const {
  if (constraints_.empty()) return Coverage::kFull;  // Whole sphere.

  // Cheap rejection: the convex lies inside its tightest constraint cap;
  // if that cap cannot touch the trixel's bounding cap, they are disjoint.
  if (auto cap = BoundingCap()) {
    Cap tcap = t.BoundingCap();
    double sep = cap->center.AngleTo(tcap.center);
    if (sep > cap->radius_rad + tcap.radius_rad + kEps) {
      return Coverage::kDisjoint;
    }
  }

  int inside = 0;
  for (const Vec3& v : t.vertices()) {
    if (Contains(v)) ++inside;
  }

  // A trixel edge crossing one constraint's boundary circle only touches
  // the CONVEX boundary if the crossing point also satisfies every other
  // constraint (the convex boundary is made of such arcs). Testing the
  // lone circle classifies trixels along its entire ring as PARTIAL --
  // for a rect that smears partials around the whole sphere.
  auto crosses_boundary = [&](const Halfspace& h) {
    std::vector<Vec3> pts;
    TrixelConstraintCrossings(t, h, &pts);
    for (const Vec3& p : pts) {
      bool in_others = true;
      for (const Halfspace& o : constraints_) {
        if (&o == &h) continue;
        // Small slack keeps corner-grazing crossings conservative.
        if (o.direction.Dot(p) < o.dist - 1e-9) {
          in_others = false;
          break;
        }
      }
      if (in_others) return true;
    }
    return false;
  };

  if (inside == 3) {
    // All corners inside. The trixel is fully covered unless a constraint
    // boundary dips into it (crossing an edge, or a "hole": the excluded
    // cap of a constraint lying wholly inside the triangle).
    for (const Halfspace& h : constraints_) {
      if (crosses_boundary(h)) return Coverage::kPartial;
      if (h.dist > -1.0 + kEps && t.Contains(-h.direction)) {
        return Coverage::kPartial;  // Excluded cap centered inside trixel.
      }
    }
    return Coverage::kFull;
  }

  if (inside > 0) return Coverage::kPartial;

  // No corner inside. Either truly disjoint, or the convex pierces the
  // triangle (boundary crossing) or a piece of it sits wholly inside.
  for (const Halfspace& h : constraints_) {
    if (crosses_boundary(h)) return Coverage::kPartial;
  }
  // A convex built from excluding caps can be DISCONNECTED (e.g. two
  // lens patches where a pair of bands cross); with no edge crossing,
  // any component intersecting the trixel lies wholly inside it. Every
  // component contains at least one interior candidate (a boundary
  // corner, cap center, or band midpoint), so test them all.
  std::vector<Vec3> witnesses = InteriorCandidates();
  for (const Vec3& w : witnesses) {
    if (t.Contains(w)) return Coverage::kPartial;
  }
  if (!witnesses.empty()) return Coverage::kDisjoint;
  // Could not produce a witness point (rare, possibly empty convex):
  // degrade conservatively. Per-object filtering keeps results exact.
  return Coverage::kPartial;
}

bool Region::Contains(const Vec3& p) const {
  for (const Convex& c : convexes_) {
    if (c.Contains(p)) return true;
  }
  return false;
}

Coverage Region::Classify(const Trixel& t) const {
  bool any_partial = false;
  for (const Convex& c : convexes_) {
    switch (c.Classify(t)) {
      case Coverage::kFull:
        return Coverage::kFull;
      case Coverage::kPartial:
        any_partial = true;
        break;
      case Coverage::kDisjoint:
        break;
    }
  }
  return any_partial ? Coverage::kPartial : Coverage::kDisjoint;
}

Region Region::Circle(double lon_deg, double lat_deg, double radius_deg,
                      Frame frame) {
  SphericalCoord c{lon_deg, lat_deg, frame};
  return CircleAround(EquatorialUnitVector(c), radius_deg);
}

Region Region::CircleAround(const Vec3& center_eq, double radius_deg) {
  Region r;
  Convex conv;
  conv.Add(Halfspace::Cap(center_eq, DegToRad(radius_deg)));
  r.Add(std::move(conv));
  return r;
}

Region Region::LatBand(double lat_min_deg, double lat_max_deg, Frame frame) {
  Vec3 pole = RotationToEquatorial(frame) * Vec3{0, 0, 1};
  Region r;
  Convex conv;
  conv.Add({pole, std::sin(DegToRad(ClampLatitudeDeg(lat_min_deg)))});
  conv.Add({-pole, -std::sin(DegToRad(ClampLatitudeDeg(lat_max_deg)))});
  r.Add(std::move(conv));
  return r;
}

Region Region::Rect(double lon_min_deg, double lon_max_deg,
                    double lat_min_deg, double lat_max_deg, Frame frame) {
  double width = lon_max_deg - lon_min_deg;
  if (width < 0.0) width += 360.0;
  if (width >= 360.0 - 1e-12) {
    return LatBand(lat_min_deg, lat_max_deg, frame);
  }
  if (width > 180.0) {
    // Split into two half-width rectangles (union of convexes).
    double mid = lon_min_deg + width / 2.0;
    Region left = Rect(lon_min_deg, mid, lat_min_deg, lat_max_deg, frame);
    Region right = Rect(mid, lon_max_deg, lat_min_deg, lat_max_deg, frame);
    return left.UnionWith(right);
  }

  const Matrix3& to_eq = RotationToEquatorial(frame);
  Region r;
  Convex conv;
  conv.Add({to_eq * Vec3{0, 0, 1},
            std::sin(DegToRad(ClampLatitudeDeg(lat_min_deg)))});
  conv.Add({to_eq * Vec3{0, 0, -1},
            -std::sin(DegToRad(ClampLatitudeDeg(lat_max_deg)))});
  conv.Add({to_eq * MeridianNormal(lon_min_deg), 0.0});
  conv.Add({to_eq * (-MeridianNormal(lon_max_deg)), 0.0});
  r.Add(std::move(conv));
  return r;
}

Result<Region> Region::Polygon(const std::vector<Vec3>& ccw_vertices_eq) {
  if (ccw_vertices_eq.size() < 3) {
    return Status::InvalidArgument("polygon needs >= 3 vertices");
  }
  Vec3 centroid{0, 0, 0};
  for (const Vec3& v : ccw_vertices_eq) centroid += v;
  if (centroid.Norm() < kEps) {
    return Status::InvalidArgument("degenerate polygon (zero centroid)");
  }
  centroid = centroid.Normalized();

  auto build = [&](bool reversed) {
    Convex conv;
    size_t n = ccw_vertices_eq.size();
    for (size_t i = 0; i < n; ++i) {
      const Vec3& a = ccw_vertices_eq[reversed ? (n - 1 - i) : i];
      const Vec3& b =
          ccw_vertices_eq[reversed ? (n - 1 - (i + 1) % n) : (i + 1) % n];
      conv.Add({a.Cross(b).Normalized(), 0.0});
    }
    return conv;
  };

  Convex conv = build(false);
  if (!conv.Contains(centroid)) {
    conv = build(true);  // Accept clockwise input too.
    if (!conv.Contains(centroid)) {
      return Status::InvalidArgument(
          "polygon is not convex (centroid outside its own edges)");
    }
  }
  Region r;
  r.Add(std::move(conv));
  return r;
}

Region Region::IntersectWith(const Region& other) const {
  Region out;
  for (const Convex& a : convexes_) {
    for (const Convex& b : other.convexes_) {
      std::vector<Halfspace> merged = a.constraints();
      merged.insert(merged.end(), b.constraints().begin(),
                    b.constraints().end());
      out.Add(Convex(std::move(merged)));
    }
  }
  return out;
}

Region Region::UnionWith(const Region& other) const {
  Region out = *this;
  for (const Convex& c : other.convexes_) out.Add(c);
  return out;
}

}  // namespace sdss::htm
