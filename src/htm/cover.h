// The recursive sky-cover algorithm of the paper (Figure 4).
//
// "Run a test between the query polyhedron and the spherical triangles
// corresponding to the tree root nodes. ... Classify nodes, as fully
// outside the query, fully inside the query or partially intersecting the
// query polyhedron. If a node is rejected, that node's children can be
// ignored. Only the children of bisected triangles need be further
// investigated."
//
// Coverer walks the trixel quad-tree from the 8 octahedron roots down to a
// configurable leaf level, classifying each node against a Region and
// producing (a) coarse FULL trixels whose whole subtree is accepted and
// (b) leaf-level PARTIAL trixels that require per-object filtering.

#ifndef SDSS_HTM_COVER_H_
#define SDSS_HTM_COVER_H_

#include <cstdint>
#include <vector>

#include "htm/range_set.h"
#include "htm/region.h"
#include "htm/trixel.h"

namespace sdss::htm {

/// The result of covering a Region with trixels.
struct CoverResult {
  int level = 0;  ///< Leaf level the cover was computed to.

  /// Trixels (possibly coarser than `level`) entirely inside the region:
  /// every object in them satisfies the spatial predicate with no test.
  std::vector<HtmId> full;

  /// Leaf-level trixels bisected by the region boundary: objects in them
  /// need the exact Region::Contains test.
  std::vector<HtmId> partial;

  /// Per-level classification counts, for instrumentation (reproduces the
  /// Figure 4 illustration of which triangles were selected per level).
  struct LevelStats {
    uint64_t tested = 0;
    uint64_t full = 0;
    uint64_t partial = 0;
    uint64_t disjoint = 0;
  };
  std::vector<LevelStats> level_stats;

  /// All accepted ids (full subtrees expanded + partials) as leaf ranges.
  RangeSet ToRangeSet() const;

  /// Leaf ranges of only the FULL portion.
  RangeSet FullRangeSet() const;

  /// Leaf ranges of only the PARTIAL portion.
  RangeSet PartialRangeSet() const;

  /// Total sky area of the accepted trixels (square degrees); FULL area
  /// plus PARTIAL area. Used for the paper's output-volume prediction.
  double FullAreaSquareDegrees() const;
  double PartialAreaSquareDegrees() const;
};

/// Options controlling the cover recursion.
struct CoverOptions {
  /// Leaf level of the recursion (container clustering depth by default).
  int level = 6;

  /// Stop subdividing a PARTIAL trixel early once this many total output
  /// trixels exist; remaining partials are emitted at their current level
  /// expanded to leaves. 0 = unlimited (exact cover to `level`).
  size_t max_trixels = 0;
};

/// Computes the trixel cover of `region`.
CoverResult Cover(const Region& region, const CoverOptions& options);

/// Convenience: cover at `level` with no trixel budget.
CoverResult Cover(const Region& region, int level);

/// Invokes `fn(raw)` for every `level`-deep raw id under the cover's
/// FULL and PARTIAL trixels (RangeAtLevel expansion). The one
/// cover-to-ids loop shared by the pair hasher's ghost buckets and the
/// federated join's ghost harvest -- keep expansions in agreement by
/// adding callers here, not by re-rolling the loop.
template <typename Fn>
void ForEachRawInCover(const CoverResult& cover, int level, Fn&& fn) {
  auto expand = [&](HtmId id) {
    uint64_t first, last;
    id.RangeAtLevel(level, &first, &last);
    for (uint64_t raw = first; raw < last; ++raw) fn(raw);
  };
  for (HtmId id : cover.full) expand(id);
  for (HtmId id : cover.partial) expand(id);
}

}  // namespace sdss::htm

#endif  // SDSS_HTM_COVER_H_
