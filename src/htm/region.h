// Half-space constraint algebra on the celestial sphere.
//
// The paper: "Each query can be represented as a set of half-space
// constraints, connected by Boolean operators, all in three-dimensional
// space." A Halfspace is one such constraint (direction . p > dist); a
// Convex is an AND of halfspaces; a Region is an OR of convexes. Every
// spatial predicate in the archive (cone search, coordinate bands in any
// frame, rectangles, polygons, the Figure 4 query) lowers to a Region.

#ifndef SDSS_HTM_REGION_H_
#define SDSS_HTM_REGION_H_

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/coords.h"
#include "core/status.h"
#include "core/vec3.h"
#include "htm/trixel.h"

namespace sdss::htm {

/// One linear constraint on unit vectors: p is inside iff
/// direction . p >= dist. dist = cos(angular radius) for a cap.
struct Halfspace {
  Vec3 direction;  ///< Unit vector: the cap axis.
  double dist = 0.0;  ///< Plane offset in [-1, 1]; cos of the cap radius.

  /// Cap of angular radius `radius_rad` around `center` (any frame's
  /// vector; callers pass Equatorial canonical vectors).
  static Halfspace Cap(const Vec3& center, double radius_rad) {
    return {center.Normalized(), std::cos(radius_rad)};
  }

  bool Contains(const Vec3& p) const { return direction.Dot(p) >= dist; }

  /// Angular radius of the cap in radians (pi for dist = -1).
  double RadiusRad() const {
    return std::acos(std::clamp(dist, -1.0, 1.0));
  }
};

/// How a trixel relates to a constraint set -- the three classes the
/// paper's recursive algorithm distinguishes (Figure 4): fully inside,
/// fully outside, or bisected.
enum class Coverage {
  kDisjoint = 0,  ///< Trixel entirely outside: reject subtree.
  kPartial = 1,   ///< Bisected: recurse or filter per object.
  kFull = 2,      ///< Trixel entirely inside: accept subtree.
};

const char* CoverageName(Coverage c);

/// An intersection (AND) of halfspaces: a convex area on the sphere.
class Convex {
 public:
  Convex() = default;
  explicit Convex(std::vector<Halfspace> constraints)
      : constraints_(std::move(constraints)) {}

  void Add(const Halfspace& h) { constraints_.push_back(h); }
  const std::vector<Halfspace>& constraints() const { return constraints_; }
  bool empty() const { return constraints_.empty(); }

  /// True iff `p` satisfies every constraint. An empty Convex contains
  /// everything (it is the whole sphere).
  bool Contains(const Vec3& p) const;

  /// Classifies `t` as kFull / kPartial / kDisjoint. Conservative:
  /// inconclusive geometric cases degrade to kPartial (never wrong, only
  /// finer recursion), so downstream results remain exact.
  Coverage Classify(const Trixel& t) const;

  /// The tightest single-cap bound: the convex lies inside the cap of its
  /// largest-dist constraint. Empty optional when unconstrained.
  std::optional<Cap> BoundingCap() const;

  /// A point inside the convex, if one can be found cheaply. Used to
  /// detect the convex-inside-trixel case.
  std::optional<Vec3> InteriorPoint() const;

 private:
  /// All candidate witness points that lie inside the convex: constraint
  /// cap centers, the mean direction, band midpoints, and pairwise
  /// boundary-circle intersections. A convex with excluding caps can be
  /// disconnected; every connected component contains at least one of
  /// these, so classification must consider them all.
  std::vector<Vec3> InteriorCandidates() const;

  std::vector<Halfspace> constraints_;
};

/// A union (OR) of convexes: an arbitrary sky area. This is the argument
/// of the cover algorithm and of every spatial query predicate.
class Region {
 public:
  Region() = default;

  void Add(Convex convex) { convexes_.push_back(std::move(convex)); }
  const std::vector<Convex>& convexes() const { return convexes_; }
  bool empty() const { return convexes_.empty(); }

  /// True iff `p` is inside any convex. The empty Region contains nothing.
  bool Contains(const Vec3& p) const;

  /// Classifies against the union: any kFull wins, else any kPartial.
  Coverage Classify(const Trixel& t) const;

  // -- Factory helpers for the common query shapes ------------------------

  /// Cone search: all points within `radius_deg` of (lon, lat) in `frame`.
  static Region Circle(double lon_deg, double lat_deg, double radius_deg,
                       Frame frame = Frame::kEquatorial);

  /// Circle around an Equatorial unit vector.
  static Region CircleAround(const Vec3& center_eq, double radius_deg);

  /// Latitude band lat in [lat_min, lat_max] of `frame` (the Figure 4
  /// building block: a pair of parallel planes).
  static Region LatBand(double lat_min_deg, double lat_max_deg,
                        Frame frame = Frame::kEquatorial);

  /// Spherical rectangle lon in [lon_min, lon_max], lat in [lat_min,
  /// lat_max] in `frame`. Handles wrap-around and widths up to 360 deg.
  static Region Rect(double lon_min_deg, double lon_max_deg,
                     double lat_min_deg, double lat_max_deg,
                     Frame frame = Frame::kEquatorial);

  /// Convex spherical polygon from counterclockwise vertices (Equatorial
  /// unit vectors). Returns InvalidArgument if fewer than 3 vertices.
  static Result<Region> Polygon(const std::vector<Vec3>& ccw_vertices_eq);

  /// Intersection of this region with another, distributing unions over
  /// the convex intersections: (A|B) & (C|D) = AC|AD|BC|BD.
  Region IntersectWith(const Region& other) const;

  /// Union.
  Region UnionWith(const Region& other) const;

 private:
  std::vector<Convex> convexes_;
};

}  // namespace sdss::htm

#endif  // SDSS_HTM_REGION_H_
