// Trixel geometry: vertices, subdivision, point location, areas, caps.
//
// A trixel is a spherical triangle of the HTM hierarchy (Figure 3 of the
// paper). All geometry is done on unit vectors; point-in-trixel tests are
// three cross-product sign tests, and child trixels are built from the
// normalized edge midpoints of the parent.

#ifndef SDSS_HTM_TRIXEL_H_
#define SDSS_HTM_TRIXEL_H_

#include <array>
#include <vector>

#include "core/vec3.h"
#include "htm/htm_id.h"

namespace sdss::htm {

/// A spherical cap: all points within angular radius `radius_rad` of the
/// unit direction `center`. Used for cheap trixel/region rejection tests.
struct Cap {
  Vec3 center;
  double radius_rad = 0.0;
};

/// The geometry of one HTM trixel: its id plus the three unit-vector
/// corners in the canonical counterclockwise (seen from outside) order.
class Trixel {
 public:
  /// Geometry of the trixel named by `id`. Walks down from the base
  /// octahedron face, so cost is O(level).
  static Trixel FromId(HtmId id);

  HtmId id() const { return id_; }
  const Vec3& v0() const { return v_[0]; }
  const Vec3& v1() const { return v_[1]; }
  const Vec3& v2() const { return v_[2]; }
  const std::array<Vec3, 3>& vertices() const { return v_; }

  /// The four children in HTM child order:
  ///   child 0 = (v0, w2, w1), 1 = (v1, w0, w2), 2 = (v2, w1, w0),
  ///   3 = (w0, w1, w2) where wi is the normalized midpoint opposite vi.
  std::array<Trixel, 4> Children() const;

  /// True if the unit vector `p` lies inside (or on the boundary of) this
  /// spherical triangle.
  bool Contains(const Vec3& p) const;

  /// Normalized centroid of the three corners.
  Vec3 Center() const { return (v_[0] + v_[1] + v_[2]).Normalized(); }

  /// Smallest cap centered at Center() containing all three corners.
  Cap BoundingCap() const;

  /// Solid angle in steradians (L'Huilier's formula).
  double AreaSteradians() const;

  /// Solid angle in square degrees.
  double AreaSquareDegrees() const;

  /// Ids of the trixels sharing an edge or vertex with this one at the
  /// same level (8-12 ids typically; 3 edge neighbors + vertex neighbors).
  std::vector<HtmId> Neighbors() const;

 private:
  Trixel(HtmId id, const Vec3& a, const Vec3& b, const Vec3& c)
      : id_(id), v_{a, b, c} {}

  HtmId id_;
  std::array<Vec3, 3> v_;
};

/// Locates the level-`level` trixel containing unit vector `p`.
/// Points exactly on shared boundaries resolve deterministically to one of
/// the adjacent trixels. `level` must be in [0, kMaxLevel].
HtmId LookupId(const Vec3& p, int level);

/// Convenience overload taking (ra, dec) degrees in the Equatorial frame.
HtmId LookupId(double ra_deg, double dec_deg, int level);

}  // namespace sdss::htm

#endif  // SDSS_HTM_TRIXEL_H_
