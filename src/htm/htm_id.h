// Hierarchical Triangular Mesh identifiers.
//
// The paper (Figure 3) subdivides the sky starting from the 8 spherical
// triangles of an octahedron; each triangle splits recursively into 4
// children of approximately equal area, forming a quad-tree. An HtmId names
// one node of that tree in a single 64-bit integer:
//
//   bits:  [1 N/S] [2-bit base index] [2 bits per level child index ...]
//
// Base trixels are ids 8..15 (S0=8..S3=11, N0=12..N3=15); a child id is
// parent*4 + child_index. The bit length therefore encodes the depth, ids
// at one level are contiguous, and a subtree is a contiguous id range --
// the property the container clustering and range-set coverage rely on.

#ifndef SDSS_HTM_HTM_ID_H_
#define SDSS_HTM_HTM_ID_H_

#include <bit>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace sdss::htm {

/// Deepest supported subdivision level. Level 24 trixels are ~5
/// milli-arcsec across; ids stay well inside 64 bits (4 + 2*24 = 52 bits).
inline constexpr int kMaxLevel = 24;

/// Number of trixels at a given level: 8 * 4^level.
constexpr uint64_t TrixelCountAtLevel(int level) {
  return 8ull << (2 * level);
}

/// A validated HTM trixel identifier. The default-constructed id is
/// invalid (raw 0); all real ids come from the factory functions.
class HtmId {
 public:
  constexpr HtmId() = default;

  /// Wraps a raw id. Returns InvalidArgument unless `raw` encodes a trixel
  /// at a level in [0, kMaxLevel].
  static Result<HtmId> FromRaw(uint64_t raw);

  /// Parses a name like "N012" or "S3001". The leading letter selects the
  /// hemisphere, the first digit the base face (0-3), and each further
  /// digit (0-3) one subdivision step.
  static Result<HtmId> FromName(const std::string& name);

  /// The `index`-th base trixel: 0..3 -> S0..S3, 4..7 -> N0..N3.
  static HtmId Base(int index);

  /// True for every id produced by the factories; false for HtmId().
  bool valid() const { return raw_ >= 8 && Level(raw_) >= 0; }

  uint64_t raw() const { return raw_; }

  /// Subdivision depth: 0 for base trixels.
  int level() const { return Level(raw_); }

  /// Name in the "N012" convention.
  std::string ToName() const;

  /// Parent trixel (one level up). Precondition: level() > 0.
  HtmId Parent() const { return HtmId(raw_ >> 2); }

  /// `child`-th child (0-3). Precondition: level() < kMaxLevel.
  HtmId Child(int child) const {
    return HtmId((raw_ << 2) | static_cast<uint64_t>(child & 3));
  }

  /// Which child of its parent this trixel is (0-3).
  int ChildIndex() const { return static_cast<int>(raw_ & 3); }

  /// Ancestor at `ancestor_level` <= level().
  HtmId AncestorAt(int ancestor_level) const {
    return HtmId(raw_ >> (2 * (level() - ancestor_level)));
  }

  /// True if this trixel's subtree contains `other` (or equals it).
  bool Contains(HtmId other) const {
    int dl = other.level() - level();
    return dl >= 0 && (other.raw_ >> (2 * dl)) == raw_;
  }

  /// Half-open range [first, last) of descendant ids at `deeper_level`
  /// (>= level()). Used to turn coarse FULL trixels into leaf ranges.
  void RangeAtLevel(int deeper_level, uint64_t* first, uint64_t* last) const {
    int shift = 2 * (deeper_level - level());
    *first = raw_ << shift;
    *last = (raw_ + 1) << shift;
  }

  bool operator==(const HtmId& o) const { return raw_ == o.raw_; }
  bool operator!=(const HtmId& o) const { return raw_ != o.raw_; }
  bool operator<(const HtmId& o) const { return raw_ < o.raw_; }

 private:
  constexpr explicit HtmId(uint64_t raw) : raw_(raw) {}

  // Returns the level encoded in `raw`, or -1 if malformed.
  static constexpr int Level(uint64_t raw) {
    if (raw < 8) return -1;
    int width = 64 - std::countl_zero(raw);
    if ((width & 1) != 0) return -1;  // Valid widths are 4, 6, 8, ...
    int level = (width - 4) / 2;
    return level <= kMaxLevel ? level : -1;
  }

  uint64_t raw_ = 0;
};

}  // namespace sdss::htm

#endif  // SDSS_HTM_HTM_ID_H_
