#include "htm/range_set.h"

#include <algorithm>

namespace sdss::htm {

void RangeSet::Add(uint64_t first, uint64_t last) {
  if (first >= last) return;
  // Find the first range with .last >= first (candidate for merging).
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), first,
      [](const Range& r, uint64_t v) { return r.last < v; });
  if (it == ranges_.end() || it->first > last) {
    ranges_.insert(it, Range{first, last});
    return;
  }
  // Merge [first, last) with every overlapping / adjacent range.
  it->first = std::min(it->first, first);
  it->last = std::max(it->last, last);
  auto next = it + 1;
  while (next != ranges_.end() && next->first <= it->last) {
    it->last = std::max(it->last, next->last);
    next = ranges_.erase(next);
  }
}

void RangeSet::AddTrixel(HtmId id, int level) {
  uint64_t first, last;
  id.RangeAtLevel(level, &first, &last);
  Add(first, last);
}

bool RangeSet::Contains(uint64_t value) const {
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), value,
      [](uint64_t v, const Range& r) { return v < r.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return value >= it->first && value < it->last;
}

uint64_t RangeSet::CardinalityCount() const {
  uint64_t n = 0;
  for (const Range& r : ranges_) n += r.last - r.first;
  return n;
}

RangeSet RangeSet::UnionWith(const RangeSet& o) const {
  RangeSet out = *this;
  for (const Range& r : o.ranges_) out.Add(r.first, r.last);
  return out;
}

RangeSet RangeSet::IntersectWith(const RangeSet& o) const {
  RangeSet out;
  auto a = ranges_.begin();
  auto b = o.ranges_.begin();
  while (a != ranges_.end() && b != o.ranges_.end()) {
    uint64_t lo = std::max(a->first, b->first);
    uint64_t hi = std::min(a->last, b->last);
    if (lo < hi) out.Add(lo, hi);
    if (a->last < b->last) {
      ++a;
    } else {
      ++b;
    }
  }
  return out;
}

RangeSet RangeSet::DifferenceWith(const RangeSet& o) const {
  RangeSet out;
  auto b = o.ranges_.begin();
  for (const Range& r : ranges_) {
    uint64_t cur = r.first;
    while (cur < r.last) {
      while (b != o.ranges_.end() && b->last <= cur) ++b;
      if (b == o.ranges_.end() || b->first >= r.last) {
        out.Add(cur, r.last);
        break;
      }
      if (b->first > cur) out.Add(cur, b->first);
      cur = std::max(cur, b->last);
    }
    // Reset not needed: ranges_ and o.ranges_ are both sorted, and `cur`
    // only moves forward, so `b` never needs to rewind.
  }
  return out;
}

std::string RangeSet::ToString() const {
  std::string s = "{";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) s += ", ";
    s += "[" + std::to_string(ranges_[i].first) + "," +
         std::to_string(ranges_[i].last) + ")";
  }
  s += "}";
  return s;
}

}  // namespace sdss::htm
