// The top-level query interface of the Science Archive: SQL in, rows (or
// an aggregate) out, with plan explanation, density-map predictions, and
// ASAP streaming execution.

#ifndef SDSS_QUERY_QUERY_ENGINE_H_
#define SDSS_QUERY_QUERY_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/object_store.h"
#include "query/executor.h"
#include "query/qet.h"

namespace sdss::query {

/// The shape of a query's result, announced to a streaming consumer
/// before the first batch arrives -- everything a remote client needs
/// to interpret the row stream (the query server's HEADER frame).
struct ResultHeader {
  std::vector<std::string> columns;
  /// True when the stream carries exactly one row whose first value is
  /// the aggregate.
  bool is_aggregate = false;
};

/// A fully materialized query answer.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<ResultRow> rows;
  bool is_aggregate = false;
  double aggregate_value = 0.0;

  ExecStats exec;
  catalog::ObjectStore::Prediction prediction;
  bool used_tag_store = false;
  bool used_spatial_index = false;
};

/// Parses, plans, and executes queries against one ObjectStore.
class QueryEngine {
 public:
  struct Options {
    PlannerOptions planner;
    Executor::Options executor;
  };

  /// With `shared_pool` null the engine's executor owns its scan pool;
  /// otherwise scans run on the injected pool (see Executor).
  explicit QueryEngine(const catalog::ObjectStore* store,
                       Options options = {},
                       ThreadPool* shared_pool = nullptr);

  /// Runs `sql` to completion and materializes the result.
  Result<QueryResult> Execute(const std::string& sql);

  /// Streaming execution: `on_batch` sees batches in ASAP order and may
  /// return false to cancel. Returns execution stats.
  Result<ExecStats> ExecuteStreaming(
      const std::string& sql,
      const std::function<bool(const RowBatch&)>& on_batch);

  /// The plan explanation (and predictions) without executing.
  Result<std::string> Explain(const std::string& sql);

  const Options& options() const { return options_; }

 private:
  const catalog::ObjectStore* store_;
  Options options_;
  Executor executor_;
};

}  // namespace sdss::query

#endif  // SDSS_QUERY_QUERY_ENGINE_H_
