// Semantic result cache: epoch-versioned, cover-containment query reuse.
//
// The paper's archive workload is dominated by repeated and refined
// sweeps: a mining session re-runs the same cone search while tuning
// photometric cuts, and fleet fan-out pays the full scan each time. This
// cache closes that loop at the federation layer. Entries are keyed by
// (canonical plan fingerprint, store epoch):
//
//  - The fingerprint canonicalizes the plan tree, so queries that differ
//    only in commutative predicate ordering ("r < 22 AND g > 19" vs
//    "g > 19 AND r < 22"), operand order of symmetric comparisons, or
//    comparison direction ("r < 22" vs "22 > r") hash identically.
//  - The epoch is the fleet-wide mutation generation
//    (catalog::ObjectStore::epoch, summed by archive::ShardedStore::Epoch).
//    Any write anywhere bumps it, so a cached answer can never survive a
//    mutation; routing-only events (failover, replica promotion) leave it
//    unchanged, so cached answers survive them.
//
// Beyond exact replay, the cache answers by COVER CONTAINMENT: a query Q
// whose predicate implies a cached entry E's predicate is answered by
// filtering E's rows with Q's full predicate -- no fleet fan-out at all.
// The implication test is per-conjunct and conservative: every conjunct
// of E must be either canonically equal to a conjunct of Q, or a spatial
// atom whose region fully contains Q's plan region (checked exactly on
// the HTM grid: every leaf trixel Q's cover touches lies inside a FULL
// trixel of the atom's cover). Because rows carry their unit position
// (ResultRow::pos) and every projected/filter attribute verbatim from the
// scan, re-filtering reproduces the engine's row set bit-identically;
// ordered queries re-sort with RowBefore (the engine's one total order)
// and COUNT/MIN/MAX aggregates re-fold exactly. Order-sensitive floats
// (SUM/AVG) and unordered LIMITs fall through to a real run.
//
// Never cached: INTO and FROM mydb (personal stores version separately),
// SAMPLE (fresh Bernoulli draws each run), pair joins (rows do not carry
// positions), any query whose predicate divides (a divide-by-zero on a
// row outside a subset would be masked, and conjunct reordering is only
// semantics-preserving for error-free predicates), and LIMIT without
// ORDER BY (the kept subset is arrival-order nondeterministic).
//
// Eviction is byte-budgeted LRU with heat-weighted retention: each hit
// heats an entry; under pressure the coldest tail entry is evicted, but
// a still-warm one gets a single second chance (heat halved, recycled to
// the front) before it goes.

#ifndef SDSS_QUERY_RESULT_CACHE_H_
#define SDSS_QUERY_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/qet.h"

namespace sdss::query {

class ResultCache {
 public:
  struct Options {
    /// Total byte budget across all entries (row payload + key,
    /// approximate accounting).
    size_t max_bytes = 8u << 20;
    /// Largest single entry admitted. 0 = max_bytes / 4.
    size_t max_entry_bytes = 0;
  };

  struct Stats {
    uint64_t hits = 0;              ///< Exact fingerprint replays.
    uint64_t containment_hits = 0;  ///< Served by filtering a superset.
    uint64_t misses = 0;
    uint64_t installs = 0;
    uint64_t evictions = 0;            ///< Budget-pressure evictions.
    uint64_t epoch_invalidations = 0;  ///< Entries dropped as stale.
    uint64_t entries = 0;
    uint64_t bytes_used = 0;
  };

  /// A cache-served answer: the final output rows of the query (for an
  /// aggregate, its single folded row).
  struct Answer {
    std::vector<ResultRow> rows;
    /// True when served by containment filtering rather than verbatim
    /// replay.
    bool containment = false;
  };

  ResultCache() : ResultCache(Options()) {}
  explicit ResultCache(Options options);

  /// True when this query may consult / populate the cache at all (see
  /// the never-cached list above). `parsed` supplies the clauses the
  /// plan no longer shows (SAMPLE, INTO, JOIN); `plan` supplies the
  /// predicates actually planned.
  static bool Cacheable(const ParsedQuery& parsed, const Plan& plan);

  /// Canonical fingerprint of the plan tree. Stable across commutative
  /// predicate orderings and comparison-direction flips.
  static std::string Fingerprint(const Plan& plan);

  /// Approximate in-memory footprint of one cached row.
  static size_t ApproxRowBytes(const ResultRow& row);

  /// The resolved per-entry admission cap in bytes.
  size_t entry_byte_cap() const;

  /// Looks up an answer for (fingerprint, epoch): exact replay first,
  /// cover containment second. Returns false on miss. Mutates LRU/heat
  /// state and drops stale-epoch entries it encounters.
  bool TryAnswer(const std::string& fingerprint, const Plan& plan,
                 uint64_t epoch, Answer* out);

  /// Non-mutating probe: would TryAnswer succeed right now? Used by
  /// admission control to price a predicted hit at zero scan bytes.
  bool WouldAnswer(const std::string& fingerprint, const Plan& plan,
                   uint64_t epoch) const;

  /// Installs the complete result row set of a run under (fingerprint,
  /// epoch), replacing any same-fingerprint entry. Oversized entries are
  /// dropped; admission may evict colder entries.
  void Install(const std::string& fingerprint, const Plan& plan,
               uint64_t epoch, std::vector<ResultRow> rows);

  void Clear();
  Stats stats() const;
  const Options& options() const { return options_; }

 private:
  struct Entry {
    std::string fingerprint;
    uint64_t epoch = 0;
    size_t bytes = 0;
    uint32_t heat = 0;    ///< Hit count since install / last decay.
    bool chance = false;  ///< Second chance spent this pressure round.
    std::vector<ResultRow> rows;

    // Containment serving (single-scan entries only).
    bool containment_capable = false;
    TableRef table = TableRef::kPhoto;
    std::vector<std::string> columns;  ///< Row value names, in order.
    std::vector<Expr::Ptr> conjuncts;  ///< Flattened entry predicate.
    std::vector<std::string> conjunct_keys;  ///< Canonical per-conjunct.
  };
  using EntryList = std::list<Entry>;

  /// The containment-relevant shape of a query plan: its single scan
  /// leaf plus the ORDER/LIMIT/aggregate chain above it.
  struct Shape {
    const PlanNode* scan = nullptr;
    bool ordered = false;
    size_t order_col = 0;
    bool order_desc = false;
    int64_t limit = -1;
    AggFunc agg = AggFunc::kNone;
    std::string agg_attr;
    std::vector<std::string> needed;  ///< Attrs the entry must carry.
    std::vector<std::string> conjunct_keys;
  };

  /// Decomposes `plan` into a containment-servable shape; false when the
  /// plan cannot be answered from a superset entry (set ops, SUM/AVG,
  /// unordered LIMIT, ...).
  static bool AnalyzeShape(const Plan& plan, Shape* out);

  /// True when entry `e` provably contains every row of shape `q` and
  /// carries every attribute `q` needs.
  static bool EntryServes(const Entry& e, const Shape& q);

  /// Filters/projects/sorts/folds `e`'s rows into `q`'s answer.
  static bool Materialize(const Entry& e, const Shape& q,
                          std::vector<ResultRow>* out);

  void TouchLocked(EntryList::iterator it);
  void EraseLocked(EntryList::iterator it);
  void EvictForBudgetLocked();

  Options options_;
  mutable std::mutex mu_;
  size_t bytes_used_ = 0;
  Stats stats_;
  EntryList lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, EntryList::iterator> index_;
};

}  // namespace sdss::query

#endif  // SDSS_QUERY_RESULT_CACHE_H_
