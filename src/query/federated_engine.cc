#include "query/federated_engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/angle.h"
#include "htm/cover.h"

namespace sdss::query {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Strips an optional leading "EXPLAIN ANALYZE" (case-insensitive) so
/// callers can hand the whole wire statement through unchanged.
std::string StripExplainAnalyze(const std::string& sql) {
  size_t pos = sql.find_first_not_of(" \t\r\n");
  if (pos == std::string::npos) return sql;
  for (std::string_view word : {std::string_view("EXPLAIN"),
                                std::string_view("ANALYZE")}) {
    if (sql.size() - pos < word.size()) return sql;
    for (size_t k = 0; k < word.size(); ++k) {
      if (std::toupper(static_cast<unsigned char>(sql[pos + k])) !=
          word[k]) {
        return sql;
      }
    }
    pos += word.size();
    if (pos >= sql.size() ||
        !std::isspace(static_cast<unsigned char>(sql[pos]))) {
      return sql;
    }
    pos = sql.find_first_not_of(" \t\r\n", pos);
    if (pos == std::string::npos) return sql;
  }
  return sql.substr(pos);
}

/// ORDER/LIMIT wrappers at the top of a plan chain. The federated merge
/// must mirror them globally: per-shard sorts merge into one ordered
/// stream, per-shard limits are supersets of the global cap.
struct ChainInfo {
  bool ordered = false;
  size_t order_col = 0;
  bool order_desc = false;
  int64_t limit = -1;
};

ChainInfo AnalyzeChain(const PlanNode* root) {
  ChainInfo info;
  const PlanNode* n = root;
  if (n->type == PlanNodeType::kLimit) {
    info.limit = n->limit;
    n = n->children[0].get();
  }
  if (n->type == PlanNodeType::kSort) {
    info.ordered = true;
    info.order_col = n->sort_column;
    info.order_desc = n->sort_desc;
  }
  return info;
}

/// The pair-join leaf of a plan chain, or null. Join plans are a linear
/// agg/limit/sort chain over the kPairJoin leaf (the planner rejects
/// joins inside set operations).
const PlanNode* FindPairJoinNode(const PlanNode* root) {
  const PlanNode* n = root;
  while (n != nullptr && n->type != PlanNodeType::kPairJoin) {
    n = n->children.empty() ? nullptr : n->children[0].get();
  }
  return n;
}

/// True when any leaf of the tree is a node of type `type` (set-operation
/// trees have leaves on both sides).
bool AnyNodeOfType(const PlanNode* node, PlanNodeType type) {
  if (node == nullptr) return false;
  if (node->type == type) return true;
  for (const auto& c : node->children) {
    if (AnyNodeOfType(c.get(), type)) return true;
  }
  return false;
}

/// True when the tree reads the tag table somewhere.
bool AnyTagScan(const PlanNode* node) {
  if (node == nullptr) return false;
  if (node->type == PlanNodeType::kScan && node->table == TableRef::kTag) {
    return true;
  }
  for (const auto& c : node->children) {
    if (AnyTagScan(c.get())) return true;
  }
  return false;
}

/// Phase A of the federated neighbor join: each shard walks its
/// assigned containers and, for every phase-1 survivor whose separation
/// cap (htm::Cover at the container level) reaches a container another
/// shard serves, ships a copy of the object to that shard. Symmetric
/// shipping is what lets every shard emit exactly the pairs whose
/// lower-id member it owns: the partner of any in-radius pair is
/// guaranteed present, locally or as a ghost.
Result<std::vector<PairJoinGhosts>> HarvestJoinGhosts(
    const std::vector<Shard>& shards, const PlanNode* join,
    const std::atomic<bool>* cancel) {
  const size_t n = shards.size();
  std::vector<PairJoinGhosts> ghosts(n);
  if (n <= 1) return ghosts;

  // Container -> serving shard. A null assigned set means the shard
  // serves its whole store.
  std::unordered_map<uint64_t, size_t> owner;
  for (size_t i = 0; i < n; ++i) {
    if (shards[i].assigned == nullptr) {
      for (const auto& [raw, c] : shards[i].store->containers()) {
        owner.emplace(raw, i);
      }
    } else {
      for (uint64_t raw : *shards[i].assigned) owner.emplace(raw, i);
    }
  }

  // When the join is spatially pruned, only containers its region
  // cover touches can hold candidates -- skip the rest of the harvest.
  std::unordered_set<uint64_t> region_raws;
  if (join->has_region) {
    int level = shards[0].store->cluster_level();
    htm::ForEachRawInCover(
        htm::Cover(join->region, level), level,
        [&region_raws](uint64_t raw) { region_raws.insert(raw); });
  }

  double sep_deg = ArcsecToDeg(join->pair_max_sep_arcsec);
  std::vector<std::vector<std::vector<catalog::PhotoObj>>> staged(
      n, std::vector<std::vector<catalog::PhotoObj>>(n));
  std::vector<Status> errors(n);
  ThreadGroup threads;
  for (size_t i = 0; i < n; ++i) {
    threads.Spawn([&shards, &owner, &staged, &errors, &region_raws, join,
                   sep_deg, cancel, i] {
      const Shard& shard = shards[i];
      int level = shard.store->cluster_level();
      std::vector<size_t> dests;
      for (const auto& [raw, c] : shard.store->containers()) {
        if (shard.assigned != nullptr && shard.assigned->count(raw) == 0) {
          continue;
        }
        if (join->has_region && region_raws.count(raw) == 0) continue;
        for (const catalog::PhotoObj& o : c.rows()) {
          if (cancel != nullptr &&
              cancel->load(std::memory_order_relaxed)) {
            errors[i] = Status::Cancelled("query cancelled");
            return;
          }
          if (join->pair_select) {
            RowAccessor acc{[&o](const std::string& name) {
                              return catalog::GetAttribute(o, name);
                            },
                            o.pos};
            auto ok = join->pair_select->EvalBool(acc);
            if (!ok.ok()) {
              errors[i] = ok.status();
              return;
            }
            if (!*ok) continue;
          }
          // Which foreign shards serve a container within the cap?
          dests.clear();
          htm::ForEachRawInCover(
              htm::Cover(htm::Region::CircleAround(o.pos, sep_deg), level),
              level, [&](uint64_t raw2) {
                auto it = owner.find(raw2);
                if (it == owner.end() || it->second == i) return;
                if (std::find(dests.begin(), dests.end(), it->second) ==
                    dests.end()) {
                  dests.push_back(it->second);
                }
              });
          for (size_t d : dests) staged[i][d].push_back(o);
        }
      }
    });
  }
  threads.JoinAll();
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  for (size_t d = 0; d < n; ++d) {
    for (size_t i = 0; i < n; ++i) {
      ghosts[d].objects.insert(ghosts[d].objects.end(),
                               staged[i][d].begin(), staged[i][d].end());
    }
  }
  return ghosts;
}

/// A branch LIMIT inside a set query is a global cap on that branch's
/// contribution; per-shard set inputs would each apply it locally, so
/// such queries run branch-by-branch at the federation level instead.
bool AnyBranchLimit(const ParsedQuery& q) {
  if (!q.IsSetQuery()) return false;
  if (q.first.limit >= 0) return true;
  for (const auto& [op, select] : q.rest) {
    if (select.limit >= 0) return true;
  }
  return false;
}

/// Mixes an unordered pair of object ids into one hash (exact equality
/// still decides membership -- collisions cannot drop pairs).
struct PairKeyHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    uint64_t h = p.first * 0x9E3779B97F4A7C15ull;
    h ^= p.second + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Pull-side cursor over one shard's (sorted) batch stream.
class MergeCursor {
 public:
  explicit MergeCursor(std::shared_ptr<RowChannel> ch)
      : ch_(std::move(ch)) {}

  /// Current head row, or nullptr once the stream is exhausted.
  const ResultRow* Head() {
    if (done_) return nullptr;
    while (pos_ >= batch_.size()) {
      batch_.clear();
      pos_ = 0;
      if (!ch_->Pop(&batch_)) {
        done_ = true;
        return nullptr;
      }
    }
    return &batch_[pos_];
  }

  ResultRow Take() { return std::move(batch_[pos_++]); }

 private:
  std::shared_ptr<RowChannel> ch_;
  RowBatch batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

}  // namespace

struct FederatedQueryEngine::Prepared {
  ParsedQuery parsed;
  std::vector<Shard> shards;
  Plan plan;
  /// The plan reads a personal mydb store: run locally, not fanned out.
  bool mydb = false;
  /// The job's heat feedback hook (points into the caller's ExecContext,
  /// which outlives the run). Null when the job does not record heat.
  const AccessRecorder* access = nullptr;
  /// The run's span tree (from ExecContext::trace); null = tracing off.
  QueryTrace* trace = nullptr;
  double seconds_plan = 0.0;  ///< Parse + plan wall time (Prepare).
};

FederatedQueryEngine::FederatedQueryEngine(std::vector<Shard> shards,
                                           Options options)
    : options_(options),
      pool_(options.executor.scan_threads),
      shards_(std::move(shards)) {
  if (options_.result_cache_bytes > 0) {
    ResultCache::Options cache_options;
    cache_options.max_bytes = options_.result_cache_bytes;
    cache_ = std::make_unique<ResultCache>(cache_options);
  }
  if (options_.metrics != nullptr) {
    m_queries_ = options_.metrics->GetCounter("query_total");
    m_cache_hits_ = options_.metrics->GetCounter("query_cache_hits");
    m_cache_containment_ =
        options_.metrics->GetCounter("query_cache_containment");
    m_cache_misses_ = options_.metrics->GetCounter("query_cache_misses");
    m_exec_us_ = options_.metrics->GetHistogram("query_exec_us");
  }
}

uint64_t FederatedQueryEngine::CacheEpoch(
    const std::vector<Shard>& shards) const {
  if (options_.cache_epoch_source) return options_.cache_epoch_source();
  // Fallback: sum the distinct live stores' epochs. (The fleet owner
  // should inject ShardedStore::Epoch instead -- this sum changes when
  // routing drops a downed store from the live list, needlessly
  // invalidating the cache across failover.)
  uint64_t sum = 0;
  std::unordered_set<const catalog::ObjectStore*> seen;
  for (const Shard& s : shards) {
    if (seen.insert(s.store).second) sum += s.store->epoch();
  }
  return sum;
}

Result<ExecStats> FederatedQueryEngine::RunPreparedCached(
    Prepared& prep, const ExecContext& ctx,
    const std::function<bool(RowBatch&&)>& sink) {
  if (cache_ == nullptr || ctx.no_result_cache || ctx.into_sink ||
      prep.mydb || !ResultCache::Cacheable(prep.parsed, prep.plan)) {
    auto st = RunPrepared(prep, sink, ctx.cancel);
    if (st.ok()) st->seconds_plan = prep.seconds_plan;
    return st;
  }
  auto t0 = std::chrono::steady_clock::now();
  const int probe_span = TraceBegin(prep.trace, "cache_probe");
  const std::string fingerprint = ResultCache::Fingerprint(prep.plan);
  const uint64_t epoch = CacheEpoch(prep.shards);

  ResultCache::Answer answer;
  if (cache_->TryAnswer(fingerprint, prep.plan, epoch, &answer)) {
    const double probe_seconds = SecondsSince(t0);
    TraceNote(prep.trace, probe_span, "verdict",
              answer.containment ? "containment" : "hit");
    TraceEnd(prep.trace, probe_span);
    if (answer.containment) {
      if (m_cache_containment_ != nullptr) m_cache_containment_->Inc();
    } else {
      if (m_cache_hits_ != nullptr) m_cache_hits_->Inc();
    }
    ExecStats stats;
    stats.seconds_plan = prep.seconds_plan;
    stats.seconds_cache_probe = probe_seconds;
    stats.cache_hit = !answer.containment;
    stats.cache_containment = answer.containment;
    const size_t batch_size = options_.executor.batch_size;
    for (size_t i = 0; i < answer.rows.size(); i += batch_size) {
      const size_t end =
          std::min(i + batch_size, answer.rows.size());
      RowBatch batch(std::make_move_iterator(answer.rows.begin() + i),
                     std::make_move_iterator(answer.rows.begin() + end));
      if (i == 0) stats.seconds_to_first_row = SecondsSince(t0);
      stats.rows_emitted += batch.size();
      if (!sink(std::move(batch))) {
        stats.cancelled_early = true;
        break;
      }
    }
    stats.seconds_total = SecondsSince(t0);
    if (stats.rows_emitted == 0) {
      stats.seconds_to_first_row = stats.seconds_total;
    }
    return stats;
  }

  // Miss: run the fleet, teeing the output rows for installation. The
  // buffer is abandoned (and the run left uncached) the moment it
  // outgrows the per-entry budget.
  const double probe_seconds = SecondsSince(t0);
  TraceNote(prep.trace, probe_span, "verdict", "miss");
  TraceEnd(prep.trace, probe_span);
  if (m_cache_misses_ != nullptr) m_cache_misses_->Inc();
  std::vector<ResultRow> buffer;
  size_t buffer_bytes = 0;
  bool overflow = false;
  const size_t cap = cache_->entry_byte_cap();
  auto st = RunPrepared(
      prep,
      [&](RowBatch&& batch) {
        if (!overflow) {
          for (const ResultRow& r : batch) {
            buffer_bytes += ResultCache::ApproxRowBytes(r);
            if (buffer_bytes > cap) {
              overflow = true;
              buffer.clear();
              buffer.shrink_to_fit();
              break;
            }
            buffer.push_back(r);
          }
        }
        return sink(std::move(batch));
      },
      ctx.cancel);
  // Install only a clean, complete answer observed under an unchanged
  // epoch: a cancelled sink saw a prefix, and a mid-run write may have
  // leaked into the row set (the re-read guards that race).
  if (st.ok() && !st->cancelled_early && !overflow &&
      CacheEpoch(prep.shards) == epoch) {
    cache_->Install(fingerprint, prep.plan, epoch, std::move(buffer));
  }
  if (st.ok()) {
    st->seconds_plan = prep.seconds_plan;
    st->seconds_cache_probe = probe_seconds;
  }
  return st;
}

void FederatedQueryEngine::SetShards(std::vector<Shard> shards) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_ = std::move(shards);
}

size_t FederatedQueryEngine::num_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

std::vector<Shard> FederatedQueryEngine::SnapshotShards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_;
}

Result<FederatedQueryEngine::Prepared> FederatedQueryEngine::Prepare(
    const std::string& sql, const ExecContext& ctx) const {
  auto t0 = std::chrono::steady_clock::now();
  const int plan_span = TraceBegin(ctx.trace, "plan");
  Prepared prep;
  prep.trace = ctx.trace;
  auto parsed = Parse(sql);
  if (!parsed.ok()) {
    TraceEnd(ctx.trace, plan_span);
    return parsed.status();
  }
  prep.parsed = std::move(parsed).value();
  prep.shards = SnapshotShards();
  if (prep.shards.empty()) {
    TraceEnd(ctx.trace, plan_span);
    return Status::FailedPrecondition("federation has no live shards");
  }
  // One plan for the whole fleet: planner decisions (tag selection,
  // spatial extraction) are store-independent, so every shard executes
  // this same tree against its own containers. The job context may bind
  // a per-user mydb namespace on top of the engine's planner options.
  PlannerOptions planner = options_.planner;
  if (ctx.mydb) planner.mydb = ctx.mydb;
  if (ctx.access_recorder) prep.access = &ctx.access_recorder;
  auto plan = BuildPlan(prep.parsed, *prep.shards[0].store, planner);
  if (!plan.ok()) {
    TraceEnd(ctx.trace, plan_span);
    return plan.status();
  }
  prep.plan = std::move(plan).value();
  prep.mydb = AnyNodeOfType(prep.plan.root.get(), PlanNodeType::kMyDbScan);

  // A table no live shard can serve must be a clean refusal, not a
  // silently empty result: an explicit FROM tag against a fleet whose
  // stores were built without the tag partition scans nothing.
  if (!prep.mydb && AnyTagScan(prep.plan.root.get())) {
    bool tag_on_some_shard = false;
    for (const Shard& shard : prep.shards) {
      if (shard.store->options().build_tags) {
        tag_on_some_shard = true;
        break;
      }
    }
    if (!tag_on_some_shard) {
      TraceEnd(ctx.trace, plan_span);
      return Status::NotFound(
          "table 'tag' exists on no live shard (fleet stores hold no tag "
          "partition)");
    }
  }
  prep.seconds_plan = SecondsSince(t0);
  TraceNum(ctx.trace, plan_span, "shards",
           static_cast<double>(prep.shards.size()));
  if (prep.mydb) TraceNote(ctx.trace, plan_span, "store", "mydb");
  TraceEnd(ctx.trace, plan_span);
  return prep;
}

Result<ExecStats> FederatedQueryEngine::RunFederated(
    const std::vector<Shard>& shards, const PlanNode* root, bool ordered,
    size_t order_col, bool order_desc, int64_t global_limit,
    const std::function<bool(RowBatch&&)>& sink,
    const std::vector<PairJoinGhosts>* join_ghosts, bool dedupe_pairs,
    const std::atomic<bool>* cancel, const AccessRecorder* access,
    QueryTrace* trace) {
  auto t0 = std::chrono::steady_clock::now();
  const size_t n = shards.size();
  const int fan_span = TraceBegin(trace, "fan_out");
  TraceNum(trace, fan_span, "shards", static_cast<double>(n));

  // One channel per shard when the merge must preserve order; one shared
  // channel (ASAP arrival order) otherwise.
  std::vector<std::shared_ptr<RowChannel>> channels;
  if (ordered) {
    for (size_t i = 0; i < n; ++i) {
      channels.push_back(std::make_shared<RowChannel>());
    }
  } else {
    channels.push_back(std::make_shared<RowChannel>());
  }
  auto channel_for = [&](size_t i) {
    return ordered ? channels[i] : channels[0];
  };
  for (size_t i = 0; i < n; ++i) channel_for(i)->AddWriter();

  std::vector<Result<ExecStats>> shard_stats(n, Result<ExecStats>(
                                                    ExecStats{}));
  ThreadGroup threads;
  for (size_t i = 0; i < n; ++i) {
    Shard shard = shards[i];
    auto ch = channel_for(i);
    Result<ExecStats>* slot = &shard_stats[i];
    const PairJoinGhosts* ghosts =
        join_ghosts != nullptr ? &(*join_ghosts)[i] : nullptr;
    // Shard spans open here, on the launch thread, so their Begin order
    // (= span index order) is deterministic regardless of how the shard
    // threads interleave; each shard thread closes and annotates its own.
    const int sspan =
        TraceBegin(trace, "shard", fan_span, /*lane=*/1 + static_cast<int>(i));
    TraceNum(trace, sspan, "server", static_cast<double>(shard.server));
    threads.Spawn([this, root, shard, ch, slot, ghosts, cancel, access, trace,
                   sspan] {
      Executor executor(shard.store, options_.executor, &pool_);
      *slot = executor.RunTree(
          root, [&ch](RowBatch&& batch) { return ch->Push(std::move(batch)); },
          shard.assigned ? shard.assigned.get() : nullptr, ghosts, cancel,
          access);
      ch->CloseWriter();
      if (trace != nullptr && slot->ok()) {
        const ExecStats& s = **slot;
        trace->Num(sspan, "containers",
                   static_cast<double>(s.containers_scanned));
        trace->Num(sspan, "columnar",
                   static_cast<double>(s.containers_columnar));
        trace->Num(sspan, "bytes", static_cast<double>(s.bytes_touched));
        trace->Num(sspan, "bytes_shipped",
                   static_cast<double>(s.bytes_shipped));
        trace->Num(sspan, "rows", static_cast<double>(s.rows_emitted));
        trace->Num(sspan, "seconds", s.seconds_total);
        trace->Note(sspan, "kernel",
                    s.containers_columnar > 0
                        ? (s.containers_columnar == s.containers_scanned
                               ? "columnar"
                               : "mixed")
                        : "row");
      }
      TraceEnd(trace, sspan);
    });
  }
  const int merge_span = TraceBegin(trace, "merge", fan_span);

  ExecStats stats;
  int64_t remaining = global_limit < 0
                          ? std::numeric_limits<int64_t>::max()
                          : global_limit;
  bool first = true;
  bool sink_cancelled = false;
  double sink_seconds = 0.0;  ///< Wall time spent inside the row sink.

  // Drops pairs already delivered by another shard's stream. The
  // emission discipline makes fleet-wide duplicates impossible by
  // construction, so this is a cheap invariant backstop, keyed on the
  // unordered pair ids.
  std::unordered_set<std::pair<uint64_t, uint64_t>, PairKeyHash> seen_pairs;

  // Dedupes (join merges), trims to the global limit, stamps first-row
  // latency, forwards to the sink. Returns false when consumption must
  // stop.
  auto deliver = [&](RowBatch&& batch) -> bool {
    if (remaining <= 0) return false;
    if (dedupe_pairs) {
      RowBatch unique;
      unique.reserve(batch.size());
      for (ResultRow& r : batch) {
        auto key = std::minmax(r.obj_id, r.obj_id_b);
        if (seen_pairs.emplace(key.first, key.second).second) {
          unique.push_back(std::move(r));
        }
      }
      batch = std::move(unique);
    }
    if (batch.empty()) return true;
    if (static_cast<int64_t>(batch.size()) > remaining) {
      batch.resize(static_cast<size_t>(remaining));
    }
    remaining -= static_cast<int64_t>(batch.size());
    if (first) {
      stats.seconds_to_first_row = SecondsSince(t0);
      first = false;
    }
    stats.rows_emitted += batch.size();
    auto s0 = std::chrono::steady_clock::now();
    const bool keep_going = sink(std::move(batch));
    sink_seconds += SecondsSince(s0);
    if (!keep_going) {
      sink_cancelled = true;
      return false;
    }
    return remaining > 0;
  };

  if (ordered) {
    // K-way merge of the per-shard sorted streams, same comparator as
    // the executor's sort node (value, then obj_id tie-break).
    std::vector<MergeCursor> cursors;
    cursors.reserve(n);
    for (auto& ch : channels) cursors.emplace_back(ch);
    auto before = [order_col, order_desc](const ResultRow& a,
                                          const ResultRow& b) {
      return RowBefore(a, b, order_col, order_desc);
    };
    RowBatch out;
    const size_t batch_size = options_.executor.batch_size;
    bool stop = remaining <= 0;
    while (!stop) {
      MergeCursor* best = nullptr;
      const ResultRow* best_head = nullptr;
      for (auto& c : cursors) {
        const ResultRow* h = c.Head();
        if (h == nullptr) continue;
        if (best == nullptr || before(*h, *best_head)) {
          best = &c;
          best_head = h;
        }
      }
      if (best == nullptr) break;
      out.push_back(best->Take());
      if (out.size() >= batch_size ||
          static_cast<int64_t>(out.size()) >= remaining) {
        stop = !deliver(std::move(out));
        out = RowBatch();
      }
    }
    if (!stop && !out.empty()) deliver(std::move(out));
  } else {
    RowBatch batch;
    while (channels[0]->Pop(&batch)) {
      if (!deliver(std::move(batch))) break;
      batch = RowBatch();
    }
  }

  // Stop any still-producing shard (no-op on clean completion) and wait.
  for (auto& ch : channels) ch->Cancel();
  TraceNum(trace, merge_span, "sink_seconds", sink_seconds);
  TraceEnd(trace, merge_span);
  threads.JoinAll();

  stats.seconds_total = SecondsSince(t0);
  if (first) stats.seconds_to_first_row = stats.seconds_total;
  stats.cancelled_early = sink_cancelled;
  stats.seconds_fan_out = stats.seconds_total;
  stats.seconds_stream_out = sink_seconds;

  for (auto& r : shard_stats) {
    if (!r.ok()) return r.status();
    stats.containers_scanned += r->containers_scanned;
    stats.containers_columnar += r->containers_columnar;
    stats.objects_examined += r->objects_examined;
    stats.objects_matched += r->objects_matched;
    stats.bytes_touched += r->bytes_touched;
    stats.bytes_shipped += r->bytes_shipped;
  }
  TraceNum(trace, fan_span, "rows", static_cast<double>(stats.rows_emitted));
  TraceEnd(trace, fan_span);
  return stats;
}

Result<ExecStats> FederatedQueryEngine::RunJoinFederated(
    Prepared& prep, const PlanNode* join,
    const std::function<bool(RowBatch&&)>& sink,
    const std::atomic<bool>* cancel) {
  auto t0 = std::chrono::steady_clock::now();

  // An aggregate over the join folds at the federation level (the pair
  // streams are modest next to the scans that produce them); ORDER and
  // LIMIT mirror globally exactly as for plain selects.
  const PlanNode* root = prep.plan.root.get();
  const PlanNode* agg = nullptr;
  if (root->type == PlanNodeType::kAggregate) {
    agg = root;
    root = root->children[0].get();
  }
  ChainInfo chain = AnalyzeChain(root);

  // Phase A: boundary ghost exchange between the shards. Its time is
  // part of the join (it delays every row), so fold it into the stats.
  const int ghost_span = TraceBegin(prep.trace, "ghost_harvest");
  auto ghosts = HarvestJoinGhosts(prep.shards, join, cancel);
  if (!ghosts.ok()) {
    TraceEnd(prep.trace, ghost_span);
    return ghosts.status();
  }
  double harvest_seconds = SecondsSince(t0);
  if (prep.trace != nullptr && ghost_span != QueryTrace::kNoSpan) {
    uint64_t shipped = 0;
    for (const PairJoinGhosts& g : *ghosts) shipped += g.objects.size();
    prep.trace->Num(ghost_span, "ghost_objects",
                    static_cast<double>(shipped));
  }
  TraceEnd(prep.trace, ghost_span);

  // Phase B: fan out the join chain; every shard emits exactly the
  // pairs whose lower-id member it serves, merged and deduped here.
  if (agg == nullptr) {
    auto st = RunFederated(prep.shards, root, chain.ordered,
                           chain.order_col, chain.order_desc, chain.limit,
                           sink, &*ghosts, /*dedupe_pairs=*/true, cancel,
                           prep.access, prep.trace);
    if (!st.ok()) return st.status();
    ExecStats stats = *st;
    stats.seconds_total += harvest_seconds;
    stats.seconds_to_first_row += harvest_seconds;
    stats.seconds_ghost_harvest = harvest_seconds;
    return stats;
  }
  AggFold fold;
  auto st = RunFederated(prep.shards, root, chain.ordered, chain.order_col,
                         chain.order_desc, chain.limit,
                         [&fold](RowBatch&& batch) {
                           for (const ResultRow& r : batch) {
                             ++fold.count;
                             if (!r.values.empty()) fold.Add(r.values[0]);
                           }
                           return true;
                         },
                         &*ghosts, /*dedupe_pairs=*/true, cancel,
                         prep.access, prep.trace);
  if (!st.ok()) return st.status();
  ExecStats stats = *st;
  const int fold_span = TraceBegin(prep.trace, "fold");
  RowBatch batch;
  batch.push_back(FinishAggregate(agg->agg, false, fold));
  stats.rows_emitted = 1;
  stats.cancelled_early = !sink(std::move(batch));
  TraceEnd(prep.trace, fold_span);
  stats.seconds_total = SecondsSince(t0);
  stats.seconds_to_first_row = stats.seconds_total;
  stats.seconds_ghost_harvest = harvest_seconds;
  return stats;
}

Result<ExecStats> FederatedQueryEngine::RunSetWithBranchLimits(
    Prepared& prep, const std::function<bool(RowBatch&&)>& sink,
    const std::atomic<bool>* cancel) {
  auto t0 = std::chrono::steady_clock::now();
  ExecStats stats;

  // Every branch runs as its own federated simple select (globally
  // ordered and limited), then the set algebra folds at the federation
  // level with the executor's semantics: bags keyed by obj_id, left
  // stream order preserved.
  auto run_branch =
      [&](const SelectQuery& select,
          std::vector<ResultRow>* rows) -> Status {
    ParsedQuery sub;
    sub.first = select;
    auto plan = BuildPlan(sub, *prep.shards[0].store, options_.planner);
    if (!plan.ok()) return plan.status();
    // In the whole-query plan, set-op branches never carry an aggregate
    // node (BuildPlan wraps only the outer tree with query.first's
    // aggregate, applied below after the set algebra) -- strip the one
    // BuildPlan added for this branch-as-standalone-query.
    const PlanNode* branch_root = plan->root.get();
    if (branch_root->type == PlanNodeType::kAggregate) {
      branch_root = branch_root->children[0].get();
    }
    ChainInfo chain = AnalyzeChain(branch_root);
    auto st = RunFederated(prep.shards, branch_root, chain.ordered,
                           chain.order_col, chain.order_desc, chain.limit,
                           [rows](RowBatch&& batch) {
                             for (ResultRow& r : batch) {
                               rows->push_back(std::move(r));
                             }
                             return true;
                           },
                           nullptr, false, cancel, prep.access, prep.trace);
    if (!st.ok()) return st.status();
    stats.containers_scanned += st->containers_scanned;
    stats.containers_columnar += st->containers_columnar;
    stats.objects_examined += st->objects_examined;
    stats.objects_matched += st->objects_matched;
    stats.bytes_touched += st->bytes_touched;
    return Status::OK();
  };

  std::vector<ResultRow> acc;
  SDSS_RETURN_IF_ERROR(run_branch(prep.parsed.first, &acc));
  for (const auto& [op, select] : prep.parsed.rest) {
    std::vector<ResultRow> rhs;
    SDSS_RETURN_IF_ERROR(run_branch(select, &rhs));
    std::unordered_set<uint64_t> ids;
    switch (op) {
      case SetOp::kUnion:
        for (const ResultRow& r : acc) ids.insert(r.obj_id);
        for (ResultRow& r : rhs) {
          if (ids.insert(r.obj_id).second) acc.push_back(std::move(r));
        }
        break;
      case SetOp::kIntersect:
      case SetOp::kExcept: {
        for (const ResultRow& r : rhs) ids.insert(r.obj_id);
        bool keep_if_present = op == SetOp::kIntersect;
        std::vector<ResultRow> kept;
        for (ResultRow& r : acc) {
          if ((ids.count(r.obj_id) > 0) == keep_if_present) {
            kept.push_back(std::move(r));
          }
        }
        acc = std::move(kept);
        break;
      }
    }
  }

  if (prep.parsed.first.agg != AggFunc::kNone) {
    AggFold fold;
    for (const ResultRow& r : acc) {
      ++fold.count;
      if (!r.values.empty()) fold.Add(r.values[0]);
    }
    acc.clear();
    acc.push_back(FinishAggregate(prep.parsed.first.agg, false, fold));
  }

  const size_t batch_size = options_.executor.batch_size;
  for (size_t i = 0; i < acc.size(); i += batch_size) {
    size_t end = std::min(i + batch_size, acc.size());
    RowBatch batch(std::make_move_iterator(acc.begin() + i),
                   std::make_move_iterator(acc.begin() + end));
    stats.rows_emitted += batch.size();
    if (!sink(std::move(batch))) {
      stats.cancelled_early = true;
      break;
    }
  }
  stats.seconds_total = SecondsSince(t0);
  stats.seconds_to_first_row = stats.seconds_total;
  return stats;
}

Result<ExecStats> FederatedQueryEngine::RunMyDbLocal(
    Prepared& prep, const std::function<bool(RowBatch&&)>& sink,
    const std::atomic<bool>* cancel) {
  // A personal store is never sharded: the whole tree (including set
  // operations, branch limits, and aggregates) runs on one local
  // executor with single-store semantics, sharing the fleet's scan pool.
  const int span = TraceBegin(prep.trace, "local_scan");
  Executor executor(prep.shards[0].store, options_.executor, &pool_);
  auto st = executor.RunTree(prep.plan.root.get(), sink, nullptr, nullptr,
                             cancel);
  if (st.ok()) {
    TraceNum(prep.trace, span, "rows", static_cast<double>(st->rows_emitted));
    TraceNum(prep.trace, span, "bytes",
             static_cast<double>(st->bytes_touched));
  }
  TraceEnd(prep.trace, span);
  return st;
}

Result<ExecStats> FederatedQueryEngine::RunPrepared(
    Prepared& prep, const std::function<bool(RowBatch&&)>& sink,
    const std::atomic<bool>* cancel) {
  if (prep.mydb) {
    return RunMyDbLocal(prep, sink, cancel);
  }
  if (const PlanNode* join = FindPairJoinNode(prep.plan.root.get())) {
    return RunJoinFederated(prep, join, sink, cancel);
  }
  if (AnyBranchLimit(prep.parsed)) {
    return RunSetWithBranchLimits(prep, sink, cancel);
  }

  if (prep.plan.is_aggregate) {
    auto t0 = std::chrono::steady_clock::now();
    PlanNode* agg = prep.plan.root.get();
    const PlanNode* child = agg->children[0].get();
    ChainInfo chain = AnalyzeChain(child);

    AggFold fold;
    ExecStats stats;

    if (chain.limit >= 0) {
      // A LIMIT below the fold caps the global row set, so per-shard
      // partials would each apply the cap: stream the globally capped
      // rows up and fold at the federation level instead.
      auto st = RunFederated(prep.shards, child, chain.ordered,
                             chain.order_col, chain.order_desc, chain.limit,
                             [&fold](RowBatch&& batch) {
                               for (const ResultRow& r : batch) {
                                 ++fold.count;
                                 if (!r.values.empty()) {
                                   fold.Add(r.values[0]);
                                 }
                               }
                               return true;
                             },
                             nullptr, false, cancel, prep.access, prep.trace);
      if (!st.ok()) return st.status();
      stats = *st;
    } else {
      // Decomposable fold: every shard runs the aggregate in partial
      // mode and ships {count, sum, min, max}; the federation combines.
      agg->agg_partial = true;
      auto st = RunFederated(prep.shards, agg, false, 0, false, -1,
                             [&fold](RowBatch&& batch) {
                               for (const ResultRow& r : batch) {
                                 if (r.values.size() != 4) continue;
                                 AggFold part;
                                 part.count =
                                     static_cast<uint64_t>(r.values[0]);
                                 part.sum = r.values[1];
                                 part.min_v = r.values[2];
                                 part.max_v = r.values[3];
                                 fold.Merge(part);
                               }
                               return true;
                             },
                             nullptr, false, cancel, prep.access, prep.trace);
      agg->agg_partial = false;
      if (!st.ok()) return st.status();
      stats = *st;
    }

    const int fold_span = TraceBegin(prep.trace, "fold");
    RowBatch batch;
    batch.push_back(FinishAggregate(agg->agg, false, fold));
    stats.rows_emitted = 1;
    stats.cancelled_early = !sink(std::move(batch));
    TraceEnd(prep.trace, fold_span);
    stats.seconds_total = SecondsSince(t0);
    stats.seconds_to_first_row = stats.seconds_total;
    return stats;
  }

  ChainInfo chain = AnalyzeChain(prep.plan.root.get());
  return RunFederated(prep.shards, prep.plan.root.get(), chain.ordered,
                      chain.order_col, chain.order_desc, chain.limit, sink,
                      nullptr, false, cancel, prep.access, prep.trace);
}

Result<QueryResult> FederatedQueryEngine::Execute(const std::string& sql,
                                                  const ExecContext& ctx) {
  auto prep = Prepare(sql, ctx);
  if (!prep.ok()) return prep.status();
  if (!prep->parsed.first.into_mydb.empty() && !ctx.into_sink) {
    return Status::InvalidArgument(
        "INTO mydb." + prep->parsed.first.into_mydb +
        " must run through the batch workbench; the engine alone would "
        "discard the materialization");
  }

  QueryResult result;
  result.columns = prep->plan.columns;
  result.is_aggregate = prep->plan.is_aggregate;
  result.used_tag_store = prep->plan.used_tag_store;
  result.used_spatial_index = prep->plan.used_spatial_index;
  if (prep->mydb) {
    // Personal store: the plan-level density-map estimate IS the total.
    result.prediction = prep->plan.prediction;
  } else {
    // Fleet-wide prediction: the per-shard density-map slices summed.
    for (const ShardPrediction& p :
         PredictShards(prep->shards, prep->plan)) {
      result.prediction.expected_objects += p.expected_objects;
      result.prediction.min_objects += p.min_objects;
      result.prediction.max_objects += p.max_objects;
      result.prediction.bytes_to_scan += p.bytes_to_scan;
    }
  }

  auto stats = RunPreparedCached(*prep, ctx,
                                 [&result](RowBatch&& batch) {
                                   result.rows.insert(
                                       result.rows.end(),
                                       std::make_move_iterator(batch.begin()),
                                       std::make_move_iterator(batch.end()));
                                   return true;
                                 });
  if (!stats.ok()) return stats.status();
  result.exec = *stats;
  if (m_queries_ != nullptr) m_queries_->Inc();
  if (m_exec_us_ != nullptr) {
    m_exec_us_->Record(
        static_cast<uint64_t>(result.exec.seconds_total * 1e6));
  }
  if (result.is_aggregate && !result.rows.empty() &&
      !result.rows[0].values.empty()) {
    result.aggregate_value = result.rows[0].values[0];
  }
  return result;
}

Result<ExecStats> FederatedQueryEngine::ExecuteStreaming(
    const std::string& sql,
    const std::function<bool(const RowBatch&)>& on_batch,
    const ExecContext& ctx) {
  return ExecuteStreaming(sql, nullptr, on_batch, ctx);
}

Result<ExecStats> FederatedQueryEngine::ExecuteStreaming(
    const std::string& sql,
    const std::function<void(const ResultHeader&)>& on_header,
    const std::function<bool(const RowBatch&)>& on_batch,
    const ExecContext& ctx) {
  auto prep = Prepare(sql, ctx);
  if (!prep.ok()) return prep.status();
  if (!prep->parsed.first.into_mydb.empty() && !ctx.into_sink) {
    return Status::InvalidArgument(
        "INTO mydb." + prep->parsed.first.into_mydb +
        " must run through the batch workbench; the engine alone would "
        "discard the materialization");
  }
  if (on_header) {
    ResultHeader header;
    header.columns = prep->plan.columns;
    header.is_aggregate = prep->plan.is_aggregate;
    on_header(header);
  }
  auto st = RunPreparedCached(
      *prep, ctx,
      [&on_batch](RowBatch&& batch) { return on_batch(batch); });
  if (st.ok()) {
    if (m_queries_ != nullptr) m_queries_->Inc();
    if (m_exec_us_ != nullptr) {
      m_exec_us_->Record(static_cast<uint64_t>(st->seconds_total * 1e6));
    }
  }
  return st;
}

Result<CostEstimate> FederatedQueryEngine::EstimateCost(
    const std::string& sql, const ExecContext& ctx) {
  auto prep = Prepare(sql, ctx);
  if (!prep.ok()) return prep.status();
  CostEstimate est;
  est.into_mydb = prep->parsed.first.into_mydb;
  if (prep->mydb) {
    est.personal_store = true;
    est.bytes_to_scan = prep->plan.prediction.bytes_to_scan;
    est.expected_objects = prep->plan.prediction.expected_objects;
    return est;
  }
  for (const ShardPrediction& p : PredictShards(prep->shards, prep->plan)) {
    est.bytes_to_scan += p.bytes_to_scan;
    est.bytes_shipped += p.bytes_shipped;
    est.expected_objects += p.expected_objects;
  }
  // Admission prices a predicted cache hit at zero scan bytes (QUICK
  // lane): the probe is non-mutating, so estimating never perturbs
  // LRU/heat state.
  if (cache_ != nullptr && !ctx.no_result_cache && !ctx.into_sink &&
      est.into_mydb.empty() &&
      ResultCache::Cacheable(prep->parsed, prep->plan) &&
      cache_->WouldAnswer(ResultCache::Fingerprint(prep->plan), prep->plan,
                          CacheEpoch(prep->shards))) {
    est.predicted_cache_hit = true;
  }
  return est;
}

Result<std::string> FederatedQueryEngine::Explain(const std::string& sql,
                                                  const ExecContext& ctx) {
  auto prep = Prepare(sql, ctx);
  if (!prep.ok()) return prep.status();

  std::string out = prep->plan.Explain();
  char buf[192];
  if (prep->mydb) {
    std::snprintf(buf, sizeof(buf),
                  "personal store: mydb (no fleet fan-out)\n"
                  "prediction: %.0f objects expected, %llu bytes to scan\n",
                  prep->plan.prediction.expected_objects,
                  static_cast<unsigned long long>(
                      prep->plan.prediction.bytes_to_scan));
    out += buf;
    return out;
  }
  auto preds = PredictShards(prep->shards, prep->plan);
  std::snprintf(buf, sizeof(buf), "federation: %zu live shards\n",
                prep->shards.size());
  out += buf;
  catalog::ObjectStore::Prediction total;
  uint64_t total_shipped = 0;
  for (const ShardPrediction& p : preds) {
    std::snprintf(buf, sizeof(buf),
                  "  shard %zu: %llu containers, %llu bytes, %.0f objects "
                  "expected [%llu, %llu]\n",
                  p.server, static_cast<unsigned long long>(p.containers),
                  static_cast<unsigned long long>(p.bytes_to_scan),
                  p.expected_objects,
                  static_cast<unsigned long long>(p.min_objects),
                  static_cast<unsigned long long>(p.max_objects));
    out += buf;
    if (p.bytes_shipped > 0) {
      std::snprintf(buf, sizeof(buf),
                    "    ghost exchange: %llu bytes shipped (est)\n",
                    static_cast<unsigned long long>(p.bytes_shipped));
      out += buf;
    }
    total.expected_objects += p.expected_objects;
    total.min_objects += p.min_objects;
    total.max_objects += p.max_objects;
    total.bytes_to_scan += p.bytes_to_scan;
    total_shipped += p.bytes_shipped;
  }
  std::snprintf(buf, sizeof(buf),
                "prediction: %.0f objects expected [%llu, %llu], %llu bytes "
                "to scan\n",
                total.expected_objects,
                static_cast<unsigned long long>(total.min_objects),
                static_cast<unsigned long long>(total.max_objects),
                static_cast<unsigned long long>(total.bytes_to_scan));
  out += buf;
  if (total_shipped > 0) {
    std::snprintf(buf, sizeof(buf),
                  "network: %llu bytes shipped between shards (est)\n",
                  static_cast<unsigned long long>(total_shipped));
    out += buf;
  }
  return out;
}

Result<FederatedQueryEngine::ExplainAnalysis>
FederatedQueryEngine::ExplainAnalyze(const std::string& sql,
                                     const ExecContext& ctx) {
  // The analysis always runs on its own trace: a caller-provided one
  // could carry shard spans from an earlier run and corrupt the ledger.
  // The capture comes back as ExplainAnalysis::trace_json instead.
  QueryTrace trace;
  ExecContext run_ctx = ctx;
  run_ctx.trace = &trace;
  // Bypass the result cache both ways: EXPLAIN ANALYZE exists to
  // measure the fleet scan the density map predicted, and its drained
  // rows must not displace real cached answers.
  run_ctx.no_result_cache = true;

  const std::string stmt = StripExplainAnalyze(sql);
  auto prep = Prepare(stmt, run_ctx);
  if (!prep.ok()) return prep.status();
  if (!prep->parsed.first.into_mydb.empty()) {
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE does not run INTO statements (the analysis "
        "drains rows without materializing the target)");
  }
  std::vector<ShardPrediction> preds;
  if (!prep->mydb) preds = PredictShards(prep->shards, prep->plan);

  ExplainAnalysis out;
  auto stats =
      RunPreparedCached(*prep, run_ctx, [](RowBatch&&) { return true; });
  if (!stats.ok()) return stats.status();
  out.exec = *stats;

  // Stitch prediction against measurement by server id. Branch-limited
  // set queries fan out once per branch, so a server may own several
  // shard spans: actuals sum, wall time takes the longest leg.
  const std::vector<TraceSpan> shard_spans = trace.Find("shard");
  for (const ShardPrediction& p : preds) {
    ShardAnalysis row;
    row.server = p.server;
    row.containers_predicted = p.containers;
    row.predicted_bytes = p.bytes_to_scan;
    for (const TraceSpan& s : shard_spans) {
      if (s.Num("server", -1.0) != static_cast<double>(p.server)) continue;
      row.containers_scanned +=
          static_cast<uint64_t>(s.Num("containers"));
      row.containers_columnar += static_cast<uint64_t>(s.Num("columnar"));
      row.actual_bytes += static_cast<uint64_t>(s.Num("bytes"));
      row.rows += static_cast<uint64_t>(s.Num("rows"));
      row.seconds = std::max(row.seconds, s.Num("seconds"));
    }
    out.shards.push_back(row);
  }

  std::string report = prep->plan.Explain();
  char buf[224];
  if (prep->mydb) {
    report += "personal store: mydb (no fleet fan-out)\n";
  } else {
    std::snprintf(buf, sizeof(buf),
                  "federation: %zu live shards (analyzed run, result "
                  "cache bypassed)\n",
                  prep->shards.size());
    report += buf;
  }
  uint64_t predicted_total = 0;
  uint64_t actual_total = 0;
  for (const ShardAnalysis& r : out.shards) {
    std::snprintf(
        buf, sizeof(buf),
        "  shard %zu: predicted %llu bytes / %llu containers; actual "
        "%llu bytes / %llu containers (%llu columnar), %llu rows, %.6f s\n",
        r.server, static_cast<unsigned long long>(r.predicted_bytes),
        static_cast<unsigned long long>(r.containers_predicted),
        static_cast<unsigned long long>(r.actual_bytes),
        static_cast<unsigned long long>(r.containers_scanned),
        static_cast<unsigned long long>(r.containers_columnar),
        static_cast<unsigned long long>(r.rows), r.seconds);
    report += buf;
    predicted_total += r.predicted_bytes;
    actual_total += r.actual_bytes;
  }
  if (!out.shards.empty()) {
    const double err =
        predicted_total == 0
            ? 0.0
            : 100.0 *
                  (static_cast<double>(actual_total) -
                   static_cast<double>(predicted_total)) /
                  static_cast<double>(predicted_total);
    std::snprintf(buf, sizeof(buf),
                  "bytes: predicted %llu, actual %llu (%+.1f%%)\n",
                  static_cast<unsigned long long>(predicted_total),
                  static_cast<unsigned long long>(actual_total), err);
    report += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "stages: plan %.6f s, cache probe %.6f s, ghost harvest "
                "%.6f s, fan-out %.6f s, stream %.6f s\n",
                out.exec.seconds_plan, out.exec.seconds_cache_probe,
                out.exec.seconds_ghost_harvest, out.exec.seconds_fan_out,
                out.exec.seconds_stream_out);
  report += buf;
  std::snprintf(buf, sizeof(buf),
                "actual: %llu rows in %.6f s (first row %.6f s)\n",
                static_cast<unsigned long long>(out.exec.rows_emitted),
                out.exec.seconds_total, out.exec.seconds_to_first_row);
  report += buf;
  out.report = std::move(report);
  out.trace_json = trace.ToChromeJson();
  return out;
}

std::vector<ShardPrediction> PredictShards(const std::vector<Shard>& shards,
                                           const Plan& plan) {
  // The leftmost leaf shapes the scan: a (possibly region-pruned) kScan,
  // or the kPairJoin leaf -- a full pass over the assigned containers
  // plus boundary ghost traffic.
  const PlanNode* leaf = plan.root.get();
  while (leaf != nullptr && !leaf->children.empty() &&
         leaf->type != PlanNodeType::kScan &&
         leaf->type != PlanNodeType::kPairJoin) {
    leaf = leaf->children[0].get();
  }
  const PlanNode* join =
      leaf != nullptr && leaf->type == PlanNodeType::kPairJoin ? leaf
                                                               : nullptr;

  std::vector<ShardPrediction> out;
  // A mydb plan reads a personal store, not the fleet: no shard slices.
  if (leaf != nullptr && leaf->type == PlanNodeType::kMyDbScan) return out;
  out.reserve(shards.size());
  for (const Shard& shard : shards) {
    ShardPrediction p;
    p.server = shard.server;
    const auto& containers = shard.store->containers();
    auto assigned = [&shard](uint64_t raw) {
      return shard.assigned == nullptr || shard.assigned->count(raw) > 0;
    };
    if (leaf != nullptr && leaf->has_region) {
      int level = shard.store->cluster_level();
      htm::CoverResult cover = htm::Cover(leaf->region, level);
      auto add = [&](htm::HtmId id, bool full) {
        uint64_t first, last;
        id.RangeAtLevel(level, &first, &last);
        for (auto it = containers.lower_bound(first);
             it != containers.end() && it->first < last; ++it) {
          if (!assigned(it->first)) continue;
          ++p.containers;
          p.bytes_to_scan += it->second.FullBytes();
          uint64_t objs = it->second.size();
          p.max_objects += objs;
          if (full) {
            p.min_objects += objs;
            p.expected_objects += static_cast<double>(objs);
          } else {
            p.expected_objects += 0.5 * static_cast<double>(objs);
          }
        }
      };
      for (htm::HtmId id : cover.full) add(id, true);
      for (htm::HtmId id : cover.partial) add(id, false);
    } else {
      for (const auto& [raw, c] : containers) {
        if (!assigned(raw)) continue;
        ++p.containers;
        p.bytes_to_scan += c.FullBytes();
        uint64_t objs = c.size();
        p.max_objects += objs;
        p.expected_objects += static_cast<double>(objs);
      }
    }
    if (join != nullptr && shards.size() > 1) {
      // Boundary-band estimate from the density map alone: the share of
      // a container's objects within the join radius of its edge scales
      // like 3 * sep / side for a trixel ~90/2^level degrees across.
      double side_deg =
          90.0 / static_cast<double>(1u << shard.store->cluster_level());
      double frac = std::min(
          1.0, 3.0 * ArcsecToDeg(join->pair_max_sep_arcsec) / side_deg);
      p.bytes_shipped =
          static_cast<uint64_t>(frac * static_cast<double>(p.bytes_to_scan));
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace sdss::query
