// The multi-threaded ASAP-push executor for Query Execution Trees.
//
// Every node runs on its own thread and pushes row batches to its parent
// through a bounded RowChannel as soon as they are produced, so the
// consumer "starts seeing results almost immediately". Blocking nodes
// (sort, aggregate, and the build side of intersect/difference) drain
// before emitting, exactly as the paper specifies. Scan leaves fan out
// across containers on a shared thread pool.

#ifndef SDSS_QUERY_EXECUTOR_H_
#define SDSS_QUERY_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_set>

#include "catalog/object_store.h"
#include "core/thread_pool.h"
#include "query/qet.h"

namespace sdss::query {

/// Execution metrics, including the streaming latency the C8 benchmark
/// reports (time to first row vs time to completion).
struct ExecStats {
  uint64_t rows_emitted = 0;
  double seconds_to_first_row = 0.0;
  double seconds_total = 0.0;

  // Scan-side counters (summed over all scan leaves).
  uint64_t containers_scanned = 0;
  /// How many scanned containers ran the columnar kernel (0 when the
  /// store has no mapped containers or the kernel is off / fell back).
  uint64_t containers_columnar = 0;
  uint64_t objects_examined = 0;
  uint64_t objects_matched = 0;
  uint64_t bytes_touched = 0;
  /// Ghost-exchange traffic: bytes of boundary objects shipped to this
  /// executor's pair join from other shards (0 off the federated path).
  /// The network-cost side of the ledger, vs bytes_touched's scan side.
  uint64_t bytes_shipped = 0;
  bool cancelled_early = false;  ///< Sink stopped consumption (LIMIT etc).

  // Result-cache verdict for the query these stats describe (set by the
  // federated engine, not the executor). At most one is true.
  bool cache_hit = false;          ///< Answered verbatim from the cache.
  bool cache_containment = false;  ///< Answered by filtering a superset
                                   ///< entry's rows (cover containment).

  // Per-stage wall-clock breakdown (seconds), filled by the federated
  // engine and surfaced in the wire protocol's DONE frame. Stages that
  // did not run (no cache configured, no join, personal store) stay 0.
  double seconds_plan = 0.0;           ///< Parse + plan (Prepare).
  double seconds_cache_probe = 0.0;    ///< Result-cache consult.
  double seconds_ghost_harvest = 0.0;  ///< Join boundary-ghost exchange.
  double seconds_fan_out = 0.0;        ///< Shard fan-out + merge, wall.
  double seconds_stream_out = 0.0;     ///< Time inside the row sink.
};

/// Decomposed aggregate state: the executor's scan-side fold, the
/// partial rows federated shard plans emit, and the federation-level
/// combine all traffic in this one struct so the semantics (COUNT/SUM
/// add, MIN/MAX fold, AVG = sum/count, empty input finalizes to 0)
/// cannot diverge between layers.
struct AggFold {
  uint64_t count = 0;
  double sum = 0.0;
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    sum += v;
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  void Merge(const AggFold& o) {
    count += o.count;
    sum += o.sum;
    min_v = std::min(min_v, o.min_v);
    max_v = std::max(max_v, o.max_v);
  }
};

/// Builds an aggregate's output row from folded state: the decomposed
/// {count, sum, min, max} partial when `partial`, the final value
/// otherwise.
ResultRow FinishAggregate(AggFunc agg, bool partial, const AggFold& fold);

/// Observes every archive container a scan actually reads (called once
/// per container per scan, from pool threads -- implementations must be
/// thread-safe). The workbench binds this to
/// archive::ShardedStore::RecordAccess so mining jobs feed the
/// replica-promotion heat loop; personal (mydb) stores never report.
using AccessRecorder = std::function<void(uint64_t container)>;

/// Boundary objects another shard shipped to this executor's pair join:
/// already phase-1 filtered, added to the hash as foreign ghosts (they
/// complete cross-shard pairs but never initiate emission). Owned by the
/// caller; must outlive the RunTree call.
struct PairJoinGhosts {
  std::vector<catalog::PhotoObj> objects;
};

/// Executes plans against one store.
///
/// The scan pool is either owned (default) or injected: nested engines
/// (the federated fan-out runs one Executor per shard) share one pool so
/// N shards do not oversubscribe the machine with N * scan_threads
/// workers.
class Executor {
 public:
  struct Options {
    size_t scan_threads = 4;   ///< Pool width for container fan-out.
    size_t batch_size = 512;   ///< Rows per pushed batch.
    /// Run eligible scan leaves as compiled column loops over
    /// containers that carry column views (mapped snapshots). Answers
    /// are bit-identical to the row path; this only changes speed.
    bool columnar_kernel = true;
  };

  explicit Executor(const catalog::ObjectStore* store)
      : Executor(store, Options()) {}
  /// With `shared_pool` null the executor owns a pool of `scan_threads`
  /// workers; otherwise it scans on the injected pool and owns nothing.
  Executor(const catalog::ObjectStore* store, Options options,
           ThreadPool* shared_pool = nullptr);

  /// Runs `plan`, invoking `on_batch` for every batch that reaches the
  /// root (in ASAP order). The sink may return false to cancel the query
  /// (remaining upstream work is aborted). Returns execution stats, or
  /// the first error raised by any node.
  Result<ExecStats> Run(const Plan& plan,
                        const std::function<bool(const RowBatch&)>& on_batch);

  /// Runs a plan subtree. The sink receives each batch by rvalue and may
  /// steal it. `container_filter`, when non-null, restricts every scan
  /// leaf to containers whose id is in the set -- the federated engine's
  /// shard assignment (a shard holds replica containers it is not
  /// currently serving). `join_ghosts`, when non-null, feeds the tree's
  /// pair-join leaf the boundary objects neighboring shards shipped
  /// here. `cancel`, when non-null, is a cooperative cancel flag: the
  /// scan and join loops poll it per object/pair, and a raised flag
  /// aborts the tree with a Cancelled status (the batch-workbench job
  /// cancellation path). `access_recorder`, when non-null, sees the id
  /// of every non-personal container the tree scans.
  Result<ExecStats> RunTree(
      const PlanNode* root, const std::function<bool(RowBatch&&)>& on_batch,
      const std::unordered_set<uint64_t>* container_filter = nullptr,
      const PairJoinGhosts* join_ghosts = nullptr,
      const std::atomic<bool>* cancel = nullptr,
      const AccessRecorder* access_recorder = nullptr);

  ThreadPool* pool() { return pool_; }

 private:
  const catalog::ObjectStore* store_;
  Options options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
};

}  // namespace sdss::query

#endif  // SDSS_QUERY_EXECUTOR_H_
