// The multi-threaded ASAP-push executor for Query Execution Trees.
//
// Every node runs on its own thread and pushes row batches to its parent
// through a bounded RowChannel as soon as they are produced, so the
// consumer "starts seeing results almost immediately". Blocking nodes
// (sort, aggregate, and the build side of intersect/difference) drain
// before emitting, exactly as the paper specifies. Scan leaves fan out
// across containers on a shared thread pool.

#ifndef SDSS_QUERY_EXECUTOR_H_
#define SDSS_QUERY_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>

#include "catalog/object_store.h"
#include "core/thread_pool.h"
#include "query/qet.h"

namespace sdss::query {

/// Execution metrics, including the streaming latency the C8 benchmark
/// reports (time to first row vs time to completion).
struct ExecStats {
  uint64_t rows_emitted = 0;
  double seconds_to_first_row = 0.0;
  double seconds_total = 0.0;

  // Scan-side counters (summed over all scan leaves).
  uint64_t containers_scanned = 0;
  uint64_t objects_examined = 0;
  uint64_t objects_matched = 0;
  uint64_t bytes_touched = 0;
  bool cancelled_early = false;  ///< Sink stopped consumption (LIMIT etc).
};

/// Executes plans against one store.
class Executor {
 public:
  struct Options {
    size_t scan_threads = 4;   ///< Pool width for container fan-out.
    size_t batch_size = 512;   ///< Rows per pushed batch.
  };

  explicit Executor(const catalog::ObjectStore* store)
      : Executor(store, Options()) {}
  Executor(const catalog::ObjectStore* store, Options options);

  /// Runs `plan`, invoking `on_batch` for every batch that reaches the
  /// root (in ASAP order). The sink may return false to cancel the query
  /// (remaining upstream work is aborted). Returns execution stats, or
  /// the first error raised by any node.
  Result<ExecStats> Run(const Plan& plan,
                        const std::function<bool(const RowBatch&)>& on_batch);

 private:
  const catalog::ObjectStore* store_;
  Options options_;
  ThreadPool pool_;
};

}  // namespace sdss::query

#endif  // SDSS_QUERY_EXECUTOR_H_
