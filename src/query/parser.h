// The archive query language: a small SQL dialect with first-class
// spatial predicates, parsed into select + set-operation trees ("Each
// query received from the User Interface is parsed into a Query
// Execution Tree").
//
// Grammar (case-insensitive keywords):
//
//   query       := select ( (UNION | INTERSECT | EXCEPT) select )*
//   select      := SELECT proj [INTO mydb_ref] FROM table [AS ident]
//                  [join] [WHERE expr]
//                  [ORDER BY ident [ASC|DESC]] [LIMIT int] [SAMPLE frac]
//   join        := JOIN table AS ident WITHIN number (ARCSEC|ARCMIN|DEG)
//   proj        := '*' | agg '(' (ident | '*') ')' | ident (',' ident)*
//   agg         := COUNT | MIN | MAX | AVG | SUM
//   table       := PHOTO | PHOTOOBJ | TAG | mydb_ref
//   mydb_ref    := MYDB '.' ident
//
// MyDB (the personal result store of the batch workbench):
//   SELECT * INTO mydb.<name> FROM ... materializes the result set as a
//   named per-user ObjectStore container; a later query may read it back
//   with FROM mydb.<name>, so multi-step mining workflows never re-scan
//   (or re-ship) the base data. INTO is only allowed on the first SELECT
//   of a query, requires `*` as the projection (the stored objects keep
//   every queryable attribute), and cannot be combined with JOIN or an
//   aggregate. FROM mydb.<name> supports the full select grammar except
//   JOIN, and may not be mixed with fleet tables (PHOTO/TAG) inside one
//   set-operation query.
//   expr        := boolean expression over attributes, numbers, + - * /,
//                  comparisons, AND/OR/NOT, and the spatial atoms:
//                    CIRCLE([frame,] lon, lat, radius_deg)
//                    RECT([frame,] lon_min, lon_max, lat_min, lat_max)
//                    BAND([frame,] lat_min, lat_max)
//                  frame is an optional string: 'EQ' | 'GAL' | 'SGAL'.
//   class names: class = 'GALAXY' | 'STAR' | 'QSO' parse to enum values.
//
// A JOIN select is the paper's spatial neighbor join: each unordered
// pair of distinct objects within the separation is reported once.
// Attributes may be qualified with the aliases (`a.r`, `b.g`);
// unqualified WHERE conjuncts filter every candidate object, qualified
// conjuncts form the pair predicate, satisfied when SOME assignment of
// the pair's members to (a, b) holds (see qet.h for the lowering). The
// projection may also name `sep`, the pair separation in arcsec.
//
// Example (the paper's quasar query, WITH its neighbor join: quasars
// brighter than r=22 with a faint blue galaxy within 5 arcsec):
//   SELECT a.obj_id, b.obj_id, sep FROM photo AS a
//   JOIN photoobj AS b WITHIN 5 ARCSEC
//   WHERE CIRCLE('GAL', 0, 60, 10)
//     AND a.class = 'QSO' AND a.r < 22
//     AND b.class = 'GALAXY' AND b.r > 20.5 AND b.g - b.r < 0.5

#ifndef SDSS_QUERY_PARSER_H_
#define SDSS_QUERY_PARSER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "query/expr.h"

namespace sdss::query {

/// Which physical table a select reads. kMyDb is a named personal
/// result store (resolved at plan time through PlannerOptions::mydb).
enum class TableRef { kPhoto, kTag, kMyDb };

/// Aggregate functions (at most one per select).
enum class AggFunc { kNone, kCount, kMin, kMax, kAvg, kSum };

const char* AggFuncName(AggFunc f);

/// The spatial neighbor-join clause of a SELECT block ("JOIN photoobj
/// AS b WITHIN 5 ARCSEC"). Self-join on the photo table only.
struct JoinClause {
  bool present = false;
  std::string alias_a = "a";  ///< FROM-side alias (default when no AS).
  std::string alias_b = "b";  ///< JOIN-side alias.
  double max_sep_arcsec = 0.0;
};

/// One SELECT block.
struct SelectQuery {
  TableRef table = TableRef::kPhoto;
  std::string mydb_name;  ///< Table name when table == kMyDb.
  /// INTO target: materialize the result as mydb.<into_mydb> (empty =
  /// plain select). Consumed by the workbench scheduler; engines execute
  /// the select part and ignore it.
  std::string into_mydb;
  JoinClause join;
  /// Projected attribute names; empty with agg == kNone means SELECT *.
  std::vector<std::string> projection;
  AggFunc agg = AggFunc::kNone;
  std::string agg_attr;  ///< Empty for COUNT(*).
  Expr::Ptr where;       ///< Null = no predicate.
  bool has_order = false;
  std::string order_by;
  bool order_desc = false;
  int64_t limit = -1;    ///< -1 = unlimited.
  double sample = 1.0;   ///< Bernoulli sampling fraction (SAMPLE clause).
};

/// Set operations combining selects, left-associative.
enum class SetOp { kUnion, kIntersect, kExcept };

const char* SetOpName(SetOp op);

/// A full parsed query.
struct ParsedQuery {
  SelectQuery first;
  std::vector<std::pair<SetOp, SelectQuery>> rest;

  bool IsSetQuery() const { return !rest.empty(); }
};

/// Parses a query string. Errors carry position context.
Result<ParsedQuery> Parse(const std::string& sql);

}  // namespace sdss::query

#endif  // SDSS_QUERY_PARSER_H_
