// Federated query execution across the replicated server fleet.
//
// The paper's archive is explicitly distributed: "the base-data objects
// will be spatially partitioned among the servers ... some of the
// high-traffic data will be replicated among servers." This engine
// parses and plans a query ONCE, fans the plan out to every live shard
// on one shared scan pool, merges the per-shard ASAP batch streams into
// a single ordered/limited stream, and combines partial aggregates
// (COUNT/SUM add, MIN/MAX fold, AVG = sum/count) and execution stats --
// so a query over N servers answers exactly like a query over one big
// store, and keeps answering when a server is marked down and its
// containers are re-routed to surviving replicas.

#ifndef SDSS_QUERY_FEDERATED_ENGINE_H_
#define SDSS_QUERY_FEDERATED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/object_store.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "query/query_engine.h"
#include "query/result_cache.h"
#include "query/trace.h"

namespace sdss::query {

/// One member of the fleet as the federated engine sees it: the server's
/// materialized store plus the container ids the router currently assigns
/// to it. A shard store also holds replica containers it is NOT serving
/// right now (that is what makes failover possible); `assigned` is what
/// keeps every container scanned exactly once across the fleet. A null
/// `assigned` means the shard serves its whole store.
struct Shard {
  size_t server = 0;
  const catalog::ObjectStore* store = nullptr;
  std::shared_ptr<const std::unordered_set<uint64_t>> assigned;
};

/// Per-shard slice of the density-map prediction (Explain output).
struct ShardPrediction {
  size_t server = 0;
  uint64_t containers = 0;
  uint64_t bytes_to_scan = 0;
  uint64_t min_objects = 0;
  uint64_t max_objects = 0;
  double expected_objects = 0.0;
  /// Predicted ghost-exchange traffic for neighbor joins: bytes of edge
  /// objects crossing this shard's container boundary (boundary-band
  /// estimate from the density map; the first piece of the network cost
  /// model). The band is symmetric, so this estimates both what the
  /// shard ships and what it receives -- the measured counterpart,
  /// ExecStats.bytes_shipped, counts the receive side. Zero for
  /// non-join plans and single-shard fleets.
  uint64_t bytes_shipped = 0;
};

/// Job-scoped execution context: what a single query run carries beyond
/// its SQL. The batch workbench passes one per job -- the job's
/// cooperative cancel flag and the submitting user's personal-store
/// namespace -- without perturbing the engine's shared configuration.
struct ExecContext {
  /// Cooperative cancel flag, polled inside every shard executor's scan
  /// and join loops; raising it aborts the run with a Cancelled status.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-user mydb namespace; overrides PlannerOptions::mydb when set.
  MyDbResolver mydb;
  /// Heat feedback: when set, every archive container any shard executor
  /// scans for this run is reported here (once per container per scan,
  /// from pool threads). The workbench binds it to
  /// archive::ShardedStore::RecordAccess so mining jobs drive the
  /// replica-promotion loop. Personal (mydb) scans never report.
  AccessRecorder access_recorder;
  /// Set only by a caller that will materialize the INTO target itself
  /// (the workbench's ExecuteInto sink). Left false, Execute /
  /// ExecuteStreaming refuse `SELECT ... INTO mydb.<name>` queries --
  /// the engine alone would run the bare select and silently store
  /// nothing. Explain and EstimateCost always accept INTO (they only
  /// describe / price the select).
  bool into_sink = false;
  /// Opt out of the semantic result cache for this run: neither consult
  /// it nor install into it (e.g. a caller that must observe real scan
  /// counters, or wants to force a fresh fleet pass).
  bool no_result_cache = false;
  /// Per-query span tree, null (tracing off) by default. When set, the
  /// engine opens one span per pipeline stage -- plan, cache_probe,
  /// ghost_harvest, fan_out with a child per shard, merge, fold -- and
  /// annotates them with stage-local detail (containers, columnar
  /// split, bytes scanned/shipped). Must outlive the run. The disabled
  /// path allocates nothing.
  QueryTrace* trace = nullptr;
};

/// The admission-relevant slice of the fleet-wide Explain prediction:
/// what a query would cost before running it. The workbench's
/// cost-based lane choice keys off `TotalBytes()`.
struct CostEstimate {
  uint64_t bytes_to_scan = 0;   ///< Summed over all live shards.
  uint64_t bytes_shipped = 0;   ///< Predicted join ghost traffic.
  double expected_objects = 0.0;
  /// FROM mydb: the plan reads a personal store, not the fleet.
  bool personal_store = false;
  /// INTO mydb.<name> target parsed from the query ("" = plain select),
  /// surfaced so admission needs no second parse.
  std::string into_mydb;
  /// The engine's result cache would answer this query right now (at
  /// the epoch observed while estimating) without any fleet scan.
  bool predicted_cache_hit = false;

  /// Admission-relevant byte cost: a predicted cache hit scans nothing,
  /// so it prices at zero and lands in the QUICK lane.
  uint64_t TotalBytes() const {
    return predicted_cache_hit ? 0 : bytes_to_scan + bytes_shipped;
  }
};

/// Parses, plans, and executes queries against a fleet of shards.
///
/// Thread-safety: Execute / ExecuteStreaming / Explain may be called
/// concurrently from any number of threads; SetShards may interleave
/// (in-flight queries keep their snapshot of the previous routing).
class FederatedQueryEngine {
 public:
  struct Options {
    PlannerOptions planner;
    /// `executor.scan_threads` sizes the ONE pool every shard
    /// sub-executor scans on -- the fan-out never multiplies pools.
    Executor::Options executor;
    /// Byte budget of the semantic result cache (query::ResultCache).
    /// 0 = caching off (the default: callers that assert on scan
    /// counters or drive the heat loop with repeated queries opt in
    /// explicitly).
    size_t result_cache_bytes = 0;
    /// Mutation-generation source the cache keys entries by. The fleet
    /// owner wires this to archive::ShardedStore::Epoch so cached
    /// answers survive failover (routing changes which stores are
    /// listed live; the full fleet's epoch sum does not move). Unset,
    /// the engine sums the distinct live shard stores' epochs.
    std::function<uint64_t()> cache_epoch_source;
    /// Metrics registry the engine publishes into (query_cache_hits /
    /// query_cache_containment / query_cache_misses counters and the
    /// query_exec_us latency histogram). Null = no metrics; must
    /// outlive the engine when set.
    metrics::Registry* metrics = nullptr;
  };

  explicit FederatedQueryEngine(std::vector<Shard> shards)
      : FederatedQueryEngine(std::move(shards), Options()) {}
  FederatedQueryEngine(std::vector<Shard> shards, Options options);

  /// Runs `sql` across the fleet and materializes the merged result.
  /// FROM mydb.<name> plans run on one local executor (a personal store
  /// is never sharded) but still share the engine's scan pool.
  Result<QueryResult> Execute(const std::string& sql,
                              const ExecContext& ctx = {});

  /// Streaming execution: `on_batch` sees merged batches (globally
  /// ordered when the query sorts, ASAP arrival order otherwise) and may
  /// return false to cancel the whole fan-out.
  Result<ExecStats> ExecuteStreaming(
      const std::string& sql,
      const std::function<bool(const RowBatch&)>& on_batch,
      const ExecContext& ctx = {});

  /// Streaming execution that first announces the result shape:
  /// `on_header`, when set, is invoked exactly once -- after parsing and
  /// planning succeed, before the first batch -- with the projected
  /// column names and the aggregate flag. This is what lets a remote
  /// consumer (the query server) frame a result stream without
  /// materializing it first.
  Result<ExecStats> ExecuteStreaming(
      const std::string& sql,
      const std::function<void(const ResultHeader&)>& on_header,
      const std::function<bool(const RowBatch&)>& on_batch,
      const ExecContext& ctx = {});

  /// The plan explanation plus per-shard container/byte predictions.
  Result<std::string> Explain(const std::string& sql,
                              const ExecContext& ctx = {});

  /// One shard's predicted-vs-actual ledger from an EXPLAIN ANALYZE run.
  struct ShardAnalysis {
    size_t server = 0;
    uint64_t containers_predicted = 0;
    uint64_t containers_scanned = 0;
    uint64_t containers_columnar = 0;
    uint64_t predicted_bytes = 0;  ///< Density-map prediction.
    uint64_t actual_bytes = 0;     ///< Bytes the scan really touched.
    uint64_t rows = 0;             ///< Rows this shard emitted.
    double seconds = 0.0;          ///< Shard wall time (RunTree).
  };

  /// EXPLAIN ANALYZE: runs the query for real (bypassing the result
  /// cache so the fleet actually scans) with tracing on, and reports the
  /// density-map prediction next to what each shard measured.
  struct ExplainAnalysis {
    std::string report;             ///< Human-readable side-by-side.
    ExecStats exec;                 ///< Folded stats of the real run.
    std::vector<ShardAnalysis> shards;
    std::string trace_json;         ///< chrome://tracing export.
  };

  /// Accepts either the bare statement or one prefixed with
  /// "EXPLAIN ANALYZE". Rows are drained internally; only the ledger
  /// comes back.
  Result<ExplainAnalysis> ExplainAnalyze(const std::string& sql,
                                         const ExecContext& ctx = {});

  /// Plans `sql` and returns the fleet-wide cost prediction without
  /// executing -- the workbench's admission estimate.
  Result<CostEstimate> EstimateCost(const std::string& sql,
                                    const ExecContext& ctx = {});

  /// Failover hook: replaces the routed shard set (e.g. after
  /// archive::ShardedStore::MarkServerDown + LiveShards()).
  void SetShards(std::vector<Shard> shards);

  size_t num_shards() const;
  const Options& options() const { return options_; }

  /// The semantic result cache, or null when Options::result_cache_bytes
  /// is 0. Exposed for instrumentation (hit counters, tests).
  ResultCache* result_cache() { return cache_.get(); }

 private:
  struct Prepared;

  std::vector<Shard> SnapshotShards() const;
  /// The cache-keying epoch for a run's shard snapshot.
  uint64_t CacheEpoch(const std::vector<Shard>& shards) const;
  /// RunPrepared behind the result cache: consult before fan-out,
  /// install after a clean, complete run.
  Result<ExecStats> RunPreparedCached(
      Prepared& prep, const ExecContext& ctx,
      const std::function<bool(RowBatch&&)>& sink);
  Result<Prepared> Prepare(const std::string& sql,
                           const ExecContext& ctx = {}) const;
  Result<ExecStats> RunFederated(
      const std::vector<Shard>& shards, const PlanNode* root, bool ordered,
      size_t order_col, bool order_desc, int64_t global_limit,
      const std::function<bool(RowBatch&&)>& sink,
      const std::vector<PairJoinGhosts>* join_ghosts = nullptr,
      bool dedupe_pairs = false,
      const std::atomic<bool>* cancel = nullptr,
      const AccessRecorder* access = nullptr,
      QueryTrace* trace = nullptr);
  Result<ExecStats> RunPrepared(
      Prepared& prep, const std::function<bool(RowBatch&&)>& sink,
      const std::atomic<bool>* cancel = nullptr);
  Result<ExecStats> RunSetWithBranchLimits(
      Prepared& prep, const std::function<bool(RowBatch&&)>& sink,
      const std::atomic<bool>* cancel);
  Result<ExecStats> RunJoinFederated(
      Prepared& prep, const PlanNode* join,
      const std::function<bool(RowBatch&&)>& sink,
      const std::atomic<bool>* cancel);
  Result<ExecStats> RunMyDbLocal(
      Prepared& prep, const std::function<bool(RowBatch&&)>& sink,
      const std::atomic<bool>* cancel);

  Options options_;
  ThreadPool pool_;  ///< Shared scan pool for every shard sub-executor.
  std::unique_ptr<ResultCache> cache_;  ///< Null when caching is off.
  // Engine-level instruments, resolved once in the constructor. All
  // null when Options::metrics is unset.
  metrics::Counter* m_queries_ = nullptr;
  metrics::Counter* m_cache_hits_ = nullptr;
  metrics::Counter* m_cache_containment_ = nullptr;
  metrics::Counter* m_cache_misses_ = nullptr;
  metrics::Histogram* m_exec_us_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
};

/// Per-shard density-map predictions for `plan`'s leftmost scan: the
/// containers each shard would touch, the bytes it would read, and the
/// expected object yield. Summing the slices gives the fleet-wide
/// prediction.
std::vector<ShardPrediction> PredictShards(const std::vector<Shard>& shards,
                                           const Plan& plan);

}  // namespace sdss::query

#endif  // SDSS_QUERY_FEDERATED_ENGINE_H_
