// Federated query execution across the replicated server fleet.
//
// The paper's archive is explicitly distributed: "the base-data objects
// will be spatially partitioned among the servers ... some of the
// high-traffic data will be replicated among servers." This engine
// parses and plans a query ONCE, fans the plan out to every live shard
// on one shared scan pool, merges the per-shard ASAP batch streams into
// a single ordered/limited stream, and combines partial aggregates
// (COUNT/SUM add, MIN/MAX fold, AVG = sum/count) and execution stats --
// so a query over N servers answers exactly like a query over one big
// store, and keeps answering when a server is marked down and its
// containers are re-routed to surviving replicas.

#ifndef SDSS_QUERY_FEDERATED_ENGINE_H_
#define SDSS_QUERY_FEDERATED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/object_store.h"
#include "core/thread_pool.h"
#include "query/query_engine.h"

namespace sdss::query {

/// One member of the fleet as the federated engine sees it: the server's
/// materialized store plus the container ids the router currently assigns
/// to it. A shard store also holds replica containers it is NOT serving
/// right now (that is what makes failover possible); `assigned` is what
/// keeps every container scanned exactly once across the fleet. A null
/// `assigned` means the shard serves its whole store.
struct Shard {
  size_t server = 0;
  const catalog::ObjectStore* store = nullptr;
  std::shared_ptr<const std::unordered_set<uint64_t>> assigned;
};

/// Per-shard slice of the density-map prediction (Explain output).
struct ShardPrediction {
  size_t server = 0;
  uint64_t containers = 0;
  uint64_t bytes_to_scan = 0;
  uint64_t min_objects = 0;
  uint64_t max_objects = 0;
  double expected_objects = 0.0;
  /// Predicted ghost-exchange traffic for neighbor joins: bytes of edge
  /// objects crossing this shard's container boundary (boundary-band
  /// estimate from the density map; the first piece of the network cost
  /// model). The band is symmetric, so this estimates both what the
  /// shard ships and what it receives -- the measured counterpart,
  /// ExecStats.bytes_shipped, counts the receive side. Zero for
  /// non-join plans and single-shard fleets.
  uint64_t bytes_shipped = 0;
};

/// Parses, plans, and executes queries against a fleet of shards.
///
/// Thread-safety: Execute / ExecuteStreaming / Explain may be called
/// concurrently from any number of threads; SetShards may interleave
/// (in-flight queries keep their snapshot of the previous routing).
class FederatedQueryEngine {
 public:
  struct Options {
    PlannerOptions planner;
    /// `executor.scan_threads` sizes the ONE pool every shard
    /// sub-executor scans on -- the fan-out never multiplies pools.
    Executor::Options executor;
  };

  explicit FederatedQueryEngine(std::vector<Shard> shards,
                                Options options = {});

  /// Runs `sql` across the fleet and materializes the merged result.
  Result<QueryResult> Execute(const std::string& sql);

  /// Streaming execution: `on_batch` sees merged batches (globally
  /// ordered when the query sorts, ASAP arrival order otherwise) and may
  /// return false to cancel the whole fan-out.
  Result<ExecStats> ExecuteStreaming(
      const std::string& sql,
      const std::function<bool(const RowBatch&)>& on_batch);

  /// The plan explanation plus per-shard container/byte predictions.
  Result<std::string> Explain(const std::string& sql);

  /// Failover hook: replaces the routed shard set (e.g. after
  /// archive::ShardedStore::MarkServerDown + LiveShards()).
  void SetShards(std::vector<Shard> shards);

  size_t num_shards() const;
  const Options& options() const { return options_; }

 private:
  struct Prepared;

  std::vector<Shard> SnapshotShards() const;
  Result<Prepared> Prepare(const std::string& sql) const;
  Result<ExecStats> RunFederated(
      const std::vector<Shard>& shards, const PlanNode* root, bool ordered,
      size_t order_col, bool order_desc, int64_t global_limit,
      const std::function<bool(RowBatch&&)>& sink,
      const std::vector<PairJoinGhosts>* join_ghosts = nullptr,
      bool dedupe_pairs = false);
  Result<ExecStats> RunPrepared(
      Prepared& prep, const std::function<bool(RowBatch&&)>& sink);
  Result<ExecStats> RunSetWithBranchLimits(
      Prepared& prep, const std::function<bool(RowBatch&&)>& sink);
  Result<ExecStats> RunJoinFederated(
      Prepared& prep, const PlanNode* join,
      const std::function<bool(RowBatch&&)>& sink);

  Options options_;
  ThreadPool pool_;  ///< Shared scan pool for every shard sub-executor.
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
};

/// Per-shard density-map predictions for `plan`'s leftmost scan: the
/// containers each shard would touch, the bytes it would read, and the
/// expected object yield. Summing the slices gives the fleet-wide
/// prediction.
std::vector<ShardPrediction> PredictShards(const std::vector<Shard>& shards,
                                           const Plan& plan);

}  // namespace sdss::query

#endif  // SDSS_QUERY_FEDERATED_ENGINE_H_
