#include "query/expr.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sdss::query {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "!=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

Expr::Ptr Expr::Literal(double v) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLiteral));
  e->literal_ = v;
  return e;
}

Expr::Ptr Expr::Attr(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAttr));
  e->attr_ = std::move(name);
  return e;
}

Expr::Ptr Expr::Neg(Ptr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kNeg));
  e->lhs_ = std::move(operand);
  return e;
}

Expr::Ptr Expr::Not(Ptr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kNot));
  e->lhs_ = std::move(operand);
  return e;
}

Expr::Ptr Expr::Binary(BinOp op, Ptr lhs, Ptr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kBinary));
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

Expr::Ptr Expr::Spatial(htm::Region region, std::string description) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSpatial));
  e->region_ = std::move(region);
  e->description_ = std::move(description);
  return e;
}

Result<double> Expr::Eval(const RowAccessor& row) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kAttr:
      return row.get(attr_);
    case Kind::kNeg: {
      auto v = lhs_->Eval(row);
      if (!v.ok()) return v;
      return -*v;
    }
    case Kind::kNot: {
      auto v = lhs_->Eval(row);
      if (!v.ok()) return v;
      return (*v != 0.0) ? 0.0 : 1.0;
    }
    case Kind::kSpatial:
      return region_.Contains(row.position) ? 1.0 : 0.0;
    case Kind::kBinary: {
      // Short-circuit booleans.
      if (op_ == BinOp::kAnd) {
        auto l = lhs_->Eval(row);
        if (!l.ok()) return l;
        if (*l == 0.0) return 0.0;
        auto r = rhs_->Eval(row);
        if (!r.ok()) return r;
        return (*r != 0.0) ? 1.0 : 0.0;
      }
      if (op_ == BinOp::kOr) {
        auto l = lhs_->Eval(row);
        if (!l.ok()) return l;
        if (*l != 0.0) return 1.0;
        auto r = rhs_->Eval(row);
        if (!r.ok()) return r;
        return (*r != 0.0) ? 1.0 : 0.0;
      }
      auto l = lhs_->Eval(row);
      if (!l.ok()) return l;
      auto r = rhs_->Eval(row);
      if (!r.ok()) return r;
      switch (op_) {
        case BinOp::kAdd:
          return *l + *r;
        case BinOp::kSub:
          return *l - *r;
        case BinOp::kMul:
          return *l * *r;
        case BinOp::kDiv:
          if (*r == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          return *l / *r;
        case BinOp::kLt:
          return *l < *r ? 1.0 : 0.0;
        case BinOp::kLe:
          return *l <= *r ? 1.0 : 0.0;
        case BinOp::kGt:
          return *l > *r ? 1.0 : 0.0;
        case BinOp::kGe:
          return *l >= *r ? 1.0 : 0.0;
        case BinOp::kEq:
          return *l == *r ? 1.0 : 0.0;
        case BinOp::kNe:
          return *l != *r ? 1.0 : 0.0;
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // Handled above.
      }
      return Status::Internal("unhandled binary op");
    }
  }
  return Status::Internal("unhandled expr kind");
}

Result<bool> Expr::EvalBool(const RowAccessor& row) const {
  auto v = Eval(row);
  if (!v.ok()) return v.status();
  return *v != 0.0;
}

void Expr::CollectAttrs(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kAttr:
      if (std::find(out->begin(), out->end(), attr_) == out->end()) {
        out->push_back(attr_);
      }
      break;
    case Kind::kNeg:
    case Kind::kNot:
      lhs_->CollectAttrs(out);
      break;
    case Kind::kBinary:
      lhs_->CollectAttrs(out);
      rhs_->CollectAttrs(out);
      break;
    case Kind::kLiteral:
    case Kind::kSpatial:
      break;
  }
}

std::string Expr::ToString() const {
  char buf[48];
  switch (kind_) {
    case Kind::kLiteral:
      std::snprintf(buf, sizeof(buf), "%g", literal_);
      return buf;
    case Kind::kAttr:
      return attr_;
    case Kind::kNeg:
      return "-(" + lhs_->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + lhs_->ToString() + ")";
    case Kind::kSpatial:
      return description_;
    case Kind::kBinary:
      return "(" + lhs_->ToString() + " " + BinOpName(op_) + " " +
             rhs_->ToString() + ")";
  }
  return "?";
}

bool SplitQualifiedName(const std::string& name, std::string* alias,
                        std::string* attr) {
  size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= name.size()) {
    return false;
  }
  if (alias != nullptr) *alias = name.substr(0, dot);
  if (attr != nullptr) *attr = name.substr(dot + 1);
  return true;
}

Expr::Ptr StripAliasQualifier(const Expr::Ptr& expr,
                              const std::string& alias) {
  switch (expr->kind()) {
    case Expr::Kind::kAttr: {
      std::string a, rest;
      if (SplitQualifiedName(expr->attr(), &a, &rest) && a == alias) {
        return Expr::Attr(rest);
      }
      return expr;
    }
    case Expr::Kind::kNeg: {
      Expr::Ptr child = StripAliasQualifier(expr->lhs(), alias);
      return child == expr->lhs() ? expr : Expr::Neg(std::move(child));
    }
    case Expr::Kind::kNot: {
      Expr::Ptr child = StripAliasQualifier(expr->lhs(), alias);
      return child == expr->lhs() ? expr : Expr::Not(std::move(child));
    }
    case Expr::Kind::kBinary: {
      Expr::Ptr l = StripAliasQualifier(expr->lhs(), alias);
      Expr::Ptr r = StripAliasQualifier(expr->rhs(), alias);
      if (l == expr->lhs() && r == expr->rhs()) return expr;
      return Expr::Binary(expr->op(), std::move(l), std::move(r));
    }
    case Expr::Kind::kLiteral:
    case Expr::Kind::kSpatial:
      return expr;
  }
  return expr;
}

void FlattenConjuncts(const Expr::Ptr& expr, std::vector<Expr::Ptr>* out) {
  if (expr->kind() == Expr::Kind::kBinary && expr->op() == BinOp::kAnd) {
    FlattenConjuncts(expr->lhs(), out);
    FlattenConjuncts(expr->rhs(), out);
    return;
  }
  out->push_back(expr);
}

bool ExtractRegion(const Expr::Ptr& expr, htm::Region* out) {
  switch (expr->kind()) {
    case Expr::Kind::kSpatial:
      *out = expr->region();
      return true;
    case Expr::Kind::kBinary: {
      if (expr->op() == BinOp::kAnd) {
        htm::Region l, r;
        bool has_l = ExtractRegion(expr->lhs(), &l);
        bool has_r = ExtractRegion(expr->rhs(), &r);
        if (has_l && has_r) {
          *out = l.IntersectWith(r);
          return true;
        }
        if (has_l) {
          *out = l;
          return true;
        }
        if (has_r) {
          *out = r;
          return true;
        }
        return false;
      }
      if (expr->op() == BinOp::kOr) {
        // Sound only if BOTH branches are spatially bounded.
        htm::Region l, r;
        if (ExtractRegion(expr->lhs(), &l) &&
            ExtractRegion(expr->rhs(), &r)) {
          *out = l.UnionWith(r);
          return true;
        }
        return false;
      }
      return false;
    }
    default:
      // NOT of a spatial atom, attributes, literals: no useful bound.
      return false;
  }
}

}  // namespace sdss::query
