// Per-query span trees: where one statement spent its time.
//
// A QueryTrace is attached to a run through ExecContext::trace (null by
// default -- the disabled path allocates nothing and branches once per
// stage, never per row). The federated engine opens one TraceSpan per
// pipeline stage (plan, cache probe, ghost harvest, fan-out with one
// child span per shard, merge/fold) and annotates spans with
// stage-local detail: per-shard containers, columnar-vs-row split,
// bytes scanned/shipped, sink time. The workbench adds the admission
// wait and, when the slow-query log is enabled, persists the capture as
// chrome://tracing JSON (load via chrome://tracing or
// https://ui.perfetto.dev).
//
// Timestamps come from an injectable nanosecond clock so tests pin span
// trees deterministically under core::SimClock; the default clock is
// std::chrono::steady_clock.

#ifndef SDSS_QUERY_TRACE_H_
#define SDSS_QUERY_TRACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdss::query {

class QueryTrace;

/// One timed stage of a query, in a parent-linked tree. Spans are
/// created by QueryTrace::Begin and addressed by index.
struct TraceSpan {
  std::string name;
  int parent = -1;          ///< Index of the parent span, -1 for roots.
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;      ///< 0 until End() (exported as zero-length).
  /// Display lane: 0 shares the main timeline, 1 + shard index gives
  /// concurrent shard scans their own chrome://tracing row.
  int lane = 0;
  std::vector<std::pair<std::string, double>> nums;
  std::vector<std::pair<std::string, std::string>> notes;

  /// Numeric annotation by key, or `dflt` when absent.
  double Num(std::string_view key, double dflt = 0.0) const;
  /// String annotation by key, or "" when absent.
  std::string_view Note(std::string_view key) const;
};

/// The span tree of one query run. Thread-safe: shard threads Begin /
/// annotate / End concurrently with the merge thread (one mutex; the
/// per-query call count is a handful of spans, not per-row work).
class QueryTrace {
 public:
  static constexpr int kNoSpan = -1;
  /// Nanosecond clock; injectable for deterministic tests.
  using NowFn = std::function<uint64_t()>;

  QueryTrace();                     ///< steady_clock-backed.
  explicit QueryTrace(NowFn now);   ///< e.g. bound to a SimClock.

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a span and returns its id. `lane` picks the display row in
  /// the chrome export (see TraceSpan::lane).
  int Begin(std::string_view name, int parent = kNoSpan, int lane = 0);
  void End(int span);
  void Num(int span, std::string_view key, double value);
  void Note(int span, std::string_view key, std::string_view value);

  /// Trace-level metadata exported in the JSON "otherData" object
  /// (SQL text, user, job id).
  void SetMeta(std::string_view key, std::string_view value);

  size_t span_count() const;
  /// A consistent copy of the tree (spans in Begin order, parent
  /// indices into the same vector).
  std::vector<TraceSpan> Spans() const;
  /// Spans named `name`, in Begin order.
  std::vector<TraceSpan> Find(std::string_view name) const;

  /// chrome://tracing "Trace Event Format" JSON: one complete ("X")
  /// event per span, timestamps in microseconds, annotations in args.
  std::string ToChromeJson() const;

 private:
  uint64_t NowNs() const { return now_ ? now_() : SteadyNowNs(); }
  static uint64_t SteadyNowNs();

  const NowFn now_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

/// One finished query's trace, as retained by a TraceRing: enough
/// context to list it in /tracez and the full chrome://tracing JSON to
/// download it.
struct TraceCapture {
  uint64_t id = 0;       ///< Ring-assigned, monotonically increasing.
  uint64_t job_id = 0;
  std::string user;
  std::string sql;
  double seconds = 0.0;  ///< Wall-clock run time.
  bool slow = false;     ///< Crossed the slow-query threshold (vs sampled).
  std::string chrome_json;
};

/// Fixed-capacity ring of the last N completed query traces, the store
/// behind the admin endpoint's /tracez. Push overwrites the oldest;
/// List returns newest-first. Thread-safe.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 32);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Stores a capture and returns its assigned id (ids start at 1).
  uint64_t Push(TraceCapture capture);

  /// Retained captures, newest first.
  std::vector<TraceCapture> List() const;
  /// The capture with ring id `id`, or an empty capture (id 0) when it
  /// has been overwritten or never existed.
  TraceCapture Find(uint64_t id) const;

  size_t capacity() const { return capacity_; }
  uint64_t pushes() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceCapture> ring_;  ///< Circular, `next_` is the oldest.
  size_t next_ = 0;
  uint64_t pushes_ = 0;
};

/// Null-safe helpers: every engine call site guards on `trace` once via
/// these instead of open-coding the branch.
inline int TraceBegin(QueryTrace* t, std::string_view name,
                      int parent = QueryTrace::kNoSpan, int lane = 0) {
  return t != nullptr ? t->Begin(name, parent, lane) : QueryTrace::kNoSpan;
}
inline void TraceEnd(QueryTrace* t, int span) {
  if (t != nullptr && span != QueryTrace::kNoSpan) t->End(span);
}
inline void TraceNum(QueryTrace* t, int span, std::string_view key,
                     double value) {
  if (t != nullptr && span != QueryTrace::kNoSpan) t->Num(span, key, value);
}
inline void TraceNote(QueryTrace* t, int span, std::string_view key,
                      std::string_view value) {
  if (t != nullptr && span != QueryTrace::kNoSpan) t->Note(span, key, value);
}

}  // namespace sdss::query

#endif  // SDSS_QUERY_TRACE_H_
