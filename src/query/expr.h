// Predicate/expression AST for the archive query language.
//
// Expressions evaluate to doubles (booleans are nonzero/zero) against a
// row accessor, so the same tree runs against full PhotoObj rows or tag
// rows. Spatial predicates (cone/rect/band atoms) are first-class leaf
// nodes carrying an htm::Region; the planner lifts them into container
// pruning while the executor still evaluates them exactly per object.

#ifndef SDSS_QUERY_EXPR_H_
#define SDSS_QUERY_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/vec3.h"
#include "htm/region.h"

namespace sdss::query {

/// Binary operators, in precedence groups.
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

const char* BinOpName(BinOp op);

/// A row the expression evaluator can read: attribute lookup by name plus
/// the object's position for spatial atoms.
struct RowAccessor {
  std::function<Result<double>(const std::string&)> get;
  Vec3 position;
};

/// One AST node. Trees are immutable after parse; shared_ptr children
/// allow cheap subtree reuse by the planner.
class Expr {
 public:
  enum class Kind { kLiteral, kAttr, kNeg, kNot, kBinary, kSpatial };

  using Ptr = std::shared_ptr<const Expr>;

  static Ptr Literal(double v);
  static Ptr Attr(std::string name);
  static Ptr Neg(Ptr operand);
  static Ptr Not(Ptr operand);
  static Ptr Binary(BinOp op, Ptr lhs, Ptr rhs);
  /// A spatial atom: true iff the object position is inside `region`.
  /// `description` is used in plan explanations ("CIRCLE(185,2,1.5)").
  static Ptr Spatial(htm::Region region, std::string description);

  Kind kind() const { return kind_; }
  double literal() const { return literal_; }
  const std::string& attr() const { return attr_; }
  BinOp op() const { return op_; }
  const Ptr& lhs() const { return lhs_; }
  const Ptr& rhs() const { return rhs_; }
  const htm::Region& region() const { return region_; }
  const std::string& description() const { return description_; }

  /// Evaluates against a row. Attribute lookups may fail (NotFound) when
  /// the row type lacks the attribute -- the error propagates.
  Result<double> Eval(const RowAccessor& row) const;

  /// Boolean convenience: nonzero result = true.
  Result<bool> EvalBool(const RowAccessor& row) const;

  /// All attribute names referenced by this subtree (deduplicated).
  void CollectAttrs(std::vector<std::string>* out) const;

  /// Pretty-printer for plan explanations.
  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  double literal_ = 0.0;
  std::string attr_;
  BinOp op_ = BinOp::kAdd;
  Ptr lhs_;
  Ptr rhs_;
  htm::Region region_;
  std::string description_;
};

/// Extracts a sound spatial over-approximation of `expr`: every row
/// satisfying the expression lies inside the returned region. Returns
/// false (and leaves `out` untouched) when no bound tighter than the
/// whole sky can be derived (e.g. no spatial atoms, or atoms under NOT).
bool ExtractRegion(const Expr::Ptr& expr, htm::Region* out);

// -- Pair-join alias plumbing -----------------------------------------

/// Splits a qualified attribute name "alias.attr" at its first dot.
/// Returns true (filling the outputs) when qualified, false for bare
/// names. Outputs may be null.
bool SplitQualifiedName(const std::string& name, std::string* alias,
                        std::string* attr);

/// Rewrites every attribute qualified with `alias` ("alias.x") to its
/// bare name ("x"); untouched subtrees are shared (trees are immutable).
/// This lowers a pair join's one-sided conjuncts onto a single-object
/// predicate.
Expr::Ptr StripAliasQualifier(const Expr::Ptr& expr,
                              const std::string& alias);

/// Flattens the top-level AND spine of `expr` into conjuncts, in
/// left-to-right order. A non-AND expression yields itself.
void FlattenConjuncts(const Expr::Ptr& expr, std::vector<Expr::Ptr>* out);

}  // namespace sdss::query

#endif  // SDSS_QUERY_EXPR_H_
