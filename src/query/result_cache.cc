#include "query/result_cache.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "htm/cover.h"
#include "htm/range_set.h"

namespace sdss::query {
namespace {

/// Leaf level of the containment test grid. Finer than the container
/// clustering level so covers track region boundaries closely (fewer
/// false rejections); the test stays exact at any level.
constexpr int kContainLevel = 8;

/// True when `expr` divides anywhere. Division can raise divide-by-zero,
/// which makes conjunct reordering observable and subset re-filtering
/// unsound -- such queries never touch the cache.
bool ContainsDiv(const Expr::Ptr& expr) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kAttr:
    case Expr::Kind::kSpatial:
      return false;
    case Expr::Kind::kNeg:
    case Expr::Kind::kNot:
      return ContainsDiv(expr->lhs());
    case Expr::Kind::kBinary:
      if (expr->op() == BinOp::kDiv) return true;
      return ContainsDiv(expr->lhs()) || ContainsDiv(expr->rhs());
  }
  return false;
}

void CanonKey(const Expr& e, std::string* out);

/// Collects canonical keys of the operand spine of a commutative,
/// associative operator ("a AND (b AND c)" and "(c AND a) AND b" yield
/// the same multiset).
void CollectCommutative(const Expr& e, BinOp op,
                        std::vector<std::string>* keys) {
  if (e.kind() == Expr::Kind::kBinary && e.op() == op) {
    CollectCommutative(*e.lhs(), op, keys);
    CollectCommutative(*e.rhs(), op, keys);
    return;
  }
  std::string k;
  CanonKey(e, &k);
  keys->push_back(std::move(k));
}

void EmitSorted(const char* name, std::vector<std::string> keys,
                std::string* out) {
  std::sort(keys.begin(), keys.end());
  *out += '(';
  *out += name;
  for (const std::string& k : keys) {
    *out += ' ';
    *out += k;
  }
  *out += ')';
}

/// Canonical serialization of an expression: commutative operators sort
/// their (flattened) operands, symmetric comparisons sort their sides,
/// and kGt/kGe normalize to kLt/kLe with swapped operands. Reordering is
/// semantics-preserving only for error-free evaluation, which Cacheable
/// guarantees by refusing division.
void CanonKey(const Expr& e, std::string* out) {
  switch (e.kind()) {
    case Expr::Kind::kLiteral: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", e.literal());
      *out += buf;
      return;
    }
    case Expr::Kind::kAttr:
      *out += "a:";
      *out += e.attr();
      return;
    case Expr::Kind::kSpatial:
      *out += "s:";
      *out += e.description();
      return;
    case Expr::Kind::kNeg:
      *out += "(neg ";
      CanonKey(*e.lhs(), out);
      *out += ')';
      return;
    case Expr::Kind::kNot:
      *out += "(not ";
      CanonKey(*e.lhs(), out);
      *out += ')';
      return;
    case Expr::Kind::kBinary:
      break;
  }
  std::string lk, rk;
  switch (e.op()) {
    case BinOp::kAnd:
    case BinOp::kOr:
    case BinOp::kAdd:
    case BinOp::kMul: {
      std::vector<std::string> keys;
      CollectCommutative(e, e.op(), &keys);
      EmitSorted(BinOpName(e.op()), std::move(keys), out);
      return;
    }
    case BinOp::kEq:
    case BinOp::kNe:
      CanonKey(*e.lhs(), &lk);
      CanonKey(*e.rhs(), &rk);
      if (rk < lk) std::swap(lk, rk);
      *out += e.op() == BinOp::kEq ? "(eq " : "(ne ";
      break;
    case BinOp::kGt:  // a > b == b < a
      CanonKey(*e.rhs(), &lk);
      CanonKey(*e.lhs(), &rk);
      *out += '(';
      *out += BinOpName(BinOp::kLt);
      *out += ' ';
      break;
    case BinOp::kGe:  // a >= b == b <= a
      CanonKey(*e.rhs(), &lk);
      CanonKey(*e.lhs(), &rk);
      *out += '(';
      *out += BinOpName(BinOp::kLe);
      *out += ' ';
      break;
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kSub:
    case BinOp::kDiv:
      CanonKey(*e.lhs(), &lk);
      CanonKey(*e.rhs(), &rk);
      *out += '(';
      *out += BinOpName(e.op());
      *out += ' ';
      break;
  }
  *out += lk;
  *out += ' ';
  *out += rk;
  *out += ')';
}

std::string CanonKey(const Expr& e) {
  std::string out;
  CanonKey(e, &out);
  return out;
}

void FingerprintNode(const PlanNode& n, std::string* out) {
  *out += '{';
  *out += PlanNodeTypeName(n.type);
  char buf[64];
  switch (n.type) {
    case PlanNodeType::kScan:
      std::snprintf(buf, sizeof(buf), " t=%d", static_cast<int>(n.table));
      *out += buf;
      if (n.predicate != nullptr) {
        *out += " p=";
        CanonKey(*n.predicate, out);
      }
      *out += " j=";
      for (const std::string& c : n.projection) {
        *out += c;
        *out += ',';
      }
      if (n.sample < 1.0) {
        std::snprintf(buf, sizeof(buf), " s=%.17g:%llu", n.sample,
                      static_cast<unsigned long long>(n.sample_seed));
        *out += buf;
      }
      break;
    case PlanNodeType::kMyDbScan:
      // Never cached, but keep the fingerprint total: distinct names
      // must never collide.
      *out += " mydb=";
      *out += n.mydb_name;
      break;
    case PlanNodeType::kPairJoin:
      std::snprintf(buf, sizeof(buf), " sep=%.17g", n.pair_max_sep_arcsec);
      *out += buf;
      if (n.pair_select != nullptr) {
        *out += " ps=";
        CanonKey(*n.pair_select, out);
      }
      if (n.pair_where != nullptr) {
        *out += " pw=";
        CanonKey(*n.pair_where, out);
      }
      break;
    case PlanNodeType::kSort:
      std::snprintf(buf, sizeof(buf), " c=%zu d=%d", n.sort_column,
                    n.sort_desc ? 1 : 0);
      *out += buf;
      break;
    case PlanNodeType::kLimit:
      std::snprintf(buf, sizeof(buf), " n=%lld",
                    static_cast<long long>(n.limit));
      *out += buf;
      break;
    case PlanNodeType::kAggregate:
      std::snprintf(buf, sizeof(buf), " f=%d", static_cast<int>(n.agg));
      *out += buf;
      break;
    case PlanNodeType::kUnion:
    case PlanNodeType::kIntersect:
    case PlanNodeType::kDifference:
      break;
  }
  for (const auto& c : n.children) FingerprintNode(*c, out);
  *out += '}';
}

/// Exact containment of `inner` inside `outer` on the HTM grid: every
/// leaf trixel `inner`'s cover accepts (FULL or PARTIAL -- every object
/// that can satisfy the inner predicate lives in one) lies inside a FULL
/// trixel of `outer`'s cover, i.e. provably inside the outer region.
bool RegionCovers(const htm::Region& outer, const htm::Region& inner) {
  htm::RangeSet in = htm::Cover(inner, kContainLevel).ToRangeSet();
  htm::RangeSet full = htm::Cover(outer, kContainLevel).FullRangeSet();
  return in.DifferenceWith(full).empty();
}

/// Attribute names a shape needs from an entry's rows: the projection
/// (or aggregate input) plus everything the predicate reads.
void CollectNeeded(const PlanNode& scan, const std::string& agg_attr,
                   std::vector<std::string>* out) {
  for (const std::string& c : scan.projection) out->push_back(c);
  if (!agg_attr.empty()) out->push_back(agg_attr);
  if (scan.predicate != nullptr) scan.predicate->CollectAttrs(out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(options) {}

size_t ResultCache::entry_byte_cap() const {
  return options_.max_entry_bytes != 0 ? options_.max_entry_bytes
                                       : options_.max_bytes / 4;
}

bool ResultCache::Cacheable(const ParsedQuery& parsed, const Plan& plan) {
  auto select_ok = [](const SelectQuery& s) {
    if (!s.into_mydb.empty()) return false;       // Workbench materializes.
    if (s.table == TableRef::kMyDb) return false; // Personal versioning.
    if (s.join.present) return false;             // Pair rows lack pos.
    if (s.sample < 1.0) return false;             // Fresh draws each run.
    if (s.limit >= 0 && !s.has_order) return false;  // Nondeterministic.
    if (ContainsDiv(s.where)) return false;       // Error-capable.
    return true;
  };
  if (!select_ok(parsed.first)) return false;
  for (const auto& [op, select] : parsed.rest) {
    (void)op;
    if (!select_ok(select)) return false;
  }
  return plan.root != nullptr;
}

std::string ResultCache::Fingerprint(const Plan& plan) {
  std::string out;
  if (plan.root != nullptr) FingerprintNode(*plan.root, &out);
  return out;
}

size_t ResultCache::ApproxRowBytes(const ResultRow& row) {
  return sizeof(ResultRow) + row.values.size() * sizeof(double);
}

bool ResultCache::AnalyzeShape(const Plan& plan, Shape* out) {
  const PlanNode* n = plan.root.get();
  if (n == nullptr) return false;
  if (n->type == PlanNodeType::kAggregate) {
    // Only order-insensitive folds recombine exactly from a filtered
    // subset; SUM/AVG depend on float addition order and fall through.
    if (n->agg != AggFunc::kCount && n->agg != AggFunc::kMin &&
        n->agg != AggFunc::kMax) {
      return false;
    }
    out->agg = n->agg;
    n = n->children[0].get();
    if (n->type != PlanNodeType::kScan) return false;
    if (!n->projection.empty()) out->agg_attr = n->projection[0];
  } else {
    if (n->type == PlanNodeType::kLimit) {
      out->limit = n->limit;
      n = n->children[0].get();
    }
    if (n->type == PlanNodeType::kSort) {
      out->ordered = true;
      out->order_col = n->sort_column;
      out->order_desc = n->sort_desc;
      n = n->children[0].get();
    }
    // An unordered LIMIT keeps an arrival-order-dependent subset.
    if (out->limit >= 0 && !out->ordered) return false;
  }
  if (n->type != PlanNodeType::kScan) return false;
  if (n->sample < 1.0) return false;
  out->scan = n;
  CollectNeeded(*n, out->agg_attr, &out->needed);
  if (n->predicate != nullptr) {
    std::vector<Expr::Ptr> conjuncts;
    FlattenConjuncts(n->predicate, &conjuncts);
    out->conjunct_keys.reserve(conjuncts.size());
    for (const Expr::Ptr& c : conjuncts) {
      out->conjunct_keys.push_back(CanonKey(*c));
    }
  }
  return true;
}

bool ResultCache::EntryServes(const Entry& e, const Shape& q) {
  if (!e.containment_capable) return false;
  // Same PHYSICAL table only: tag rows carry float-precision positions,
  // so a photo entry re-filtered through a tag probe's predicate (or
  // vice versa) could classify boundary objects differently than the
  // real scan would. Auto tag selection makes the table part of the
  // query's semantics here.
  if (e.table != q.scan->table) return false;
  // Every attribute the query reads must have been projected into the
  // entry's rows.
  for (const std::string& name : q.needed) {
    if (std::find(e.columns.begin(), e.columns.end(), name) ==
        e.columns.end()) {
      return false;
    }
  }
  // Q's predicate must imply E's: every conjunct of E is canonically
  // present in Q, or is a spatial atom whose region provably contains
  // Q's plan region (so every row Q can yield satisfies it).
  for (size_t i = 0; i < e.conjuncts.size(); ++i) {
    if (std::find(q.conjunct_keys.begin(), q.conjunct_keys.end(),
                  e.conjunct_keys[i]) != q.conjunct_keys.end()) {
      continue;
    }
    const Expr& c = *e.conjuncts[i];
    if (c.kind() == Expr::Kind::kSpatial && q.scan->has_region &&
        RegionCovers(c.region(), q.scan->region)) {
      continue;
    }
    return false;
  }
  return true;
}

bool ResultCache::Materialize(const Entry& e, const Shape& q,
                              std::vector<ResultRow>* out) {
  std::unordered_map<std::string, size_t> idx;
  idx.reserve(e.columns.size());
  for (size_t i = 0; i < e.columns.size(); ++i) idx[e.columns[i]] = i;

  std::vector<size_t> proj;
  proj.reserve(q.scan->projection.size());
  for (const std::string& name : q.scan->projection) {
    proj.push_back(idx.at(name));
  }
  const size_t agg_idx = q.agg_attr.empty() ? 0 : idx.at(q.agg_attr);

  AggFold fold;
  std::vector<ResultRow> rows;
  for (const ResultRow& r : e.rows) {
    if (q.scan->predicate != nullptr) {
      RowAccessor acc{
          [&idx, &r](const std::string& name) -> Result<double> {
            auto it = idx.find(name);
            if (it == idx.end()) {
              return Status::NotFound("cached row lacks attribute '" +
                                      name + "'");
            }
            return r.values[it->second];
          },
          r.pos};
      auto keep = q.scan->predicate->EvalBool(acc);
      if (!keep.ok()) return false;  // Cannot happen for served shapes.
      if (!*keep) continue;
    }
    if (q.agg != AggFunc::kNone) {
      ++fold.count;
      if (!q.agg_attr.empty()) fold.Add(r.values[agg_idx]);
      continue;
    }
    ResultRow o;
    o.obj_id = r.obj_id;
    o.obj_id_b = r.obj_id_b;
    o.pos = r.pos;
    o.values.reserve(proj.size());
    for (size_t pi : proj) o.values.push_back(r.values[pi]);
    rows.push_back(std::move(o));
  }
  if (q.agg != AggFunc::kNone) {
    rows.push_back(FinishAggregate(q.agg, false, fold));
  } else {
    if (q.ordered) {
      std::sort(rows.begin(), rows.end(),
                [&q](const ResultRow& a, const ResultRow& b) {
                  return RowBefore(a, b, q.order_col, q.order_desc);
                });
    }
    if (q.limit >= 0 && rows.size() > static_cast<size_t>(q.limit)) {
      rows.resize(static_cast<size_t>(q.limit));
    }
  }
  *out = std::move(rows);
  return true;
}

void ResultCache::TouchLocked(EntryList::iterator it) {
  ++it->heat;
  it->chance = false;
  lru_.splice(lru_.begin(), lru_, it);
}

void ResultCache::EraseLocked(EntryList::iterator it) {
  bytes_used_ -= it->bytes;
  index_.erase(it->fingerprint);
  lru_.erase(it);
}

void ResultCache::EvictForBudgetLocked() {
  while (bytes_used_ > options_.max_bytes && !lru_.empty()) {
    EntryList::iterator victim = std::prev(lru_.end());
    if (victim->heat > 0 && !victim->chance) {
      // Heat-weighted retention: a warm tail entry gets one recycled
      // pass (heat halved) before it can be evicted.
      victim->heat /= 2;
      victim->chance = true;
      lru_.splice(lru_.begin(), lru_, victim);
      continue;
    }
    ++stats_.evictions;
    EraseLocked(victim);
  }
}

bool ResultCache::TryAnswer(const std::string& fingerprint,
                            const Plan& plan, uint64_t epoch, Answer* out) {
  std::lock_guard<std::mutex> lock(mu_);

  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    if (it->second->epoch == epoch) {
      ++stats_.hits;
      TouchLocked(it->second);
      out->rows = it->second->rows;
      out->containment = false;
      return true;
    }
    ++stats_.epoch_invalidations;
    EraseLocked(it->second);
  }

  Shape shape;
  if (AnalyzeShape(plan, &shape)) {
    for (EntryList::iterator e = lru_.begin(); e != lru_.end();) {
      if (e->epoch != epoch) {
        // Stale entries can never hit again (epochs are monotonic);
        // drop them as they are encountered.
        EntryList::iterator dead = e++;
        ++stats_.epoch_invalidations;
        EraseLocked(dead);
        continue;
      }
      if (EntryServes(*e, shape) && Materialize(*e, shape, &out->rows)) {
        ++stats_.containment_hits;
        out->containment = true;
        TouchLocked(e);
        return true;
      }
      ++e;
    }
  }
  ++stats_.misses;
  return false;
}

bool ResultCache::WouldAnswer(const std::string& fingerprint,
                              const Plan& plan, uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint);
  if (it != index_.end() && it->second->epoch == epoch) return true;
  Shape shape;
  if (!AnalyzeShape(plan, &shape)) return false;
  for (const Entry& e : lru_) {
    if (e.epoch == epoch && EntryServes(e, shape)) return true;
  }
  return false;
}

void ResultCache::Install(const std::string& fingerprint, const Plan& plan,
                          uint64_t epoch, std::vector<ResultRow> rows) {
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.epoch = epoch;
  entry.rows = std::move(rows);
  entry.bytes = fingerprint.size() + sizeof(Entry);
  for (const ResultRow& r : entry.rows) entry.bytes += ApproxRowBytes(r);

  // A single-scan row entry (optionally sorted, but never truncated,
  // sampled, or folded) holds the COMPLETE row set of its predicate, so
  // it can answer narrower queries by re-filtering.
  const PlanNode* n = plan.root.get();
  if (n != nullptr && n->type == PlanNodeType::kSort) {
    n = n->children[0].get();
  }
  if (n != nullptr && n->type == PlanNodeType::kScan && n->sample >= 1.0 &&
      n->table != TableRef::kMyDb) {
    entry.containment_capable = true;
    entry.table = n->table;
    entry.columns = n->projection;
    if (n->predicate != nullptr) {
      FlattenConjuncts(n->predicate, &entry.conjuncts);
      entry.conjunct_keys.reserve(entry.conjuncts.size());
      for (const Expr::Ptr& c : entry.conjuncts) {
        entry.conjunct_keys.push_back(CanonKey(*c));
      }
    }
    for (const std::string& c : entry.columns) entry.bytes += c.size();
  }

  if (entry.bytes > entry_byte_cap()) return;

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint);
  if (it != index_.end()) EraseLocked(it->second);
  bytes_used_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[fingerprint] = lru_.begin();
  ++stats_.installs;
  EvictForBudgetLocked();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_used_ = 0;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.bytes_used = bytes_used_;
  return s;
}

}  // namespace sdss::query
