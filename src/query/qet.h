// The Query Execution Tree (QET).
//
// The paper: "Each query received from the User Interface is parsed into
// a Query Execution Tree (QET) that is then executed by the Query Engine.
// Each node of the QET is either a query or a set-operation node, and
// returns a bag of object-pointers upon execution. The multi-threaded
// Query Engine executes in parallel at all the nodes at a given level of
// the QET. Results from child nodes are passed up the tree as soon as
// they are generated" (the ASAP push strategy), with sort / aggregation /
// intersection / difference nodes blocking on one side.
//
// This header defines the plan-node tree, the row/channel plumbing the
// executor streams batches through, and the planner that lowers a parsed
// query onto a specific ObjectStore (spatial cover extraction, tag-store
// selection, and the density-map cost prediction).

#ifndef SDSS_QUERY_QET_H_
#define SDSS_QUERY_QET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/object_store.h"
#include "query/parser.h"

namespace sdss::query {

/// One result row: the object pointer plus projected attribute values.
/// Pair-join rows carry both members' ids (obj_id = the `a` role,
/// obj_id_b = the `b` role); plain rows leave obj_id_b zero.
struct ResultRow {
  uint64_t obj_id = 0;
  uint64_t obj_id_b = 0;
  /// Unit position of the object, carried verbatim from the scan leaf
  /// (row path: PhotoObj/TagObj pos; columnar: ColumnarBlock::Position).
  /// Lets spatial predicates be re-evaluated over a materialized row
  /// bit-identically to the original scan -- the hook query::ResultCache
  /// containment filtering hangs off. Zero for pair-join rows.
  Vec3 pos;
  std::vector<double> values;
};

using RowBatch = std::vector<ResultRow>;

/// The engine's one sort order: by values[col] (ascending or
/// descending), with (obj_id, obj_id_b) as the stable tie-break. The
/// sort node, the top-k fusion, and the federated k-way merge must all
/// agree on this total order -- do not inline variants.
inline bool RowBefore(const ResultRow& a, const ResultRow& b, size_t col,
                      bool desc) {
  double av = a.values[col], bv = b.values[col];
  if (av != bv) return desc ? av > bv : av < bv;
  if (a.obj_id != b.obj_id) return a.obj_id < b.obj_id;
  return a.obj_id_b < b.obj_id_b;
}

/// A bounded multi-producer single-consumer batch channel implementing
/// the ASAP data push between QET nodes. Producers block when the
/// channel is full; the consumer can cancel to abort upstream work
/// (LIMIT early-out).
class RowChannel {
 public:
  explicit RowChannel(size_t max_batches = 64) : capacity_(max_batches) {}

  /// Registers a producer. Must be balanced by CloseWriter().
  void AddWriter();

  /// Producer is done; the last CloseWriter wakes the consumer for EOF.
  void CloseWriter();

  /// Pushes a batch; blocks while full. Returns false if the channel was
  /// cancelled (producer should stop generating).
  bool Push(RowBatch batch);

  /// Pops the next batch; blocks until data, EOF, or cancel. Returns
  /// false on end-of-stream.
  bool Pop(RowBatch* batch);

  /// Consumer aborts: unblocks and fails all further Push calls.
  void Cancel();

  bool cancelled() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
  std::deque<RowBatch> queue_;
  size_t capacity_;
  int writers_ = 0;
  bool cancelled_ = false;
};

/// QET node types: one scan ("query node") plus the paper's set-operation
/// and blocking node kinds, and the hash-machine neighbor join.
enum class PlanNodeType {
  kScan,        ///< Leaf: container-pruned store scan with predicate.
  kMyDbScan,    ///< Leaf: scan of a personal mydb result store.
  kPairJoin,    ///< Leaf: two-phase spatial hash join (PairHasher).
  kUnion,       ///< Bag union (dedup by obj_id); streams both sides ASAP.
  kIntersect,   ///< Blocking on the right side, then streams the left.
  kDifference,  ///< Blocking on the right side, then streams the left.
  kSort,        ///< Blocking: drains child, sorts, then streams.
  kLimit,       ///< Streaming with early-out cancellation.
  kAggregate,   ///< Blocking: folds child stream to one row.
};

const char* PlanNodeTypeName(PlanNodeType t);

/// A node of the QET.
struct PlanNode {
  PlanNodeType type = PlanNodeType::kScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  // -- kScan ---------------------------------------------------------
  TableRef table = TableRef::kPhoto;
  Expr::Ptr predicate;                 ///< Null = accept all.
  bool has_region = false;
  htm::Region region;                  ///< Container-pruning bound.
  std::vector<std::string> projection; ///< Output column names.
  double sample = 1.0;                 ///< Bernoulli sampling fraction.
  uint64_t sample_seed = 7777;
  /// Planner marker: this leaf reads full photo rows (not the tag
  /// partition), so the executor may run its columnar kernel over
  /// containers that carry column views. The executor still compiles
  /// the predicate/projection and falls back per node if it can't.
  bool columnar_eligible = false;

  // -- kMyDbScan -----------------------------------------------------
  // Like kScan, but over a personal result store resolved at plan time
  // (the store must outlive execution; MyDb keeps pointers stable until
  // Drop). Personal stores are never sharded, so the federated engine
  // runs these plans on one local executor and shard container filters
  // do not apply.
  const catalog::ObjectStore* mydb_store = nullptr;
  std::string mydb_name;

  // -- kPairJoin -----------------------------------------------------
  // A leaf like kScan (it reads containers itself: the hash machine
  // needs whole PhotoObjs, not projected rows). Emits one row per
  // unordered pair within the separation; `projection` names are
  // alias-qualified ("a.r", "b.g") or the separation pseudo-column
  // "sep".
  double pair_max_sep_arcsec = 0.0;
  /// Bucket depth of the hash, chosen by the planner from the
  /// separation (PairHasher::ChooseBucketLevel).
  int pair_bucket_level = 10;
  /// Phase-1 per-object filter (unqualified conjuncts AND the derived
  /// either-side filter); null = every object is a candidate.
  Expr::Ptr pair_select;
  /// Pair predicate: the conjunction of alias-qualified conjuncts. A
  /// pair {x, y} qualifies when SOME assignment of its members to
  /// (a, b) satisfies it; the satisfying assignment (lower-id member
  /// first when both hold) binds the aliases in the projection.
  Expr::Ptr pair_where;
  std::string pair_alias_a = "a";
  std::string pair_alias_b = "b";

  // -- kSort ---------------------------------------------------------
  size_t sort_column = 0;
  bool sort_desc = false;

  // -- kLimit --------------------------------------------------------
  int64_t limit = -1;

  // -- kAggregate ----------------------------------------------------
  AggFunc agg = AggFunc::kNone;
  /// Partial mode (set by the federated engine on shard plans): emit the
  /// decomposed state {count, sum, min, max} instead of the final value,
  /// so per-shard partials combine exactly (COUNT/SUM add, MIN/MAX fold,
  /// AVG = sum/count).
  bool agg_partial = false;

  /// Indented plan explanation (EXPLAIN output).
  std::string Explain(int indent = 0) const;
};

/// A complete physical plan.
struct Plan {
  std::unique_ptr<PlanNode> root;
  std::vector<std::string> columns;  ///< Output column names.
  bool is_aggregate = false;

  /// Planner decisions, for instrumentation.
  bool used_tag_store = false;
  bool used_spatial_index = false;
  catalog::ObjectStore::Prediction prediction;  ///< Density-map estimate.

  std::string Explain() const;
};

/// Resolves a mydb table name to the personal store backing it, or null
/// when the name is unknown. Bound per user (archive::MyDb::ResolverFor);
/// the returned store pointer must stay valid for the plan's lifetime.
using MyDbResolver =
    std::function<const catalog::ObjectStore*(const std::string&)>;

/// Planner options.
struct PlannerOptions {
  /// Rewrite photo-table selects onto the tag vertical partition when
  /// every referenced attribute lives in the tag (the paper's "searched
  /// more than 10 times faster" path).
  bool auto_tag_selection = true;

  /// Extract spatial atoms into an HTM cover for container pruning. Off
  /// = full scan (the baseline of the C7 benchmark).
  bool use_spatial_index = true;

  /// Personal-store catalog for FROM mydb.<name> selects. Unset = mydb
  /// references fail with InvalidArgument. The federated engine's
  /// ExecContext overrides this per job (each user sees their own
  /// namespace).
  MyDbResolver mydb;
};

/// Lowers a parsed query against a store. Fails on unknown attributes.
Result<Plan> BuildPlan(const ParsedQuery& query,
                       const catalog::ObjectStore& store,
                       const PlannerOptions& options = {});

}  // namespace sdss::query

#endif  // SDSS_QUERY_QET_H_
