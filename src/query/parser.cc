#include "query/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "catalog/photo_obj.h"
#include "core/angle.h"
#include "core/coords.h"
#include "core/io.h"

namespace sdss::query {
namespace {

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // Identifier (upper-cased) or string literal (raw).
  double number = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      Token t;
      t.pos = pos_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          ident.push_back(src_[pos_++]);
        }
        // Qualified attribute: alias '.' attribute lexes as one "a.r"
        // identifier (a '.' followed by a digit still starts a number).
        if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
            (std::isalpha(static_cast<unsigned char>(src_[pos_ + 1])) ||
             src_[pos_ + 1] == '_')) {
          ident.push_back(src_[pos_++]);
          while (pos_ < src_.size() &&
                 (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                  src_[pos_] == '_')) {
            ident.push_back(src_[pos_++]);
          }
        }
        t.kind = Tok::kIdent;
        for (char& ch : ident) {
          ch = static_cast<char>(std::tolower(ch));
        }
        t.text = ident;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        char* end = nullptr;
        t.number = std::strtod(src_.c_str() + pos_, &end);
        if (end == src_.c_str() + pos_) {
          return Err("bad number");
        }
        pos_ = static_cast<size_t>(end - src_.c_str());
        t.kind = Tok::kNumber;
      } else if (c == '\'') {
        ++pos_;
        std::string s;
        while (pos_ < src_.size() && src_[pos_] != '\'') {
          s.push_back(src_[pos_++]);
        }
        if (pos_ >= src_.size()) return Err("unterminated string");
        ++pos_;
        t.kind = Tok::kString;
        t.text = s;
      } else {
        switch (c) {
          case ',':
            t.kind = Tok::kComma;
            ++pos_;
            break;
          case '(':
            t.kind = Tok::kLParen;
            ++pos_;
            break;
          case ')':
            t.kind = Tok::kRParen;
            ++pos_;
            break;
          case '*':
            t.kind = Tok::kStar;
            ++pos_;
            break;
          case '+':
            t.kind = Tok::kPlus;
            ++pos_;
            break;
          case '-':
            t.kind = Tok::kMinus;
            ++pos_;
            break;
          case '/':
            t.kind = Tok::kSlash;
            ++pos_;
            break;
          case '<':
            ++pos_;
            if (pos_ < src_.size() && src_[pos_] == '=') {
              t.kind = Tok::kLe;
              ++pos_;
            } else if (pos_ < src_.size() && src_[pos_] == '>') {
              t.kind = Tok::kNe;
              ++pos_;
            } else {
              t.kind = Tok::kLt;
            }
            break;
          case '>':
            ++pos_;
            if (pos_ < src_.size() && src_[pos_] == '=') {
              t.kind = Tok::kGe;
              ++pos_;
            } else {
              t.kind = Tok::kGt;
            }
            break;
          case '=':
            t.kind = Tok::kEq;
            ++pos_;
            break;
          case '!':
            ++pos_;
            if (pos_ < src_.size() && src_[pos_] == '=') {
              t.kind = Tok::kNe;
              ++pos_;
            } else {
              return Err("expected != ");
            }
            break;
          default:
            return Err(std::string("unexpected character '") + c + "'");
        }
      }
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = Tok::kEnd;
    end.pos = src_.size();
    out.push_back(end);
    return out;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(pos_));
  }
  const std::string& src_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<ParsedQuery> Run() {
    ParsedQuery q;
    auto first = ParseSelect();
    if (!first.ok()) return first.status();
    q.first = std::move(first).value();
    while (IsKeyword("union") || IsKeyword("intersect") ||
           IsKeyword("except")) {
      SetOp op = IsKeyword("union")
                     ? SetOp::kUnion
                     : (IsKeyword("intersect") ? SetOp::kIntersect
                                               : SetOp::kExcept);
      Advance();
      auto next = ParseSelect();
      if (!next.ok()) return next.status();
      q.rest.emplace_back(op, std::move(next).value());
    }
    if (Cur().kind != Tok::kEnd) return Err("trailing tokens");
    for (const auto& [op, select] : q.rest) {
      (void)op;
      if (!select.into_mydb.empty()) {
        return Status::InvalidArgument(
            "INTO is only allowed on the first SELECT of a query");
      }
    }
    return q;
  }

 private:
  const Token& Cur() const { return toks_[i_]; }
  void Advance() { ++i_; }
  bool IsKeyword(const char* kw) const {
    return Cur().kind == Tok::kIdent && Cur().text == kw;
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(Cur().pos));
  }
  Status Expect(Tok kind, const char* what) {
    if (Cur().kind != kind) return Err(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  // "mydb.<name>" lexes as one qualified identifier.
  bool IsMyDbRef() const {
    return Cur().kind == Tok::kIdent && Cur().text.rfind("mydb.", 0) == 0;
  }

  /// Consumes a mydb.<name> reference and returns the bare <name>.
  /// Names become on-disk paths once the durable MyDB store is attached,
  /// so they are gated here at parse time by the same rule
  /// archive::MyDb::Put enforces (one core ValidatePathComponent:
  /// non-empty, <= 64 chars, no '/', no '..') -- a bad name is a uniform
  /// InvalidArgument from both layers and never reaches a queue slot.
  Result<std::string> ParseMyDbRef() {
    if (!IsMyDbRef()) return Err("expected mydb.<name>");
    std::string name = Cur().text.substr(5);
    Status valid = ValidatePathComponent(name, "mydb table name");
    if (!valid.ok()) return Err(valid.message());
    Advance();
    return name;
  }

  Result<SelectQuery> ParseSelect() {
    SelectQuery s;
    if (!IsKeyword("select")) return Err("expected SELECT");
    Advance();

    // Projection.
    if (Cur().kind == Tok::kStar) {
      Advance();
    } else if (Cur().kind == Tok::kIdent &&
               (Cur().text == "count" || Cur().text == "min" ||
                Cur().text == "max" || Cur().text == "avg" ||
                Cur().text == "sum") &&
               toks_[i_ + 1].kind == Tok::kLParen) {
      std::string fn = Cur().text;
      Advance();
      Advance();  // '('
      if (fn == "count") {
        s.agg = AggFunc::kCount;
        if (Cur().kind == Tok::kStar) {
          Advance();
        } else if (Cur().kind == Tok::kIdent) {
          s.agg_attr = Cur().text;
          Advance();
        }
      } else {
        if (Cur().kind != Tok::kIdent) return Err("expected attribute");
        s.agg_attr = Cur().text;
        Advance();
        if (fn == "min") s.agg = AggFunc::kMin;
        if (fn == "max") s.agg = AggFunc::kMax;
        if (fn == "avg") s.agg = AggFunc::kAvg;
        if (fn == "sum") s.agg = AggFunc::kSum;
      }
      SDSS_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
    } else {
      for (;;) {
        if (Cur().kind != Tok::kIdent) return Err("expected attribute name");
        s.projection.push_back(Cur().text);
        Advance();
        if (Cur().kind != Tok::kComma) break;
        Advance();
      }
    }

    if (IsKeyword("into")) {
      Advance();
      auto name = ParseMyDbRef();
      if (!name.ok()) return name.status();
      if (!s.projection.empty() || s.agg != AggFunc::kNone) {
        return Err("INTO mydb requires SELECT *");
      }
      s.into_mydb = std::move(name).value();
    }

    if (!IsKeyword("from")) return Err("expected FROM");
    Advance();
    if (IsKeyword("photo") || IsKeyword("photoobj")) {
      s.table = TableRef::kPhoto;
      Advance();
    } else if (IsKeyword("tag")) {
      if (!s.into_mydb.empty()) {
        return Err("INTO mydb requires full photo objects, not TAG rows");
      }
      s.table = TableRef::kTag;
      Advance();
    } else if (IsMyDbRef()) {
      auto name = ParseMyDbRef();
      if (!name.ok()) return name.status();
      s.table = TableRef::kMyDb;
      s.mydb_name = std::move(name).value();
      if (!s.into_mydb.empty() && s.mydb_name == s.into_mydb) {
        return Err("INTO target and FROM table are the same mydb name");
      }
    } else {
      return Err("expected table PHOTO, TAG, or mydb.<name>");
    }
    if (IsKeyword("as")) {
      Advance();
      if (Cur().kind != Tok::kIdent) return Err("expected alias after AS");
      s.join.alias_a = Cur().text;
      Advance();
    }

    if (IsKeyword("join")) {
      Advance();
      if (!s.into_mydb.empty()) {
        return Err("INTO mydb cannot store join pairs");
      }
      if (s.table != TableRef::kPhoto) {
        return Err("pair join requires the PHOTO table");
      }
      if (!IsKeyword("photo") && !IsKeyword("photoobj")) {
        return Err("pair join is a PHOTO self-join");
      }
      Advance();
      if (!IsKeyword("as")) return Err("expected AS after JOIN table");
      Advance();
      if (Cur().kind != Tok::kIdent) return Err("expected join alias");
      s.join.alias_b = Cur().text;
      Advance();
      if (s.join.alias_b == s.join.alias_a) {
        return Err("join aliases must differ");
      }
      if (!IsKeyword("within")) return Err("expected WITHIN");
      Advance();
      if (Cur().kind != Tok::kNumber) return Err("expected separation");
      double sep = Cur().number;
      Advance();
      if (IsKeyword("arcsec")) {
        // Already arcsec.
      } else if (IsKeyword("arcmin")) {
        sep *= 60.0;
      } else if (IsKeyword("deg")) {
        sep *= kArcsecPerDeg;
      } else {
        return Err("expected ARCSEC, ARCMIN, or DEG");
      }
      Advance();
      if (sep <= 0.0) return Err("join separation must be positive");
      s.join.present = true;
      s.join.max_sep_arcsec = sep;
    }

    if (IsKeyword("where")) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      s.where = std::move(e).value();
    }
    if (IsKeyword("order")) {
      Advance();
      if (!IsKeyword("by")) return Err("expected BY");
      Advance();
      if (Cur().kind != Tok::kIdent) return Err("expected attribute");
      s.has_order = true;
      s.order_by = Cur().text;
      Advance();
      if (IsKeyword("asc")) {
        Advance();
      } else if (IsKeyword("desc")) {
        s.order_desc = true;
        Advance();
      }
    }
    if (IsKeyword("limit")) {
      Advance();
      if (Cur().kind != Tok::kNumber) return Err("expected LIMIT count");
      s.limit = static_cast<int64_t>(Cur().number);
      Advance();
    }
    if (IsKeyword("sample")) {
      Advance();
      if (Cur().kind != Tok::kNumber) return Err("expected SAMPLE fraction");
      s.sample = Cur().number;
      if (s.sample <= 0.0 || s.sample > 1.0) {
        return Err("SAMPLE fraction must be in (0, 1]");
      }
      Advance();
    }
    return s;
  }

  // expr := and_expr (OR and_expr)*
  Result<Expr::Ptr> ParseExpr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    Expr::Ptr e = std::move(lhs).value();
    while (IsKeyword("or")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = Expr::Binary(BinOp::kOr, e, std::move(rhs).value());
    }
    return e;
  }

  Result<Expr::Ptr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    Expr::Ptr e = std::move(lhs).value();
    while (IsKeyword("and")) {
      Advance();
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      e = Expr::Binary(BinOp::kAnd, e, std::move(rhs).value());
    }
    return e;
  }

  Result<Expr::Ptr> ParseNot() {
    if (IsKeyword("not")) {
      Advance();
      auto operand = ParseNot();
      if (!operand.ok()) return operand;
      return Expr::Not(std::move(operand).value());
    }
    return ParseComparison();
  }

  Result<Expr::Ptr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    Expr::Ptr e = std::move(lhs).value();
    BinOp op;
    switch (Cur().kind) {
      case Tok::kLt:
        op = BinOp::kLt;
        break;
      case Tok::kLe:
        op = BinOp::kLe;
        break;
      case Tok::kGt:
        op = BinOp::kGt;
        break;
      case Tok::kGe:
        op = BinOp::kGe;
        break;
      case Tok::kEq:
        op = BinOp::kEq;
        break;
      case Tok::kNe:
        op = BinOp::kNe;
        break;
      default:
        return e;
    }
    Advance();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    return Expr::Binary(op, e, std::move(rhs).value());
  }

  Result<Expr::Ptr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    Expr::Ptr e = std::move(lhs).value();
    for (;;) {
      if (Cur().kind == Tok::kPlus) {
        Advance();
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Expr::Binary(BinOp::kAdd, e, std::move(rhs).value());
      } else if (Cur().kind == Tok::kMinus) {
        Advance();
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) return rhs;
        e = Expr::Binary(BinOp::kSub, e, std::move(rhs).value());
      } else {
        return e;
      }
    }
  }

  Result<Expr::Ptr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    Expr::Ptr e = std::move(lhs).value();
    for (;;) {
      if (Cur().kind == Tok::kStar) {
        Advance();
        auto rhs = ParseUnary();
        if (!rhs.ok()) return rhs;
        e = Expr::Binary(BinOp::kMul, e, std::move(rhs).value());
      } else if (Cur().kind == Tok::kSlash) {
        Advance();
        auto rhs = ParseUnary();
        if (!rhs.ok()) return rhs;
        e = Expr::Binary(BinOp::kDiv, e, std::move(rhs).value());
      } else {
        return e;
      }
    }
  }

  Result<Expr::Ptr> ParseUnary() {
    if (Cur().kind == Tok::kMinus) {
      Advance();
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Expr::Neg(std::move(operand).value());
    }
    return ParsePrimary();
  }

  // Parses the argument list of a spatial atom: an optional leading frame
  // string followed by `n` numeric literals (possibly signed).
  Result<std::vector<double>> SpatialArgs(size_t n, Frame* frame) {
    SDSS_RETURN_IF_ERROR(Expect(Tok::kLParen, "("));
    *frame = Frame::kEquatorial;
    if (Cur().kind == Tok::kString) {
      auto f = FrameFromName(Cur().text);
      if (!f.ok()) return f.status();
      *frame = *f;
      Advance();
      SDSS_RETURN_IF_ERROR(Expect(Tok::kComma, ","));
    }
    std::vector<double> args;
    for (size_t k = 0; k < n; ++k) {
      double sign = 1.0;
      if (Cur().kind == Tok::kMinus) {
        sign = -1.0;
        Advance();
      }
      if (Cur().kind != Tok::kNumber) return Err("expected number");
      args.push_back(sign * Cur().number);
      Advance();
      if (k + 1 < n) SDSS_RETURN_IF_ERROR(Expect(Tok::kComma, ","));
    }
    SDSS_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
    return args;
  }

  Result<Expr::Ptr> ParsePrimary() {
    if (Cur().kind == Tok::kNumber) {
      double v = Cur().number;
      Advance();
      return Expr::Literal(v);
    }
    if (Cur().kind == Tok::kString) {
      // Class-name literal: 'GALAXY' -> numeric enum value.
      auto cls = catalog::ObjClassFromName(Cur().text);
      if (!cls.ok()) return cls.status();
      Advance();
      return Expr::Literal(static_cast<double>(*cls));
    }
    if (Cur().kind == Tok::kLParen) {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e;
      SDSS_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
      return e;
    }
    if (Cur().kind == Tok::kIdent) {
      std::string name = Cur().text;
      if (name == "circle" && toks_[i_ + 1].kind == Tok::kLParen) {
        Advance();
        Frame frame;
        auto args = SpatialArgs(3, &frame);
        if (!args.ok()) return args.status();
        char desc[96];
        std::snprintf(desc, sizeof(desc), "CIRCLE[%s](%g,%g,%g)",
                      FrameName(frame), (*args)[0], (*args)[1], (*args)[2]);
        return Expr::Spatial(
            htm::Region::Circle((*args)[0], (*args)[1], (*args)[2], frame),
            desc);
      }
      if (name == "rect" && toks_[i_ + 1].kind == Tok::kLParen) {
        Advance();
        Frame frame;
        auto args = SpatialArgs(4, &frame);
        if (!args.ok()) return args.status();
        char desc[112];
        std::snprintf(desc, sizeof(desc), "RECT[%s](%g,%g,%g,%g)",
                      FrameName(frame), (*args)[0], (*args)[1], (*args)[2],
                      (*args)[3]);
        return Expr::Spatial(
            htm::Region::Rect((*args)[0], (*args)[1], (*args)[2], (*args)[3],
                              frame),
            desc);
      }
      if (name == "band" && toks_[i_ + 1].kind == Tok::kLParen) {
        Advance();
        Frame frame;
        auto args = SpatialArgs(2, &frame);
        if (!args.ok()) return args.status();
        char desc[96];
        std::snprintf(desc, sizeof(desc), "BAND[%s](%g,%g)",
                      FrameName(frame), (*args)[0], (*args)[1]);
        return Expr::Spatial(
            htm::Region::LatBand((*args)[0], (*args)[1], frame), desc);
      }
      Advance();
      return Expr::Attr(name);
    }
    return Err("expected expression");
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
};

}  // namespace

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "NONE";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kSum:
      return "SUM";
  }
  return "?";
}

const char* SetOpName(SetOp op) {
  switch (op) {
    case SetOp::kUnion:
      return "UNION";
    case SetOp::kIntersect:
      return "INTERSECT";
    case SetOp::kExcept:
      return "EXCEPT";
  }
  return "?";
}

Result<ParsedQuery> Parse(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

}  // namespace sdss::query
