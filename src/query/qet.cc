#include "query/qet.h"

#include <algorithm>
#include <cstdio>

#include "catalog/photo_obj.h"
#include "dataflow/pair_hasher.h"

namespace sdss::query {

// ---------------------------------------------------------------------
// RowChannel

void RowChannel::AddWriter() {
  std::unique_lock<std::mutex> lock(mu_);
  ++writers_;
}

void RowChannel::CloseWriter() {
  std::unique_lock<std::mutex> lock(mu_);
  if (--writers_ == 0) cv_pop_.notify_all();
}

bool RowChannel::Push(RowBatch batch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_push_.wait(lock,
                [this] { return cancelled_ || queue_.size() < capacity_; });
  if (cancelled_) return false;
  queue_.push_back(std::move(batch));
  cv_pop_.notify_one();
  return true;
}

bool RowChannel::Pop(RowBatch* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_pop_.wait(lock, [this] {
    return cancelled_ || !queue_.empty() || writers_ == 0;
  });
  if (cancelled_) return false;
  if (queue_.empty()) return false;  // writers_ == 0: end of stream.
  *batch = std::move(queue_.front());
  queue_.pop_front();
  cv_push_.notify_one();
  return true;
}

void RowChannel::Cancel() {
  std::unique_lock<std::mutex> lock(mu_);
  cancelled_ = true;
  queue_.clear();
  cv_push_.notify_all();
  cv_pop_.notify_all();
}

bool RowChannel::cancelled() const {
  std::unique_lock<std::mutex> lock(mu_);
  return cancelled_;
}

// ---------------------------------------------------------------------
// Plan explanation

const char* PlanNodeTypeName(PlanNodeType t) {
  switch (t) {
    case PlanNodeType::kScan:
      return "SCAN";
    case PlanNodeType::kMyDbScan:
      return "MYDB_SCAN";
    case PlanNodeType::kPairJoin:
      return "PAIR_JOIN";
    case PlanNodeType::kUnion:
      return "UNION";
    case PlanNodeType::kIntersect:
      return "INTERSECT";
    case PlanNodeType::kDifference:
      return "DIFFERENCE";
    case PlanNodeType::kSort:
      return "SORT";
    case PlanNodeType::kLimit:
      return "LIMIT";
    case PlanNodeType::kAggregate:
      return "AGGREGATE";
  }
  return "?";
}

std::string PlanNode::Explain(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + PlanNodeTypeName(type);
  switch (type) {
    case PlanNodeType::kScan:
    case PlanNodeType::kMyDbScan:
      out += type == PlanNodeType::kMyDbScan
                 ? " mydb." + mydb_name
                 : (table == TableRef::kTag ? " tag" : " photo");
      if (has_region) out += " [spatially pruned]";
      if (predicate) out += " where " + predicate->ToString();
      if (sample < 1.0) {
        out += " sample " + std::to_string(sample);
      }
      break;
    case PlanNodeType::kPairJoin: {
      char buf[64];
      std::snprintf(buf, sizeof(buf),
                    " photo %s x %s within %g arcsec [buckets level %d]",
                    pair_alias_a.c_str(), pair_alias_b.c_str(),
                    pair_max_sep_arcsec, pair_bucket_level);
      out += buf;
      if (has_region) out += " [spatially pruned]";
      if (pair_select) out += " select " + pair_select->ToString();
      if (pair_where) out += " pair " + pair_where->ToString();
      break;
    }
    case PlanNodeType::kSort:
      out += " by column " + std::to_string(sort_column) +
             (sort_desc ? " desc" : " asc");
      break;
    case PlanNodeType::kLimit:
      out += " " + std::to_string(limit);
      break;
    case PlanNodeType::kAggregate:
      out += std::string(" ") + AggFuncName(agg);
      if (agg_partial) out += " [partial]";
      break;
    default:
      break;
  }
  out += "\n";
  for (const auto& c : children) out += c->Explain(indent + 1);
  return out;
}

std::string Plan::Explain() const {
  std::string out = root ? root->Explain() : "<empty>\n";
  out += used_tag_store ? "store: tag partition\n" : "store: full photo\n";
  out += used_spatial_index ? "index: HTM cover\n" : "index: none\n";
  return out;
}

// ---------------------------------------------------------------------
// Planner

namespace {

// Attributes a select needs: projection + predicate + order key.
std::vector<std::string> ReferencedAttrs(const SelectQuery& s) {
  std::vector<std::string> attrs = s.projection;
  if (s.where) s.where->CollectAttrs(&attrs);
  if (s.has_order &&
      std::find(attrs.begin(), attrs.end(), s.order_by) == attrs.end()) {
    attrs.push_back(s.order_by);
  }
  if (!s.agg_attr.empty() &&
      std::find(attrs.begin(), attrs.end(), s.agg_attr) == attrs.end()) {
    attrs.push_back(s.agg_attr);
  }
  // Deduplicate, preserving order.
  std::vector<std::string> out;
  for (auto& a : attrs) {
    if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
  }
  return out;
}

Status ValidateAttrs(const std::vector<std::string>& attrs, TableRef table) {
  for (const std::string& a : attrs) {
    if (table == TableRef::kTag) {
      if (!catalog::IsTagAttribute(a)) {
        return Status::InvalidArgument("attribute not in tag objects: " + a);
      }
    } else {
      const auto& names = catalog::PhotoAttributeNames();
      if (std::find(names.begin(), names.end(), a) == names.end()) {
        return Status::InvalidArgument("unknown attribute: " + a);
      }
    }
  }
  return Status::OK();
}

Expr::Ptr AndAlso(Expr::Ptr acc, Expr::Ptr e) {
  if (!acc) return e;
  return Expr::Binary(BinOp::kAnd, std::move(acc), std::move(e));
}

// A column a join select may project / order / fold: "sep" (the pair
// separation in arcsec) or an alias-qualified photo attribute.
Status ValidateJoinAttr(const std::string& name, const JoinClause& join) {
  if (name == "sep") return Status::OK();
  std::string alias, attr;
  if (!SplitQualifiedName(name, &alias, &attr)) {
    return Status::InvalidArgument(
        "join attributes must be qualified with '" + join.alias_a +
        ".' or '" + join.alias_b + ".' (or be 'sep'): " + name);
  }
  if (alias != join.alias_a && alias != join.alias_b) {
    return Status::InvalidArgument("unknown join alias: " + name);
  }
  const auto& names = catalog::PhotoAttributeNames();
  if (std::find(names.begin(), names.end(), attr) == names.end()) {
    return Status::InvalidArgument("unknown attribute: " + name);
  }
  return Status::OK();
}

// Lowers a neighbor-join select onto a kPairJoin leaf (+sort +limit).
// The WHERE splits along its top-level AND spine: unqualified conjuncts
// filter every candidate object in phase 1; alias-qualified conjuncts
// form the pair predicate evaluated under either role assignment. When
// both aliases carry one-sided conjuncts, their stripped disjunction is
// a sound extra phase-1 filter (every member of a qualifying pair
// satisfies one side's conjuncts under the satisfying assignment). A
// spatial bound extracted from the phase-1 filter prunes the join's
// container scan and ghost harvest: both pair members must pass it, so
// no pair can involve an unpruned container.
Result<std::unique_ptr<PlanNode>> PlanJoinSelect(
    const SelectQuery& s, const PlannerOptions& options, bool* used_index,
    std::vector<std::string>* cols) {
  const JoinClause& join = s.join;
  if (s.table != TableRef::kPhoto) {
    return Status::InvalidArgument("pair join requires the photo table");
  }
  if (s.sample < 1.0) {
    return Status::InvalidArgument("SAMPLE is not supported with JOIN");
  }

  std::vector<std::string> projection = s.projection;
  if (projection.empty() && s.agg == AggFunc::kNone) {
    projection = {join.alias_a + ".obj_id", join.alias_b + ".obj_id",
                  "sep"};
  }
  if (s.agg != AggFunc::kNone && !s.agg_attr.empty()) {
    projection = {s.agg_attr};
  }
  for (const std::string& name : projection) {
    SDSS_RETURN_IF_ERROR(ValidateJoinAttr(name, join));
  }

  size_t order_col = 0;
  if (s.has_order) {
    SDSS_RETURN_IF_ERROR(ValidateJoinAttr(s.order_by, join));
    auto it = std::find(projection.begin(), projection.end(), s.order_by);
    if (it == projection.end()) {
      projection.push_back(s.order_by);
      order_col = projection.size() - 1;
    } else {
      order_col = static_cast<size_t>(it - projection.begin());
    }
  }

  Expr::Ptr select_expr, pair_expr, side_a, side_b;
  if (s.where) {
    std::vector<Expr::Ptr> conjuncts;
    FlattenConjuncts(s.where, &conjuncts);
    for (const Expr::Ptr& c : conjuncts) {
      std::vector<std::string> attrs;
      c->CollectAttrs(&attrs);
      bool uses_a = false, uses_b = false, uses_bare = false;
      for (const std::string& n : attrs) {
        std::string alias, attr;
        if (SplitQualifiedName(n, &alias, &attr)) {
          SDSS_RETURN_IF_ERROR(ValidateJoinAttr(n, join));
          (alias == join.alias_a ? uses_a : uses_b) = true;
        } else {
          const auto& names = catalog::PhotoAttributeNames();
          if (std::find(names.begin(), names.end(), n) == names.end()) {
            return Status::InvalidArgument("unknown attribute: " + n);
          }
          uses_bare = true;
        }
      }
      if (!uses_a && !uses_b) {
        select_expr = AndAlso(std::move(select_expr), c);
        continue;
      }
      if (uses_bare) {
        return Status::InvalidArgument(
            "pair predicate mixes qualified and unqualified attributes: " +
            c->ToString());
      }
      pair_expr = AndAlso(std::move(pair_expr), c);
      if (uses_a && !uses_b) side_a = AndAlso(std::move(side_a), c);
      if (uses_b && !uses_a) side_b = AndAlso(std::move(side_b), c);
    }
  }
  if (side_a && side_b) {
    select_expr = AndAlso(
        std::move(select_expr),
        Expr::Binary(BinOp::kOr,
                     StripAliasQualifier(side_a, join.alias_a),
                     StripAliasQualifier(side_b, join.alias_b)));
  }

  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kPairJoin;
  node->table = TableRef::kPhoto;
  if (options.use_spatial_index && select_expr) {
    htm::Region region;
    if (ExtractRegion(select_expr, &region)) {
      node->has_region = true;
      node->region = std::move(region);
      *used_index = true;
    }
  }
  node->projection = projection;
  node->pair_max_sep_arcsec = join.max_sep_arcsec;
  node->pair_bucket_level =
      dataflow::PairHasher::ChooseBucketLevel(join.max_sep_arcsec);
  node->pair_select = std::move(select_expr);
  node->pair_where = std::move(pair_expr);
  node->pair_alias_a = join.alias_a;
  node->pair_alias_b = join.alias_b;

  std::unique_ptr<PlanNode> out = std::move(node);
  if (s.has_order) {
    auto sort = std::make_unique<PlanNode>();
    sort->type = PlanNodeType::kSort;
    sort->sort_column = order_col;
    sort->sort_desc = s.order_desc;
    sort->children.push_back(std::move(out));
    out = std::move(sort);
  }
  if (s.limit >= 0) {
    auto limit = std::make_unique<PlanNode>();
    limit->type = PlanNodeType::kLimit;
    limit->limit = s.limit;
    limit->children.push_back(std::move(out));
    out = std::move(limit);
  }
  *cols = projection;
  return out;
}

// Builds the scan (+sort +limit) subtree for one select block.
Result<std::unique_ptr<PlanNode>> PlanSelect(const SelectQuery& s,
                                             const catalog::ObjectStore& store,
                                             const PlannerOptions& options,
                                             bool* used_tag,
                                             bool* used_index,
                                             std::vector<std::string>* cols) {
  if (s.join.present) {
    *used_tag = false;
    *used_index = false;
    return PlanJoinSelect(s, options, used_index, cols);
  }
  std::vector<std::string> attrs = ReferencedAttrs(s);

  TableRef table = s.table;
  // Auto-selecting the tag partition is only sound when the store
  // actually maintains one (otherwise the rewrite would scan nothing)
  // and the select is not an INTO materialization (the MyDB sink needs
  // full photo rows, never the 10-column tag projection).
  if (options.auto_tag_selection && table == TableRef::kPhoto &&
      store.options().build_tags && s.into_mydb.empty()) {
    bool all_tag = true;
    for (const std::string& a : attrs) {
      if (!catalog::IsTagAttribute(a)) {
        all_tag = false;
        break;
      }
    }
    if (all_tag) table = TableRef::kTag;
  }
  SDSS_RETURN_IF_ERROR(ValidateAttrs(attrs, table));
  *used_tag = table == TableRef::kTag;

  // Projection: explicit attributes, or every attribute of the table for
  // SELECT * (aggregates project only what they fold).
  std::vector<std::string> projection = s.projection;
  if (projection.empty() && s.agg == AggFunc::kNone) {
    if (table == TableRef::kTag) {
      projection = {"cx", "cy", "cz", "u", "g", "r", "i", "z",
                    "size", "class"};
    } else {
      projection = catalog::PhotoAttributeNames();
    }
  }
  if (s.agg != AggFunc::kNone && !s.agg_attr.empty()) {
    projection = {s.agg_attr};
  }
  // ORDER BY key must be projected; append as a hidden trailing column if
  // missing (reported in `cols` so callers can see it).
  size_t order_col = 0;
  if (s.has_order) {
    auto it = std::find(projection.begin(), projection.end(), s.order_by);
    if (it == projection.end()) {
      projection.push_back(s.order_by);
      order_col = projection.size() - 1;
    } else {
      order_col = static_cast<size_t>(it - projection.begin());
    }
  }

  auto scan = std::make_unique<PlanNode>();
  scan->type = PlanNodeType::kScan;
  scan->table = table;
  if (s.table == TableRef::kMyDb) {
    // Resolve the personal store now: the plan embeds the pointer, so
    // execution needs no name lookup (and a bad name fails at plan time).
    if (!options.mydb) {
      return Status::InvalidArgument(
          "no mydb catalog configured; cannot resolve mydb." + s.mydb_name);
    }
    const catalog::ObjectStore* personal = options.mydb(s.mydb_name);
    if (personal == nullptr) {
      return Status::NotFound("mydb." + s.mydb_name + " does not exist");
    }
    scan->type = PlanNodeType::kMyDbScan;
    scan->mydb_store = personal;
    scan->mydb_name = s.mydb_name;
  }
  scan->predicate = s.where;
  scan->projection = projection;
  scan->sample = s.sample;
  scan->columnar_eligible = table != TableRef::kTag;
  if (options.use_spatial_index && s.where) {
    htm::Region region;
    if (ExtractRegion(s.where, &region)) {
      scan->has_region = true;
      scan->region = std::move(region);
      *used_index = true;
    }
  }

  std::unique_ptr<PlanNode> node = std::move(scan);
  if (s.has_order) {
    auto sort = std::make_unique<PlanNode>();
    sort->type = PlanNodeType::kSort;
    sort->sort_column = order_col;
    sort->sort_desc = s.order_desc;
    sort->children.push_back(std::move(node));
    node = std::move(sort);
  }
  if (s.limit >= 0) {
    auto limit = std::make_unique<PlanNode>();
    limit->type = PlanNodeType::kLimit;
    limit->limit = s.limit;
    limit->children.push_back(std::move(node));
    node = std::move(limit);
  }
  *cols = projection;
  return node;
}

}  // namespace

Result<Plan> BuildPlan(const ParsedQuery& query,
                       const catalog::ObjectStore& store,
                       const PlannerOptions& options) {
  Plan plan;

  if (query.IsSetQuery()) {
    bool any_join = query.first.join.present;
    bool first_mydb = query.first.table == TableRef::kMyDb;
    for (const auto& [op, select] : query.rest) {
      any_join = any_join || select.join.present;
      if ((select.table == TableRef::kMyDb) != first_mydb) {
        // A mydb store is personal (unsharded): fanning a mixed tree out
        // to N shards would scan the mydb branch N times.
        return Status::InvalidArgument(
            "mydb tables cannot be mixed with fleet tables in set "
            "operations");
      }
    }
    if (any_join) {
      return Status::InvalidArgument(
          "pair join cannot be combined with set operations");
    }
  }

  bool used_tag = false, used_index = false;
  std::vector<std::string> cols;
  auto first = PlanSelect(query.first, store, options, &used_tag,
                          &used_index, &cols);
  if (!first.ok()) return first.status();
  plan.columns = cols;
  plan.used_tag_store = used_tag;

  std::unique_ptr<PlanNode> root = std::move(first).value();

  for (const auto& [op, select] : query.rest) {
    bool tag2 = false, index2 = false;
    std::vector<std::string> cols2;
    auto sub = PlanSelect(select, store, options, &tag2, &index2, &cols2);
    if (!sub.ok()) return sub.status();
    if (cols2.size() != plan.columns.size()) {
      return Status::InvalidArgument(
          "set-operation branches project different column counts");
    }
    used_index = used_index || index2;
    plan.used_tag_store = plan.used_tag_store && tag2;

    auto set = std::make_unique<PlanNode>();
    switch (op) {
      case SetOp::kUnion:
        set->type = PlanNodeType::kUnion;
        break;
      case SetOp::kIntersect:
        set->type = PlanNodeType::kIntersect;
        break;
      case SetOp::kExcept:
        set->type = PlanNodeType::kDifference;
        break;
    }
    set->children.push_back(std::move(root));
    set->children.push_back(std::move(sub).value());
    root = std::move(set);
  }

  if (query.first.agg != AggFunc::kNone) {
    auto agg = std::make_unique<PlanNode>();
    agg->type = PlanNodeType::kAggregate;
    agg->agg = query.first.agg;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
    plan.is_aggregate = true;
    plan.columns = {std::string(AggFuncName(query.first.agg)) +
                    (query.first.agg_attr.empty()
                         ? "(*)"
                         : "(" + query.first.agg_attr + ")")};
  }

  plan.used_spatial_index = used_index;

  // Density-map prediction for the first scan (the paper's output-volume
  // estimate). Walk down to the leftmost leaf (scan or pair join).
  const PlanNode* scan = root.get();
  while (scan != nullptr && scan->type != PlanNodeType::kScan &&
         scan->type != PlanNodeType::kMyDbScan &&
         scan->type != PlanNodeType::kPairJoin) {
    scan = scan->children.empty() ? nullptr : scan->children[0].get();
  }
  // A mydb leaf predicts against its own (personal) store, not the fleet.
  const catalog::ObjectStore& pred_store =
      scan != nullptr && scan->type == PlanNodeType::kMyDbScan
          ? *scan->mydb_store
          : store;
  if (scan != nullptr && scan->has_region) {
    plan.prediction = pred_store.PredictRegion(scan->region);
  } else {
    catalog::StoreStats stats = pred_store.Stats();
    plan.prediction.min_objects = 0;
    plan.prediction.max_objects = stats.object_count;
    plan.prediction.expected_objects =
        static_cast<double>(stats.object_count);
    plan.prediction.bytes_to_scan = stats.full_bytes;
  }

  plan.root = std::move(root);
  return plan;
}

}  // namespace sdss::query
