#include "query/columnar_scan.h"

namespace sdss::query {

bool ColumnarScan::CompileExpr(const Expr& e, std::unique_ptr<Node>* out) {
  auto node = std::make_unique<Node>();
  node->kind = e.kind();
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      node->literal = e.literal();
      break;
    case Expr::Kind::kAttr: {
      auto getter = catalog::ResolveColumn(e.attr());
      if (!getter.ok()) return false;
      node->getter = *getter;
      break;
    }
    case Expr::Kind::kNeg:
    case Expr::Kind::kNot:
      if (!CompileExpr(*e.lhs(), &node->lhs)) return false;
      break;
    case Expr::Kind::kSpatial:
      node->region = e.region();
      break;
    case Expr::Kind::kBinary:
      node->op = e.op();
      if (!CompileExpr(*e.lhs(), &node->lhs)) return false;
      if (!CompileExpr(*e.rhs(), &node->rhs)) return false;
      break;
  }
  *out = std::move(node);
  return true;
}

bool ColumnarScan::Compile(const PlanNode& node,
                           const std::vector<std::string>& attrs,
                           ColumnarScan* out) {
  if (node.table == TableRef::kTag) return false;
  out->sample_ = node.sample;
  out->pred_.reset();
  out->simple_cmp_ = false;
  out->values_.clear();
  if (node.predicate && !CompileExpr(*node.predicate, &out->pred_)) {
    return false;
  }
  if (out->pred_ != nullptr) CompileSimpleCompare(out);
  out->values_.reserve(attrs.size());
  for (const std::string& name : attrs) {
    auto getter = catalog::ResolveColumn(name);
    if (!getter.ok()) return false;
    out->values_.push_back(*getter);
  }
  return true;
}

void ColumnarScan::CompileSimpleCompare(ColumnarScan* out) {
  const Node& p = *out->pred_;
  if (p.kind != Expr::Kind::kBinary) return;
  switch (p.op) {
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kEq:
    case BinOp::kNe:
      break;
    default:
      return;
  }
  const Node& l = *p.lhs;
  const Node& r = *p.rhs;
  if (l.kind == Expr::Kind::kAttr && r.kind == Expr::Kind::kLiteral) {
    out->cmp_op_ = p.op;
    out->cmp_getter_ = l.getter;
    out->cmp_literal_ = r.literal;
    out->simple_cmp_ = true;
    return;
  }
  if (l.kind == Expr::Kind::kLiteral && r.kind == Expr::Kind::kAttr) {
    // Mirror to attr-on-the-left form; double comparisons commute
    // exactly under the mirrored operator (including NaN: both sides of
    // each pair are false).
    switch (p.op) {
      case BinOp::kLt:
        out->cmp_op_ = BinOp::kGt;
        break;
      case BinOp::kLe:
        out->cmp_op_ = BinOp::kGe;
        break;
      case BinOp::kGt:
        out->cmp_op_ = BinOp::kLt;
        break;
      case BinOp::kGe:
        out->cmp_op_ = BinOp::kLe;
        break;
      default:
        out->cmp_op_ = p.op;  // kEq / kNe are symmetric.
        break;
    }
    out->cmp_getter_ = r.getter;
    out->cmp_literal_ = l.literal;
    out->simple_cmp_ = true;
  }
}

double ColumnarScan::EvalNode(const Node& n,
                              const catalog::ColumnarBlock& b, size_t i,
                              bool* err) {
  switch (n.kind) {
    case Expr::Kind::kLiteral:
      return n.literal;
    case Expr::Kind::kAttr:
      return n.getter(b, i);
    case Expr::Kind::kNeg:
      return -EvalNode(*n.lhs, b, i, err);
    case Expr::Kind::kNot:
      return EvalNode(*n.lhs, b, i, err) != 0.0 ? 0.0 : 1.0;
    case Expr::Kind::kSpatial:
      return n.region.Contains(b.Position(i)) ? 1.0 : 0.0;
    case Expr::Kind::kBinary: {
      // Short-circuit structure and child order mirror Expr::Eval: a
      // divisor behind an untaken AND/OR arm is never evaluated, and an
      // error in the left child masks one in the right.
      if (n.op == BinOp::kAnd) {
        const double l = EvalNode(*n.lhs, b, i, err);
        if (*err || l == 0.0) return 0.0;
        return EvalNode(*n.rhs, b, i, err) != 0.0 ? 1.0 : 0.0;
      }
      if (n.op == BinOp::kOr) {
        const double l = EvalNode(*n.lhs, b, i, err);
        if (*err) return 0.0;
        if (l != 0.0) return 1.0;
        return EvalNode(*n.rhs, b, i, err) != 0.0 ? 1.0 : 0.0;
      }
      const double l = EvalNode(*n.lhs, b, i, err);
      if (*err) return 0.0;
      const double r = EvalNode(*n.rhs, b, i, err);
      if (*err) return 0.0;
      switch (n.op) {
        case BinOp::kAdd:
          return l + r;
        case BinOp::kSub:
          return l - r;
        case BinOp::kMul:
          return l * r;
        case BinOp::kDiv:
          if (r == 0.0) {
            *err = true;  // The caller raises expr.cc's exact status.
            return 0.0;
          }
          return l / r;
        case BinOp::kLt:
          return l < r ? 1.0 : 0.0;
        case BinOp::kLe:
          return l <= r ? 1.0 : 0.0;
        case BinOp::kGt:
          return l > r ? 1.0 : 0.0;
        case BinOp::kGe:
          return l >= r ? 1.0 : 0.0;
        case BinOp::kEq:
          return l == r ? 1.0 : 0.0;
        case BinOp::kNe:
          return l != r ? 1.0 : 0.0;
        case BinOp::kAnd:
        case BinOp::kOr:
          break;
      }
      return 0.0;
    }
  }
  return 0.0;
}

void ColumnarScan::ProjectRow(const catalog::ColumnarBlock& block,
                              size_t i, ResultRow* row) const {
  row->obj_id = block.obj_id[i];
  row->pos = block.Position(i);
  row->values.clear();
  row->values.reserve(values_.size());
  for (const catalog::ColumnGetter& get : values_) {
    row->values.push_back(get(block, i));
  }
}

}  // namespace sdss::query
