#include "query/columnar_scan.h"

namespace sdss::query {

bool ColumnarScan::CompileExpr(const Expr& e, std::unique_ptr<Node>* out) {
  auto node = std::make_unique<Node>();
  node->kind = e.kind();
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      node->literal = e.literal();
      break;
    case Expr::Kind::kAttr: {
      auto getter = catalog::ResolveColumn(e.attr());
      if (!getter.ok()) return false;
      node->getter = *getter;
      break;
    }
    case Expr::Kind::kNeg:
    case Expr::Kind::kNot:
      if (!CompileExpr(*e.lhs(), &node->lhs)) return false;
      break;
    case Expr::Kind::kSpatial:
      node->region = e.region();
      break;
    case Expr::Kind::kBinary:
      // Division errors on a zero divisor in the row path, and whether
      // that error surfaces depends on evaluation order -- not
      // mirrorable, so the whole predicate falls back.
      if (e.op() == BinOp::kDiv) return false;
      node->op = e.op();
      if (!CompileExpr(*e.lhs(), &node->lhs)) return false;
      if (!CompileExpr(*e.rhs(), &node->rhs)) return false;
      break;
  }
  *out = std::move(node);
  return true;
}

bool ColumnarScan::Compile(const PlanNode& node,
                           const std::vector<std::string>& attrs,
                           ColumnarScan* out) {
  if (node.table == TableRef::kTag) return false;
  out->sample_ = node.sample;
  out->pred_.reset();
  out->values_.clear();
  if (node.predicate && !CompileExpr(*node.predicate, &out->pred_)) {
    return false;
  }
  out->values_.reserve(attrs.size());
  for (const std::string& name : attrs) {
    auto getter = catalog::ResolveColumn(name);
    if (!getter.ok()) return false;
    out->values_.push_back(*getter);
  }
  return true;
}

double ColumnarScan::EvalNode(const Node& n,
                              const catalog::ColumnarBlock& b, size_t i) {
  switch (n.kind) {
    case Expr::Kind::kLiteral:
      return n.literal;
    case Expr::Kind::kAttr:
      return n.getter(b, i);
    case Expr::Kind::kNeg:
      return -EvalNode(*n.lhs, b, i);
    case Expr::Kind::kNot:
      return EvalNode(*n.lhs, b, i) != 0.0 ? 0.0 : 1.0;
    case Expr::Kind::kSpatial:
      return n.region.Contains(b.Position(i)) ? 1.0 : 0.0;
    case Expr::Kind::kBinary: {
      if (n.op == BinOp::kAnd) {
        if (EvalNode(*n.lhs, b, i) == 0.0) return 0.0;
        return EvalNode(*n.rhs, b, i) != 0.0 ? 1.0 : 0.0;
      }
      if (n.op == BinOp::kOr) {
        if (EvalNode(*n.lhs, b, i) != 0.0) return 1.0;
        return EvalNode(*n.rhs, b, i) != 0.0 ? 1.0 : 0.0;
      }
      const double l = EvalNode(*n.lhs, b, i);
      const double r = EvalNode(*n.rhs, b, i);
      switch (n.op) {
        case BinOp::kAdd:
          return l + r;
        case BinOp::kSub:
          return l - r;
        case BinOp::kMul:
          return l * r;
        case BinOp::kLt:
          return l < r ? 1.0 : 0.0;
        case BinOp::kLe:
          return l <= r ? 1.0 : 0.0;
        case BinOp::kGt:
          return l > r ? 1.0 : 0.0;
        case BinOp::kGe:
          return l >= r ? 1.0 : 0.0;
        case BinOp::kEq:
          return l == r ? 1.0 : 0.0;
        case BinOp::kNe:
          return l != r ? 1.0 : 0.0;
        case BinOp::kDiv:  // Rejected at compile time.
        case BinOp::kAnd:
        case BinOp::kOr:
          break;
      }
      return 0.0;
    }
  }
  return 0.0;
}

void ColumnarScan::ProjectRow(const catalog::ColumnarBlock& block,
                              size_t i, ResultRow* row) const {
  row->obj_id = block.obj_id[i];
  row->values.clear();
  row->values.reserve(values_.size());
  for (const catalog::ColumnGetter& get : values_) {
    row->values.push_back(get(block, i));
  }
}

}  // namespace sdss::query
