#include "query/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace sdss::query {

namespace {

/// JSON string escaping for span names, annotation keys/values, and
/// SQL text carried in the trace metadata.
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

double TraceSpan::Num(std::string_view key, double dflt) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return v;
  }
  return dflt;
}

std::string_view TraceSpan::Note(std::string_view key) const {
  for (const auto& [k, v] : notes) {
    if (k == key) return v;
  }
  return {};
}

QueryTrace::QueryTrace() = default;

QueryTrace::QueryTrace(NowFn now) : now_(std::move(now)) {}

uint64_t QueryTrace::SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int QueryTrace::Begin(std::string_view name, int parent, int lane) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.name.assign(name);
  span.parent =
      parent >= 0 && parent < static_cast<int>(spans_.size()) ? parent
                                                              : kNoSpan;
  span.start_ns = now;
  span.lane = lane;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void QueryTrace::End(int span) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (span < 0 || span >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<size_t>(span)].end_ns = now;
}

void QueryTrace::Num(int span, std::string_view key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span < 0 || span >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<size_t>(span)].nums.emplace_back(std::string(key),
                                                      value);
}

void QueryTrace::Note(int span, std::string_view key,
                      std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (span < 0 || span >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<size_t>(span)].notes.emplace_back(std::string(key),
                                                       std::string(value));
}

void QueryTrace::SetMeta(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_.emplace_back(std::string(key), std::string(value));
}

size_t QueryTrace::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<TraceSpan> QueryTrace::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans_) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

std::string QueryTrace::ToChromeJson() const {
  std::vector<TraceSpan> spans;
  std::vector<std::pair<std::string, std::string>> meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    meta = meta_;
  }
  // Timestamps are exported relative to the earliest span so the trace
  // starts at t=0 regardless of the clock's epoch.
  uint64_t origin_ns = ~0ull;
  for (const TraceSpan& s : spans) origin_ns = std::min(origin_ns, s.start_ns);
  if (spans.empty()) origin_ns = 0;

  std::string out = "{\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    const double ts_us =
        static_cast<double>(s.start_ns - origin_ns) / 1000.0;
    const uint64_t end_ns = s.end_ns >= s.start_ns ? s.end_ns : s.start_ns;
    const double dur_us =
        static_cast<double>(end_ns - s.start_ns) / 1000.0;
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d,\"args\":{",
                  ts_us, dur_us, s.lane + 1);
    out += buf;
    bool first_arg = true;
    for (const auto& [k, v] : s.nums) {
      if (!first_arg) out += ",";
      first_arg = false;
      AppendJsonString(&out, k);
      std::snprintf(buf, sizeof(buf), ":%.6g", v);
      out += buf;
    }
    for (const auto& [k, v] : s.notes) {
      if (!first_arg) out += ",";
      first_arg = false;
      AppendJsonString(&out, k);
      out += ":";
      AppendJsonString(&out, v);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool first_meta = true;
  for (const auto& [k, v] : meta) {
    if (!first_meta) out += ",";
    first_meta = false;
    AppendJsonString(&out, k);
    out += ":";
    AppendJsonString(&out, v);
  }
  out += "}}";
  return out;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

uint64_t TraceRing::Push(TraceCapture capture) {
  std::lock_guard<std::mutex> lock(mu_);
  capture.id = ++pushes_;
  const uint64_t id = capture.id;
  ring_[next_] = std::move(capture);
  next_ = (next_ + 1) % capacity_;
  return id;
}

std::vector<TraceCapture> TraceRing::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceCapture> out;
  out.reserve(std::min<uint64_t>(pushes_, capacity_));
  for (size_t back = 1; back <= capacity_; ++back) {
    const TraceCapture& capture =
        ring_[(next_ + capacity_ - back) % capacity_];
    if (capture.id == 0) break;  // Ran past the populated region.
    out.push_back(capture);
  }
  return out;
}

TraceCapture TraceRing::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TraceCapture& capture : ring_) {
    if (capture.id == id) return capture;
  }
  return TraceCapture{};
}

uint64_t TraceRing::pushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushes_;
}

}  // namespace sdss::query
