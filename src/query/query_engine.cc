#include "query/query_engine.h"

#include <cstdio>
#include <iterator>

namespace sdss::query {

QueryEngine::QueryEngine(const catalog::ObjectStore* store, Options options,
                         ThreadPool* shared_pool)
    : store_(store),
      options_(options),
      executor_(store, options.executor, shared_pool) {}

Result<QueryResult> QueryEngine::Execute(const std::string& sql) {
  auto parsed = Parse(sql);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->first.into_mydb.empty()) {
    // The single-store engine has no materialization sink: refusing is
    // better than running the bare select and silently storing nothing.
    return Status::InvalidArgument(
        "INTO mydb." + parsed->first.into_mydb +
        " must run through the batch workbench");
  }
  auto plan = BuildPlan(*parsed, *store_, options_.planner);
  if (!plan.ok()) return plan.status();

  QueryResult result;
  result.columns = plan->columns;
  result.is_aggregate = plan->is_aggregate;
  result.prediction = plan->prediction;
  result.used_tag_store = plan->used_tag_store;
  result.used_spatial_index = plan->used_spatial_index;

  auto stats =
      executor_.RunTree(plan->root.get(), [&result](RowBatch&& batch) {
        result.rows.insert(result.rows.end(),
                           std::make_move_iterator(batch.begin()),
                           std::make_move_iterator(batch.end()));
        return true;
      });
  if (!stats.ok()) return stats.status();
  result.exec = *stats;
  if (result.is_aggregate && !result.rows.empty() &&
      !result.rows[0].values.empty()) {
    result.aggregate_value = result.rows[0].values[0];
  }
  return result;
}

Result<ExecStats> QueryEngine::ExecuteStreaming(
    const std::string& sql,
    const std::function<bool(const RowBatch&)>& on_batch) {
  auto parsed = Parse(sql);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->first.into_mydb.empty()) {
    return Status::InvalidArgument(
        "INTO mydb." + parsed->first.into_mydb +
        " must run through the batch workbench");
  }
  auto plan = BuildPlan(*parsed, *store_, options_.planner);
  if (!plan.ok()) return plan.status();
  return executor_.Run(*plan, on_batch);
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  auto parsed = Parse(sql);
  if (!parsed.ok()) return parsed.status();
  auto plan = BuildPlan(*parsed, *store_, options_.planner);
  if (!plan.ok()) return plan.status();
  std::string out = plan->Explain();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "prediction: %.0f objects expected [%llu, %llu], %llu bytes "
                "to scan\n",
                plan->prediction.expected_objects,
                static_cast<unsigned long long>(plan->prediction.min_objects),
                static_cast<unsigned long long>(plan->prediction.max_objects),
                static_cast<unsigned long long>(
                    plan->prediction.bytes_to_scan));
  out += buf;
  return out;
}

}  // namespace sdss::query
