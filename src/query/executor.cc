#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "catalog/photo_obj.h"
#include "core/random.h"
#include "dataflow/pair_hasher.h"
#include "query/columnar_scan.h"

namespace sdss::query {
namespace {

using catalog::Container;
using catalog::GetAttribute;
using catalog::GetTagAttribute;
using catalog::PhotoObj;
using catalog::TagObj;

/// Shared run state: error propagation, cooperative cancellation, and
/// scan counters.
struct RunContext {
  std::mutex mu;
  Status first_error;
  /// The job's cancel flag (null = not cancellable). Checked inside the
  /// scan and join loops so a long-running query releases its threads
  /// within one object/pair step of the flag being raised.
  const std::atomic<bool>* cancel = nullptr;
  /// Heat feedback: non-null when the caller wants to see every archive
  /// container the tree reads (thread-safe; personal stores excluded).
  const AccessRecorder* access = nullptr;
  std::atomic<uint64_t> containers_scanned{0};
  std::atomic<uint64_t> containers_columnar{0};
  std::atomic<uint64_t> objects_examined{0};
  std::atomic<uint64_t> objects_matched{0};
  std::atomic<uint64_t> bytes_touched{0};
  std::atomic<uint64_t> bytes_shipped{0};

  void ReportError(const Status& s) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.ok()) first_error = s;
  }
  bool has_error() {
    std::lock_guard<std::mutex> lock(mu);
    return !first_error.ok();
  }
  void RecordContainerAccess(const Container* c) {
    if (access != nullptr && *access) (*access)(c->trixel.raw());
  }
  /// True once the cancel flag is raised; records the Cancelled status
  /// (first error wins) so the tree unwinds like any scan failure.
  bool Cancelled() {
    if (cancel == nullptr || !cancel->load(std::memory_order_relaxed)) {
      return false;
    }
    ReportError(Status::Cancelled("query cancelled"));
    return true;
  }
};

/// Everything a running node tree needs to tear down: channels to cancel
/// and threads to join.
struct NodeRuntime {
  ThreadGroup threads;
  std::vector<std::shared_ptr<RowChannel>> channels;

  void CancelAll() {
    for (auto& ch : channels) ch->Cancel();
  }
};

// Projects one photo object into a row. Returns false (and reports) on
// evaluation error.
bool ProjectInto(const PhotoObj& o,
                 const std::vector<std::string>& projection,
                 RunContext* ctx, ResultRow* row) {
  row->obj_id = o.obj_id;
  row->pos = o.pos;
  row->values.clear();
  row->values.reserve(projection.size());
  for (const std::string& name : projection) {
    auto v = GetAttribute(o, name);
    if (!v.ok()) {
      ctx->ReportError(v.status());
      return false;
    }
    row->values.push_back(*v);
  }
  return true;
}

bool ProjectInto(const TagObj& t,
                 const std::vector<std::string>& projection,
                 RunContext* ctx, ResultRow* row) {
  row->obj_id = t.obj_id;
  row->pos = t.Position();
  row->values.clear();
  row->values.reserve(projection.size());
  for (const std::string& name : projection) {
    auto v = GetTagAttribute(t, name);
    if (!v.ok()) {
      ctx->ReportError(v.status());
      return false;
    }
    row->values.push_back(*v);
  }
  return true;
}

Result<double> GetAnyAttribute(const PhotoObj& o, const std::string& n) {
  return GetAttribute(o, n);
}
Result<double> GetAnyAttribute(const TagObj& t, const std::string& n) {
  return GetTagAttribute(t, n);
}
Vec3 PositionOf(const PhotoObj& o) { return o.pos; }
Vec3 PositionOf(const TagObj& t) { return t.Position(); }

// Walks one container's rows (tag or photo) applying sampling and the
// predicate -- THE definition of which objects a scan leaf yields, shared
// by the row-emitting scan and the aggregate pushdown so the two can
// never diverge. Calls `on_match` for every surviving object; returns
// false when the task must abort (error reported, or on_match said stop).
template <typename T, typename OnMatch>
bool VisitMatches(const std::vector<T>& rows, const PlanNode* node,
                  Rng* rng, RunContext* ctx, const OnMatch& on_match) {
  for (const T& obj : rows) {
    if (ctx->Cancelled()) return false;
    ctx->objects_examined.fetch_add(1);
    if (node->sample < 1.0 && !rng->Bernoulli(node->sample)) continue;
    if (node->predicate) {
      RowAccessor acc{
          [&obj](const std::string& n) { return GetAnyAttribute(obj, n); },
          PositionOf(obj)};
      auto ok = node->predicate->EvalBool(acc);
      if (!ok.ok()) {
        ctx->ReportError(ok.status());
        return false;
      }
      if (!*ok) continue;
    }
    if (!on_match(obj)) return false;
  }
  return true;
}

// Evaluates a pair-join predicate under the assignment (a = x, b = y).
Result<bool> PairHolds(const PlanNode* node, const PhotoObj& x,
                       const PhotoObj& y) {
  if (!node->pair_where) return true;
  RowAccessor acc{
      [node, &x, &y](const std::string& n) -> Result<double> {
        std::string alias, attr;
        if (SplitQualifiedName(n, &alias, &attr)) {
          if (alias == node->pair_alias_a) return GetAttribute(x, attr);
          if (alias == node->pair_alias_b) return GetAttribute(y, attr);
        }
        return Status::NotFound("unresolvable pair attribute: " + n);
      },
      x.pos};
  return node->pair_where->EvalBool(acc);
}

// Projects one joined pair under its bound assignment (a, b) into `row`.
bool ProjectPairInto(const PlanNode* node, const PhotoObj& a,
                     const PhotoObj& b, double sep_arcsec, RunContext* ctx,
                     ResultRow* row) {
  row->obj_id = a.obj_id;
  row->obj_id_b = b.obj_id;
  row->values.clear();
  row->values.reserve(node->projection.size());
  for (const std::string& name : node->projection) {
    if (name == "sep") {
      row->values.push_back(sep_arcsec);
      continue;
    }
    std::string alias, attr;
    if (!SplitQualifiedName(name, &alias, &attr)) {
      ctx->ReportError(
          Status::Internal("unqualified join projection: " + name));
      return false;
    }
    const PhotoObj& src = alias == node->pair_alias_a ? a : b;
    auto v = GetAttribute(src, attr);
    if (!v.ok()) {
      ctx->ReportError(v.status());
      return false;
    }
    row->values.push_back(*v);
  }
  return true;
}

// The containers a scan leaf must visit: pruned by the HTM cover when the
// node carries a region, restricted to the shard assignment when
// federated.
std::vector<const Container*> CollectScanContainers(
    const PlanNode* node, const catalog::ObjectStore* store,
    const std::unordered_set<uint64_t>* container_filter) {
  std::vector<const Container*> containers;
  auto assigned = [container_filter](uint64_t raw) {
    return container_filter == nullptr || container_filter->count(raw) > 0;
  };
  if (node->has_region) {
    htm::CoverResult cover = htm::Cover(node->region,
                                        store->cluster_level());
    auto add_range = [&](htm::HtmId id) {
      uint64_t first, last;
      id.RangeAtLevel(store->cluster_level(), &first, &last);
      const auto& all = store->containers();
      for (auto it = all.lower_bound(first);
           it != all.end() && it->first < last; ++it) {
        if (assigned(it->first)) containers.push_back(&it->second);
      }
    };
    for (htm::HtmId id : cover.full) add_range(id);
    for (htm::HtmId id : cover.partial) add_range(id);
  } else {
    for (const auto& [raw, c] : store->containers()) {
      if (assigned(raw)) containers.push_back(&c);
    }
  }
  return containers;
}

}  // namespace

ResultRow FinishAggregate(AggFunc agg, bool partial, const AggFold& f) {
  ResultRow result;
  result.obj_id = 0;
  if (partial) {
    result.values = {static_cast<double>(f.count), f.sum, f.min_v,
                     f.max_v};
    return result;
  }
  switch (agg) {
    case AggFunc::kCount:
      result.values.push_back(static_cast<double>(f.count));
      break;
    case AggFunc::kSum:
      result.values.push_back(f.sum);
      break;
    case AggFunc::kAvg:
      result.values.push_back(
          f.count ? f.sum / static_cast<double>(f.count) : 0.0);
      break;
    case AggFunc::kMin:
      result.values.push_back(f.count ? f.min_v : 0.0);
      break;
    case AggFunc::kMax:
      result.values.push_back(f.count ? f.max_v : 0.0);
      break;
    case AggFunc::kNone:
      break;
  }
  return result;
}

Executor::Executor(const catalog::ObjectStore* store, Options options,
                   ThreadPool* shared_pool)
    : store_(store), options_(options) {
  if (shared_pool != nullptr) {
    pool_ = shared_pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options.scan_threads);
    pool_ = owned_pool_.get();
  }
}

Result<ExecStats> Executor::Run(
    const Plan& plan, const std::function<bool(const RowBatch&)>& on_batch) {
  if (!plan.root) return Status::InvalidArgument("empty plan");
  return RunTree(plan.root.get(),
                 [&on_batch](RowBatch&& batch) { return on_batch(batch); });
}

Result<ExecStats> Executor::RunTree(
    const PlanNode* root, const std::function<bool(RowBatch&&)>& on_batch,
    const std::unordered_set<uint64_t>* container_filter,
    const PairJoinGhosts* join_ghosts, const std::atomic<bool>* cancel,
    const AccessRecorder* access_recorder) {
  if (root == nullptr) return Status::InvalidArgument("empty plan");

  auto ctx = std::make_shared<RunContext>();
  ctx->cancel = cancel;
  ctx->access = access_recorder;
  NodeRuntime runtime;

  // Recursive node launcher. Each call wires `node` to write into `out`.
  std::function<void(const PlanNode*, std::shared_ptr<RowChannel>)> start =
      [&](const PlanNode* node, std::shared_ptr<RowChannel> out) {
        out->AddWriter();
        switch (node->type) {
          case PlanNodeType::kScan:
          case PlanNodeType::kMyDbScan: {
            // A mydb leaf scans its own (personal, unsharded) store: the
            // federated container assignment never applies to it.
            const bool personal = node->type == PlanNodeType::kMyDbScan;
            const catalog::ObjectStore* scan_store =
                personal ? node->mydb_store : store_;
            const auto* filter = personal ? nullptr : container_filter;
            runtime.threads.Spawn([this, node, out, ctx, scan_store,
                                   filter] {
              std::vector<const Container*> containers =
                  CollectScanContainers(node, scan_store, filter);
              // Compile the leaf once; containers without column views
              // (and leaves the kernel rejects) take the row path.
              ColumnarScan kernel;
              const bool kernel_ok =
                  options_.columnar_kernel && node->columnar_eligible &&
                  ColumnarScan::Compile(*node, node->projection, &kernel);
              pool_->ParallelFor(containers.size(), [&](size_t ci) {
                if (out->cancelled() || ctx->Cancelled() ||
                    ctx->has_error()) {
                  return;
                }
                const Container* c = containers[ci];
                ctx->containers_scanned.fetch_add(1);
                if (node->type != PlanNodeType::kMyDbScan) {
                  ctx->RecordContainerAccess(c);
                }
                // Seeded by container INDEX, not task-claim order: the
                // same query samples the same objects on every run and
                // on every execution path (row or columnar kernel),
                // whatever the pool's scheduling did.
                Rng rng(node->sample_seed + ci * 7919);
                RowBatch batch;
                batch.reserve(options_.batch_size);
                ResultRow row;

                // Projects the matched object into `row`, then appends
                // it, pushing full batches downstream.
                auto emit = [&](const auto& obj) {
                  if (!ProjectInto(obj, node->projection, ctx.get(),
                                   &row)) {
                    return false;
                  }
                  ctx->objects_matched.fetch_add(1);
                  batch.push_back(row);
                  if (batch.size() >= options_.batch_size) {
                    if (!out->Push(std::move(batch))) return false;
                    batch.clear();
                    batch.reserve(options_.batch_size);
                  }
                  return true;
                };

                bool completed;
                if (node->table == TableRef::kTag) {
                  ctx->bytes_touched.fetch_add(c->TagBytes());
                  completed = VisitMatches(c->tag_rows(), node, &rng,
                                           ctx.get(), emit);
                } else if (kernel_ok && c->columnar.n > 0) {
                  ctx->bytes_touched.fetch_add(c->FullBytes());
                  ctx->containers_columnar.fetch_add(1);
                  const catalog::ColumnarBlock& block = c->columnar;
                  Status kernel_error;
                  completed = kernel.Scan(
                      block, &rng,
                      [&](size_t idx) {
                        kernel.ProjectRow(block, idx, &row);
                        ctx->objects_matched.fetch_add(1);
                        batch.push_back(row);
                        if (batch.size() >= options_.batch_size) {
                          if (!out->Push(std::move(batch))) return false;
                          batch.clear();
                          batch.reserve(options_.batch_size);
                        }
                        return true;
                      },
                      [&](size_t examined) {
                        if (out->cancelled() || ctx->Cancelled() ||
                            ctx->has_error()) {
                          return false;
                        }
                        ctx->objects_examined.fetch_add(examined);
                        return true;
                      },
                      &kernel_error);
                  if (!kernel_error.ok()) ctx->ReportError(kernel_error);
                } else {
                  ctx->bytes_touched.fetch_add(c->FullBytes());
                  completed = VisitMatches(c->rows(), node, &rng,
                                           ctx.get(), emit);
                }
                if (!completed) return;
                if (!batch.empty()) out->Push(std::move(batch));
              });
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kPairJoin: {
            // The shard-local spatial hash join: phase 1 scans the
            // (assigned) containers and hashes surviving objects into a
            // PairHasher -- plus any boundary ghosts the federated
            // engine shipped here -- and phase 2 compares buckets in
            // parallel, binding each qualifying pair to its satisfying
            // (a, b) assignment before projection.
            runtime.threads.Spawn([this, node, out, ctx, container_filter,
                                   join_ghosts] {
              std::vector<const Container*> containers =
                  CollectScanContainers(node, store_, container_filter);
              dataflow::PairHasher hasher(node->pair_max_sep_arcsec,
                                          node->pair_bucket_level);
              std::mutex hash_mu;
              pool_->ParallelFor(containers.size(), [&](size_t ci) {
                if (out->cancelled() || ctx->Cancelled() ||
                    ctx->has_error()) {
                  return;
                }
                const Container* c = containers[ci];
                ctx->containers_scanned.fetch_add(1);
                ctx->RecordContainerAccess(c);
                ctx->bytes_touched.fetch_add(c->FullBytes());
                // Filter + cover outside the lock; insert under it.
                std::vector<std::pair<const PhotoObj*,
                                      dataflow::PairHasher::BucketSet>>
                    selected;
                for (const PhotoObj& o : c->rows()) {
                  if (ctx->Cancelled()) return;
                  ctx->objects_examined.fetch_add(1);
                  if (node->pair_select) {
                    RowAccessor acc{[&o](const std::string& n) {
                                      return GetAttribute(o, n);
                                    },
                                    o.pos};
                    auto ok = node->pair_select->EvalBool(acc);
                    if (!ok.ok()) {
                      ctx->ReportError(ok.status());
                      return;
                    }
                    if (!*ok) continue;
                  }
                  selected.emplace_back(&o, hasher.ComputeBuckets(o));
                }
                std::lock_guard<std::mutex> lock(hash_mu);
                for (const auto& [o, buckets] : selected) {
                  hasher.AddComputed(o, buckets);
                }
              });
              if (join_ghosts != nullptr && !ctx->has_error()) {
                ctx->bytes_shipped.fetch_add(join_ghosts->objects.size() *
                                             sizeof(PhotoObj));
                for (const PhotoObj& g : join_ghosts->objects) {
                  hasher.Add(&g, /*local=*/false);
                }
              }
              if (ctx->has_error()) {
                out->CloseWriter();
                return;
              }

              std::vector<const dataflow::PairHasher::Bucket*> buckets =
                  hasher.BucketList();
              size_t batch_size = options_.batch_size;
              pool_->ParallelFor(buckets.size(), [&](size_t bi) {
                if (out->cancelled() || ctx->Cancelled() ||
                    ctx->has_error()) {
                  return;
                }
                RowBatch batch;
                batch.reserve(batch_size);
                ResultRow row;
                hasher.ForEachCandidatePair(
                    *buckets[bi],
                    [&](const PhotoObj& lo, const PhotoObj& hi,
                        double sep_arcsec) {
                      if (ctx->Cancelled()) return false;
                      auto fwd = PairHolds(node, lo, hi);
                      if (!fwd.ok()) {
                        ctx->ReportError(fwd.status());
                        return false;
                      }
                      const PhotoObj* a = &lo;
                      const PhotoObj* b = &hi;
                      if (!*fwd) {
                        auto rev = PairHolds(node, hi, lo);
                        if (!rev.ok()) {
                          ctx->ReportError(rev.status());
                          return false;
                        }
                        if (!*rev) return true;
                        a = &hi;
                        b = &lo;
                      }
                      if (!ProjectPairInto(node, *a, *b, sep_arcsec,
                                           ctx.get(), &row)) {
                        return false;
                      }
                      ctx->objects_matched.fetch_add(1);
                      batch.push_back(row);
                      if (batch.size() >= batch_size) {
                        if (!out->Push(std::move(batch))) return false;
                        batch.clear();
                        batch.reserve(batch_size);
                      }
                      return true;
                    });
                if (!batch.empty() && !ctx->has_error()) {
                  out->Push(std::move(batch));
                }
              });
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kUnion: {
            // Both children write into one shared channel; this node
            // deduplicates by obj_id as batches stream through.
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            for (const auto& child : node->children) {
              start(child.get(), in);
            }
            runtime.threads.Spawn([node, in, out] {
              (void)node;
              std::unordered_set<uint64_t> seen;
              RowBatch batch;
              while (in->Pop(&batch)) {
                RowBatch unique;
                for (ResultRow& r : batch) {
                  if (seen.insert(r.obj_id).second) {
                    unique.push_back(std::move(r));
                  }
                }
                if (!unique.empty() && !out->Push(std::move(unique))) {
                  in->Cancel();
                  break;
                }
              }
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kIntersect:
          case PlanNodeType::kDifference: {
            auto left = std::make_shared<RowChannel>();
            auto right = std::make_shared<RowChannel>();
            runtime.channels.push_back(left);
            runtime.channels.push_back(right);
            start(node->children[0].get(), left);
            start(node->children[1].get(), right);
            bool keep_if_present = node->type == PlanNodeType::kIntersect;
            runtime.threads.Spawn([left, right, out,
                                          keep_if_present] {
              // Build side: drain the right child completely first ("at
              // least one of the child nodes must be complete").
              std::unordered_set<uint64_t> right_ids;
              RowBatch batch;
              while (right->Pop(&batch)) {
                for (const ResultRow& r : batch) right_ids.insert(r.obj_id);
              }
              // Probe side: stream the left child.
              std::unordered_set<uint64_t> emitted;
              while (left->Pop(&batch)) {
                RowBatch keep;
                for (ResultRow& r : batch) {
                  bool present = right_ids.count(r.obj_id) > 0;
                  if (present == keep_if_present &&
                      emitted.insert(r.obj_id).second) {
                    keep.push_back(std::move(r));
                  }
                }
                if (!keep.empty() && !out->Push(std::move(keep))) {
                  left->Cancel();
                  break;
                }
              }
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kSort: {
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            start(node->children[0].get(), in);
            size_t batch_size = options_.batch_size;
            runtime.threads.Spawn([node, in, out, batch_size] {
              std::vector<ResultRow> all;
              RowBatch batch;
              while (in->Pop(&batch)) {
                for (ResultRow& r : batch) all.push_back(std::move(r));
              }
              size_t col = node->sort_column;
              bool desc = node->sort_desc;
              std::sort(all.begin(), all.end(),
                        [col, desc](const ResultRow& a, const ResultRow& b) {
                          return RowBefore(a, b, col, desc);
                        });
              for (size_t i = 0; i < all.size(); i += batch_size) {
                RowBatch chunk(
                    all.begin() + static_cast<ptrdiff_t>(i),
                    all.begin() + static_cast<ptrdiff_t>(
                                      std::min(i + batch_size, all.size())));
                if (!out->Push(std::move(chunk))) break;
              }
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kLimit: {
            const PlanNode* sort_child = node->children[0].get();
            if (sort_child->type == PlanNodeType::kSort &&
                node->limit >= 0) {
              // Top-k fusion: LIMIT over SORT keeps a bounded heap of the
              // k best rows instead of materializing and sorting the full
              // input -- O(N + k log k) comparisons and O(k) live rows.
              auto in = std::make_shared<RowChannel>();
              runtime.channels.push_back(in);
              start(sort_child->children[0].get(), in);
              size_t batch_size = options_.batch_size;
              runtime.threads.Spawn([node, sort_child, in, out,
                                     batch_size] {
                size_t k = static_cast<size_t>(node->limit);
                size_t col = sort_child->sort_column;
                bool desc = sort_child->sort_desc;
                auto before = [col, desc](const ResultRow& a,
                                          const ResultRow& b) {
                  return RowBefore(a, b, col, desc);
                };
                // Max-heap under `before`: front = worst kept row.
                std::vector<ResultRow> heap;
                heap.reserve(std::min<size_t>(k, 4096));
                RowBatch batch;
                if (k == 0) {
                  in->Cancel();
                } else {
                  while (in->Pop(&batch)) {
                    for (ResultRow& r : batch) {
                      if (heap.size() < k) {
                        heap.push_back(std::move(r));
                        std::push_heap(heap.begin(), heap.end(), before);
                      } else if (before(r, heap.front())) {
                        std::pop_heap(heap.begin(), heap.end(), before);
                        heap.back() = std::move(r);
                        std::push_heap(heap.begin(), heap.end(), before);
                      }
                    }
                  }
                  std::sort_heap(heap.begin(), heap.end(), before);
                }
                for (size_t i = 0; i < heap.size(); i += batch_size) {
                  RowBatch chunk(
                      std::make_move_iterator(
                          heap.begin() + static_cast<ptrdiff_t>(i)),
                      std::make_move_iterator(
                          heap.begin() +
                          static_cast<ptrdiff_t>(std::min(
                              i + batch_size, heap.size()))));
                  if (!out->Push(std::move(chunk))) break;
                }
                out->CloseWriter();
              });
              break;
            }
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            start(node->children[0].get(), in);
            runtime.threads.Spawn([node, in, out] {
              int64_t remaining = node->limit;
              RowBatch batch;
              while (remaining > 0 && in->Pop(&batch)) {
                if (static_cast<int64_t>(batch.size()) > remaining) {
                  batch.resize(static_cast<size_t>(remaining));
                }
                remaining -= static_cast<int64_t>(batch.size());
                if (!out->Push(std::move(batch))) break;
              }
              in->Cancel();  // Early-out: abort upstream work.
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kAggregate: {
            const PlanNode* scan = node->children[0].get();
            if (scan->type == PlanNodeType::kScan ||
                scan->type == PlanNodeType::kMyDbScan) {
              // Aggregate pushdown: fold inside the container scan. No
              // rows are materialized and no channel sits between scan
              // and fold, so an aggregate costs exactly one pass over
              // the (pruned) containers -- and the federated fan-out's
              // N concurrent sub-aggregates stop ping-ponging batches.
              const bool personal = scan->type == PlanNodeType::kMyDbScan;
              const catalog::ObjectStore* scan_store =
                  personal ? scan->mydb_store : store_;
              const auto* filter = personal ? nullptr : container_filter;
              runtime.threads.Spawn([this, node, scan, out, ctx,
                                     scan_store, filter] {
                std::vector<const Container*> containers =
                    CollectScanContainers(scan, scan_store, filter);
                const bool need_value = !scan->projection.empty();
                const std::string* attr =
                    need_value ? &scan->projection[0] : nullptr;
                ColumnarScan kernel;
                const bool kernel_ok =
                    options_.columnar_kernel && scan->columnar_eligible &&
                    ColumnarScan::Compile(*scan, scan->projection,
                                          &kernel);
                std::mutex fold_mu;
                AggFold total;
                pool_->ParallelFor(containers.size(), [&](size_t ci) {
                  if (out->cancelled() || ctx->Cancelled() ||
                      ctx->has_error()) {
                    return;
                  }
                  const Container* c = containers[ci];
                  ctx->containers_scanned.fetch_add(1);
                  if (scan->type != PlanNodeType::kMyDbScan) {
                    ctx->RecordContainerAccess(c);
                  }
                  // Index-seeded like the row-emitting scan: SAMPLE
                  // picks the same objects whichever thread claims the
                  // container.
                  Rng rng(scan->sample_seed + ci * 7919);
                  AggFold local;
                  auto fold = [&](const auto& obj) {
                    if (need_value) {
                      auto v = GetAnyAttribute(obj, *attr);
                      if (!v.ok()) {
                        ctx->ReportError(v.status());
                        return false;
                      }
                      local.Add(*v);
                    }
                    ++local.count;
                    return true;
                  };
                  bool completed;
                  if (scan->table == TableRef::kTag) {
                    ctx->bytes_touched.fetch_add(c->TagBytes());
                    completed = VisitMatches(c->tag_rows(), scan, &rng,
                                             ctx.get(), fold);
                  } else if (kernel_ok && c->columnar.n > 0) {
                    ctx->bytes_touched.fetch_add(c->FullBytes());
                    ctx->containers_columnar.fetch_add(1);
                    const catalog::ColumnarBlock& block = c->columnar;
                    Status kernel_error;
                    completed = kernel.Scan(
                        block, &rng,
                        [&](size_t idx) {
                          if (need_value) {
                            local.Add(kernel.Value(block, idx));
                          }
                          ++local.count;
                          return true;
                        },
                        [&](size_t examined) {
                          if (out->cancelled() || ctx->Cancelled() ||
                              ctx->has_error()) {
                            return false;
                          }
                          ctx->objects_examined.fetch_add(examined);
                          return true;
                        },
                        &kernel_error);
                    if (!kernel_error.ok()) ctx->ReportError(kernel_error);
                  } else {
                    ctx->bytes_touched.fetch_add(c->FullBytes());
                    completed = VisitMatches(c->rows(), scan, &rng,
                                             ctx.get(), fold);
                  }
                  if (!completed) return;
                  ctx->objects_matched.fetch_add(local.count);
                  std::lock_guard<std::mutex> lock(fold_mu);
                  total.Merge(local);
                });
                if (!ctx->has_error()) {
                  out->Push(
                      {FinishAggregate(node->agg, node->agg_partial,
                                       total)});
                }
                out->CloseWriter();
              });
              break;
            }
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            start(node->children[0].get(), in);
            runtime.threads.Spawn([node, in, out] {
              AggFold fold;
              RowBatch batch;
              while (in->Pop(&batch)) {
                for (const ResultRow& r : batch) {
                  ++fold.count;
                  if (!r.values.empty()) fold.Add(r.values[0]);
                }
              }
              out->Push(
                  {FinishAggregate(node->agg, node->agg_partial, fold)});
              out->CloseWriter();
            });
            break;
          }
        }
      };

  auto root_channel = std::make_shared<RowChannel>();
  runtime.channels.push_back(root_channel);

  auto t0 = std::chrono::steady_clock::now();
  start(root, root_channel);

  ExecStats stats;
  bool first = true;
  RowBatch batch;
  while (root_channel->Pop(&batch)) {
    if (first && !batch.empty()) {
      stats.seconds_to_first_row =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      first = false;
    }
    stats.rows_emitted += batch.size();
    if (!on_batch(std::move(batch))) {
      stats.cancelled_early = true;
      runtime.CancelAll();
      break;
    }
  }
  runtime.CancelAll();  // No-op if streams completed normally... except
                        // cancel unblocks any stragglers for join.
  runtime.threads.JoinAll();

  auto t1 = std::chrono::steady_clock::now();
  stats.seconds_total = std::chrono::duration<double>(t1 - t0).count();
  if (first) stats.seconds_to_first_row = stats.seconds_total;
  stats.containers_scanned = ctx->containers_scanned.load();
  stats.containers_columnar = ctx->containers_columnar.load();
  stats.objects_examined = ctx->objects_examined.load();
  stats.objects_matched = ctx->objects_matched.load();
  stats.bytes_touched = ctx->bytes_touched.load();
  stats.bytes_shipped = ctx->bytes_shipped.load();

  {
    std::lock_guard<std::mutex> lock(ctx->mu);
    if (!ctx->first_error.ok()) return ctx->first_error;
  }
  return stats;
}

}  // namespace sdss::query
