#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "catalog/photo_obj.h"
#include "core/random.h"

namespace sdss::query {
namespace {

using catalog::Container;
using catalog::GetAttribute;
using catalog::GetTagAttribute;
using catalog::PhotoObj;
using catalog::TagObj;

/// Shared run state: error propagation and scan counters.
struct RunContext {
  std::mutex mu;
  Status first_error;
  std::atomic<uint64_t> containers_scanned{0};
  std::atomic<uint64_t> objects_examined{0};
  std::atomic<uint64_t> objects_matched{0};
  std::atomic<uint64_t> bytes_touched{0};

  void ReportError(const Status& s) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.ok()) first_error = s;
  }
  bool has_error() {
    std::lock_guard<std::mutex> lock(mu);
    return !first_error.ok();
  }
};

/// Everything a running node tree needs to tear down: channels to cancel
/// and threads to join.
struct NodeRuntime {
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<RowChannel>> channels;

  void CancelAll() {
    for (auto& ch : channels) ch->Cancel();
  }
  void JoinAll() {
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

// Projects one photo object into a row. Returns false (and reports) on
// evaluation error.
bool ProjectPhoto(const PhotoObj& o,
                  const std::vector<std::string>& projection,
                  RunContext* ctx, ResultRow* row) {
  row->obj_id = o.obj_id;
  row->values.clear();
  row->values.reserve(projection.size());
  for (const std::string& name : projection) {
    auto v = GetAttribute(o, name);
    if (!v.ok()) {
      ctx->ReportError(v.status());
      return false;
    }
    row->values.push_back(*v);
  }
  return true;
}

bool ProjectTag(const TagObj& t, const std::vector<std::string>& projection,
                RunContext* ctx, ResultRow* row) {
  row->obj_id = t.obj_id;
  row->values.clear();
  row->values.reserve(projection.size());
  for (const std::string& name : projection) {
    auto v = GetTagAttribute(t, name);
    if (!v.ok()) {
      ctx->ReportError(v.status());
      return false;
    }
    row->values.push_back(*v);
  }
  return true;
}

}  // namespace

Executor::Executor(const catalog::ObjectStore* store, Options options)
    : store_(store), options_(options), pool_(options.scan_threads) {}

Result<ExecStats> Executor::Run(
    const Plan& plan, const std::function<bool(const RowBatch&)>& on_batch) {
  if (!plan.root) return Status::InvalidArgument("empty plan");

  auto ctx = std::make_shared<RunContext>();
  NodeRuntime runtime;

  // Recursive node launcher. Each call wires `node` to write into `out`.
  std::function<void(const PlanNode*, std::shared_ptr<RowChannel>)> start =
      [&](const PlanNode* node, std::shared_ptr<RowChannel> out) {
        out->AddWriter();
        switch (node->type) {
          case PlanNodeType::kScan: {
            runtime.threads.emplace_back([this, node, out, ctx] {
              // Container list, pruned by the HTM cover when available.
              std::vector<const Container*> containers;
              if (node->has_region) {
                htm::CoverResult cover =
                    htm::Cover(node->region, store_->cluster_level());
                auto add_range = [&](htm::HtmId id) {
                  uint64_t first, last;
                  id.RangeAtLevel(store_->cluster_level(), &first, &last);
                  const auto& all = store_->containers();
                  for (auto it = all.lower_bound(first);
                       it != all.end() && it->first < last; ++it) {
                    containers.push_back(&it->second);
                  }
                };
                for (htm::HtmId id : cover.full) add_range(id);
                for (htm::HtmId id : cover.partial) add_range(id);
              } else {
                for (const auto& [raw, c] : store_->containers()) {
                  containers.push_back(&c);
                }
              }

              std::atomic<uint64_t> salt{0};
              pool_.ParallelFor(containers.size(), [&](size_t ci) {
                if (out->cancelled() || ctx->has_error()) return;
                const Container* c = containers[ci];
                ctx->containers_scanned.fetch_add(1);
                Rng rng(node->sample_seed + salt.fetch_add(1) * 7919 + ci);
                RowBatch batch;
                batch.reserve(options_.batch_size);
                ResultRow row;

                auto emit = [&](bool matched) {
                  if (!matched) return true;
                  ctx->objects_matched.fetch_add(1);
                  batch.push_back(row);
                  if (batch.size() >= options_.batch_size) {
                    if (!out->Push(std::move(batch))) return false;
                    batch.clear();
                    batch.reserve(options_.batch_size);
                  }
                  return true;
                };

                if (node->table == TableRef::kTag) {
                  ctx->bytes_touched.fetch_add(c->TagBytes());
                  for (const TagObj& t : c->tags) {
                    ctx->objects_examined.fetch_add(1);
                    if (node->sample < 1.0 &&
                        !rng.Bernoulli(node->sample)) {
                      continue;
                    }
                    if (node->predicate) {
                      RowAccessor acc{
                          [&t](const std::string& n) {
                            return GetTagAttribute(t, n);
                          },
                          t.Position()};
                      auto ok = node->predicate->EvalBool(acc);
                      if (!ok.ok()) {
                        ctx->ReportError(ok.status());
                        return;
                      }
                      if (!*ok) continue;
                    }
                    if (!ProjectTag(t, node->projection, ctx.get(), &row)) {
                      return;
                    }
                    if (!emit(true)) return;
                  }
                } else {
                  ctx->bytes_touched.fetch_add(c->FullBytes());
                  for (const PhotoObj& o : c->objects) {
                    ctx->objects_examined.fetch_add(1);
                    if (node->sample < 1.0 &&
                        !rng.Bernoulli(node->sample)) {
                      continue;
                    }
                    if (node->predicate) {
                      RowAccessor acc{
                          [&o](const std::string& n) {
                            return GetAttribute(o, n);
                          },
                          o.pos};
                      auto ok = node->predicate->EvalBool(acc);
                      if (!ok.ok()) {
                        ctx->ReportError(ok.status());
                        return;
                      }
                      if (!*ok) continue;
                    }
                    if (!ProjectPhoto(o, node->projection, ctx.get(),
                                      &row)) {
                      return;
                    }
                    if (!emit(true)) return;
                  }
                }
                if (!batch.empty()) out->Push(std::move(batch));
              });
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kUnion: {
            // Both children write into one shared channel; this node
            // deduplicates by obj_id as batches stream through.
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            for (const auto& child : node->children) {
              start(child.get(), in);
            }
            runtime.threads.emplace_back([node, in, out] {
              (void)node;
              std::unordered_set<uint64_t> seen;
              RowBatch batch;
              while (in->Pop(&batch)) {
                RowBatch unique;
                for (ResultRow& r : batch) {
                  if (seen.insert(r.obj_id).second) {
                    unique.push_back(std::move(r));
                  }
                }
                if (!unique.empty() && !out->Push(std::move(unique))) {
                  in->Cancel();
                  break;
                }
              }
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kIntersect:
          case PlanNodeType::kDifference: {
            auto left = std::make_shared<RowChannel>();
            auto right = std::make_shared<RowChannel>();
            runtime.channels.push_back(left);
            runtime.channels.push_back(right);
            start(node->children[0].get(), left);
            start(node->children[1].get(), right);
            bool keep_if_present = node->type == PlanNodeType::kIntersect;
            runtime.threads.emplace_back([left, right, out,
                                          keep_if_present] {
              // Build side: drain the right child completely first ("at
              // least one of the child nodes must be complete").
              std::unordered_set<uint64_t> right_ids;
              RowBatch batch;
              while (right->Pop(&batch)) {
                for (const ResultRow& r : batch) right_ids.insert(r.obj_id);
              }
              // Probe side: stream the left child.
              std::unordered_set<uint64_t> emitted;
              while (left->Pop(&batch)) {
                RowBatch keep;
                for (ResultRow& r : batch) {
                  bool present = right_ids.count(r.obj_id) > 0;
                  if (present == keep_if_present &&
                      emitted.insert(r.obj_id).second) {
                    keep.push_back(std::move(r));
                  }
                }
                if (!keep.empty() && !out->Push(std::move(keep))) {
                  left->Cancel();
                  break;
                }
              }
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kSort: {
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            start(node->children[0].get(), in);
            size_t batch_size = options_.batch_size;
            runtime.threads.emplace_back([node, in, out, batch_size] {
              std::vector<ResultRow> all;
              RowBatch batch;
              while (in->Pop(&batch)) {
                for (ResultRow& r : batch) all.push_back(std::move(r));
              }
              size_t col = node->sort_column;
              bool desc = node->sort_desc;
              std::sort(all.begin(), all.end(),
                        [col, desc](const ResultRow& a, const ResultRow& b) {
                          double av = a.values[col], bv = b.values[col];
                          if (av != bv) return desc ? av > bv : av < bv;
                          return a.obj_id < b.obj_id;  // Stable tie-break.
                        });
              for (size_t i = 0; i < all.size(); i += batch_size) {
                RowBatch chunk(
                    all.begin() + static_cast<ptrdiff_t>(i),
                    all.begin() + static_cast<ptrdiff_t>(
                                      std::min(i + batch_size, all.size())));
                if (!out->Push(std::move(chunk))) break;
              }
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kLimit: {
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            start(node->children[0].get(), in);
            runtime.threads.emplace_back([node, in, out] {
              int64_t remaining = node->limit;
              RowBatch batch;
              while (remaining > 0 && in->Pop(&batch)) {
                if (static_cast<int64_t>(batch.size()) > remaining) {
                  batch.resize(static_cast<size_t>(remaining));
                }
                remaining -= static_cast<int64_t>(batch.size());
                if (!out->Push(std::move(batch))) break;
              }
              in->Cancel();  // Early-out: abort upstream work.
              out->CloseWriter();
            });
            break;
          }

          case PlanNodeType::kAggregate: {
            auto in = std::make_shared<RowChannel>();
            runtime.channels.push_back(in);
            start(node->children[0].get(), in);
            runtime.threads.emplace_back([node, in, out] {
              uint64_t count = 0;
              double sum = 0.0;
              double min_v = std::numeric_limits<double>::infinity();
              double max_v = -std::numeric_limits<double>::infinity();
              RowBatch batch;
              while (in->Pop(&batch)) {
                for (const ResultRow& r : batch) {
                  ++count;
                  if (!r.values.empty()) {
                    double v = r.values[0];
                    sum += v;
                    min_v = std::min(min_v, v);
                    max_v = std::max(max_v, v);
                  }
                }
              }
              ResultRow result;
              result.obj_id = 0;
              switch (node->agg) {
                case AggFunc::kCount:
                  result.values.push_back(static_cast<double>(count));
                  break;
                case AggFunc::kSum:
                  result.values.push_back(sum);
                  break;
                case AggFunc::kAvg:
                  result.values.push_back(count ? sum / double(count) : 0.0);
                  break;
                case AggFunc::kMin:
                  result.values.push_back(count ? min_v : 0.0);
                  break;
                case AggFunc::kMax:
                  result.values.push_back(count ? max_v : 0.0);
                  break;
                case AggFunc::kNone:
                  break;
              }
              out->Push({std::move(result)});
              out->CloseWriter();
            });
            break;
          }
        }
      };

  auto root_channel = std::make_shared<RowChannel>();
  runtime.channels.push_back(root_channel);

  auto t0 = std::chrono::steady_clock::now();
  start(plan.root.get(), root_channel);

  ExecStats stats;
  bool first = true;
  RowBatch batch;
  while (root_channel->Pop(&batch)) {
    if (first && !batch.empty()) {
      stats.seconds_to_first_row =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      first = false;
    }
    stats.rows_emitted += batch.size();
    if (!on_batch(batch)) {
      stats.cancelled_early = true;
      runtime.CancelAll();
      break;
    }
  }
  runtime.CancelAll();  // No-op if streams completed normally... except
                        // cancel unblocks any stragglers for join.
  runtime.JoinAll();

  auto t1 = std::chrono::steady_clock::now();
  stats.seconds_total = std::chrono::duration<double>(t1 - t0).count();
  if (first) stats.seconds_to_first_row = stats.seconds_total;
  stats.containers_scanned = ctx->containers_scanned.load();
  stats.objects_examined = ctx->objects_examined.load();
  stats.objects_matched = ctx->objects_matched.load();
  stats.bytes_touched = ctx->bytes_touched.load();

  {
    std::lock_guard<std::mutex> lock(ctx->mu);
    if (!ctx->first_error.ok()) return ctx->first_error;
  }
  return stats;
}

}  // namespace sdss::query
