// The columnar scan kernel: predicate + projection/aggregate input
// compiled once per scan leaf, then executed directly over a
// container's column views (catalog::ColumnarBlock) without ever
// materializing a PhotoObj or resolving an attribute name per row.
//
// Bit-exactness contract: for any node the kernel accepts, its answers
// are identical to the row path's (VisitMatches + GetAttribute) --
// attribute conversions go through catalog::ResolveColumn (which
// mirrors GetAttribute), expression evaluation mirrors Expr::Eval
// recursion exactly, and sampling draws one Bernoulli variate per row
// in row order. Division mirrors the row path's divide-by-zero error:
// evaluation order (including AND/OR short-circuiting) is identical,
// so the kernel errors on exactly the rows the row path errors on, with
// the same status, and rows the row path would have emitted before the
// erroring row are still emitted first. Nodes whose behavior the kernel
// cannot mirror (tag-partition scans; attributes with no column) are
// rejected at Compile time and take the row path.

#ifndef SDSS_QUERY_COLUMNAR_SCAN_H_
#define SDSS_QUERY_COLUMNAR_SCAN_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/columnar.h"
#include "core/random.h"
#include "htm/region.h"
#include "query/expr.h"
#include "query/qet.h"

namespace sdss::query {

class ColumnarScan {
 public:
  /// Rows per filter chunk: the selection bitmap lives in a stack
  /// array, and sampling / predicate / visit phases each run as a tight
  /// loop over one chunk.
  static constexpr size_t kChunk = 256;

  /// Compiles the scan leaf `node` with `attrs` as its value columns
  /// (the projection for row scans; the aggregate input, possibly
  /// empty, for pushdown). Returns false -- leaving `out` unusable --
  /// when the node must take the row path.
  static bool Compile(const PlanNode& node,
                      const std::vector<std::string>& attrs,
                      ColumnarScan* out);

  /// Runs sampling + predicate over rows [0, block.n) in row order,
  /// calling `visit(i)` for every surviving row; `visit` returning
  /// false aborts. `tick(m)` is called once per chunk with the number
  /// of rows about to be examined (the caller's objects_examined
  /// accounting and cancellation poll); returning false aborts.
  /// Returns true iff the whole block completed. A predicate evaluation
  /// error (divide by zero) aborts the block after visiting the chunk's
  /// earlier survivors -- exactly the rows the row path emits before
  /// its erroring row -- and reports the row path's status through
  /// `error` when non-null.
  template <typename Visit, typename Tick>
  bool Scan(const catalog::ColumnarBlock& block, Rng* rng,
            const Visit& visit, const Tick& tick,
            Status* error = nullptr) const {
    std::array<uint8_t, kChunk> keep;
    for (size_t base = 0; base < block.n; base += kChunk) {
      const size_t m = std::min(kChunk, block.n - base);
      if (!tick(m)) return false;
      if (sample_ < 1.0) {
        for (size_t k = 0; k < m; ++k) {
          keep[k] = rng->Bernoulli(sample_) ? 1 : 0;
        }
      } else {
        std::fill_n(keep.begin(), m, uint8_t{1});
      }
      if (pred_ != nullptr && simple_cmp_) {
        // The dominant leaf shape -- one `attr op literal` comparison --
        // runs as two flat chunk loops (column gather, then compare)
        // that the compiler auto-vectorizes. A bare comparison cannot
        // error, and evaluating it for sampled-out rows is unobservable,
        // so masking with `keep` afterwards is exact.
        std::array<double, kChunk> vals;
        cmp_getter_.Gather(block, base, m, vals.data());
        ApplyCompare(cmp_op_, vals.data(), m, cmp_literal_, keep.data());
      } else if (pred_ != nullptr) {
        for (size_t k = 0; k < m; ++k) {
          if (keep[k] != 0) {
            bool err = false;
            const double v = EvalNode(*pred_, block, base + k, &err);
            if (err) {
              // The row path emits every earlier match before the
              // erroring row stops the container; mirror it, then fail
              // with the identical status (expr.cc's kDiv error).
              for (size_t j = 0; j < k; ++j) {
                if (keep[j] != 0 && !visit(base + j)) return false;
              }
              if (error != nullptr) {
                *error = Status::InvalidArgument("division by zero");
              }
              return false;
            }
            keep[k] = v != 0.0 ? 1 : 0;
          }
        }
      }
      for (size_t k = 0; k < m; ++k) {
        if (keep[k] != 0 && !visit(base + k)) return false;
      }
    }
    return true;
  }

  /// Projects row `i` into `row`: obj_id plus the compiled value
  /// columns, in `attrs` order.
  void ProjectRow(const catalog::ColumnarBlock& block, size_t i,
                  ResultRow* row) const;

  /// The first compiled value column at row `i` (the aggregate input).
  /// Only valid when Compile was given a non-empty `attrs`.
  double Value(const catalog::ColumnarBlock& block, size_t i) const {
    return values_[0](block, i);
  }

 private:
  /// A compiled expression node: Expr with every attribute resolved to
  /// its ColumnGetter, so per-row evaluation never touches a string.
  struct Node {
    Expr::Kind kind = Expr::Kind::kLiteral;
    BinOp op = BinOp::kAdd;
    double literal = 0.0;
    catalog::ColumnGetter getter;
    htm::Region region;
    std::unique_ptr<Node> lhs, rhs;
  };

  /// Evaluates a compiled tree at row `i`, mirroring Expr::Eval
  /// (including AND/OR short-circuit structure and the left-to-right
  /// error propagation a zero divisor triggers). `*err` is set -- and
  /// the return value meaningless -- on the first divide-by-zero, in
  /// exactly the evaluation-order position the row path errors at.
  static double EvalNode(const Node& n, const catalog::ColumnarBlock& b,
                         size_t i, bool* err);

  static bool CompileExpr(const Expr& e, std::unique_ptr<Node>* out);

  /// Recognizes a predicate that is exactly one `attr op literal`
  /// comparison (either operand order) and fills the simple-compare
  /// members, enabling the vectorized chunk path in Scan.
  static void CompileSimpleCompare(ColumnarScan* out);

  /// Masks `keep[k]` with (vals[k] op literal) for k in [0, m). The
  /// select form (`cond ? keep[k] : 0`) is deliberate: GCC lowers it to
  /// a packed compare + AND on baseline x86-64, while the equivalent
  /// `keep[k] &= cond` read-modify-write narrows the compare through a
  /// bool whose double-to-byte mask conversion has no SSE2 pattern and
  /// stays scalar.
  static void ApplyCompare(BinOp op, const double* vals, size_t m,
                           double literal, uint8_t* keep) {
    constexpr uint8_t kZero = 0;
    switch (op) {
      case BinOp::kLt:
        for (size_t k = 0; k < m; ++k) {
          keep[k] = vals[k] < literal ? keep[k] : kZero;
        }
        return;
      case BinOp::kLe:
        for (size_t k = 0; k < m; ++k) {
          keep[k] = vals[k] <= literal ? keep[k] : kZero;
        }
        return;
      case BinOp::kGt:
        for (size_t k = 0; k < m; ++k) {
          keep[k] = vals[k] > literal ? keep[k] : kZero;
        }
        return;
      case BinOp::kGe:
        for (size_t k = 0; k < m; ++k) {
          keep[k] = vals[k] >= literal ? keep[k] : kZero;
        }
        return;
      case BinOp::kEq:
        for (size_t k = 0; k < m; ++k) {
          keep[k] = vals[k] == literal ? keep[k] : kZero;
        }
        return;
      case BinOp::kNe:
        for (size_t k = 0; k < m; ++k) {
          keep[k] = vals[k] != literal ? keep[k] : kZero;
        }
        return;
      default:
        return;  // Unreachable: CompileSimpleCompare filters operators.
    }
  }

  double sample_ = 1.0;
  std::unique_ptr<Node> pred_;  ///< Null = accept all.
  bool simple_cmp_ = false;     ///< Scan may take the vectorized path.
  BinOp cmp_op_ = BinOp::kLt;
  double cmp_literal_ = 0.0;
  catalog::ColumnGetter cmp_getter_;
  std::vector<catalog::ColumnGetter> values_;
};

}  // namespace sdss::query

#endif  // SDSS_QUERY_COLUMNAR_SCAN_H_
