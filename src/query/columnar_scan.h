// The columnar scan kernel: predicate + projection/aggregate input
// compiled once per scan leaf, then executed directly over a
// container's column views (catalog::ColumnarBlock) without ever
// materializing a PhotoObj or resolving an attribute name per row.
//
// Bit-exactness contract: for any node the kernel accepts, its answers
// are identical to the row path's (VisitMatches + GetAttribute) --
// attribute conversions go through catalog::ResolveColumn (which
// mirrors GetAttribute), expression evaluation mirrors Expr::Eval
// recursion exactly, and sampling draws one Bernoulli variate per row
// in row order. Nodes whose behavior the kernel cannot mirror
// (tag-partition scans; predicates containing division, whose
// divide-by-zero error depends on evaluation order; attributes with no
// column) are rejected at Compile time and take the row path.

#ifndef SDSS_QUERY_COLUMNAR_SCAN_H_
#define SDSS_QUERY_COLUMNAR_SCAN_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "catalog/columnar.h"
#include "core/random.h"
#include "htm/region.h"
#include "query/expr.h"
#include "query/qet.h"

namespace sdss::query {

class ColumnarScan {
 public:
  /// Rows per filter chunk: the selection bitmap lives in a stack
  /// array, and sampling / predicate / visit phases each run as a tight
  /// loop over one chunk.
  static constexpr size_t kChunk = 256;

  /// Compiles the scan leaf `node` with `attrs` as its value columns
  /// (the projection for row scans; the aggregate input, possibly
  /// empty, for pushdown). Returns false -- leaving `out` unusable --
  /// when the node must take the row path.
  static bool Compile(const PlanNode& node,
                      const std::vector<std::string>& attrs,
                      ColumnarScan* out);

  /// Runs sampling + predicate over rows [0, block.n) in row order,
  /// calling `visit(i)` for every surviving row; `visit` returning
  /// false aborts. `tick(m)` is called once per chunk with the number
  /// of rows about to be examined (the caller's objects_examined
  /// accounting and cancellation poll); returning false aborts.
  /// Returns true iff the whole block completed.
  template <typename Visit, typename Tick>
  bool Scan(const catalog::ColumnarBlock& block, Rng* rng,
            const Visit& visit, const Tick& tick) const {
    std::array<uint8_t, kChunk> keep;
    for (size_t base = 0; base < block.n; base += kChunk) {
      const size_t m = std::min(kChunk, block.n - base);
      if (!tick(m)) return false;
      if (sample_ < 1.0) {
        for (size_t k = 0; k < m; ++k) {
          keep[k] = rng->Bernoulli(sample_) ? 1 : 0;
        }
      } else {
        std::fill_n(keep.begin(), m, uint8_t{1});
      }
      if (pred_ != nullptr) {
        for (size_t k = 0; k < m; ++k) {
          if (keep[k] != 0) {
            keep[k] = EvalNode(*pred_, block, base + k) != 0.0 ? 1 : 0;
          }
        }
      }
      for (size_t k = 0; k < m; ++k) {
        if (keep[k] != 0 && !visit(base + k)) return false;
      }
    }
    return true;
  }

  /// Projects row `i` into `row`: obj_id plus the compiled value
  /// columns, in `attrs` order.
  void ProjectRow(const catalog::ColumnarBlock& block, size_t i,
                  ResultRow* row) const;

  /// The first compiled value column at row `i` (the aggregate input).
  /// Only valid when Compile was given a non-empty `attrs`.
  double Value(const catalog::ColumnarBlock& block, size_t i) const {
    return values_[0](block, i);
  }

 private:
  /// A compiled expression node: Expr with every attribute resolved to
  /// its ColumnGetter, so per-row evaluation never touches a string.
  struct Node {
    Expr::Kind kind = Expr::Kind::kLiteral;
    BinOp op = BinOp::kAdd;
    double literal = 0.0;
    catalog::ColumnGetter getter;
    htm::Region region;
    std::unique_ptr<Node> lhs, rhs;
  };

  /// Evaluates a compiled tree at row `i`, mirroring Expr::Eval
  /// (including AND/OR short-circuit structure). Cannot fail: division
  /// and unresolvable attributes were rejected at compile time.
  static double EvalNode(const Node& n, const catalog::ColumnarBlock& b,
                         size_t i);

  static bool CompileExpr(const Expr& e, std::unique_ptr<Node>* out);

  double sample_ = 1.0;
  std::unique_ptr<Node> pred_;  ///< Null = accept all.
  std::vector<catalog::ColumnGetter> values_;
};

}  // namespace sdss::query

#endif  // SDSS_QUERY_COLUMNAR_SCAN_H_
