#include "server/session.h"

#include <utility>

#include "server/server.h"

namespace sdss::server {

Status Wire::Write(const std::string& frame) {
  std::lock_guard<std::mutex> lock(mu);
  if (conn == nullptr) {
    return Status::Aborted("session torn down");
  }
  return conn->WriteAll(frame);
}

Session::Session(uint64_t id, TcpConn conn, QueryServer* server)
    : id_(id),
      conn_(std::move(conn)),
      server_(server),
      wire_(std::make_shared<Wire>()) {
  wire_->conn = &conn_;
}

void Session::NoteProtocolError(const Status& error) {
  server_->counters_.protocol_errors->Inc();
  LogEvent(server_->options().events, EventSeverity::kError, "server",
           "protocol_error", id_,
           {{"user", user_}, {"error", error.ToString()}});
}

void Session::Run() {
  RunLoop();
  // From here no frame may touch the socket: terminal-job bookkeeping
  // retains hooks (and this Wire) long after the session is gone, and
  // they must see a tombstone, not a recycled fd.
  {
    std::lock_guard<std::mutex> lock(wire_->mu);
    wire_->conn = nullptr;
  }
  conn_.Shutdown();
  server_->OnSessionClosed(id_);
}

bool Session::RunLoop() {
  const ServerOptions& opts = server_->options();

  // Handshake: exactly one HELLO, answered with WELCOME or fatal ERROR.
  Result<Frame> first = ReadFrame(&conn_, opts.max_frame_bytes);
  if (!first.ok()) {
    if (first.status().code() != StatusCode::kAborted) {
      NoteProtocolError(first.status());
      SendError(first.status(), /*fatal=*/true);
    }
    return false;
  }
  if (first->type != MsgType::kHello) {
    Status error = Status::InvalidArgument(
        std::string("expected HELLO, got ") + MsgTypeName(first->type));
    NoteProtocolError(error);
    SendError(error, /*fatal=*/true);
    return false;
  }
  Result<HelloMsg> hello = DecodeHello(first->payload);
  if (!hello.ok()) {
    NoteProtocolError(hello.status());
    SendError(hello.status(), /*fatal=*/true);
    return false;
  }
  if (hello->version != kProtocolVersion) {
    Status error = Status::FailedPrecondition(
        "protocol version " + std::to_string(hello->version) +
        " not supported (server speaks " +
        std::to_string(kProtocolVersion) + ")");
    NoteProtocolError(error);
    SendError(error, /*fatal=*/true);
    return false;
  }
  if (!server_->Authenticate(hello->user, hello->token)) {
    server_->counters_.auth_failures->Inc();
    LogEvent(server_->options().events, EventSeverity::kWarn, "server",
             "auth_failure", id_, {{"user", hello->user}});
    SendError(Status::InvalidArgument("unknown user or bad token"),
              /*fatal=*/true);
    return false;
  }
  user_ = hello->user;
  WelcomeMsg welcome;
  welcome.session_id = id_;
  welcome.banner = opts.banner;
  if (!wire_->Write(EncodeWelcome(welcome)).ok()) return false;

  for (;;) {
    Result<Frame> frame = ReadFrame(&conn_, opts.max_frame_bytes);
    if (!frame.ok()) {
      // kAborted = the client hung up without BYE; anything else is a
      // torn or oversized frame -- the stream cannot be re-synced.
      if (frame.status().code() != StatusCode::kAborted) {
        NoteProtocolError(frame.status());
        SendError(frame.status(), /*fatal=*/true);
      }
      return false;
    }
    switch (frame->type) {
      case MsgType::kQuery:
        if (!HandleQuery(frame->payload)) return false;
        break;
      case MsgType::kCancel:
        // Nothing in flight (completion may have raced the CANCEL onto
        // the wire): a no-op by protocol.
        break;
      case MsgType::kStats:
        // A point-in-time snapshot of the whole registry: when the
        // caller wired one registry through scheduler, engine, journal,
        // and server, this one frame reports the full process.
        if (!wire_->Write(EncodeStatsReport(
                 StatsMsg{1, server_->metrics()->Snapshot()}))
                 .ok()) {
          return false;
        }
        break;
      case MsgType::kBye:
        return true;
      default: {
        Status error = Status::InvalidArgument(
            std::string("unexpected ") + MsgTypeName(frame->type) +
            " frame");
        NoteProtocolError(error);
        SendError(error, /*fatal=*/true);
        return false;
      }
    }
  }
}

bool Session::HandleQuery(std::string_view payload) {
  const ServerOptions& opts = server_->options();
  workbench::JobScheduler* scheduler = server_->scheduler();

  Result<QueryMsg> query = DecodeQuery(payload);
  if (!query.ok()) {
    NoteProtocolError(query.status());
    SendError(query.status(), /*fatal=*/true);
    return false;
  }
  if (query->sql.size() > opts.max_sql_bytes) {
    SendError(Status::InvalidArgument(
                  "statement of " + std::to_string(query->sql.size()) +
                  " bytes exceeds the " +
                  std::to_string(opts.max_sql_bytes) + "-byte limit"),
              /*fatal=*/false);
    return true;
  }

  // Fast-path shed, before any parsing: a quick lane already queued past
  // the threshold means interactive latency is gone -- spending the
  // core planning a statement that bounded admission would refuse
  // anyway only deepens the overload.
  if (opts.busy_quick_depth > 0 &&
      scheduler->LaneDepths().quick_queued >= opts.busy_quick_depth) {
    SendBusy();
    return true;
  }

  auto pending = std::make_shared<Pending>();
  std::shared_ptr<Wire> wire = wire_;
  workbench::StreamHooks hooks;
  hooks.on_header = [pending, wire](const query::ResultHeader& header) {
    HeaderMsg msg;
    {
      // SubmitStreaming returns right after enqueue, so a lane worker
      // can reach this hook before the session thread learned the job
      // id -- wait for it (microseconds; the submitter fills it in
      // directly after the call returns).
      std::unique_lock<std::mutex> lock(pending->mu);
      pending->cv.wait(lock, [&pending] { return pending->id_ready; });
      msg.job_id = pending->job_id;
      msg.lane = pending->lane == workbench::Lane::kLong ? 1 : 0;
    }
    msg.is_aggregate = header.is_aggregate;
    msg.columns = header.columns;
    wire->Write(EncodeHeader(msg));  // Failure surfaces on the next batch.
  };
  hooks.on_batch = [wire](const query::RowBatch& batch) {
    // A dead client fails the write; returning false cancels the job so
    // no worker keeps scanning for a result nobody will read.
    return wire->Write(EncodeRows(batch)).ok();
  };
  hooks.on_complete = [pending, wire](const workbench::JobSnapshot& snap) {
    // Flip `done` BEFORE the terminal write, not after: once the write
    // lands, the client may answer with its next QUERY faster than this
    // thread gets rescheduled, and the drain loop must already see
    // `done` by then or it would misread that QUERY as a violation.
    // The inverse order is safe: the session thread writes nothing
    // until the client's next statement, and the client does not send
    // one until it received this terminal frame.
    {
      std::lock_guard<std::mutex> lock(pending->mu);
      pending->done = true;
      pending->state = snap.state;
      pending->cache_hit = snap.exec.cache_hit;
      pending->cache_containment = snap.exec.cache_containment;
      pending->cv.notify_all();
    }
    if (snap.state == workbench::JobState::kSucceeded) {
      DoneMsg done;
      done.job_id = snap.id;
      done.rows = snap.rows;
      done.seconds_queued = snap.seconds_queued;
      done.seconds_running = snap.seconds_running;
      done.containers_scanned = snap.exec.containers_scanned;
      done.bytes_touched = snap.exec.bytes_touched;
      done.seconds_plan = snap.exec.seconds_plan;
      done.seconds_cache_probe = snap.exec.seconds_cache_probe;
      done.seconds_ghost_harvest = snap.exec.seconds_ghost_harvest;
      done.seconds_fan_out = snap.exec.seconds_fan_out;
      done.seconds_stream_out = snap.exec.seconds_stream_out;
      wire->Write(EncodeDone(done));
    } else {
      ErrorMsg error;
      error.code = snap.error.code();
      error.fatal = false;
      error.message = snap.error.message();
      wire->Write(EncodeError(error));
    }
  };

  Result<uint64_t> submitted =
      scheduler->SubmitStreaming(user_, query->sql, std::move(hooks));
  if (!submitted.ok()) {
    if (submitted.status().code() == StatusCode::kUnavailable) {
      // Bounded admission refused the lane: same verdict as the
      // fast-path shed, decided with the statement actually priced.
      SendBusy();
    } else {
      SendError(submitted.status(), /*fatal=*/false);
    }
    return true;
  }
  server_->counters_.queries_submitted->Inc();
  {
    std::lock_guard<std::mutex> lock(pending->mu);
    pending->job_id = *submitted;
    Result<workbench::JobSnapshot> snap = scheduler->Snapshot(*submitted);
    if (snap.ok()) pending->lane = snap->lane;
    pending->id_ready = true;
    pending->cv.notify_all();
  }
  return DrainInFlight(pending, *submitted);
}

bool Session::DrainInFlight(const std::shared_ptr<Pending>& pending,
                            uint64_t job_id) {
  workbench::JobScheduler* scheduler = server_->scheduler();
  bool keep_session = true;
  bool abandoned = false;  ///< Socket is done; just wait for terminal.

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pending->mu);
      if (abandoned) {
        // The job was cancelled; the cooperative flag stops it at the
        // next scan/join cancellation point. Waiting here (not in some
        // detached limbo) is what "no leaked worker" means.
        pending->cv.wait(lock, [&pending] { return pending->done; });
      }
      if (pending->done) break;
    }
    Result<bool> readable = conn_.WaitReadable(/*timeout_ms=*/20);
    if (!readable.ok()) {
      scheduler->Cancel(job_id);
      keep_session = false;
      abandoned = true;
      continue;
    }
    if (!*readable) continue;
    {
      // Readable while in flight is CANCEL, BYE, a violation -- or the
      // next QUERY of a conforming client, which can only arrive after
      // our DONE/ERROR frame, i.e. after `done` was set. Re-checking
      // here keeps that QUERY buffered for the main loop instead of
      // misreading it as a violation.
      std::lock_guard<std::mutex> lock(pending->mu);
      if (pending->done) break;
    }
    Result<Frame> frame =
        ReadFrame(&conn_, server_->options().max_frame_bytes);
    if (!frame.ok()) {
      // Mid-stream disconnect (or torn frame): cancel the job, close.
      if (frame.status().code() != StatusCode::kAborted) {
        NoteProtocolError(frame.status());
      }
      scheduler->Cancel(job_id);
      keep_session = false;
      abandoned = true;
      continue;
    }
    switch (frame->type) {
      case MsgType::kCancel:
        // Terminal-race is fine: Cancel answers FailedPrecondition and
        // the client still gets the job's real terminal frame.
        scheduler->Cancel(job_id);
        break;
      case MsgType::kBye:
        scheduler->Cancel(job_id);
        keep_session = false;
        abandoned = true;
        break;
      default: {
        Status error = Status::FailedPrecondition(
            std::string("unexpected ") + MsgTypeName(frame->type) +
            " frame while a query is in flight (one statement per "
            "session at a time)");
        NoteProtocolError(error);
        SendError(error, /*fatal=*/true);
        scheduler->Cancel(job_id);
        keep_session = false;
        abandoned = true;
        break;
      }
    }
  }

  if (pending->state == workbench::JobState::kSucceeded) {
    server_->counters_.queries_succeeded->Inc();
    if (pending->cache_hit) {
      server_->counters_.cache_hits->Inc();
    } else if (pending->cache_containment) {
      server_->counters_.cache_containment->Inc();
    } else {
      server_->counters_.cache_misses->Inc();
    }
  } else {
    server_->counters_.queries_failed->Inc();
  }
  return keep_session;
}

void Session::SendBusy() {
  const ServerOptions& opts = server_->options();
  workbench::QueueDepths depths = server_->scheduler()->LaneDepths();
  BusyMsg busy;
  busy.retry_after_ms = opts.busy_retry_ms;
  busy.quick_queued = SaturatingU32(depths.quick_queued);
  busy.long_queued = SaturatingU32(depths.long_queued);
  server_->counters_.busy_shed->Inc();
  wire_->Write(EncodeBusy(busy));
}

void Session::SendError(const Status& error, bool fatal) {
  ErrorMsg msg;
  msg.code = error.code();
  msg.fatal = fatal;
  msg.message = error.message();
  wire_->Write(EncodeError(msg));
}

}  // namespace sdss::server
