// Client library for the query server: the protocol's other half.
//
// A Client owns one connection and drives it synchronously -- HELLO on
// Connect, then one QUERY at a time, each consumed to its terminal
// frame (DONE, ERROR, or BUSY) before the next. That is exactly the
// session state machine of docs/PROTOCOL.md, so the tests, the example
// (examples/query_server.cpp), and the load generator
// (bench/bench_c14_server.cc) all exercise the server through the same
// conforming path. Not thread-safe; one Client per thread.

#ifndef SDSS_SERVER_CLIENT_H_
#define SDSS_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/net.h"
#include "core/status.h"
#include "query/qet.h"
#include "server/protocol.h"

namespace sdss::server {

/// How one statement ended, with everything the server streamed for it.
struct QueryOutcome {
  enum class Kind {
    kDone,   ///< Ran to completion; `rows` + `done` are filled.
    kError,  ///< Refused or failed; `error` is filled.
    kBusy,   ///< Shed by backpressure; `busy` says when to retry.
  };
  Kind kind = Kind::kError;

  bool have_header = false;
  HeaderMsg header;
  /// All result rows, in arrival order (empty when a row sink was
  /// given, for BUSY, and usually for errors).
  query::RowBatch rows;
  DoneMsg done;
  ErrorMsg error;
  BusyMsg busy;

  bool ok() const { return kind == Kind::kDone; }
};

/// One authenticated connection to a QueryServer.
class Client {
 public:
  /// Connects and performs the HELLO handshake. A BUSY verdict at the
  /// door surfaces as kUnavailable; a fatal ERROR (bad auth, version
  /// mismatch) as that error's status.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const std::string& user,
                                const std::string& token = "");

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  const WelcomeMsg& welcome() const { return welcome_; }

  /// Runs one statement, collecting every row into the outcome. The
  /// returned status is about the *conversation* (I/O, framing): a
  /// query that failed server-side is an ok() Result whose outcome says
  /// kError.
  Result<QueryOutcome> Query(const std::string& sql);

  /// Streaming variant: `on_rows` sees each ROWS batch as it arrives;
  /// returning false sends CANCEL (the server ends the job, and the
  /// outcome reports the resulting terminal frame, normally kError /
  /// Cancelled).
  Result<QueryOutcome> Query(
      const std::string& sql,
      const std::function<bool(const query::RowBatch&)>& on_rows);

  /// Fetches the server's metrics snapshot (a STATS / STATS_REPORT
  /// exchange). Legal only between statements -- STATS while a query is
  /// in flight is a protocol violation the server closes on.
  Result<StatsMsg> Stats();

  /// Orderly close: sends BYE and shuts the connection down. The Client
  /// is unusable afterwards.
  Status Bye();

  /// Hard close without BYE -- the misbehaving-client path the server's
  /// disconnect handling is tested against.
  void Abort() { conn_.Shutdown(); }

  /// Sends raw bytes on the wire, bypassing the protocol encoder. Test
  /// hook for malformed-frame handling; not part of the protocol.
  Status SendRaw(const std::string& bytes) { return conn_.WriteAll(bytes); }

  /// Reads one frame off the wire. Test hook paired with SendRaw.
  Result<Frame> ReadOneFrame();

 private:
  Client(TcpConn conn, size_t max_frame_bytes)
      : conn_(std::move(conn)), max_frame_bytes_(max_frame_bytes) {}

  TcpConn conn_;
  size_t max_frame_bytes_;
  WelcomeMsg welcome_;
};

}  // namespace sdss::server

#endif  // SDSS_SERVER_CLIENT_H_
