// The monitoring plane's HTTP front door: a minimal HTTP/1.0 admin
// listener on its own port, deliberately separate from the query
// protocol's port so operators and scrapers never compete with query
// traffic for sessions -- and so a wedged query server can still answer
// "are you healthy".
//
// Endpoints (all GET, Connection: close):
//   /metrics   Prometheus text exposition of the wired registry, with
//              the process self-gauges refreshed on every scrape.
//   /healthz   Liveness/readiness. 200 when the watchdog says ready,
//              503 listing the firing rules otherwise; ?mode=live is
//              the pure liveness probe and always answers 200.
//   /statusz   Human-readable status: build info, uptime, sessions,
//              lane depths, cache and BUSY counters, journal health,
//              per-user job accounting.
//   /varz      Windowed rates from the metric history ring
//              (?window=60s, accepts Ns / Nm / plain seconds).
//   /tracez    JSON index of the recent-query trace ring; ?id=N or
//              ?latest=1 downloads one capture as chrome://tracing
//              JSON.
//
// Scope: one accept thread serving one request per connection, no
// keep-alive, no TLS, bounded request size and read timeout. This is an
// operator surface on localhost, not a web server.

#ifndef SDSS_SERVER_HTTP_ADMIN_H_
#define SDSS_SERVER_HTTP_ADMIN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "core/eventlog.h"
#include "core/metrics.h"
#include "core/metrics_history.h"
#include "core/net.h"
#include "core/status.h"
#include "core/watchdog.h"
#include "query/trace.h"
#include "workbench/scheduler.h"

namespace sdss::server {

/// One rendered admin response, exposed so tests exercise the routing
/// and rendering without sockets.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpAdmin {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = pick an ephemeral port (readable via port()).
    uint16_t port = 0;
    int backlog = 16;
    /// Request lines beyond this are answered 400 and closed.
    size_t max_request_bytes = 8192;
    /// Per-connection budget to produce a full request head.
    int read_timeout_ms = 2000;
    /// The registry /metrics exposes. Required; must outlive the admin.
    metrics::Registry* metrics = nullptr;
    /// Everything below is optional wiring: endpoints degrade to "not
    /// configured" when null. All must outlive the admin when set.
    metrics::History* history = nullptr;      ///< /varz.
    HealthWatchdog* watchdog = nullptr;       ///< /healthz readiness.
    query::TraceRing* traces = nullptr;       ///< /tracez.
    workbench::JobScheduler* scheduler = nullptr;  ///< /statusz lanes+jobs.
    EventLog* events = nullptr;               ///< Start/stop breadcrumbs.
    /// Shown on /statusz ("git describe" moral equivalent).
    std::string build_info;
  };

  explicit HttpAdmin(Options options);
  ~HttpAdmin();

  HttpAdmin(const HttpAdmin&) = delete;
  HttpAdmin& operator=(const HttpAdmin&) = delete;

  /// Binds the listener and spawns the accept thread.
  Status Start();
  /// Shuts the listener and joins. Idempotent; the destructor calls it.
  void Stop();

  /// The bound port, valid after Start() succeeded.
  uint16_t port() const { return port_; }

  /// Routes one request. `target` is the request-target as it appears
  /// on the request line ("/varz?window=60s"). Public for tests.
  HttpResponse Handle(std::string_view method, std::string_view target);

  uint64_t requests_served() const;

 private:
  void AcceptLoop();
  /// Reads the request head, routes it, writes the response.
  void ServeConn(TcpConn conn);

  HttpResponse HandleMetrics();
  HttpResponse HandleHealthz(std::string_view query);
  HttpResponse HandleStatusz();
  HttpResponse HandleVarz(std::string_view query);
  HttpResponse HandleTracez(std::string_view query);

  double UptimeSeconds() const;

  const Options options_;
  metrics::Counter* m_requests_ = nullptr;
  const std::chrono::steady_clock::time_point started_at_;
  TcpListener listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace sdss::server

#endif  // SDSS_SERVER_HTTP_ADMIN_H_
