#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "server/protocol.h"

namespace sdss::server {

QueryServer::QueryServer(workbench::JobScheduler* scheduler,
                         ServerOptions options)
    : scheduler_(scheduler), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<metrics::Registry>();
    metrics_ = owned_metrics_.get();
  }
  counters_.sessions_accepted =
      metrics_->GetCounter("server_sessions_accepted");
  counters_.sessions_refused =
      metrics_->GetCounter("server_sessions_refused");
  counters_.auth_failures = metrics_->GetCounter("server_auth_failures");
  counters_.queries_submitted =
      metrics_->GetCounter("server_queries_submitted");
  counters_.queries_succeeded =
      metrics_->GetCounter("server_queries_succeeded");
  counters_.queries_failed = metrics_->GetCounter("server_queries_failed");
  counters_.busy_shed = metrics_->GetCounter("server_busy_shed");
  counters_.protocol_errors =
      metrics_->GetCounter("server_protocol_errors");
  counters_.accept_retries = metrics_->GetCounter("server_accept_retries");
  counters_.cache_hits = metrics_->GetCounter("server_cache_hits");
  counters_.cache_containment =
      metrics_->GetCounter("server_cache_containment");
  counters_.cache_misses = metrics_->GetCounter("server_cache_misses");
  counters_.sessions_active = metrics_->GetGauge("server_sessions_active");
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  Result<TcpListener> listener =
      TcpListener::Listen(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  // Order matters: stop the accept loop first (it is the only thread
  // that spawns sessions), then wake every live session, then join.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Session>> live;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) live.push_back(session);
    threads.reserve(session_threads_.size());
    for (auto& [id, thread] : session_threads_) {
      threads.push_back(std::move(thread));
    }
    session_threads_.clear();
  }
  for (auto& session : live) session->Shutdown();
  for (auto& thread : threads) thread.join();
  ReapFinishedThreads();
}

void QueryServer::AcceptLoop() {
  // Backoff for transient accept failures: start small (exhaustion is
  // usually momentary -- a burst of sessions closing will free fds),
  // double up to a cap so a stuck host doesn't busy-spin.
  constexpr int kBackoffMinMs = 1;
  constexpr int kBackoffMaxMs = 100;
  int backoff_ms = kBackoffMinMs;
  for (;;) {
    Result<TcpConn> conn = listener_.Accept();
    if (!conn.ok()) {
      // Orderly shutdown (kAborted from Shutdown()) or a listener that
      // was never usable ends the loop. Running out of fds or buffers
      // must not: the listener is fine, the pressure is elsewhere and
      // temporary, and pending connections are still queued in the
      // backlog. Sleep a beat and take them when resources return.
      if (conn.status().code() != StatusCode::kUnavailable) return;
      counters_.accept_retries->Inc();
      for (int waited = 0; waited < backoff_ms && !stopped_.load();
           ++waited) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (stopped_.load()) return;
      backoff_ms = std::min(backoff_ms * 2, kBackoffMaxMs);
      // Freeing our own zombies may be exactly what un-wedges EMFILE.
      ReapFinishedThreads();
      continue;
    }
    backoff_ms = kBackoffMinMs;
    counters_.sessions_accepted->Inc();
    ReapFinishedThreads();

    size_t active;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = sessions_.size();
    }
    if (active >= options_.max_sessions) {
      // Shed at the door: a BUSY verdict and an orderly close keep the
      // accept queue draining -- refusing cheaply is what prevents the
      // backlog (and every client's connect latency) from collapsing.
      counters_.sessions_refused->Inc();
      LogEvent(options_.events, EventSeverity::kWarn, "server",
               "session_refused", 0,
               {{"active", std::to_string(active)},
                {"max", std::to_string(options_.max_sessions)}});
      workbench::QueueDepths depths = scheduler_->LaneDepths();
      BusyMsg busy;
      busy.retry_after_ms = options_.busy_retry_ms;
      busy.quick_queued = SaturatingU32(depths.quick_queued);
      busy.long_queued = SaturatingU32(depths.long_queued);
      conn->WriteAll(EncodeBusy(busy));
      continue;  // conn's destructor closes the socket.
    }

    uint64_t id;
    std::shared_ptr<Session> session;
    {
      // The thread handle must be in the map before the session can
      // reach OnSessionClosed (which looks it up to park it), so the
      // thread starts under the same lock OnSessionClosed takes.
      std::lock_guard<std::mutex> lock(sessions_mu_);
      id = next_session_id_++;
      session = std::make_shared<Session>(id, std::move(*conn), this);
      sessions_.emplace(id, session);
      counters_.sessions_active->Set(
          static_cast<int64_t>(sessions_.size()));
      session_threads_.emplace(
          id, std::thread([session] { session->Run(); }));
    }
  }
}

bool QueryServer::Authenticate(const std::string& user,
                               const std::string& token) const {
  if (user.empty()) return false;
  if (options_.users.empty()) return true;  // Open access.
  auto it = options_.users.find(user);
  // Constant-time: a wrong token must cost the same wall-clock whether
  // its first byte or its last byte is the mismatch.
  return it != options_.users.end() && ConstantTimeEquals(it->second, token);
}

void QueryServer::OnSessionClosed(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(id);
  counters_.sessions_active->Set(static_cast<int64_t>(sessions_.size()));
  // Park this thread's own handle for the reaper (moving a std::thread
  // from the thread it names is fine; joining it is what must happen
  // elsewhere). Stop() may already have taken the whole map.
  auto it = session_threads_.find(id);
  if (it != session_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    session_threads_.erase(it);
  }
}

void QueryServer::ReapFinishedThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    done.swap(finished_threads_);
  }
  // A parked thread has already passed its sign-off; the join only
  // waits out the last instructions of its lambda.
  for (auto& thread : done) thread.join();
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.sessions_accepted = counters_.sessions_accepted->Value();
  stats.sessions_refused = counters_.sessions_refused->Value();
  stats.auth_failures = counters_.auth_failures->Value();
  stats.queries_submitted = counters_.queries_submitted->Value();
  stats.queries_succeeded = counters_.queries_succeeded->Value();
  stats.queries_failed = counters_.queries_failed->Value();
  stats.busy_shed = counters_.busy_shed->Value();
  stats.protocol_errors = counters_.protocol_errors->Value();
  stats.accept_retries = counters_.accept_retries->Value();
  stats.cache_hits = counters_.cache_hits->Value();
  stats.cache_containment = counters_.cache_containment->Value();
  stats.cache_misses = counters_.cache_misses->Value();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    stats.sessions_active = sessions_.size();
  }
  return stats;
}

}  // namespace sdss::server
