#include "server/server.h"

#include <utility>
#include <vector>

#include "server/protocol.h"

namespace sdss::server {

QueryServer::QueryServer(workbench::JobScheduler* scheduler,
                         ServerOptions options)
    : scheduler_(scheduler), options_(std::move(options)) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  Result<TcpListener> listener =
      TcpListener::Listen(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  // Order matters: stop the accept loop first (it is the only thread
  // that spawns sessions), then wake every live session, then join.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Session>> live;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) live.push_back(session);
    threads.reserve(session_threads_.size());
    for (auto& [id, thread] : session_threads_) {
      threads.push_back(std::move(thread));
    }
    session_threads_.clear();
  }
  for (auto& session : live) session->Shutdown();
  for (auto& thread : threads) thread.join();
  ReapFinishedThreads();
}

void QueryServer::AcceptLoop() {
  for (;;) {
    Result<TcpConn> conn = listener_.Accept();
    if (!conn.ok()) return;  // Shutdown (or a fatal listener error).
    ++counters_.sessions_accepted;
    ReapFinishedThreads();

    size_t active;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = sessions_.size();
    }
    if (active >= options_.max_sessions) {
      // Shed at the door: a BUSY verdict and an orderly close keep the
      // accept queue draining -- refusing cheaply is what prevents the
      // backlog (and every client's connect latency) from collapsing.
      ++counters_.sessions_refused;
      workbench::QueueDepths depths = scheduler_->LaneDepths();
      BusyMsg busy;
      busy.retry_after_ms = options_.busy_retry_ms;
      busy.quick_queued = static_cast<uint32_t>(depths.quick_queued);
      busy.long_queued = static_cast<uint32_t>(depths.long_queued);
      conn->WriteAll(EncodeBusy(busy));
      continue;  // conn's destructor closes the socket.
    }

    uint64_t id;
    std::shared_ptr<Session> session;
    {
      // The thread handle must be in the map before the session can
      // reach OnSessionClosed (which looks it up to park it), so the
      // thread starts under the same lock OnSessionClosed takes.
      std::lock_guard<std::mutex> lock(sessions_mu_);
      id = next_session_id_++;
      session = std::make_shared<Session>(id, std::move(*conn), this);
      sessions_.emplace(id, session);
      session_threads_.emplace(
          id, std::thread([session] { session->Run(); }));
    }
  }
}

bool QueryServer::Authenticate(const std::string& user,
                               const std::string& token) const {
  if (user.empty()) return false;
  if (options_.users.empty()) return true;  // Open access.
  auto it = options_.users.find(user);
  return it != options_.users.end() && it->second == token;
}

void QueryServer::OnSessionClosed(uint64_t id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(id);
  // Park this thread's own handle for the reaper (moving a std::thread
  // from the thread it names is fine; joining it is what must happen
  // elsewhere). Stop() may already have taken the whole map.
  auto it = session_threads_.find(id);
  if (it != session_threads_.end()) {
    finished_threads_.push_back(std::move(it->second));
    session_threads_.erase(it);
  }
}

void QueryServer::ReapFinishedThreads() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    done.swap(finished_threads_);
  }
  // A parked thread has already passed its sign-off; the join only
  // waits out the last instructions of its lambda.
  for (auto& thread : done) thread.join();
}

ServerStats QueryServer::stats() const {
  ServerStats stats;
  stats.sessions_accepted = counters_.sessions_accepted.load();
  stats.sessions_refused = counters_.sessions_refused.load();
  stats.auth_failures = counters_.auth_failures.load();
  stats.queries_submitted = counters_.queries_submitted.load();
  stats.queries_succeeded = counters_.queries_succeeded.load();
  stats.queries_failed = counters_.queries_failed.load();
  stats.busy_shed = counters_.busy_shed.load();
  stats.protocol_errors = counters_.protocol_errors.load();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    stats.sessions_active = sessions_.size();
  }
  return stats;
}

}  // namespace sdss::server
