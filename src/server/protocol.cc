#include "server/protocol.h"

#include <bit>
#include <limits>

#include "persist/coding.h"

namespace sdss::server {

namespace {

using persist::Cursor;
using persist::PutFixed32;
using persist::PutFixed64;
using persist::PutFixed8;
using persist::PutLengthPrefixed;

void PutF64(std::string* dst, double v) {
  PutFixed64(dst, std::bit_cast<uint64_t>(v));
}

bool GetF64(Cursor* cur, double* v) {
  uint64_t bits = 0;
  if (!cur->GetFixed64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

/// Wraps an encoded payload body into a complete frame.
std::string Finish(MsgType type, std::string_view body) {
  std::string frame;
  frame.reserve(kFrameOverheadBytes + body.size());
  PutFixed32(&frame, static_cast<uint32_t>(body.size() + 1));
  PutFixed8(&frame, static_cast<uint8_t>(type));
  frame.append(body);
  return frame;
}

Status Truncated(MsgType type) {
  return Status::InvalidArgument(std::string("truncated ") +
                                 MsgTypeName(type) + " payload");
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "HELLO";
    case MsgType::kWelcome:
      return "WELCOME";
    case MsgType::kQuery:
      return "QUERY";
    case MsgType::kHeader:
      return "HEADER";
    case MsgType::kRows:
      return "ROWS";
    case MsgType::kDone:
      return "DONE";
    case MsgType::kError:
      return "ERROR";
    case MsgType::kBusy:
      return "BUSY";
    case MsgType::kCancel:
      return "CANCEL";
    case MsgType::kBye:
      return "BYE";
    case MsgType::kStats:
      return "STATS";
    case MsgType::kStatsReport:
      return "STATS_REPORT";
  }
  return "?";
}

Status ErrorMsg::ToStatus() const {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kNotSupported:
      return Status::NotSupported(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kCancelled:
      return Status::Cancelled(message);
    case StatusCode::kAborted:
      return Status::Aborted(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Internal(message);
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string body;
  PutFixed32(&body, msg.version);
  PutLengthPrefixed(&body, msg.user);
  PutLengthPrefixed(&body, msg.token);
  return Finish(MsgType::kHello, body);
}

std::string EncodeWelcome(const WelcomeMsg& msg) {
  std::string body;
  PutFixed32(&body, msg.version);
  PutFixed64(&body, msg.session_id);
  PutLengthPrefixed(&body, msg.banner);
  return Finish(MsgType::kWelcome, body);
}

std::string EncodeQuery(const QueryMsg& msg) {
  std::string body;
  PutLengthPrefixed(&body, msg.sql);
  return Finish(MsgType::kQuery, body);
}

std::string EncodeHeader(const HeaderMsg& msg) {
  std::string body;
  PutFixed64(&body, msg.job_id);
  PutFixed8(&body, msg.lane);
  PutFixed8(&body, msg.is_aggregate ? 1 : 0);
  PutFixed32(&body, static_cast<uint32_t>(msg.columns.size()));
  for (const std::string& col : msg.columns) {
    PutLengthPrefixed(&body, col);
  }
  return Finish(MsgType::kHeader, body);
}

std::string EncodeRows(const RowsMsg& msg) { return EncodeRows(msg.rows); }

std::string EncodeRows(const query::RowBatch& rows) {
  std::string body;
  PutFixed32(&body, static_cast<uint32_t>(rows.size()));
  for (const query::ResultRow& row : rows) {
    PutFixed64(&body, row.obj_id);
    PutFixed64(&body, row.obj_id_b);
    PutFixed32(&body, static_cast<uint32_t>(row.values.size()));
    for (double v : row.values) PutF64(&body, v);
  }
  return Finish(MsgType::kRows, body);
}

std::string EncodeDone(const DoneMsg& msg) {
  std::string body;
  PutFixed64(&body, msg.job_id);
  PutFixed64(&body, msg.rows);
  PutF64(&body, msg.seconds_queued);
  PutF64(&body, msg.seconds_running);
  PutFixed64(&body, msg.containers_scanned);
  PutFixed64(&body, msg.bytes_touched);
  // Revision 1.1 trailing block: the per-stage breakdown. Always
  // emitted as a unit; old decoders skip it wholesale.
  PutF64(&body, msg.seconds_plan);
  PutF64(&body, msg.seconds_cache_probe);
  PutF64(&body, msg.seconds_ghost_harvest);
  PutF64(&body, msg.seconds_fan_out);
  PutF64(&body, msg.seconds_stream_out);
  return Finish(MsgType::kDone, body);
}

std::string EncodeError(const ErrorMsg& msg) {
  std::string body;
  PutFixed8(&body, static_cast<uint8_t>(msg.code));
  PutFixed8(&body, msg.fatal ? 1 : 0);
  PutLengthPrefixed(&body, msg.message);
  return Finish(MsgType::kError, body);
}

std::string EncodeBusy(const BusyMsg& msg) {
  std::string body;
  PutFixed32(&body, msg.retry_after_ms);
  PutFixed32(&body, msg.quick_queued);
  PutFixed32(&body, msg.long_queued);
  return Finish(MsgType::kBusy, body);
}

std::string EncodeCancel() { return Finish(MsgType::kCancel, {}); }

std::string EncodeBye() { return Finish(MsgType::kBye, {}); }

std::string EncodeStatsRequest() { return Finish(MsgType::kStats, {}); }

std::string EncodeStatsReport(const StatsMsg& msg) {
  std::string body;
  PutFixed32(&body, msg.version);
  PutFixed32(&body, static_cast<uint32_t>(msg.instruments.size()));
  for (const metrics::InstrumentSnapshot& ins : msg.instruments) {
    PutLengthPrefixed(&body, ins.name);
    PutFixed8(&body, static_cast<uint8_t>(ins.kind));
    switch (ins.kind) {
      case metrics::Kind::kCounter:
        PutFixed64(&body, ins.counter);
        break;
      case metrics::Kind::kGauge:
        PutFixed64(&body, static_cast<uint64_t>(ins.gauge));
        break;
      case metrics::Kind::kHistogram:
        PutFixed64(&body, ins.hist.count);
        PutFixed64(&body, ins.hist.sum);
        // Sparse buckets: (index, count) pairs, ascending index.
        PutFixed32(&body,
                   static_cast<uint32_t>(ins.hist.buckets.size()));
        for (const auto& [index, count] : ins.hist.buckets) {
          PutFixed8(&body, index);
          PutFixed64(&body, count);
        }
        break;
    }
  }
  return Finish(MsgType::kStatsReport, body);
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  Cursor cur(payload);
  HelloMsg msg;
  std::string_view user, token;
  if (!cur.GetFixed32(&msg.version) || !cur.GetLengthPrefixed(&user) ||
      !cur.GetLengthPrefixed(&token)) {
    return Truncated(MsgType::kHello);
  }
  msg.user.assign(user);
  msg.token.assign(token);
  return msg;
}

Result<WelcomeMsg> DecodeWelcome(std::string_view payload) {
  Cursor cur(payload);
  WelcomeMsg msg;
  std::string_view banner;
  if (!cur.GetFixed32(&msg.version) || !cur.GetFixed64(&msg.session_id) ||
      !cur.GetLengthPrefixed(&banner)) {
    return Truncated(MsgType::kWelcome);
  }
  msg.banner.assign(banner);
  return msg;
}

Result<QueryMsg> DecodeQuery(std::string_view payload) {
  Cursor cur(payload);
  QueryMsg msg;
  std::string_view sql;
  if (!cur.GetLengthPrefixed(&sql)) return Truncated(MsgType::kQuery);
  msg.sql.assign(sql);
  return msg;
}

Result<HeaderMsg> DecodeHeader(std::string_view payload) {
  Cursor cur(payload);
  HeaderMsg msg;
  uint8_t agg = 0;
  uint32_t ncols = 0;
  if (!cur.GetFixed64(&msg.job_id) || !cur.GetFixed8(&msg.lane) ||
      !cur.GetFixed8(&agg) || !cur.GetFixed32(&ncols)) {
    return Truncated(MsgType::kHeader);
  }
  msg.is_aggregate = agg != 0;
  msg.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string_view col;
    if (!cur.GetLengthPrefixed(&col)) return Truncated(MsgType::kHeader);
    msg.columns.emplace_back(col);
  }
  return msg;
}

Result<RowsMsg> DecodeRows(std::string_view payload) {
  Cursor cur(payload);
  RowsMsg msg;
  uint32_t nrows = 0;
  if (!cur.GetFixed32(&nrows)) return Truncated(MsgType::kRows);
  // A row is at least 20 bytes (two ids + the value count), so a hostile
  // count larger than the remaining payload could carry is rejected
  // before any allocation.
  if (nrows > cur.remaining() / 20) {
    return Status::InvalidArgument("ROWS row count exceeds payload size");
  }
  msg.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    query::ResultRow row;
    uint32_t nvals = 0;
    if (!cur.GetFixed64(&row.obj_id) || !cur.GetFixed64(&row.obj_id_b) ||
        !cur.GetFixed32(&nvals)) {
      return Truncated(MsgType::kRows);
    }
    if (nvals > cur.remaining() / 8) {
      return Status::InvalidArgument(
          "ROWS value count exceeds payload size");
    }
    row.values.resize(nvals);
    for (uint32_t j = 0; j < nvals; ++j) {
      if (!GetF64(&cur, &row.values[j])) return Truncated(MsgType::kRows);
    }
    msg.rows.push_back(std::move(row));
  }
  return msg;
}

Result<DoneMsg> DecodeDone(std::string_view payload) {
  Cursor cur(payload);
  DoneMsg msg;
  if (!cur.GetFixed64(&msg.job_id) || !cur.GetFixed64(&msg.rows) ||
      !GetF64(&cur, &msg.seconds_queued) ||
      !GetF64(&cur, &msg.seconds_running) ||
      !cur.GetFixed64(&msg.containers_scanned) ||
      !cur.GetFixed64(&msg.bytes_touched)) {
    return Truncated(MsgType::kDone);
  }
  // The revision 1.1 per-stage block is all-or-nothing: read it only
  // when the full 40 bytes are present, so a frame from an older
  // encoder (or one with unrelated trailing extensions shorter than the
  // block) decodes with the stage fields at 0 rather than garbage.
  if (cur.remaining() >= 40) {
    if (!GetF64(&cur, &msg.seconds_plan) ||
        !GetF64(&cur, &msg.seconds_cache_probe) ||
        !GetF64(&cur, &msg.seconds_ghost_harvest) ||
        !GetF64(&cur, &msg.seconds_fan_out) ||
        !GetF64(&cur, &msg.seconds_stream_out)) {
      return Truncated(MsgType::kDone);
    }
  }
  return msg;
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  Cursor cur(payload);
  ErrorMsg msg;
  uint8_t code = 0, fatal = 0;
  std::string_view message;
  if (!cur.GetFixed8(&code) || !cur.GetFixed8(&fatal) ||
      !cur.GetLengthPrefixed(&message)) {
    return Truncated(MsgType::kError);
  }
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("ERROR carries an unknown status code");
  }
  msg.code = static_cast<StatusCode>(code);
  msg.fatal = fatal != 0;
  msg.message.assign(message);
  return msg;
}

Result<BusyMsg> DecodeBusy(std::string_view payload) {
  Cursor cur(payload);
  BusyMsg msg;
  if (!cur.GetFixed32(&msg.retry_after_ms) ||
      !cur.GetFixed32(&msg.quick_queued) ||
      !cur.GetFixed32(&msg.long_queued)) {
    return Truncated(MsgType::kBusy);
  }
  return msg;
}

Result<StatsMsg> DecodeStatsReport(std::string_view payload) {
  Cursor cur(payload);
  StatsMsg msg;
  uint32_t count = 0;
  if (!cur.GetFixed32(&msg.version) || !cur.GetFixed32(&count)) {
    return Truncated(MsgType::kStatsReport);
  }
  // An instrument record is at least 13 bytes (name length prefix +
  // kind byte + one u64 value), so a hostile count larger than the
  // remaining payload could carry is rejected before allocation.
  if (count > cur.remaining() / 13) {
    return Status::InvalidArgument(
        "STATS_REPORT instrument count exceeds payload size");
  }
  msg.instruments.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    metrics::InstrumentSnapshot ins;
    std::string_view name;
    uint8_t kind = 0;
    if (!cur.GetLengthPrefixed(&name) || !cur.GetFixed8(&kind)) {
      return Truncated(MsgType::kStatsReport);
    }
    ins.name.assign(name);
    switch (kind) {
      case static_cast<uint8_t>(metrics::Kind::kCounter):
        ins.kind = metrics::Kind::kCounter;
        if (!cur.GetFixed64(&ins.counter)) {
          return Truncated(MsgType::kStatsReport);
        }
        break;
      case static_cast<uint8_t>(metrics::Kind::kGauge): {
        ins.kind = metrics::Kind::kGauge;
        uint64_t bits = 0;
        if (!cur.GetFixed64(&bits)) {
          return Truncated(MsgType::kStatsReport);
        }
        ins.gauge = static_cast<int64_t>(bits);
        break;
      }
      case static_cast<uint8_t>(metrics::Kind::kHistogram): {
        ins.kind = metrics::Kind::kHistogram;
        uint32_t nbuckets = 0;
        if (!cur.GetFixed64(&ins.hist.count) ||
            !cur.GetFixed64(&ins.hist.sum) ||
            !cur.GetFixed32(&nbuckets)) {
          return Truncated(MsgType::kStatsReport);
        }
        // A bucket entry is 9 bytes; there are only 65 distinct
        // buckets, so both bounds guard a hostile count.
        if (nbuckets > metrics::kHistogramBuckets ||
            nbuckets > cur.remaining() / 9) {
          return Status::InvalidArgument(
              "STATS_REPORT bucket count exceeds payload size");
        }
        ins.hist.buckets.reserve(nbuckets);
        for (uint32_t b = 0; b < nbuckets; ++b) {
          uint8_t index = 0;
          uint64_t bucket_count = 0;
          if (!cur.GetFixed8(&index) || !cur.GetFixed64(&bucket_count)) {
            return Truncated(MsgType::kStatsReport);
          }
          if (index >= metrics::kHistogramBuckets) {
            return Status::InvalidArgument(
                "STATS_REPORT bucket index out of range");
          }
          ins.hist.buckets.emplace_back(index, bucket_count);
        }
        break;
      }
      default:
        return Status::InvalidArgument(
            "STATS_REPORT carries an unknown instrument kind");
    }
    msg.instruments.push_back(std::move(ins));
  }
  return msg;
}

bool ConstantTimeEquals(std::string_view a, std::string_view b) {
  // Fold every byte of both strings into one accumulator; no branch in
  // the loop depends on the data, so the runtime is a function of the
  // lengths alone. `volatile` keeps the compiler from rediscovering the
  // early exit this function exists to avoid.
  volatile unsigned char acc =
      static_cast<unsigned char>((a.size() ^ b.size()) != 0);
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    acc = acc | static_cast<unsigned char>(a[i] ^ b[i]);
  }
  return acc == 0;
}

uint32_t SaturatingU32(size_t v) {
  constexpr size_t kMax = std::numeric_limits<uint32_t>::max();
  return static_cast<uint32_t>(v < kMax ? v : kMax);
}

Result<Frame> ReadFrame(TcpConn* conn, size_t max_frame_bytes) {
  char lenbuf[4];
  SDSS_RETURN_IF_ERROR(conn->ReadExact(lenbuf, sizeof(lenbuf)));
  uint32_t len = 0;
  Cursor cur(std::string_view(lenbuf, sizeof(lenbuf)));
  cur.GetFixed32(&len);
  if (len == 0) {
    return Status::InvalidArgument("frame length 0 (missing type byte)");
  }
  if (len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(max_frame_bytes) + "-byte limit");
  }
  std::string body(len, '\0');
  Status read = conn->ReadExact(body.data(), body.size());
  if (!read.ok()) {
    // EOF mid-frame is a torn stream, not an orderly hang-up.
    if (read.code() == StatusCode::kAborted) {
      return Status::IOError("peer closed the connection mid-frame");
    }
    return read;
  }
  Frame frame;
  frame.type = static_cast<MsgType>(static_cast<uint8_t>(body[0]));
  frame.payload = body.substr(1);
  return frame;
}

}  // namespace sdss::server
