// One authenticated client connection of the query server.
//
// A session runs on its own thread: it performs the HELLO handshake,
// binds the connection to the authenticated user, then loops reading
// frames. Every QUERY is routed through the workbench scheduler's
// streaming submission, so admission pricing, lane quotas, per-user
// concurrency, and cooperative cancel all apply to wire traffic exactly
// as they do to in-process submissions -- the session adds only the
// fast-path BUSY shed (quick lane past the threshold) in front of them.
//
// Threading: the session thread reads; the lane worker executing the
// in-flight job writes HEADER/ROWS/DONE frames. The shared Wire
// serializes writes and outlives both -- hooks retained by terminal job
// bookkeeping hold a Wire whose conn was nulled at teardown, never a
// dangling socket. While a query is in flight the session thread polls
// the socket (CANCEL, BYE, disconnect) instead of blocking, so a client
// that vanishes mid-stream cancels its job instead of leaking a worker.

#ifndef SDSS_SERVER_SESSION_H_
#define SDSS_SERVER_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/net.h"
#include "core/status.h"
#include "server/protocol.h"
#include "workbench/scheduler.h"

namespace sdss::server {

class QueryServer;

/// The write side of a session, shared between the session thread and
/// the lane worker streaming the in-flight job's frames. Writes are
/// serialized under `mu`; after the session tears down, `conn` is null
/// and writes report kAborted instead of touching a dead socket.
struct Wire {
  std::mutex mu;
  TcpConn* conn = nullptr;

  Status Write(const std::string& frame);
};

/// One client connection. Constructed by the server's accept loop and
/// driven by Run() on a dedicated thread; Shutdown() (any thread) wakes
/// blocked socket I/O so Run returns.
class Session {
 public:
  Session(uint64_t id, TcpConn conn, QueryServer* server);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The session thread body: handshake, then the frame loop. Returns
  /// once the session is over (orderly BYE, disconnect, protocol
  /// violation, or server shutdown) with the in-flight job, if any,
  /// cancelled and terminal.
  void Run();

  /// Wakes any blocked socket I/O so Run() unwinds. Any thread.
  void Shutdown() { conn_.Shutdown(); }

  uint64_t id() const { return id_; }

 private:
  /// Coordination between the session thread and the hooks of one
  /// streaming submission. The job id is assigned when SubmitStreaming
  /// returns, but a worker can start the job first, so on_header waits
  /// for `id_ready`; `done` flips exactly once, after the terminal
  /// frame (DONE or ERROR) went to the wire.
  struct Pending {
    std::mutex mu;
    std::condition_variable cv;
    bool id_ready = false;
    uint64_t job_id = 0;
    workbench::Lane lane = workbench::Lane::kQuick;
    bool done = false;
    workbench::JobState state = workbench::JobState::kQueued;
    /// Result-cache verdict of the terminal snapshot (at most one set);
    /// the drain loop folds it into the server's cache counters.
    bool cache_hit = false;
    bool cache_containment = false;
  };

  bool RunLoop();  ///< Returns true for an orderly (BYE) close.
  /// Handles one QUERY frame end to end: shed, submit, stream, drain.
  /// Returns false when the session must close.
  bool HandleQuery(std::string_view payload);
  /// Polls the socket while a job is in flight, handling CANCEL / BYE /
  /// disconnect. Returns false when the session must close.
  bool DrainInFlight(const std::shared_ptr<Pending>& pending,
                     uint64_t job_id);
  void SendBusy();
  void SendError(const Status& error, bool fatal);
  /// Counts a protocol violation and emits its operational event.
  void NoteProtocolError(const Status& error);

  const uint64_t id_;
  TcpConn conn_;
  QueryServer* const server_;
  std::shared_ptr<Wire> wire_;
  std::string user_;
};

}  // namespace sdss::server

#endif  // SDSS_SERVER_SESSION_H_
