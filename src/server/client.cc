#include "server/client.h"

#include <utility>

namespace sdss::server {

namespace {
/// The client accepts frames up to this size (results can be large;
/// the bound only guards against a corrupt length prefix).
constexpr size_t kClientMaxFrameBytes = 64u << 20;
}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const std::string& user,
                               const std::string& token) {
  Result<TcpConn> conn = TcpConn::Connect(host, port);
  if (!conn.ok()) return conn.status();
  Client client(std::move(*conn), kClientMaxFrameBytes);

  HelloMsg hello;
  hello.user = user;
  hello.token = token;
  SDSS_RETURN_IF_ERROR(client.conn_.WriteAll(EncodeHello(hello)));

  Result<Frame> reply = ReadFrame(&client.conn_, kClientMaxFrameBytes);
  if (!reply.ok()) return reply.status();
  switch (reply->type) {
    case MsgType::kWelcome: {
      Result<WelcomeMsg> welcome = DecodeWelcome(reply->payload);
      if (!welcome.ok()) return welcome.status();
      client.welcome_ = std::move(*welcome);
      return client;
    }
    case MsgType::kBusy:
      return Status::Unavailable("server is at its session limit");
    case MsgType::kError: {
      Result<ErrorMsg> error = DecodeError(reply->payload);
      if (!error.ok()) return error.status();
      return error->ToStatus();
    }
    default:
      return Status::InvalidArgument(
          std::string("expected WELCOME, got ") + MsgTypeName(reply->type));
  }
}

Result<QueryOutcome> Client::Query(const std::string& sql) {
  return Query(sql, nullptr);
}

Result<QueryOutcome> Client::Query(
    const std::string& sql,
    const std::function<bool(const query::RowBatch&)>& on_rows) {
  QueryMsg query;
  query.sql = sql;
  SDSS_RETURN_IF_ERROR(conn_.WriteAll(EncodeQuery(query)));

  QueryOutcome outcome;
  bool cancel_sent = false;
  for (;;) {
    Result<Frame> frame = ReadFrame(&conn_, max_frame_bytes_);
    if (!frame.ok()) return frame.status();
    switch (frame->type) {
      case MsgType::kHeader: {
        Result<HeaderMsg> header = DecodeHeader(frame->payload);
        if (!header.ok()) return header.status();
        outcome.header = std::move(*header);
        outcome.have_header = true;
        break;
      }
      case MsgType::kRows: {
        Result<RowsMsg> rows = DecodeRows(frame->payload);
        if (!rows.ok()) return rows.status();
        if (on_rows != nullptr) {
          if (!on_rows(rows->rows) && !cancel_sent) {
            // Keep draining afterwards: the job's terminal frame still
            // arrives (normally ERROR / Cancelled) and ends the loop.
            SDSS_RETURN_IF_ERROR(conn_.WriteAll(EncodeCancel()));
            cancel_sent = true;
          }
        } else {
          outcome.rows.insert(outcome.rows.end(),
                              std::make_move_iterator(rows->rows.begin()),
                              std::make_move_iterator(rows->rows.end()));
        }
        break;
      }
      case MsgType::kDone: {
        Result<DoneMsg> done = DecodeDone(frame->payload);
        if (!done.ok()) return done.status();
        outcome.done = *done;
        outcome.kind = QueryOutcome::Kind::kDone;
        return outcome;
      }
      case MsgType::kError: {
        Result<ErrorMsg> error = DecodeError(frame->payload);
        if (!error.ok()) return error.status();
        outcome.error = std::move(*error);
        outcome.kind = QueryOutcome::Kind::kError;
        if (outcome.error.fatal) {
          // The server closes after a fatal error; so do we.
          conn_.Shutdown();
        }
        return outcome;
      }
      case MsgType::kBusy: {
        Result<BusyMsg> busy = DecodeBusy(frame->payload);
        if (!busy.ok()) return busy.status();
        outcome.busy = *busy;
        outcome.kind = QueryOutcome::Kind::kBusy;
        return outcome;
      }
      default:
        return Status::InvalidArgument(
            std::string("unexpected ") + MsgTypeName(frame->type) +
            " frame in a query conversation");
    }
  }
}

Result<StatsMsg> Client::Stats() {
  SDSS_RETURN_IF_ERROR(conn_.WriteAll(EncodeStatsRequest()));
  Result<Frame> frame = ReadFrame(&conn_, max_frame_bytes_);
  if (!frame.ok()) return frame.status();
  switch (frame->type) {
    case MsgType::kStatsReport:
      return DecodeStatsReport(frame->payload);
    case MsgType::kError: {
      Result<ErrorMsg> error = DecodeError(frame->payload);
      if (!error.ok()) return error.status();
      if (error->fatal) conn_.Shutdown();
      return error->ToStatus();
    }
    default:
      return Status::InvalidArgument(
          std::string("expected STATS_REPORT, got ") +
          MsgTypeName(frame->type));
  }
}

Status Client::Bye() {
  Status sent = conn_.WriteAll(EncodeBye());
  conn_.Shutdown();
  return sent;
}

Result<Frame> Client::ReadOneFrame() {
  return ReadFrame(&conn_, max_frame_bytes_);
}

}  // namespace sdss::server
