// The query server's wire protocol: length-prefixed frames carrying a
// small fixed message vocabulary.
//
//   frame := len:u32 | type:u8 | payload[len-1]
//
// `len` counts the type byte plus the payload, so the smallest legal
// frame is 5 bytes (len == 1, empty payload) and a reader can bound a
// frame before touching its body. All integers and IEEE doubles are
// little-endian; variable-length fields use a u32 length prefix ("lp").
// Decoders are bounds-checked (a torn or hostile byte stream decodes to
// a clean error, never out of bounds) and ignore unconsumed trailing
// payload bytes -- the compatibility rule that lets a future minor
// revision append fields without breaking old readers.
//
// docs/PROTOCOL.md is the normative byte-level spec of everything in
// this header; tests/server/protocol_test.cc pins the two against each
// other with hand-built frames.

#ifndef SDSS_SERVER_PROTOCOL_H_
#define SDSS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/net.h"
#include "core/status.h"
#include "query/qet.h"

namespace sdss::server {

/// Protocol revision carried in HELLO/WELCOME. The server refuses a
/// HELLO whose version differs (see docs/PROTOCOL.md "Versioning").
inline constexpr uint32_t kProtocolVersion = 1;

/// Bytes of framing around a payload: the u32 length plus the type byte.
inline constexpr size_t kFrameOverheadBytes = 5;

/// Message vocabulary. Client-to-server: HELLO, QUERY, CANCEL, BYE,
/// STATS. Server-to-client: WELCOME, HEADER, ROWS, DONE, ERROR, BUSY,
/// STATS_REPORT.
enum class MsgType : uint8_t {
  kHello = 1,    ///< version | user | token -- opens a session.
  kWelcome = 2,  ///< version | session_id | banner -- auth accepted.
  kQuery = 3,    ///< sql -- submit one statement.
  kHeader = 4,   ///< job_id | lane | is_aggregate | columns.
  kRows = 5,     ///< a batch of result rows (zero or more per query).
  kDone = 6,     ///< job_id | rows | timings | scan counters -- success.
  kError = 7,    ///< status code | fatal flag | message.
  kBusy = 8,     ///< retry_after_ms | lane depths -- backpressure.
  kCancel = 9,   ///< empty -- cancel the in-flight query.
  kBye = 10,     ///< empty -- orderly session close.
  kStats = 11,   ///< empty -- request the server's metrics snapshot.
  kStatsReport = 12,  ///< version | instruments -- the snapshot.
};

const char* MsgTypeName(MsgType type);

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  std::string user;
  std::string token;
};

struct WelcomeMsg {
  uint32_t version = kProtocolVersion;
  uint64_t session_id = 0;
  std::string banner;
};

struct QueryMsg {
  std::string sql;
};

struct HeaderMsg {
  uint64_t job_id = 0;
  uint8_t lane = 0;  ///< 0 = QUICK, 1 = LONG.
  bool is_aggregate = false;
  std::vector<std::string> columns;
};

struct RowsMsg {
  query::RowBatch rows;
};

struct DoneMsg {
  uint64_t job_id = 0;
  uint64_t rows = 0;
  double seconds_queued = 0.0;
  double seconds_running = 0.0;
  uint64_t containers_scanned = 0;
  uint64_t bytes_touched = 0;
  // Per-stage breakdown of seconds_running, appended in protocol
  // revision 1.1 as a trailing all-or-nothing block: old decoders
  // ignore it (the trailing-bytes rule), and a new decoder reading an
  // old frame leaves all five at 0.
  double seconds_plan = 0.0;
  double seconds_cache_probe = 0.0;
  double seconds_ghost_harvest = 0.0;
  double seconds_fan_out = 0.0;
  double seconds_stream_out = 0.0;
};

struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  /// True when the server closes the session after this error (auth
  /// failure, protocol violation); false for per-query errors the
  /// session survives.
  bool fatal = false;
  std::string message;

  Status ToStatus() const;
};

struct BusyMsg {
  uint32_t retry_after_ms = 0;
  uint32_t quick_queued = 0;
  uint32_t long_queued = 0;
};

/// The server's metrics snapshot, shipped in a STATS_REPORT frame.
/// `version` is the report encoding's own minor revision (starts at 1);
/// per the trailing-bytes rule, a future revision may append fields to
/// each instrument record only behind a version bump.
struct StatsMsg {
  uint32_t version = 1;
  std::vector<metrics::InstrumentSnapshot> instruments;
};

/// One decoded frame: the type byte plus its raw payload.
struct Frame {
  MsgType type = MsgType::kBye;
  std::string payload;
};

/// Encoders return the complete frame (length prefix included), ready
/// for TcpConn::WriteAll.
std::string EncodeHello(const HelloMsg& msg);
std::string EncodeWelcome(const WelcomeMsg& msg);
std::string EncodeQuery(const QueryMsg& msg);
std::string EncodeHeader(const HeaderMsg& msg);
std::string EncodeRows(const RowsMsg& msg);
/// Same frame, from a bare batch (the server's hot path -- no copy into
/// a RowsMsg).
std::string EncodeRows(const query::RowBatch& rows);
std::string EncodeDone(const DoneMsg& msg);
std::string EncodeError(const ErrorMsg& msg);
std::string EncodeBusy(const BusyMsg& msg);
std::string EncodeCancel();
std::string EncodeBye();
std::string EncodeStatsRequest();
std::string EncodeStatsReport(const StatsMsg& msg);

/// Decoders take the frame payload (everything after the type byte).
Result<HelloMsg> DecodeHello(std::string_view payload);
Result<WelcomeMsg> DecodeWelcome(std::string_view payload);
Result<QueryMsg> DecodeQuery(std::string_view payload);
Result<HeaderMsg> DecodeHeader(std::string_view payload);
Result<RowsMsg> DecodeRows(std::string_view payload);
Result<DoneMsg> DecodeDone(std::string_view payload);
Result<ErrorMsg> DecodeError(std::string_view payload);
Result<BusyMsg> DecodeBusy(std::string_view payload);
Result<StatsMsg> DecodeStatsReport(std::string_view payload);

/// True iff `a == b`, in time that depends only on the lengths (every
/// byte of both strings is always visited). Token checks must use this
/// instead of std::string::operator==, whose early exit at the first
/// mismatching byte leaks how much of a guessed secret was right.
bool ConstantTimeEquals(std::string_view a, std::string_view b);

/// `v` clamped into uint32_t: values above UINT32_MAX saturate to
/// UINT32_MAX instead of being truncated to a small (even zero) lie.
/// Wire messages that carry size_t quantities in u32 fields (BusyMsg
/// lane depths) go through this.
uint32_t SaturatingU32(size_t v);

/// Reads exactly one frame. A clean EOF on the length prefix is
/// kAborted (peer hung up between frames); a frame whose length is zero
/// or exceeds `max_frame_bytes` is kInvalidArgument -- the caller must
/// treat that as a protocol violation and close, because the stream can
/// no longer be re-synchronized.
Result<Frame> ReadFrame(TcpConn* conn, size_t max_frame_bytes);

}  // namespace sdss::server

#endif  // SDSS_SERVER_PROTOCOL_H_
