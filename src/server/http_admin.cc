#include "server/http_admin.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/proc_stats.h"

namespace sdss::server {
namespace {

/// "/varz?window=60s" -> ("/varz", "window=60s").
void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query) {
  const size_t q = target.find('?');
  *path = target.substr(0, q);
  *query = q == std::string_view::npos ? std::string_view()
                                       : target.substr(q + 1);
}

/// Value of `key` in a "k=v&k=v" query string, or "" when absent. Admin
/// parameters are plain tokens ("60s", "live", a trace id), so no
/// percent-decoding.
std::string_view QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

/// "60s" / "5m" / "1h" / "120" -> seconds; <= 0 on anything else.
double ParseWindowSeconds(std::string_view text) {
  if (text.empty()) return 0.0;
  double scale = 1.0;
  const char last = text.back();
  if (last == 's' || last == 'm' || last == 'h') {
    scale = last == 's' ? 1.0 : last == 'm' ? 60.0 : 3600.0;
    text.remove_suffix(1);
  }
  if (text.empty()) return 0.0;
  double value = 0.0;
  for (const char c : text) {
    if (c < '0' || c > '9') return 0.0;
    value = value * 10.0 + (c - '0');
  }
  return value * scale;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

HttpAdmin::HttpAdmin(Options options)
    : options_(std::move(options)),
      started_at_(std::chrono::steady_clock::now()) {
  if (options_.metrics != nullptr) {
    m_requests_ = options_.metrics->GetCounter("admin_http_requests");
  }
}

HttpAdmin::~HttpAdmin() { Stop(); }

Status HttpAdmin::Start() {
  if (options_.metrics == nullptr) {
    return Status::InvalidArgument("HttpAdmin requires Options::metrics");
  }
  if (started_.load()) {
    return Status::FailedPrecondition("HttpAdmin already started");
  }
  auto listener =
      TcpListener::Listen(options_.host, options_.port, options_.backlog);
  SDSS_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  LogEvent(options_.events, EventSeverity::kInfo, "admin", "admin_started",
           0, {{"host", options_.host}, {"port", std::to_string(port_)}});
  return Status::OK();
}

void HttpAdmin::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  LogEvent(options_.events, EventSeverity::kInfo, "admin", "admin_stopped",
           0, {{"requests", std::to_string(requests_.load())}});
}

uint64_t HttpAdmin::requests_served() const { return requests_.load(); }

double HttpAdmin::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

void HttpAdmin::AcceptLoop() {
  while (true) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kAborted) return;  // Shutdown.
      continue;  // Transient (EMFILE, ECONNABORTED): keep serving.
    }
    // One request per connection, served inline: the admin plane's
    // traffic is scrapers and operators, and a bounded read timeout
    // caps how long any one connection can hold the loop.
    ServeConn(std::move(*conn));
  }
}

void HttpAdmin::ServeConn(TcpConn conn) {
  std::string head;
  bool overflow = false;
  while (head.size() < 4 ||
         head.compare(head.size() - 4, 4, "\r\n\r\n") != 0) {
    // A request line alone is enough to route, so also accept a bare
    // newline terminator (printf | nc style probes).
    if (!head.empty() && head.back() == '\n' &&
        (head.size() < 2 || head[head.size() - 2] == '\n')) {
      break;
    }
    if (head.size() >= options_.max_request_bytes) {
      overflow = true;
      break;
    }
    auto readable = conn.WaitReadable(options_.read_timeout_ms);
    if (!readable.ok() || !*readable) return;  // Timeout: drop silently.
    char c = 0;
    if (!conn.ReadExact(&c, 1).ok()) return;
    head.push_back(c);
  }

  HttpResponse response;
  if (overflow) {
    response = TextResponse(400, "request too large\n");
  } else {
    const size_t line_end = head.find_first_of("\r\n");
    std::string_view line(head.data(),
                          line_end == std::string::npos ? head.size()
                                                        : line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos) {
      response = TextResponse(400, "malformed request line\n");
    } else {
      std::string_view method = line.substr(0, sp1);
      std::string_view target =
          sp2 == std::string_view::npos
              ? line.substr(sp1 + 1)
              : line.substr(sp1 + 1, sp2 - sp1 - 1);
      response = Handle(method, target);
    }
  }

  std::string wire = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     ReasonPhrase(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += response.body;
  (void)conn.WriteAll(wire);  // Best-effort: the client may have gone.
}

HttpResponse HttpAdmin::Handle(std::string_view method,
                               std::string_view target) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (m_requests_ != nullptr) m_requests_->Inc();
  if (method != "GET") {
    return TextResponse(405, "only GET is served here\n");
  }
  std::string_view path, query;
  SplitTarget(target, &path, &query);
  if (path == "/metrics") return HandleMetrics();
  if (path == "/healthz") return HandleHealthz(query);
  if (path == "/statusz") return HandleStatusz();
  if (path == "/varz") return HandleVarz(query);
  if (path == "/tracez") return HandleTracez(query);
  return TextResponse(
      404,
      "not found; endpoints: /metrics /healthz /statusz /varz /tracez\n");
}

HttpResponse HttpAdmin::HandleMetrics() {
  if (options_.metrics == nullptr) {
    return TextResponse(503, "metrics registry not configured\n");
  }
  // Refresh the process self-gauges so every scrape carries current
  // fd/thread/RSS numbers, not the last sampler period's.
  UpdateProcessMetrics(options_.metrics, UptimeSeconds());
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = options_.metrics->TextExposition();
  return response;
}

HttpResponse HttpAdmin::HandleHealthz(std::string_view query) {
  if (QueryParam(query, "mode") == "live") {
    // Liveness: answering at all is the whole check.
    return TextResponse(200, "live\n");
  }
  if (options_.watchdog == nullptr) {
    return TextResponse(200, "ok (no watchdog configured)\n");
  }
  if (options_.watchdog->ready()) return TextResponse(200, "ok\n");
  std::string body = "unready\n";
  for (const std::string& rule : options_.watchdog->failing()) {
    body += "rule: " + rule + "\n";
  }
  return TextResponse(503, std::move(body));
}

HttpResponse HttpAdmin::HandleStatusz() {
  std::string body = "sdss archive statusz\n";
  body += "build: " +
          (options_.build_info.empty() ? std::string("unknown")
                                       : options_.build_info) +
          "\n";
  body += "uptime_seconds: " + Fmt("%.1f", UptimeSeconds()) + "\n";
  body += "admin_requests: " + std::to_string(requests_.load()) + "\n";

  if (options_.metrics != nullptr) {
    // One consistent snapshot for every figure below.
    const auto snapshot = options_.metrics->Snapshot();
    auto counter = [&snapshot](std::string_view name) -> uint64_t {
      for (const auto& s : snapshot) {
        if (s.name == name) return s.counter;
      }
      return 0;
    };
    auto gauge = [&snapshot](std::string_view name) -> int64_t {
      for (const auto& s : snapshot) {
        if (s.name == name) return s.gauge;
      }
      return 0;
    };
    body += "\n[server]\n";
    body += "sessions_active: " +
            std::to_string(gauge("server_sessions_active")) + "\n";
    body += "sessions_accepted: " +
            std::to_string(counter("server_sessions_accepted")) + "\n";
    body += "sessions_refused: " +
            std::to_string(counter("server_sessions_refused")) + "\n";
    body += "busy_shed: " + std::to_string(counter("server_busy_shed")) +
            "\n";
    body += "protocol_errors: " +
            std::to_string(counter("server_protocol_errors")) + "\n";
    body += "cache: hits=" + std::to_string(counter("server_cache_hits")) +
            " containment=" +
            std::to_string(counter("server_cache_containment")) +
            " misses=" + std::to_string(counter("server_cache_misses")) +
            "\n";
    body += "\n[journal]\n";
    body += "poisoned: " +
            std::to_string(gauge("persist_journal_poisoned")) + "\n";
  }

  if (options_.scheduler != nullptr) {
    const auto depths = options_.scheduler->LaneDepths();
    body += "\n[lanes]\n";
    body += "quick: queued=" + std::to_string(depths.quick_queued) +
            " running=" + std::to_string(depths.quick_running) + "\n";
    body += "long: queued=" + std::to_string(depths.long_queued) +
            " running=" + std::to_string(depths.long_running) + "\n";

    // Per-user job accounting: the paper's community usage question
    // ("who is mining, who is browsing") answered from live bookkeeping.
    struct UserStat {
      size_t total = 0, queued = 0, running = 0, succeeded = 0, failed = 0,
             cancelled = 0;
    };
    std::map<std::string, UserStat> users;
    for (const auto& job : options_.scheduler->Jobs()) {
      UserStat& u = users[job.user];
      ++u.total;
      switch (job.state) {
        case workbench::JobState::kQueued: ++u.queued; break;
        case workbench::JobState::kRunning: ++u.running; break;
        case workbench::JobState::kSucceeded: ++u.succeeded; break;
        case workbench::JobState::kFailed: ++u.failed; break;
        case workbench::JobState::kCancelled: ++u.cancelled; break;
      }
    }
    body += "\n[jobs]\n";
    for (const auto& [user, u] : users) {
      body += user + ": total=" + std::to_string(u.total) +
              " queued=" + std::to_string(u.queued) +
              " running=" + std::to_string(u.running) +
              " succeeded=" + std::to_string(u.succeeded) +
              " failed=" + std::to_string(u.failed) +
              " cancelled=" + std::to_string(u.cancelled) + "\n";
    }
    if (users.empty()) body += "(no jobs yet)\n";
  }

  if (options_.history != nullptr) {
    body += "\n[history]\n";
    body += "samples_retained: " + std::to_string(options_.history->size()) +
            " of " + std::to_string(options_.history->capacity()) +
            " (period " +
            Fmt("%.1fs", options_.history->period_seconds()) + ")\n";
  }
  if (options_.traces != nullptr) {
    body += "\n[traces]\n";
    body += "ring: " + std::to_string(options_.traces->List().size()) +
            " of " + std::to_string(options_.traces->capacity()) +
            " retained, " + std::to_string(options_.traces->pushes()) +
            " pushed\n";
  }
  return TextResponse(200, std::move(body));
}

HttpResponse HttpAdmin::HandleVarz(std::string_view query) {
  if (options_.history == nullptr) {
    return TextResponse(503, "varz: metric history not configured\n");
  }
  double window = 60.0;
  const std::string_view param = QueryParam(query, "window");
  if (!param.empty()) {
    window = ParseWindowSeconds(param);
    if (window <= 0.0) {
      return TextResponse(400,
                          "varz: bad window '" + std::string(param) +
                              "' (want 60s / 5m / 1h / seconds)\n");
    }
  }
  auto text = options_.history->TextWindow(window);
  if (!text.ok()) {
    // A freshly started server has < 2 samples; that is a state, not a
    // scrape error.
    return TextResponse(200,
                        "# varz unavailable: " + text.status().ToString() +
                            "\n");
  }
  return TextResponse(200, std::move(*text));
}

HttpResponse HttpAdmin::HandleTracez(std::string_view query) {
  if (options_.traces == nullptr) {
    return TextResponse(503, "tracez: trace ring not configured\n");
  }
  const std::string_view id_param = QueryParam(query, "id");
  const bool latest = QueryParam(query, "latest") == "1";
  if (!id_param.empty() || latest) {
    query::TraceCapture capture;
    if (latest) {
      auto captures = options_.traces->List();
      if (!captures.empty()) capture = std::move(captures.front());
    } else {
      capture = options_.traces->Find(
          std::strtoull(std::string(id_param).c_str(), nullptr, 10));
    }
    if (capture.id == 0) {
      return TextResponse(404, "tracez: no such trace (overwritten?)\n");
    }
    HttpResponse response;
    response.content_type = "application/json";
    response.body = std::move(capture.chrome_json);
    return response;
  }
  // The index: everything but the span payload, newest first.
  std::string json = "{\"capacity\":" +
                     std::to_string(options_.traces->capacity()) +
                     ",\"pushes\":" +
                     std::to_string(options_.traces->pushes()) +
                     ",\"traces\":[";
  bool first = true;
  for (const auto& capture : options_.traces->List()) {
    if (!first) json += ",";
    first = false;
    json += "{\"id\":" + std::to_string(capture.id) +
            ",\"job_id\":" + std::to_string(capture.job_id) +
            ",\"user\":\"" + JsonEscape(capture.user) +
            "\",\"sql\":\"" + JsonEscape(capture.sql) +
            "\",\"seconds\":" + Fmt("%.6f", capture.seconds) +
            ",\"slow\":" + (capture.slow ? "true" : "false") + "}";
  }
  json += "]}";
  HttpResponse response;
  response.content_type = "application/json";
  response.body = std::move(json);
  return response;
}

}  // namespace sdss::server
