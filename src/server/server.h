// The archive's TCP front end.
//
// The paper's architecture puts a thin server between community users
// and the query engine ("the user talks to the archive through the
// User Interface / Query Support layers"); its successor services
// (SkyServer, CasJobs) made that front end a network protocol with
// authentication, per-user workspaces, and admission control. This
// module is that layer for the reproduction: a QueryServer accepts TCP
// connections, speaks the framed protocol of server/protocol.h
// (normative spec: docs/PROTOCOL.md), authenticates each session, and
// routes every statement through the workbench::JobScheduler so wire
// traffic gets the same cost-based admission, lane quotas, and
// cancellation as in-process submissions.
//
// Overload degrades gracefully instead of collapsing the accept queue:
//   - sessions above `max_sessions` are answered with BUSY and closed
//     at the door (bounded session set, bounded accept backlog);
//   - a QUERY arriving while the quick lane queues deeper than
//     `busy_quick_depth` is shed with BUSY + retry-after *before*
//     parsing -- no cycles spent planning work that would be refused;
//   - the scheduler's own bounded lanes (Options::max_queued_*) refuse
//     with kUnavailable, which the session translates to BUSY.

#ifndef SDSS_SERVER_SERVER_H_
#define SDSS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/eventlog.h"
#include "core/metrics.h"
#include "core/net.h"
#include "core/status.h"
#include "server/session.h"
#include "workbench/scheduler.h"

namespace sdss::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (readable via QueryServer::port()).
  uint16_t port = 0;
  int backlog = 128;
  /// Concurrent session ceiling; connections beyond it get BUSY + close.
  size_t max_sessions = 1024;
  /// Shed QUERYs (BUSY) once the quick lane queues this deep; 0 turns
  /// the fast-path shed off (the scheduler's bounds still apply).
  size_t busy_quick_depth = 64;
  /// Client backoff hint carried in every BUSY frame.
  uint32_t busy_retry_ms = 50;
  /// Protocol violation above this; must cover HELLO and QUERY frames.
  size_t max_frame_bytes = 1 << 20;
  /// Per-statement SQL ceiling; larger statements get a non-fatal ERROR.
  size_t max_sql_bytes = 64 << 10;
  /// user -> token. Empty map = open access (tests, local exploration).
  std::map<std::string, std::string> users;
  /// Human-readable server identification carried in WELCOME.
  std::string banner = "sdss-archive";
  /// Registry the server's counters live in (must outlive the server).
  /// Null = the server creates and owns a private registry. Pass the
  /// same registry the scheduler/engine/journal use so one STATS frame
  /// reports the whole process (see QueryServer::metrics()).
  metrics::Registry* metrics = nullptr;
  /// Operational events (component "server"): refused sessions, auth
  /// failures, and fatal protocol errors. Null = no events; must
  /// outlive the server.
  EventLog* events = nullptr;
};

/// Monotonic counters (and one gauge) of server activity.
struct ServerStats {
  uint64_t sessions_accepted = 0;  ///< Connections the listener accepted.
  uint64_t sessions_refused = 0;   ///< BUSY + close above max_sessions.
  uint64_t sessions_active = 0;    ///< Gauge: sessions currently open.
  uint64_t auth_failures = 0;
  uint64_t queries_submitted = 0;  ///< Reached the scheduler.
  uint64_t queries_succeeded = 0;
  uint64_t queries_failed = 0;     ///< Terminal failure or cancel.
  uint64_t busy_shed = 0;          ///< BUSY frames sent for QUERYs.
  uint64_t protocol_errors = 0;    ///< Fatal ERROR closes.
  /// Result-cache verdicts of succeeded queries: answered verbatim from
  /// the cache, answered by containment-filtering a cached superset, or
  /// answered by a real run (which includes fleets with caching off).
  uint64_t cache_hits = 0;
  uint64_t cache_containment = 0;
  uint64_t cache_misses = 0;
  /// Transient accept(2) failures (fd/buffer exhaustion) survived with
  /// a short backoff instead of killing the accept loop.
  uint64_t accept_retries = 0;
};

/// The TCP front end. Start() spawns the accept loop; every accepted
/// connection runs a Session on its own thread. Stop() (idempotent,
/// also run by the destructor) shuts the listener, wakes every live
/// session, and joins all threads; in-flight jobs are cancelled through
/// the scheduler, never abandoned.
///
/// The scheduler (and everything behind it) must outlive the server.
class QueryServer {
 public:
  QueryServer(workbench::JobScheduler* scheduler, ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  Status Start();
  void Stop();

  /// The listening port, valid after Start() succeeded.
  uint16_t port() const { return port_; }

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }
  workbench::JobScheduler* scheduler() const { return scheduler_; }
  /// The registry every server_* instrument lives in: the caller's
  /// (ServerOptions::metrics) or the server's own private fallback.
  /// Snapshot() of this is what a STATS frame ships.
  metrics::Registry* metrics() const { return metrics_; }

 private:
  friend class Session;

  /// Runs until Stop(). Transient accept failures (the kernel out of
  /// fds or socket buffers) are counted in `accept_retries` and waited
  /// out with a short capped backoff -- connections keep queueing in
  /// the backlog and are served once resources return; only shutdown
  /// (or a genuinely broken listener) ends the loop.
  void AcceptLoop();
  /// True when `user`/`token` may open a session. The token check is
  /// constant-time (see protocol.h ConstantTimeEquals).
  bool Authenticate(const std::string& user, const std::string& token) const;
  /// Session thread's sign-off: drops the server's reference and parks
  /// its own thread handle on the finished list for reaping.
  void OnSessionClosed(uint64_t id);
  /// Joins every thread on the finished list. Called by the accept loop
  /// on each connection (a long-running server must not accumulate one
  /// zombie thread per session ever served) and by Stop().
  void ReapFinishedThreads();

  /// Registry-backed instruments, resolved once in the constructor
  /// (names: server_*). Pointers are stable for the registry's
  /// lifetime, so sessions bump them lock-free.
  struct Counters {
    metrics::Counter* sessions_accepted = nullptr;
    metrics::Counter* sessions_refused = nullptr;
    metrics::Counter* auth_failures = nullptr;
    metrics::Counter* queries_submitted = nullptr;
    metrics::Counter* queries_succeeded = nullptr;
    metrics::Counter* queries_failed = nullptr;
    metrics::Counter* busy_shed = nullptr;
    metrics::Counter* protocol_errors = nullptr;
    metrics::Counter* accept_retries = nullptr;
    metrics::Counter* cache_hits = nullptr;
    metrics::Counter* cache_containment = nullptr;
    metrics::Counter* cache_misses = nullptr;
    metrics::Gauge* sessions_active = nullptr;
  };

  workbench::JobScheduler* const scheduler_;
  const ServerOptions options_;
  /// Fallback registry when ServerOptions::metrics is null; `metrics_`
  /// points at whichever registry is in use.
  std::unique_ptr<metrics::Registry> owned_metrics_;
  metrics::Registry* metrics_ = nullptr;
  TcpListener listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  /// Live session threads by session id; a closing session moves its
  /// own handle to `finished_threads_`, where it awaits a cheap join.
  std::map<uint64_t, std::thread> session_threads_;
  std::vector<std::thread> finished_threads_;
  mutable Counters counters_;
};

}  // namespace sdss::server

#endif  // SDSS_SERVER_SERVER_H_
