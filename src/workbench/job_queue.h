// The batch workbench's admission queue: two lanes with per-user
// concurrency quotas.
//
// The successor systems to the paper (CasJobs, "When Database Systems
// Meet the Grid") tame community traffic by never running long mining
// queries on the interactive path: every submission is priced first and
// admitted to a QUICK or LONG lane, each drained by its own bounded
// worker set, so a full-archive scan cannot starve a cone search. The
// per-user quota is enforced at dequeue time: a job whose owner already
// runs their share stays queued (FIFO among eligible jobs) until one of
// the owner's jobs finishes -- fairness costs no rejections.

#ifndef SDSS_WORKBENCH_JOB_QUEUE_H_
#define SDSS_WORKBENCH_JOB_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sdss::workbench {

/// Admission lanes (the cost-based split of the scheduler).
enum class Lane { kQuick, kLong };

const char* LaneName(Lane lane);

/// Thread-safe two-lane FIFO with quota-aware dequeue.
///
/// A popped job occupies one of its user's running slots until
/// OnJobFinished releases it; Remove takes a still-queued job out (the
/// cancel-while-queued path) without ever having consumed a slot.
class JobQueue {
 public:
  struct Options {
    /// Concurrent running jobs allowed per user across both lanes.
    size_t per_user_running = 1;
  };

  JobQueue() : JobQueue(Options()) {}
  explicit JobQueue(Options options) : options_(options) {}

  /// Enqueues a job at the back of its lane.
  void Push(Lane lane, uint64_t job_id, const std::string& user);

  /// Blocks until the lane holds a job whose user is under quota (or
  /// Shutdown). On success fills the outputs, consumes one running slot
  /// of that user, and returns true; returns false on shutdown.
  bool PopEligible(Lane lane, uint64_t* job_id, std::string* user);

  /// Releases the running slot taken by PopEligible.
  void OnJobFinished(const std::string& user);

  /// Removes a still-queued job from either lane. False if it was
  /// already popped (or never queued).
  bool Remove(uint64_t job_id);

  /// Wakes all blocked PopEligible calls with `false`; Push becomes a
  /// no-op.
  void Shutdown();

  size_t Depth(Lane lane) const;

  /// Both lane depths under one lock -- a consistent point-in-time pair
  /// (two Depth calls could interleave with a Push between them), which
  /// is what backpressure decisions key off.
  void Depths(size_t* quick, size_t* long_lane) const;

  size_t RunningFor(const std::string& user) const;

  /// Ids currently queued in `lane`, front (next to pop) first. A
  /// point-in-time snapshot for introspection and the recovery tests.
  std::vector<uint64_t> QueuedIds(Lane lane) const;

 private:
  struct Entry {
    uint64_t id = 0;
    std::string user;
  };

  std::deque<Entry>& LaneQueue(Lane lane) {
    return lane == Lane::kQuick ? quick_ : long_;
  }

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> quick_;
  std::deque<Entry> long_;
  std::map<std::string, size_t> running_;
  bool shutdown_ = false;
};

}  // namespace sdss::workbench

#endif  // SDSS_WORKBENCH_JOB_QUEUE_H_
