// The batch query workbench: cost-based admission, bounded worker
// lanes, cooperative cancellation, and MyDB result materialization.
//
// Synchronous execution does not survive community traffic: "Data Mining
// the SDSS SkyServer Database" (Gray, Szalay et al.) shows mining
// queries that run for hours next to cone searches that must answer in
// milliseconds. The JobScheduler puts an admission layer in front of the
// FederatedQueryEngine: every submission is priced with the engine's
// density-map cost estimate (Explain/PredictShards), admitted to the
// QUICK or LONG lane, and run on that lane's bounded worker pool under a
// per-user concurrency quota. "SELECT ... INTO mydb.<name>" jobs
// materialize their result into the submitting user's archive::MyDb
// store -- quota-checked, all-or-nothing -- so the next step of a mining
// workflow reads derived data instead of re-scanning the fleet.
//
// Durability (optional): RecoverFrom(dir) turns the scheduler into a
// crash-safe service. Every job transition (submit, start, terminal) is
// appended to a persist::Journal in `dir`, and recovery replays a prior
// incarnation's journal: jobs that were QUEUED at the crash are
// re-enqueued in their original lane order (the engine re-plans from
// SQL, so they simply run), jobs that were RUNNING are marked FAILED
// with an Aborted error and `retryable` set (their side effects are
// unknown; INTO jobs are safe to resubmit because the MyDB commit
// protocol is all-or-nothing), and already-terminal jobs come back as
// bookkeeping so Snapshot/Jobs keep answering (results themselves are
// not retained across restarts). Shutdown deliberately journals
// nothing for in-flight jobs -- a clean exit and a SIGKILL look
// identical to recovery, which is what makes the crash path testable.

#ifndef SDSS_WORKBENCH_SCHEDULER_H_
#define SDSS_WORKBENCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "archive/mydb.h"
#include "archive/sharded_store.h"
#include "core/eventlog.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "persist/journal.h"
#include "query/federated_engine.h"
#include "workbench/job_queue.h"

namespace sdss::workbench {

/// Lifecycle of a job. Queued and running are transient; the other
/// three are terminal.
enum class JobState { kQueued, kRunning, kSucceeded, kFailed, kCancelled };

const char* JobStateName(JobState state);

/// A point-in-time copy of one job's bookkeeping.
struct JobSnapshot {
  uint64_t id = 0;
  std::string user;
  std::string sql;
  Lane lane = Lane::kQuick;
  JobState state = JobState::kQueued;
  Status error;            ///< Set for kFailed / kCancelled.
  std::string into;        ///< MyDB target table; empty = rows returned.
  uint64_t predicted_bytes = 0;  ///< Admission estimate (scan + ship).
  uint64_t rows = 0;       ///< Rows returned, or objects materialized.
  query::ExecStats exec;   ///< Filled when the job ran.
  double seconds_queued = 0.0;
  double seconds_running = 0.0;
  /// Set on jobs that were RUNNING when a prior incarnation crashed:
  /// the failure is the crash, not the query -- resubmitting the same
  /// SQL is safe and expected.
  bool retryable = false;
};

/// Point-in-time load of both admission lanes: how many jobs sit queued
/// and how many are running, per lane. This is the introspection the
/// query server's backpressure keys off (a quick lane deeper than the
/// BUSY threshold sheds new work with a retry-after instead of letting
/// the queue -- and every interactive user's latency -- grow without
/// bound).
struct QueueDepths {
  size_t quick_queued = 0;
  size_t quick_running = 0;
  size_t long_queued = 0;
  size_t long_running = 0;

  size_t Queued(Lane lane) const {
    return lane == Lane::kQuick ? quick_queued : long_queued;
  }
  size_t Running(Lane lane) const {
    return lane == Lane::kQuick ? quick_running : long_running;
  }
};

/// Callbacks a streaming submission receives as its job executes -- the
/// query server's wire path: batches go to the socket as the executor
/// produces them instead of materializing a QueryResult in scheduler
/// memory first.
///
/// Threading: on_header and on_batch run on the lane worker executing
/// the job; on_complete runs exactly once per terminal transition, on
/// the worker, the cancelling thread (cancel-while-queued), or the
/// destructor's thread -- never under the scheduler's lock. Hooks must
/// not block for long (they hold a lane worker) and must not call
/// Wait() on their own job; Snapshot/Cancel are safe.
struct StreamHooks {
  /// The result shape, once, before the first batch. Not invoked for
  /// jobs that fail before planning or are cancelled while queued.
  std::function<void(const query::ResultHeader&)> on_header;
  /// Batches in ASAP order. Return false to stop consuming (the client
  /// vanished): remaining upstream work is abandoned and the job
  /// finishes as cancelled. Never invoked for INTO jobs (their rows go
  /// to the MyDB store).
  std::function<bool(const query::RowBatch&)> on_batch;
  /// The job's final snapshot, after it reached a terminal state.
  std::function<void(const JobSnapshot&)> on_complete;
};

/// What JobScheduler::RecoverFrom rebuilt from a prior incarnation.
struct SchedulerRecoveryReport {
  uint64_t jobs_seen = 0;            ///< Distinct job ids in the journal.
  /// Jobs re-enqueued because they were QUEUED at the crash, in their
  /// original submission (and therefore lane) order.
  std::vector<uint64_t> requeued_ids;
  uint64_t failed_running = 0;       ///< RUNNING at crash -> retryable.
  uint64_t terminal_restored = 0;    ///< Already-terminal bookkeeping.
  persist::ReplayReport journal;     ///< The raw replay outcome.
};

/// Runs submitted queries through a FederatedQueryEngine on two bounded
/// worker lanes.
///
/// Thread-safety: all public methods may be called concurrently. The
/// engine and mydb must outlive the scheduler. Destruction cancels
/// queued jobs, raises the cancel flag of running ones, and joins the
/// workers.
class JobScheduler {
 public:
  struct Options {
    size_t quick_workers = 2;   ///< Interactive lane width.
    size_t long_workers = 1;    ///< Mining lane width.
    size_t per_user_running = 1;
    /// Admission split: a predicted cost (bytes to scan + bytes
    /// shipped) above this sends the job to the LONG lane.
    uint64_t quick_lane_max_bytes = 4ull << 20;
    /// When set, every job execution reports the archive containers it
    /// scans to this fleet's RecordAccess -- the scheduler-driven heat
    /// feed of the replica-promotion loop. Must outlive the scheduler.
    archive::ShardedStore* heat = nullptr;
    /// Bounded admission (0 = unbounded, the in-process default): a
    /// submission whose target lane already queues this many jobs is
    /// refused with kUnavailable and no side effects -- the overload
    /// verdict the query server translates into a protocol-level BUSY
    /// instead of letting the queue grow into accept-queue collapse.
    size_t max_queued_quick = 0;
    size_t max_queued_long = 0;
    /// Retention cap on terminal bookkeeping (0 = unlimited, the
    /// in-process default). When set, every terminal transition prunes
    /// the oldest completed jobs -- and their untaken results -- down
    /// to this many, so a long-lived service no longer needs to call
    /// PruneTerminalJobs() on a timer to stay bounded. Jobs whose
    /// completion hook has not fired yet, or that a Wait() is still
    /// parked on, are never pruned out from under their observers.
    size_t max_retained_terminal_jobs = 0;
    /// Metrics registry the scheduler publishes into: per-lane
    /// queued/running gauges, workbench_queue_wait_us and
    /// workbench_run_us latency histograms, job and slow-log counters.
    /// Also forwarded to the recovery journal
    /// (persist_journal_append_us / fsync_us). Null = no metrics; must
    /// outlive the scheduler.
    metrics::Registry* metrics = nullptr;
    /// Slow-query log: a finished job whose run time reaches
    /// slow_query_seconds persists its trace as chrome://tracing JSON
    /// (slow-<jobid>.json) under this directory, which is pruned to the
    /// slowlog_max_files newest captures. Empty = off; RecoverFrom
    /// defaults it to "<dir>/slowlog" so a durable scheduler gets the
    /// log for free. Tracing is only ever enabled when this is set.
    std::string slowlog_dir;
    double slow_query_seconds = 1.0;
    size_t slowlog_max_files = 32;
    /// Operational events (component "workbench"): slow queries emit a
    /// kWarn slow_query event with user/sql/seconds. Also forwarded to
    /// the recovery journal (journal_poisoned). Null = no events; must
    /// outlive the scheduler.
    EventLog* events = nullptr;
    /// In-memory ring the admin endpoint's /tracez lists. Slow jobs
    /// always push their capture; with trace_sample_every = N > 0 every
    /// Nth finished traced job is pushed too (slow = false), so /tracez
    /// has content on a healthy server. Tracing is enabled when either
    /// this or slowlog_dir is set. Must outlive the scheduler.
    query::TraceRing* trace_ring = nullptr;
    size_t trace_sample_every = 0;
  };

  JobScheduler(query::FederatedQueryEngine* engine, archive::MyDb* mydb,
               Options options);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Recovers a prior incarnation's jobs from the journal in `dir` and
  /// starts journaling this incarnation's transitions there. Must be
  /// called before the first Submit (FailedPrecondition otherwise).
  /// QUEUED jobs are re-enqueued under their original ids in original
  /// lane order; RUNNING jobs become FAILED/Aborted with `retryable`
  /// set; terminal jobs are restored as bookkeeping (their results are
  /// gone: TakeResult answers FailedPrecondition).
  Result<SchedulerRecoveryReport> RecoverFrom(const std::string& dir);

  /// Parses, prices, and enqueues `sql` for `user`. Returns the job id,
  /// or the parse/plan error (nothing is queued on failure), or
  /// kUnavailable when the target lane is at its configured bound.
  Result<uint64_t> Submit(const std::string& user, const std::string& sql);

  /// Like Submit, but the job streams its result through `hooks`
  /// instead of materializing it (TakeResult answers FailedPrecondition
  /// for streaming jobs). INTO jobs still materialize into MyDB;
  /// their hooks see on_header and on_complete only.
  Result<uint64_t> SubmitStreaming(const std::string& user,
                                   const std::string& sql,
                                   StreamHooks hooks);

  /// Cancels a job: a queued job terminates immediately; a running job
  /// has its cooperative cancel flag raised and terminates at the
  /// executor's next scan/join cancellation point. FailedPrecondition
  /// if the job already reached a terminal state.
  Status Cancel(uint64_t job_id);

  /// Current bookkeeping of one job.
  Result<JobSnapshot> Snapshot(uint64_t job_id) const;

  /// Blocks until the job reaches a terminal state; returns its final
  /// snapshot.
  Result<JobSnapshot> Wait(uint64_t job_id);

  /// Moves a succeeded non-INTO job's result out of the scheduler.
  Result<query::QueryResult> TakeResult(uint64_t job_id);

  /// All jobs, ascending id.
  std::vector<JobSnapshot> Jobs() const;

  /// Drops terminal jobs (and their retained results) from the
  /// bookkeeping, returning how many were freed. A long-lived service
  /// must call this periodically: completed jobs are otherwise kept
  /// forever so Snapshot/TakeResult keep answering.
  size_t PruneTerminalJobs();

  size_t QueueDepth(Lane lane) const { return queue_.Depth(lane); }

  /// Queued + running job counts of both lanes, as one consistent
  /// snapshot -- the introspection bounded admission and the server's
  /// BUSY threshold decide on.
  QueueDepths LaneDepths() const;

  const Options& options() const { return options_; }

 private:
  struct Job {
    JobSnapshot snap;
    std::atomic<bool> cancel{false};
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point started;
    query::QueryResult result;
    bool result_taken = false;
    /// Set for SubmitStreaming jobs; such a job never materializes.
    bool streaming = false;
    StreamHooks hooks;
    /// Terminal hook has returned (set under mu_): the job is safe for
    /// the retention cap to reap.
    bool notified = false;
    /// Wait() calls currently parked on this job (guarded by mu_);
    /// pruning skips jobs with observers.
    int waiters = 0;
  };

  Result<uint64_t> SubmitInternal(const std::string& user,
                                  const std::string& sql, bool streaming,
                                  StreamHooks hooks);
  void WorkerLoop(Lane lane);
  void RunJob(Job* job);
  /// Fires a terminal job's on_complete hook. Must be called without
  /// mu_ held (hooks may write to sockets or call Snapshot/Cancel).
  static void NotifyComplete(Job* job, JobSnapshot snap);
  /// NotifyComplete, then marks the job reapable and applies the
  /// terminal retention cap (Options::max_retained_terminal_jobs).
  /// Skipped wholesale during shutdown (the destructor owns teardown).
  void NotifyAndPrune(Job* job, JobSnapshot snap);
  /// Erases the oldest completed jobs beyond the retention cap. Only
  /// notified, observer-free jobs are eligible. Requires mu_.
  void AutoPruneLocked();
  /// Appends a terminal-transition record; no-op when not journaling.
  /// Callers skip this for shutdown-driven terminals (see the file
  /// comment: shutdown must look like a crash to recovery).
  void JournalTerminal(const JobSnapshot& snap);
  /// The INTO sink: streams the select, rebuilds full PhotoObjs from the
  /// rows, and hands them to MyDb::Put whole. Enforces the owner's byte
  /// quota while streaming so a runaway result aborts early -- and a
  /// failed or cancelled job stores nothing (no partial container).
  Status ExecuteInto(Job* job, const query::ExecContext& ctx,
                     query::ExecStats* exec, uint64_t* rows);
  /// Refreshes the per-lane queued/running gauges from LaneDepths().
  /// Takes mu_ (via LaneDepths) -- call without the lock held.
  void UpdateLaneGauges();
  /// Persists one slow job's trace to Options::slowlog_dir and prunes
  /// the directory to slowlog_max_files newest captures. Best-effort:
  /// I/O failures are swallowed (the job already finished).
  void WriteSlowLog(uint64_t job_id, const query::QueryTrace& trace);

  query::FederatedQueryEngine* engine_;
  archive::MyDb* mydb_;
  Options options_;
  JobQueue queue_;
  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  std::atomic<bool> shutting_down_{false};
  /// Traced jobs finished, the modulus trace sampling counts on.
  std::atomic<uint64_t> traced_finished_{0};
  std::unique_ptr<persist::Journal> journal_;  ///< Null until recovered.
  // Instruments resolved once in the constructor; all null when
  // Options::metrics is unset.
  metrics::Gauge* g_quick_queued_ = nullptr;
  metrics::Gauge* g_quick_running_ = nullptr;
  metrics::Gauge* g_long_queued_ = nullptr;
  metrics::Gauge* g_long_running_ = nullptr;
  metrics::Histogram* m_queue_wait_us_ = nullptr;
  metrics::Histogram* m_run_us_ = nullptr;
  metrics::Counter* m_jobs_finished_ = nullptr;
  metrics::Counter* m_slowlog_writes_ = nullptr;
  ThreadGroup workers_;
};

}  // namespace sdss::workbench

#endif  // SDSS_WORKBENCH_SCHEDULER_H_
