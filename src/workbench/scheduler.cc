#include "workbench/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "catalog/photo_obj.h"
#include "core/io.h"
#include "persist/coding.h"

namespace sdss::workbench {
namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Journal record types: one per job transition. SUBMIT carries the
/// whole admission decision (the job re-plans from SQL when it runs, so
/// nothing else needs to survive); START and TERMINAL are keyed by id.
enum class JobRecord : uint8_t { kSubmit = 1, kStart = 2, kTerminal = 3 };

std::string EncodeSubmit(const JobSnapshot& snap) {
  std::string rec;
  persist::PutFixed8(&rec, static_cast<uint8_t>(JobRecord::kSubmit));
  persist::PutFixed64(&rec, snap.id);
  persist::PutFixed8(&rec, snap.lane == Lane::kLong ? 1 : 0);
  persist::PutFixed64(&rec, snap.predicted_bytes);
  persist::PutLengthPrefixed(&rec, snap.user);
  persist::PutLengthPrefixed(&rec, snap.sql);
  persist::PutLengthPrefixed(&rec, snap.into);
  return rec;
}

std::string EncodeStart(uint64_t id) {
  std::string rec;
  persist::PutFixed8(&rec, static_cast<uint8_t>(JobRecord::kStart));
  persist::PutFixed64(&rec, id);
  return rec;
}

std::string EncodeTerminal(const JobSnapshot& snap) {
  std::string rec;
  persist::PutFixed8(&rec, static_cast<uint8_t>(JobRecord::kTerminal));
  persist::PutFixed64(&rec, snap.id);
  persist::PutFixed8(&rec, static_cast<uint8_t>(snap.state));
  persist::PutFixed64(&rec, snap.rows);
  persist::PutFixed8(&rec, static_cast<uint8_t>(snap.error.code()));
  persist::PutLengthPrefixed(&rec, snap.error.message());
  return rec;
}

/// Rebuilds a Status from its journaled (code, message) pair.
Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(msg));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

/// One job's journal history folded to its state at the crash.
struct ReplayedJob {
  JobSnapshot snap;
  bool started = false;
  bool terminal = false;
};

Status ApplyJobRecord(std::string_view record,
                      std::map<uint64_t, ReplayedJob>* jobs) {
  persist::Cursor cursor(record);
  uint8_t type = 0;
  if (!cursor.GetFixed8(&type)) {
    return Status::Corruption("job journal record is empty");
  }
  uint64_t id = 0;
  if (!cursor.GetFixed64(&id)) {
    return Status::Corruption("job journal record has no id");
  }
  switch (static_cast<JobRecord>(type)) {
    case JobRecord::kSubmit: {
      uint8_t lane = 0;
      std::string_view user, sql, into;
      ReplayedJob job;
      if (!cursor.GetFixed8(&lane) ||
          !cursor.GetFixed64(&job.snap.predicted_bytes) ||
          !cursor.GetLengthPrefixed(&user) ||
          !cursor.GetLengthPrefixed(&sql) ||
          !cursor.GetLengthPrefixed(&into)) {
        return Status::Corruption("bad job SUBMIT record");
      }
      job.snap.id = id;
      job.snap.lane = lane != 0 ? Lane::kLong : Lane::kQuick;
      job.snap.user = std::string(user);
      job.snap.sql = std::string(sql);
      job.snap.into = std::string(into);
      job.snap.state = JobState::kQueued;
      (*jobs)[id] = std::move(job);
      return Status::OK();
    }
    case JobRecord::kStart: {
      auto it = jobs->find(id);
      // A START for an unknown id means its SUBMIT fell past the torn
      // tail of an earlier segment -- impossible with ordered replay,
      // so treat it as corruption.
      if (it == jobs->end()) {
        return Status::Corruption("job START without SUBMIT");
      }
      it->second.started = true;
      it->second.snap.state = JobState::kRunning;
      return Status::OK();
    }
    case JobRecord::kTerminal: {
      auto it = jobs->find(id);
      if (it == jobs->end()) {
        return Status::Corruption("job TERMINAL without SUBMIT");
      }
      uint8_t state = 0;
      uint8_t code = 0;
      std::string_view msg;
      if (!cursor.GetFixed8(&state) ||
          !cursor.GetFixed64(&it->second.snap.rows) ||
          !cursor.GetFixed8(&code) || !cursor.GetLengthPrefixed(&msg)) {
        return Status::Corruption("bad job TERMINAL record");
      }
      it->second.terminal = true;
      it->second.snap.state = static_cast<JobState>(state);
      it->second.snap.error =
          MakeStatus(static_cast<StatusCode>(code), std::string(msg));
      // An Aborted terminal is the crash-interruption verdict a prior
      // recovery journaled: keep the retryable marking across restarts.
      it->second.snap.retryable =
          it->second.snap.error.code() == StatusCode::kAborted;
      return Status::OK();
    }
  }
  return Status::Corruption("unknown job journal record type " +
                            std::to_string(type));
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kSucceeded:
      return "SUCCEEDED";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "?";
}

JobScheduler::JobScheduler(query::FederatedQueryEngine* engine,
                           archive::MyDb* mydb, Options options)
    : engine_(engine),
      mydb_(mydb),
      options_(options),
      queue_(JobQueue::Options{options.per_user_running}) {
  if (options_.metrics != nullptr) {
    g_quick_queued_ =
        options_.metrics->GetGauge("workbench_quick_queued");
    g_quick_running_ =
        options_.metrics->GetGauge("workbench_quick_running");
    g_long_queued_ = options_.metrics->GetGauge("workbench_long_queued");
    g_long_running_ =
        options_.metrics->GetGauge("workbench_long_running");
    m_queue_wait_us_ =
        options_.metrics->GetHistogram("workbench_queue_wait_us");
    m_run_us_ = options_.metrics->GetHistogram("workbench_run_us");
    m_jobs_finished_ =
        options_.metrics->GetCounter("workbench_jobs_finished");
    m_slowlog_writes_ =
        options_.metrics->GetCounter("workbench_slowlog_writes");
  }
  for (size_t i = 0; i < options_.quick_workers; ++i) {
    workers_.Spawn([this] { WorkerLoop(Lane::kQuick); });
  }
  for (size_t i = 0; i < options_.long_workers; ++i) {
    workers_.Spawn([this] { WorkerLoop(Lane::kLong); });
  }
}

JobScheduler::~JobScheduler() {
  shutting_down_.store(true);
  {
    // Queued jobs will never run; running jobs get their flag raised so
    // the executors unwind at the next cancellation point.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      if (job->snap.state == JobState::kQueued ||
          job->snap.state == JobState::kRunning) {
        job->cancel.store(true);
      }
    }
  }
  queue_.Shutdown();
  workers_.JoinAll();
  std::vector<std::pair<Job*, JobSnapshot>> completed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      if (job->snap.state == JobState::kQueued) {
        job->snap.state = JobState::kCancelled;
        job->snap.error = Status::Cancelled("scheduler shut down");
        completed.emplace_back(job.get(), job->snap);
      }
    }
  }
  for (auto& [job, snap] : completed) NotifyComplete(job, std::move(snap));
  done_cv_.notify_all();
}

void JobScheduler::NotifyComplete(Job* job, JobSnapshot snap) {
  if (job->hooks.on_complete) job->hooks.on_complete(snap);
}

void JobScheduler::NotifyAndPrune(Job* job, JobSnapshot snap) {
  NotifyComplete(job, std::move(snap));
  std::lock_guard<std::mutex> lock(mu_);
  // Only now -- with the hook returned -- is the job reapable; pruning
  // an un-notified job would free it out from under its own callback.
  job->notified = true;
  // Shutdown teardown is the destructor's job (it holds no retention
  // expectations and must not race the final sweep).
  if (!shutting_down_.load()) AutoPruneLocked();
}

void JobScheduler::AutoPruneLocked() {
  const size_t cap = options_.max_retained_terminal_jobs;
  if (cap == 0) return;
  size_t terminal = 0;
  for (const auto& [id, job] : jobs_) {
    JobState state = job->snap.state;
    if (state == JobState::kSucceeded || state == JobState::kFailed ||
        state == JobState::kCancelled) {
      ++terminal;
    }
  }
  // Oldest first (jobs_ is ascending by id). A terminal job still
  // awaiting its hook or holding parked Wait() calls is skipped -- it
  // counts against the cap but cannot be freed yet.
  for (auto it = jobs_.begin(); it != jobs_.end() && terminal > cap;) {
    Job* job = it->second.get();
    JobState state = job->snap.state;
    bool done = state == JobState::kSucceeded ||
                state == JobState::kFailed ||
                state == JobState::kCancelled;
    if (done && job->notified && job->waiters == 0) {
      it = jobs_.erase(it);
      --terminal;
    } else {
      ++it;
    }
  }
}

QueueDepths JobScheduler::LaneDepths() const {
  QueueDepths depths;
  std::lock_guard<std::mutex> lock(mu_);
  queue_.Depths(&depths.quick_queued, &depths.long_queued);
  for (const auto& [id, job] : jobs_) {
    if (job->snap.state != JobState::kRunning) continue;
    if (job->snap.lane == Lane::kQuick) {
      ++depths.quick_running;
    } else {
      ++depths.long_running;
    }
  }
  return depths;
}

Result<uint64_t> JobScheduler::Submit(const std::string& user,
                                      const std::string& sql) {
  return SubmitInternal(user, sql, /*streaming=*/false, StreamHooks{});
}

Result<uint64_t> JobScheduler::SubmitStreaming(const std::string& user,
                                               const std::string& sql,
                                               StreamHooks hooks) {
  return SubmitInternal(user, sql, /*streaming=*/true, std::move(hooks));
}

Result<uint64_t> JobScheduler::SubmitInternal(const std::string& user,
                                              const std::string& sql,
                                              bool streaming,
                                              StreamHooks hooks) {
  if (shutting_down_.load()) {
    return Status::FailedPrecondition("scheduler is shutting down");
  }
  // Price the query before admitting it; a parse/plan error (unknown
  // attribute, missing mydb table, tag on a tagless fleet) is rejected
  // here, costing the submitter no queue slot. The job is re-planned
  // from SQL when it runs -- deliberately, not cached: by then the
  // shard routing may have failed over and the user's mydb namespace
  // changed, and both must be resolved against the world the job
  // actually executes in.
  query::ExecContext ctx;
  ctx.mydb = mydb_->ResolverFor(user);
  auto estimate = engine_->EstimateCost(sql, ctx);
  if (!estimate.ok()) return estimate.status();
  if (!estimate->into_mydb.empty()) {
    // Taken-name INTO jobs would only discover the collision at the
    // final Put; refuse them before they cost lane time -- whether the
    // name is already materialized or claimed by a queued/running job.
    // (Put keeps its own check as the last-line race guard.)
    bool taken = mydb_->Find(user, estimate->into_mydb).ok();
    if (!taken) {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, other] : jobs_) {
        if (other->snap.user == user &&
            other->snap.into == estimate->into_mydb &&
            (other->snap.state == JobState::kQueued ||
             other->snap.state == JobState::kRunning)) {
          taken = true;
          break;
        }
      }
    }
    if (taken) {
      return Status::AlreadyExists("mydb." + estimate->into_mydb +
                                   " already exists or is being "
                                   "materialized; DROP or wait first");
    }
  }

  auto job = std::make_unique<Job>();
  job->snap.user = user;
  job->snap.sql = sql;
  job->snap.into = estimate->into_mydb;
  job->snap.predicted_bytes = estimate->TotalBytes();
  job->snap.lane = estimate->TotalBytes() > options_.quick_lane_max_bytes
                       ? Lane::kLong
                       : Lane::kQuick;
  job->submitted = std::chrono::steady_clock::now();
  job->streaming = streaming;
  job->hooks = std::move(hooks);

  uint64_t id;
  Lane lane = job->snap.lane;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Bounded admission: refuse (no id, no journal record, no queue
    // slot) instead of queueing past the configured depth. Checked
    // under mu_, the same lock every Push serializes on, so the bound
    // is exact.
    const size_t bound = lane == Lane::kQuick ? options_.max_queued_quick
                                              : options_.max_queued_long;
    if (bound > 0 && queue_.Depth(lane) >= bound) {
      return Status::Unavailable(
          std::string(LaneName(lane)) + " lane is at its admission bound (" +
          std::to_string(bound) + " jobs queued); retry after a backoff");
    }
    id = next_id_++;
    job->snap.id = id;
    if (journal_ != nullptr) {
      // The SUBMIT record is durable before the job is visible anywhere:
      // a job that exists can always be recovered. On append failure
      // nothing is queued (the id gap is harmless).
      SDSS_RETURN_IF_ERROR(journal_->Append(EncodeSubmit(job->snap)));
    }
    jobs_.emplace(id, std::move(job));
    // Push under mu_ so queue order always equals id order -- the
    // invariant RecoverFrom's in-original-lane-order re-enqueue rests
    // on. (mu_ -> queue lock is the established nesting; Cancel does
    // the same.)
    queue_.Push(lane, id, user);
  }
  UpdateLaneGauges();
  return id;
}

Result<SchedulerRecoveryReport> JobScheduler::RecoverFrom(
    const std::string& dir) {
  SchedulerRecoveryReport report;
  /// (lane, id, user) of the jobs to re-enqueue, in original order.
  std::vector<std::tuple<Lane, uint64_t, std::string>> requeue;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (journal_ != nullptr) {
      return Status::FailedPrecondition("scheduler already recovered");
    }
    if (!jobs_.empty()) {
      return Status::FailedPrecondition(
          "RecoverFrom must run before the first Submit");
    }
    std::map<uint64_t, ReplayedJob> replayed;
    auto replay = persist::ReplayJournal(
        dir, [&replayed](std::string_view rec) {
          return ApplyJobRecord(rec, &replayed);
        });
    if (!replay.ok()) return replay.status();
    report.journal = *replay;
    persist::Journal::Options journal_options;
    journal_options.metrics = options_.metrics;
    journal_options.events = options_.events;
    auto journal = persist::Journal::Open(dir, journal_options);
    if (!journal.ok()) return journal.status();
    journal_ = std::move(*journal);
    // A durable scheduler gets the slow-query log for free, co-located
    // with its journal. (Safe to set here: RecoverFrom must precede the
    // first Submit, so no job is reading the option concurrently.)
    if (options_.slowlog_dir.empty()) {
      options_.slowlog_dir = dir + "/slowlog";
    }

    report.jobs_seen = replayed.size();
    uint64_t max_id = 0;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, rj] : replayed) {
      max_id = std::max(max_id, id);
      auto job = std::make_unique<Job>();
      job->snap = rj.snap;
      job->submitted = now;
      if (rj.terminal) {
        // Bookkeeping survives; the result rows do not. No hook is
        // pending (it belonged to the dead incarnation), so the job is
        // immediately reapable.
        job->result_taken = true;
        job->notified = true;
        ++report.terminal_restored;
      } else if (rj.started) {
        // RUNNING at the crash: whether it finished is unknowable, so
        // fail it retryably. (An INTO job is safe to resubmit either
        // way: if its MyDB commit landed, the resubmit is refused with
        // AlreadyExists; if not, recovery wiped the orphan.)
        job->snap.state = JobState::kFailed;
        job->snap.error = Status::Aborted(
            "job was RUNNING when the scheduler went down; resubmit to "
            "retry");
        job->snap.retryable = true;
        job->result_taken = true;
        job->notified = true;
        ++report.failed_running;
        // Fold the verdict into the journal so the next recovery (and
        // any journal inspection) sees a terminal job, not a phantom
        // runner. Best-effort: replay reaches the same verdict without
        // it.
        (void)journal_->Append(EncodeTerminal(job->snap));
      } else {
        // QUEUED at the crash: the SUBMIT record is the whole job (it
        // re-plans from SQL), so it simply queues again.
        report.requeued_ids.push_back(id);
        requeue.emplace_back(job->snap.lane, id, job->snap.user);
      }
      jobs_.emplace(id, std::move(job));
    }
    next_id_ = max_id + 1;
    // Ascending id = original submission order = original per-lane
    // order (Submit pushes under this same lock, so queue order and id
    // order cannot diverge).
    for (const auto& [lane, id, user] : requeue) {
      queue_.Push(lane, id, user);
    }
  }
  done_cv_.notify_all();  // Waiters on crash-failed jobs wake now.
  return report;
}

void JobScheduler::JournalTerminal(const JobSnapshot& snap) {
  if (journal_ == nullptr) return;
  (void)journal_->Append(EncodeTerminal(snap));
}

Status JobScheduler::Cancel(uint64_t job_id) {
  Job* completed = nullptr;
  JobSnapshot completed_snap;
  Status result = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job " + std::to_string(job_id));
    }
    Job* job = it->second.get();
    switch (job->snap.state) {
      case JobState::kQueued:
        job->cancel.store(true);
        if (queue_.Remove(job_id)) {
          // Still in the queue: terminal right here. (If a worker popped
          // it concurrently, the raised flag makes the worker finish it
          // as cancelled instead.)
          job->snap.state = JobState::kCancelled;
          job->snap.error = Status::Cancelled("cancelled while queued");
          job->snap.seconds_queued = SecondsBetween(
              job->submitted, std::chrono::steady_clock::now());
          JournalTerminal(job->snap);  // A user decision: it survives.
          completed = job;
          completed_snap = job->snap;
          done_cv_.notify_all();
        }
        break;
      case JobState::kRunning:
        job->cancel.store(true);
        break;
      case JobState::kSucceeded:
      case JobState::kFailed:
      case JobState::kCancelled:
        result = Status::FailedPrecondition(
            "job " + std::to_string(job_id) + " already " +
            JobStateName(job->snap.state));
        break;
    }
  }
  // The terminal hook fires outside mu_ (it may write to a socket or
  // call back into Snapshot).
  if (completed != nullptr) {
    NotifyAndPrune(completed, std::move(completed_snap));
  }
  return result;
}

Result<JobSnapshot> JobScheduler::Snapshot(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  return it->second->snap;
}

Result<JobSnapshot> JobScheduler::Wait(uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  Job* job = it->second.get();
  // Parked waiters pin the job: neither retention cap nor manual prune
  // may free it while this predicate still dereferences it.
  ++job->waiters;
  done_cv_.wait(lock, [job] {
    return job->snap.state == JobState::kSucceeded ||
           job->snap.state == JobState::kFailed ||
           job->snap.state == JobState::kCancelled;
  });
  --job->waiters;
  return job->snap;
}

Result<query::QueryResult> JobScheduler::TakeResult(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  Job* job = it->second.get();
  if (job->snap.state != JobState::kSucceeded) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is " +
        JobStateName(job->snap.state));
  }
  if (!job->snap.into.empty()) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " materialized into mydb." +
        job->snap.into + "; query that table instead");
  }
  if (job->streaming) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) +
        " streamed its result; there is nothing to take");
  }
  if (job->result_taken) {
    return Status::FailedPrecondition(
        "result of job " + std::to_string(job_id) + " already taken");
  }
  job->result_taken = true;
  return std::move(job->result);
}

size_t JobScheduler::PruneTerminalJobs() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pruned = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    Job* job = it->second.get();
    JobState state = job->snap.state;
    // Same eligibility as the retention cap: a terminal job whose hook
    // has not returned, or with Wait() calls parked on it, stays.
    if ((state == JobState::kSucceeded || state == JobState::kFailed ||
         state == JobState::kCancelled) &&
        job->notified && job->waiters == 0) {
      it = jobs_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

std::vector<JobSnapshot> JobScheduler::Jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job->snap);
  return out;
}

void JobScheduler::WorkerLoop(Lane lane) {
  uint64_t id = 0;
  std::string user;
  while (queue_.PopEligible(lane, &id, &user)) {
    Job* job = nullptr;
    bool run = false;
    bool cancelled_here = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job = jobs_.at(id).get();
      if (job->cancel.load() || shutting_down_.load()) {
        job->snap.state = JobState::kCancelled;
        job->snap.error = Status::Cancelled("cancelled while queued");
        job->snap.seconds_queued = SecondsBetween(
            job->submitted, std::chrono::steady_clock::now());
        // Journal a user cancellation; a shutdown one stays out of the
        // journal so recovery re-enqueues the job instead.
        if (!shutting_down_.load()) JournalTerminal(job->snap);
        cancelled_here = true;
      } else {
        job->snap.state = JobState::kRunning;
        job->started = std::chrono::steady_clock::now();
        job->snap.seconds_queued =
            SecondsBetween(job->submitted, job->started);
        if (journal_ != nullptr) {
          (void)journal_->Append(EncodeStart(id));
        }
        run = true;
      }
    }
    UpdateLaneGauges();
    if (cancelled_here) NotifyAndPrune(job, job->snap);
    if (run) RunJob(job);
    queue_.OnJobFinished(user);
    done_cv_.notify_all();
  }
}

void JobScheduler::RunJob(Job* job) {
  if (m_queue_wait_us_ != nullptr) {
    m_queue_wait_us_->Record(
        static_cast<uint64_t>(job->snap.seconds_queued * 1e6));
  }
  query::ExecContext ctx;
  ctx.cancel = &job->cancel;
  ctx.mydb = mydb_->ResolverFor(job->snap.user);
  // Tracing rides the slow-query log and the /tracez ring: when either
  // is configured every job runs traced (the spans are a handful of
  // mutex-guarded appends, not per-row work) and the capture is
  // persisted only if the job turns out slow or is sampled. The
  // admission wait predates the trace, so it is recorded as an
  // annotated zero-length span.
  std::unique_ptr<query::QueryTrace> trace;
  if (!options_.slowlog_dir.empty() || options_.trace_ring != nullptr) {
    trace = std::make_unique<query::QueryTrace>();
    char idbuf[32];
    std::snprintf(idbuf, sizeof(idbuf), "%llu",
                  static_cast<unsigned long long>(job->snap.id));
    trace->SetMeta("job", idbuf);
    trace->SetMeta("user", job->snap.user);
    trace->SetMeta("sql", job->snap.sql);
    const int wait_span = trace->Begin("admission_wait");
    trace->Num(wait_span, "seconds_queued", job->snap.seconds_queued);
    trace->End(wait_span);
    ctx.trace = trace.get();
  }
  if (options_.heat != nullptr) {
    // Scheduler-driven heat: every container this job's scans touch
    // counts one access, so mining workloads (not just interactive
    // traffic) drive the fleet's replica-promotion loop.
    ctx.access_recorder = [this](uint64_t container) {
      options_.heat->RecordAccess(container);
    };
  }

  Status status;
  query::ExecStats exec;
  uint64_t rows = 0;
  query::QueryResult result;
  if (!job->snap.into.empty()) {
    status = ExecuteInto(job, ctx, &exec, &rows);
  } else if (job->streaming) {
    // The wire path: batches flow to the hooks as the executor produces
    // them; nothing is retained in scheduler memory.
    uint64_t emitted = 0;
    bool sink_stopped = false;
    auto stats = engine_->ExecuteStreaming(
        job->snap.sql,
        [job](const query::ResultHeader& header) {
          if (job->hooks.on_header) job->hooks.on_header(header);
        },
        [job, &emitted, &sink_stopped](const query::RowBatch& batch) {
          emitted += batch.size();
          if (job->hooks.on_batch && !job->hooks.on_batch(batch)) {
            sink_stopped = true;
            return false;
          }
          return true;
        },
        ctx);
    if (!stats.ok()) {
      status = stats.status();
    } else if (sink_stopped) {
      // The consumer walked away mid-stream (client disconnect): the
      // job is a cancellation, not a success with missing rows.
      status = Status::Cancelled("stream consumer stopped mid-result");
      exec = *stats;
      rows = emitted;
    } else {
      exec = *stats;
      rows = emitted;
    }
  } else {
    auto run = engine_->Execute(job->snap.sql, ctx);
    if (run.ok()) {
      result = std::move(run).value();
      exec = result.exec;
      rows = result.rows.size();
    } else {
      status = run.status();
    }
  }

  JobSnapshot final_snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->snap.exec = exec;
    job->snap.rows = rows;
    job->snap.seconds_running =
        SecondsBetween(job->started, std::chrono::steady_clock::now());
    if (status.ok()) {
      job->result = std::move(result);
      // A streaming job's rows are already gone to the hooks.
      job->result_taken = job->streaming;
      job->snap.state = JobState::kSucceeded;
    } else {
      job->snap.state = status.code() == StatusCode::kCancelled
                            ? JobState::kCancelled
                            : JobState::kFailed;
      job->snap.error = status;
    }
    // Crash-equivalence at shutdown: a job torn down by the destructor is
    // left un-journaled, so recovery treats it exactly like a job the
    // power cord interrupted (re-enqueued or failed-retryable).
    if (!shutting_down_.load()) JournalTerminal(job->snap);
    final_snap = job->snap;
  }
  if (m_jobs_finished_ != nullptr) m_jobs_finished_->Inc();
  if (m_run_us_ != nullptr) {
    m_run_us_->Record(
        static_cast<uint64_t>(final_snap.seconds_running * 1e6));
  }
  if (trace != nullptr) {
    const bool slow =
        final_snap.seconds_running >= options_.slow_query_seconds;
    if (slow) {
      if (!options_.slowlog_dir.empty()) {
        WriteSlowLog(final_snap.id, *trace);
      }
      char seconds[32];
      std::snprintf(seconds, sizeof(seconds), "%.3f",
                    final_snap.seconds_running);
      LogEvent(options_.events, EventSeverity::kWarn, "workbench",
               "slow_query", final_snap.id,
               {{"user", final_snap.user},
                {"sql", final_snap.sql},
                {"seconds", seconds}});
    }
    // Every slow trace lands in the ring; a healthy server contributes
    // every trace_sample_every-th traced job so /tracez is never empty.
    const uint64_t nth =
        traced_finished_.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool sampled = options_.trace_sample_every > 0 &&
                         nth % options_.trace_sample_every == 0;
    if (options_.trace_ring != nullptr && (slow || sampled)) {
      query::TraceCapture capture;
      capture.job_id = final_snap.id;
      capture.user = final_snap.user;
      capture.sql = final_snap.sql;
      capture.seconds = final_snap.seconds_running;
      capture.slow = slow;
      capture.chrome_json = trace->ToChromeJson();
      options_.trace_ring->Push(std::move(capture));
    }
  }
  UpdateLaneGauges();
  NotifyAndPrune(job, std::move(final_snap));
}

void JobScheduler::UpdateLaneGauges() {
  if (g_quick_queued_ == nullptr) return;
  const QueueDepths d = LaneDepths();
  g_quick_queued_->Set(static_cast<int64_t>(d.quick_queued));
  g_quick_running_->Set(static_cast<int64_t>(d.quick_running));
  g_long_queued_->Set(static_cast<int64_t>(d.long_queued));
  g_long_running_->Set(static_cast<int64_t>(d.long_running));
}

void JobScheduler::WriteSlowLog(uint64_t job_id,
                                const query::QueryTrace& trace) {
  if (!CreateDirs(options_.slowlog_dir).ok()) return;
  // Fixed-width ids: lexicographic name order == age order, which is
  // what the pruning below sorts by.
  char name[48];
  std::snprintf(name, sizeof(name), "slow-%08llu.json",
                static_cast<unsigned long long>(job_id));
  if (!WriteFileDurable(options_.slowlog_dir + "/" + name,
                        trace.ToChromeJson())
           .ok()) {
    return;
  }
  if (m_slowlog_writes_ != nullptr) m_slowlog_writes_->Inc();

  auto entries = ListDir(options_.slowlog_dir);
  if (!entries.ok()) return;
  std::vector<std::string> captures;
  for (const std::string& entry : *entries) {
    if (entry.rfind("slow-", 0) == 0 && entry.size() > 10 &&
        entry.compare(entry.size() - 5, 5, ".json") == 0) {
      captures.push_back(entry);
    }
  }
  if (captures.size() <= options_.slowlog_max_files) return;
  std::sort(captures.begin(), captures.end());
  const size_t excess = captures.size() - options_.slowlog_max_files;
  for (size_t i = 0; i < excess; ++i) {
    (void)RemoveFile(options_.slowlog_dir + "/" + captures[i]);
  }
}

Status JobScheduler::ExecuteInto(Job* job, const query::ExecContext& base,
                                 query::ExecStats* exec, uint64_t* rows) {
  query::ExecContext ctx = base;
  ctx.into_sink = true;  // This sink IS the materialization.
  const std::vector<std::string>& names = catalog::PhotoAttributeNames();
  const uint64_t budget = mydb_->RemainingBytes(job->snap.user);
  std::vector<catalog::PhotoObj> objects;
  Status convert_error;
  bool over_quota = false;

  auto stats = engine_->ExecuteStreaming(
      job->snap.sql,
      [job](const query::ResultHeader& header) {
        // A streaming INTO job still announces its shape; the rows
        // themselves go to the store, not the hooks.
        if (job->hooks.on_header) job->hooks.on_header(header);
      },
      [&](const query::RowBatch& batch) {
        for (const query::ResultRow& row : batch) {
          auto obj = catalog::PhotoObjFromRow(names, row.values);
          if (!obj.ok()) {
            convert_error = obj.status();
            return false;
          }
          objects.push_back(std::move(obj).value());
        }
        if (objects.size() * sizeof(catalog::PhotoObj) > budget) {
          over_quota = true;  // Stop streaming; nothing gets stored.
          return false;
        }
        return true;
      },
      ctx);
  if (!stats.ok()) return stats.status();
  if (!convert_error.ok()) return convert_error;
  if (over_quota) {
    return Status::ResourceExhausted(
        "mydb quota of user '" + job->snap.user +
        "' exceeded while materializing mydb." + job->snap.into);
  }
  *exec = *stats;
  *rows = objects.size();
  return mydb_->Put(job->snap.user, job->snap.into, std::move(objects));
}

}  // namespace sdss::workbench
