#include "workbench/scheduler.h"

#include <utility>

#include "catalog/photo_obj.h"

namespace sdss::workbench {
namespace {

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kSucceeded:
      return "SUCCEEDED";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "?";
}

JobScheduler::JobScheduler(query::FederatedQueryEngine* engine,
                           archive::MyDb* mydb, Options options)
    : engine_(engine),
      mydb_(mydb),
      options_(options),
      queue_(JobQueue::Options{options.per_user_running}) {
  for (size_t i = 0; i < options_.quick_workers; ++i) {
    workers_.Spawn([this] { WorkerLoop(Lane::kQuick); });
  }
  for (size_t i = 0; i < options_.long_workers; ++i) {
    workers_.Spawn([this] { WorkerLoop(Lane::kLong); });
  }
}

JobScheduler::~JobScheduler() {
  shutting_down_.store(true);
  {
    // Queued jobs will never run; running jobs get their flag raised so
    // the executors unwind at the next cancellation point.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      if (job->snap.state == JobState::kQueued ||
          job->snap.state == JobState::kRunning) {
        job->cancel.store(true);
      }
    }
  }
  queue_.Shutdown();
  workers_.JoinAll();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, job] : jobs_) {
      if (job->snap.state == JobState::kQueued) {
        job->snap.state = JobState::kCancelled;
        job->snap.error = Status::Cancelled("scheduler shut down");
      }
    }
  }
  done_cv_.notify_all();
}

Result<uint64_t> JobScheduler::Submit(const std::string& user,
                                      const std::string& sql) {
  if (shutting_down_.load()) {
    return Status::FailedPrecondition("scheduler is shutting down");
  }
  // Price the query before admitting it; a parse/plan error (unknown
  // attribute, missing mydb table, tag on a tagless fleet) is rejected
  // here, costing the submitter no queue slot. The job is re-planned
  // from SQL when it runs -- deliberately, not cached: by then the
  // shard routing may have failed over and the user's mydb namespace
  // changed, and both must be resolved against the world the job
  // actually executes in.
  query::ExecContext ctx;
  ctx.mydb = mydb_->ResolverFor(user);
  auto estimate = engine_->EstimateCost(sql, ctx);
  if (!estimate.ok()) return estimate.status();
  if (!estimate->into_mydb.empty()) {
    // Taken-name INTO jobs would only discover the collision at the
    // final Put; refuse them before they cost lane time -- whether the
    // name is already materialized or claimed by a queued/running job.
    // (Put keeps its own check as the last-line race guard.)
    bool taken = mydb_->Find(user, estimate->into_mydb).ok();
    if (!taken) {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, other] : jobs_) {
        if (other->snap.user == user &&
            other->snap.into == estimate->into_mydb &&
            (other->snap.state == JobState::kQueued ||
             other->snap.state == JobState::kRunning)) {
          taken = true;
          break;
        }
      }
    }
    if (taken) {
      return Status::AlreadyExists("mydb." + estimate->into_mydb +
                                   " already exists or is being "
                                   "materialized; DROP or wait first");
    }
  }

  auto job = std::make_unique<Job>();
  job->snap.user = user;
  job->snap.sql = sql;
  job->snap.into = estimate->into_mydb;
  job->snap.predicted_bytes = estimate->TotalBytes();
  job->snap.lane = estimate->TotalBytes() > options_.quick_lane_max_bytes
                       ? Lane::kLong
                       : Lane::kQuick;
  job->submitted = std::chrono::steady_clock::now();

  uint64_t id;
  Lane lane = job->snap.lane;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    job->snap.id = id;
    jobs_.emplace(id, std::move(job));
  }
  queue_.Push(lane, id, user);
  return id;
}

Status JobScheduler::Cancel(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  Job* job = it->second.get();
  switch (job->snap.state) {
    case JobState::kQueued:
      job->cancel.store(true);
      if (queue_.Remove(job_id)) {
        // Still in the queue: terminal right here. (If a worker popped
        // it concurrently, the raised flag makes the worker finish it
        // as cancelled instead.)
        job->snap.state = JobState::kCancelled;
        job->snap.error = Status::Cancelled("cancelled while queued");
        job->snap.seconds_queued = SecondsBetween(
            job->submitted, std::chrono::steady_clock::now());
        done_cv_.notify_all();
      }
      return Status::OK();
    case JobState::kRunning:
      job->cancel.store(true);
      return Status::OK();
    case JobState::kSucceeded:
    case JobState::kFailed:
    case JobState::kCancelled:
      return Status::FailedPrecondition(
          "job " + std::to_string(job_id) + " already " +
          JobStateName(job->snap.state));
  }
  return Status::Internal("unreachable");
}

Result<JobSnapshot> JobScheduler::Snapshot(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  return it->second->snap;
}

Result<JobSnapshot> JobScheduler::Wait(uint64_t job_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  Job* job = it->second.get();
  done_cv_.wait(lock, [job] {
    return job->snap.state == JobState::kSucceeded ||
           job->snap.state == JobState::kFailed ||
           job->snap.state == JobState::kCancelled;
  });
  return job->snap;
}

Result<query::QueryResult> JobScheduler::TakeResult(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job " + std::to_string(job_id));
  }
  Job* job = it->second.get();
  if (job->snap.state != JobState::kSucceeded) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is " +
        JobStateName(job->snap.state));
  }
  if (!job->snap.into.empty()) {
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " materialized into mydb." +
        job->snap.into + "; query that table instead");
  }
  if (job->result_taken) {
    return Status::FailedPrecondition(
        "result of job " + std::to_string(job_id) + " already taken");
  }
  job->result_taken = true;
  return std::move(job->result);
}

size_t JobScheduler::PruneTerminalJobs() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pruned = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    JobState state = it->second->snap.state;
    if (state == JobState::kSucceeded || state == JobState::kFailed ||
        state == JobState::kCancelled) {
      it = jobs_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

std::vector<JobSnapshot> JobScheduler::Jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobSnapshot> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job->snap);
  return out;
}

void JobScheduler::WorkerLoop(Lane lane) {
  uint64_t id = 0;
  std::string user;
  while (queue_.PopEligible(lane, &id, &user)) {
    Job* job = nullptr;
    bool run = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job = jobs_.at(id).get();
      if (job->cancel.load() || shutting_down_.load()) {
        job->snap.state = JobState::kCancelled;
        job->snap.error = Status::Cancelled("cancelled while queued");
        job->snap.seconds_queued = SecondsBetween(
            job->submitted, std::chrono::steady_clock::now());
      } else {
        job->snap.state = JobState::kRunning;
        job->started = std::chrono::steady_clock::now();
        job->snap.seconds_queued =
            SecondsBetween(job->submitted, job->started);
        run = true;
      }
    }
    if (run) RunJob(job);
    queue_.OnJobFinished(user);
    done_cv_.notify_all();
  }
}

void JobScheduler::RunJob(Job* job) {
  query::ExecContext ctx;
  ctx.cancel = &job->cancel;
  ctx.mydb = mydb_->ResolverFor(job->snap.user);

  Status status;
  query::ExecStats exec;
  uint64_t rows = 0;
  query::QueryResult result;
  if (!job->snap.into.empty()) {
    status = ExecuteInto(job, ctx, &exec, &rows);
  } else {
    auto run = engine_->Execute(job->snap.sql, ctx);
    if (run.ok()) {
      result = std::move(run).value();
      exec = result.exec;
      rows = result.rows.size();
    } else {
      status = run.status();
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  job->snap.exec = exec;
  job->snap.rows = rows;
  job->snap.seconds_running =
      SecondsBetween(job->started, std::chrono::steady_clock::now());
  if (status.ok()) {
    job->result = std::move(result);
    job->snap.state = JobState::kSucceeded;
  } else {
    job->snap.state = status.code() == StatusCode::kCancelled
                          ? JobState::kCancelled
                          : JobState::kFailed;
    job->snap.error = status;
  }
}

Status JobScheduler::ExecuteInto(Job* job, const query::ExecContext& base,
                                 query::ExecStats* exec, uint64_t* rows) {
  query::ExecContext ctx = base;
  ctx.into_sink = true;  // This sink IS the materialization.
  const std::vector<std::string>& names = catalog::PhotoAttributeNames();
  const uint64_t budget = mydb_->RemainingBytes(job->snap.user);
  std::vector<catalog::PhotoObj> objects;
  Status convert_error;
  bool over_quota = false;

  auto stats = engine_->ExecuteStreaming(
      job->snap.sql,
      [&](const query::RowBatch& batch) {
        for (const query::ResultRow& row : batch) {
          auto obj = catalog::PhotoObjFromRow(names, row.values);
          if (!obj.ok()) {
            convert_error = obj.status();
            return false;
          }
          objects.push_back(std::move(obj).value());
        }
        if (objects.size() * sizeof(catalog::PhotoObj) > budget) {
          over_quota = true;  // Stop streaming; nothing gets stored.
          return false;
        }
        return true;
      },
      ctx);
  if (!stats.ok()) return stats.status();
  if (!convert_error.ok()) return convert_error;
  if (over_quota) {
    return Status::ResourceExhausted(
        "mydb quota of user '" + job->snap.user +
        "' exceeded while materializing mydb." + job->snap.into);
  }
  *exec = *stats;
  *rows = objects.size();
  return mydb_->Put(job->snap.user, job->snap.into, std::move(objects));
}

}  // namespace sdss::workbench
