#include "workbench/job_queue.h"

#include <algorithm>

namespace sdss::workbench {

const char* LaneName(Lane lane) {
  switch (lane) {
    case Lane::kQuick:
      return "QUICK";
    case Lane::kLong:
      return "LONG";
  }
  return "?";
}

void JobQueue::Push(Lane lane, uint64_t job_id, const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  LaneQueue(lane).push_back(Entry{job_id, user});
  cv_.notify_all();
}

bool JobQueue::PopEligible(Lane lane, uint64_t* job_id,
                          std::string* user) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) return false;
    std::deque<Entry>& queue = LaneQueue(lane);
    // First entry whose user is under quota; later jobs of saturated
    // users wait behind it without blocking other users.
    auto it = std::find_if(queue.begin(), queue.end(),
                           [this](const Entry& e) {
                             auto r = running_.find(e.user);
                             return r == running_.end() ||
                                    r->second < options_.per_user_running;
                           });
    if (it != queue.end()) {
      *job_id = it->id;
      *user = it->user;
      ++running_[it->user];
      queue.erase(it);
      return true;
    }
    cv_.wait(lock);
  }
}

void JobQueue::OnJobFinished(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_.find(user);
  if (it != running_.end() && it->second > 0 && --it->second == 0) {
    running_.erase(it);
  }
  cv_.notify_all();
}

bool JobQueue::Remove(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::deque<Entry>* queue : {&quick_, &long_}) {
    auto it = std::find_if(queue->begin(), queue->end(),
                           [job_id](const Entry& e) {
                             return e.id == job_id;
                           });
    if (it != queue->end()) {
      queue->erase(it);
      return true;
    }
  }
  return false;
}

void JobQueue::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

size_t JobQueue::Depth(Lane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lane == Lane::kQuick ? quick_.size() : long_.size();
}

void JobQueue::Depths(size_t* quick, size_t* long_lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  *quick = quick_.size();
  *long_lane = long_.size();
}

std::vector<uint64_t> JobQueue::QueuedIds(Lane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::deque<Entry>& q = lane == Lane::kQuick ? quick_ : long_;
  std::vector<uint64_t> ids;
  ids.reserve(q.size());
  for (const Entry& e : q) ids.push_back(e.id);
  return ids;
}

size_t JobQueue::RunningFor(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_.find(user);
  return it == running_.end() ? 0 : it->second;
}

}  // namespace sdss::workbench
