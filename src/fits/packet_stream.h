// Blocked FITS packet streaming.
//
// The paper: "Unfortunately, FITS files do not support streaming data,
// although data could be blocked into separate FITS packets. We are
// currently implementing both an ASCII and a binary FITS output stream,
// using such a blocked approach." This module is that extension: a stream
// is a sequence of self-contained FITS table HDUs ("packets"), each
// carrying sequence keywords (PKTSEQ, PKTLAST) so a consumer can process
// packets as they arrive and knows when the stream ends.

#ifndef SDSS_FITS_PACKET_STREAM_H_
#define SDSS_FITS_PACKET_STREAM_H_

#include <functional>
#include <string>

#include "core/status.h"
#include "fits/table.h"

namespace sdss::fits {

/// Stream encoding: binary BINTABLE packets or ASCII TABLE packets.
enum class StreamEncoding { kBinary, kAscii };

/// Splits a table stream into fixed-row-count FITS packets.
///
/// Usage:
///   PacketStreamWriter w(schema, {.rows_per_packet = 1000});
///   w.Append(row); ...
///   w.Finish();           // Emits the trailing (PKTLAST = T) packet.
///   consume(w.TakeOutput());
class PacketStreamWriter {
 public:
  struct Options {
    size_t rows_per_packet = 1000;
    StreamEncoding encoding = StreamEncoding::kBinary;
  };

  /// `sink` is invoked with each completed packet's bytes, enabling true
  /// streaming; pass nullptr to accumulate into an internal buffer.
  PacketStreamWriter(std::vector<ColumnSpec> schema, Options options,
                     std::function<void(std::string)> sink = nullptr);

  /// Appends one row; flushes a packet when rows_per_packet is reached.
  Status Append(const std::vector<Table::Cell>& row);

  /// Flushes the final packet (possibly empty) marked PKTLAST = T.
  /// No further Append calls are allowed.
  Status Finish();

  /// Accumulated bytes (when no sink was supplied).
  std::string TakeOutput() { return std::move(buffer_); }

  size_t packets_emitted() const { return seq_; }
  size_t rows_written() const { return rows_written_; }

 private:
  void EmitPacket(bool last);

  std::vector<ColumnSpec> schema_;
  Options options_;
  std::function<void(std::string)> sink_;
  Table pending_;
  std::string buffer_;
  size_t seq_ = 0;
  size_t rows_written_ = 0;
  bool finished_ = false;
};

/// Reads a packet stream, invoking a callback per packet table. The
/// callback may stop consumption early by returning false.
class PacketStreamReader {
 public:
  struct PacketInfo {
    size_t sequence = 0;
    bool last = false;
  };

  /// Parses all packets in `data`. `on_packet` is called in order; a
  /// false return stops (useful for ASAP consumers). Verifies sequence
  /// numbering and that exactly the final packet carries PKTLAST = T.
  static Status Consume(
      const std::string& data,
      const std::function<bool(const Table&, const PacketInfo&)>& on_packet);

  /// Convenience: reassembles the whole stream into one table.
  static Result<Table> ReadAll(const std::string& data);
};

}  // namespace sdss::fits

#endif  // SDSS_FITS_PACKET_STREAM_H_
