// FITS header cards: the 80-character key/value records of the Flexible
// Image Transport System [Wells81], which the paper adopts as the
// interchange format between astronomy archives.

#ifndef SDSS_FITS_CARD_H_
#define SDSS_FITS_CARD_H_

#include <cstdint>
#include <string>
#include <variant>

#include "core/status.h"

namespace sdss::fits {

/// FITS physical record size in bytes. Headers and data are both padded
/// to a multiple of this.
inline constexpr size_t kBlockSize = 2880;

/// One header record: exactly 80 ASCII characters when serialized.
class Card {
 public:
  using Value = std::variant<std::monostate, bool, int64_t, double,
                             std::string>;

  Card() = default;
  Card(std::string key, Value value, std::string comment = "")
      : key_(std::move(key)), value_(std::move(value)),
        comment_(std::move(comment)) {}

  /// A comment-only card (COMMENT / HISTORY style).
  static Card Comment(std::string text) {
    Card c;
    c.key_ = "COMMENT";
    c.comment_ = std::move(text);
    return c;
  }

  /// The END card closing a header.
  static Card End() {
    Card c;
    c.key_ = "END";
    return c;
  }

  const std::string& key() const { return key_; }
  const Value& value() const { return value_; }
  const std::string& comment() const { return comment_; }

  bool is_end() const { return key_ == "END"; }
  bool is_comment() const {
    return key_ == "COMMENT" || key_ == "HISTORY";
  }

  /// Serializes to exactly 80 characters. Keys are upper-cased and padded
  /// to 8; values use the fixed-format convention (right-justified to
  /// column 30 for numbers and logicals, quoted strings starting at
  /// column 11).
  std::string Serialize() const;

  /// Parses one 80-character record. Returns Corruption on malformed
  /// input.
  static Result<Card> Parse(const std::string& record);

  // Typed accessors; return NotFound-flavored errors if the value holds a
  // different type.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;

 private:
  std::string key_;
  Value value_;
  std::string comment_;
};

}  // namespace sdss::fits

#endif  // SDSS_FITS_CARD_H_
