// FITS image HDUs.
//
// FITS "was primarily designed to handle images" [Wells81]; the archive's
// atlas cutouts and the compressed sky map are image products. This
// module implements the primary-HDU image format: SIMPLE/BITPIX/NAXIS
// headers with 16-bit integer pixels, big-endian, BSCALE/BZERO quantized,
// padded to 2880-byte blocks.

#ifndef SDSS_FITS_IMAGE_H_
#define SDSS_FITS_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "fits/header.h"

namespace sdss::fits {

/// A 2-D float image with FITS int16 serialization.
class Image {
 public:
  Image() = default;

  /// Creates a zero-filled width x height image.
  Image(size_t width, size_t height)
      : width_(width), height_(height), pixels_(width * height, 0.0f) {}

  size_t width() const { return width_; }
  size_t height() const { return height_; }
  bool empty() const { return pixels_.empty(); }

  float at(size_t x, size_t y) const { return pixels_[y * width_ + x]; }
  void set(size_t x, size_t y, float v) { pixels_[y * width_ + x] = v; }
  void add(size_t x, size_t y, float v) { pixels_[y * width_ + x] += v; }

  const std::vector<float>& pixels() const { return pixels_; }

  /// Sum of all pixels (total flux).
  double TotalFlux() const;
  float MinPixel() const;
  float MaxPixel() const;

  /// Serializes as a standalone primary image HDU: BITPIX = 16 with
  /// BSCALE/BZERO chosen to span the image's dynamic range. `extra`
  /// cards are merged into the header.
  std::string Serialize(const Header& extra = Header()) const;

  /// Parses an image HDU at data[*offset]; advances past the padding.
  /// Values are de-quantized through BSCALE/BZERO (so round-trips are
  /// exact to ~1/65535 of the dynamic range).
  static Result<Image> Parse(const std::string& data, size_t* offset,
                             Header* header_out = nullptr);

 private:
  size_t width_ = 0;
  size_t height_ = 0;
  std::vector<float> pixels_;
};

}  // namespace sdss::fits

#endif  // SDSS_FITS_IMAGE_H_
