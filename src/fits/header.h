// A FITS header: an ordered card list serialized in 2880-byte blocks.

#ifndef SDSS_FITS_HEADER_H_
#define SDSS_FITS_HEADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "fits/card.h"

namespace sdss::fits {

/// An ordered collection of header cards with typed access by key.
/// Serialization appends END and pads with blanks to a block multiple.
class Header {
 public:
  Header() = default;

  /// Appends a card (replacing nothing; FITS permits repeated COMMENTs).
  void Append(Card card) { cards_.push_back(std::move(card)); }

  /// Sets `key` to `value`, replacing the first existing card with that
  /// key or appending a new one.
  void Set(const std::string& key, Card::Value value,
           std::string comment = "");

  /// First card with `key`, or NotFound.
  Result<Card> Find(const std::string& key) const;

  bool Has(const std::string& key) const { return Find(key).ok(); }

  Result<bool> GetBool(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;

  const std::vector<Card>& cards() const { return cards_; }
  size_t size() const { return cards_.size(); }

  /// Serializes cards + END, blank-padded to a multiple of kBlockSize.
  std::string Serialize() const;

  /// Parses a header starting at `data[offset]`; advances `offset` past
  /// the blank padding to the first data block.
  static Result<Header> Parse(const std::string& data, size_t* offset);

 private:
  std::vector<Card> cards_;
};

}  // namespace sdss::fits

#endif  // SDSS_FITS_HEADER_H_
