#include "fits/packet_stream.h"

namespace sdss::fits {

PacketStreamWriter::PacketStreamWriter(std::vector<ColumnSpec> schema,
                                       Options options,
                                       std::function<void(std::string)> sink)
    : schema_(std::move(schema)),
      options_(options),
      sink_(std::move(sink)),
      pending_(schema_) {
  if (options_.rows_per_packet == 0) options_.rows_per_packet = 1;
}

Status PacketStreamWriter::Append(const std::vector<Table::Cell>& row) {
  if (finished_) {
    return Status::FailedPrecondition("stream already finished");
  }
  SDSS_RETURN_IF_ERROR(pending_.AppendRow(row));
  ++rows_written_;
  if (pending_.num_rows() >= options_.rows_per_packet) {
    EmitPacket(/*last=*/false);
  }
  return Status::OK();
}

Status PacketStreamWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("stream already finished");
  }
  EmitPacket(/*last=*/true);
  finished_ = true;
  return Status::OK();
}

void PacketStreamWriter::EmitPacket(bool last) {
  Header extra;
  extra.Set("PKTSEQ", static_cast<int64_t>(seq_), "packet sequence number");
  extra.Set("PKTLAST", last, "true on the final packet of the stream");
  std::string bytes = options_.encoding == StreamEncoding::kBinary
                          ? BinaryTable::Serialize(pending_, extra)
                          : AsciiTable::Serialize(pending_, extra);
  if (sink_) {
    sink_(std::move(bytes));
  } else {
    buffer_ += bytes;
  }
  ++seq_;
  pending_ = Table(schema_);
}

Status PacketStreamReader::Consume(
    const std::string& data,
    const std::function<bool(const Table&, const PacketInfo&)>& on_packet) {
  size_t offset = 0;
  size_t expected_seq = 0;
  bool saw_last = false;
  while (offset < data.size()) {
    if (saw_last) {
      return Status::Corruption("data after PKTLAST packet");
    }
    Header header;
    size_t probe = offset;
    // Peek the XTENSION to pick the decoder.
    auto peeked = Header::Parse(data, &probe);
    if (!peeked.ok()) return peeked.status();
    auto xt = peeked->GetString("XTENSION");
    if (!xt.ok()) return Status::Corruption("packet missing XTENSION");

    Result<Table> table = (*xt == "BINTABLE")
                              ? BinaryTable::Parse(data, &offset, &header)
                              : AsciiTable::Parse(data, &offset, &header);
    if (!table.ok()) return table.status();

    PacketInfo info;
    auto seq = header.GetInt("PKTSEQ");
    if (!seq.ok()) return Status::Corruption("packet missing PKTSEQ");
    info.sequence = static_cast<size_t>(*seq);
    if (info.sequence != expected_seq) {
      return Status::Corruption(
          "packet out of order: got " + std::to_string(info.sequence) +
          " want " + std::to_string(expected_seq));
    }
    ++expected_seq;
    auto last = header.GetBool("PKTLAST");
    if (!last.ok()) return Status::Corruption("packet missing PKTLAST");
    info.last = *last;
    saw_last = info.last;

    if (!on_packet(*table, info)) return Status::OK();
  }
  if (!saw_last) {
    return Status::Corruption("stream ended without PKTLAST packet");
  }
  return Status::OK();
}

Result<Table> PacketStreamReader::ReadAll(const std::string& data) {
  Table out;
  bool first = true;
  Status consume_status = Consume(
      data, [&](const Table& packet, const PacketInfo&) {
        if (first) {
          out = Table(packet.columns());
          first = false;
        }
        for (size_t r = 0; r < packet.num_rows(); ++r) {
          std::vector<Table::Cell> cells;
          for (size_t c = 0; c < packet.num_columns(); ++c) {
            switch (packet.columns()[c].type) {
              case ColumnType::kFloat:
                cells.emplace_back(*packet.GetFloat(r, c));
                break;
              case ColumnType::kDouble:
                cells.emplace_back(*packet.GetDouble(r, c));
                break;
              case ColumnType::kInt32:
                cells.emplace_back(*packet.GetInt32(r, c));
                break;
              case ColumnType::kInt64:
                cells.emplace_back(*packet.GetInt64(r, c));
                break;
              case ColumnType::kString:
                cells.emplace_back(*packet.GetString(r, c));
                break;
            }
          }
          // Schema matches: AppendRow cannot fail here.
          (void)out.AppendRow(cells);
        }
        return true;
      });
  if (!consume_status.ok()) return consume_status;
  if (first) return Status::Corruption("empty packet stream");
  return out;
}

}  // namespace sdss::fits
