#include "fits/card.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sdss::fits {
namespace {

std::string PadTo(std::string s, size_t n) {
  if (s.size() < n) s.append(n - s.size(), ' ');
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(' ');
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(' ');
  return s.substr(b, e - b + 1);
}

// FITS fixed format: value right-justified so it ends at column 30
// (index 29), for numbers and logicals.
std::string FixedValue(const std::string& v) {
  std::string out;
  if (v.size() < 20) out.append(20 - v.size(), ' ');
  out += v;
  return out;
}

}  // namespace

std::string Card::Serialize() const {
  std::string rec;
  rec.reserve(80);

  std::string key = key_;
  for (char& c : key) c = static_cast<char>(std::toupper(c));
  if (key.size() > 8) key.resize(8);

  if (is_end()) {
    rec = PadTo("END", 80);
    return rec;
  }
  if (is_comment()) {
    rec = PadTo(key, 8) + "  " + comment_;
    rec = PadTo(rec, 80);
    rec.resize(80);
    return rec;
  }

  rec = PadTo(key, 8) + "= ";
  std::visit(
      [&rec](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        char buf[64];
        if constexpr (std::is_same_v<T, std::monostate>) {
          rec += FixedValue("");
        } else if constexpr (std::is_same_v<T, bool>) {
          rec += FixedValue(v ? "T" : "F");
        } else if constexpr (std::is_same_v<T, int64_t>) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(v));
          rec += FixedValue(buf);
        } else if constexpr (std::is_same_v<T, double>) {
          std::snprintf(buf, sizeof(buf), "%.15G", v);
          rec += FixedValue(buf);
        } else {  // std::string
          std::string quoted = "'";
          for (char c : v) {
            quoted += c;
            if (c == '\'') quoted += '\'';  // FITS escapes ' by doubling.
          }
          // Strings are padded to at least 8 chars inside the quotes.
          while (quoted.size() < 9) quoted += ' ';
          quoted += "'";
          rec += quoted;
        }
      },
      value_);

  if (!comment_.empty()) {
    rec += " / ";
    rec += comment_;
  }
  rec = PadTo(rec, 80);
  rec.resize(80);
  return rec;
}

Result<Card> Card::Parse(const std::string& record) {
  if (record.size() != 80) {
    return Status::Corruption("FITS card is not 80 chars (" +
                              std::to_string(record.size()) + ")");
  }
  std::string key = Trim(record.substr(0, 8));
  if (key == "END") return Card::End();
  if (key == "COMMENT" || key == "HISTORY" || record.substr(8, 2) != "= ") {
    Card c;
    c.key_ = key.empty() ? "COMMENT" : key;
    c.comment_ = Trim(record.substr(std::min<size_t>(10, record.size())));
    return c;
  }

  std::string body = record.substr(10);
  Card c;
  c.key_ = key;

  std::string value_part = body;
  // Split off the inline comment. For strings the '/' must come after the
  // closing quote.
  std::string trimmed = Trim(body);
  if (!trimmed.empty() && trimmed[0] == '\'') {
    size_t start = body.find('\'');
    size_t i = start + 1;
    std::string s;
    bool closed = false;
    while (i < body.size()) {
      if (body[i] == '\'') {
        if (i + 1 < body.size() && body[i + 1] == '\'') {
          s += '\'';
          i += 2;
          continue;
        }
        closed = true;
        ++i;
        break;
      }
      s += body[i++];
    }
    if (!closed) return Status::Corruption("unterminated FITS string");
    // Trailing blanks inside the quotes are not significant.
    size_t e = s.find_last_not_of(' ');
    c.value_ = (e == std::string::npos) ? std::string() : s.substr(0, e + 1);
    size_t slash = body.find('/', i);
    if (slash != std::string::npos) c.comment_ = Trim(body.substr(slash + 1));
    return c;
  }

  size_t slash = body.find('/');
  if (slash != std::string::npos) {
    value_part = body.substr(0, slash);
    c.comment_ = Trim(body.substr(slash + 1));
  }
  std::string v = Trim(value_part);
  if (v.empty()) {
    c.value_ = std::monostate{};
  } else if (v == "T") {
    c.value_ = true;
  } else if (v == "F") {
    c.value_ = false;
  } else if (v.find_first_of(".EeDd") != std::string::npos &&
             v.find_first_not_of("+-0123456789.EeDd") == std::string::npos) {
    // FITS allows D exponents.
    std::string norm = v;
    for (char& ch : norm) {
      if (ch == 'D' || ch == 'd') ch = 'E';
    }
    c.value_ = std::strtod(norm.c_str(), nullptr);
  } else if (v.find_first_not_of("+-0123456789") == std::string::npos) {
    c.value_ = static_cast<int64_t>(std::strtoll(v.c_str(), nullptr, 10));
  } else {
    return Status::Corruption("unparseable FITS value: '" + v + "'");
  }
  return c;
}

Result<bool> Card::AsBool() const {
  if (auto* p = std::get_if<bool>(&value_)) return *p;
  return Status::NotFound("card " + key_ + " is not logical");
}

Result<int64_t> Card::AsInt() const {
  if (auto* p = std::get_if<int64_t>(&value_)) return *p;
  return Status::NotFound("card " + key_ + " is not integer");
}

Result<double> Card::AsDouble() const {
  if (auto* p = std::get_if<double>(&value_)) return *p;
  if (auto* p = std::get_if<int64_t>(&value_)) {
    return static_cast<double>(*p);
  }
  return Status::NotFound("card " + key_ + " is not numeric");
}

Result<std::string> Card::AsString() const {
  if (auto* p = std::get_if<std::string>(&value_)) return *p;
  return Status::NotFound("card " + key_ + " is not a string");
}

}  // namespace sdss::fits
