#include "fits/header.h"

namespace sdss::fits {

void Header::Set(const std::string& key, Card::Value value,
                 std::string comment) {
  for (Card& c : cards_) {
    if (c.key() == key && !c.is_comment()) {
      c = Card(key, std::move(value), std::move(comment));
      return;
    }
  }
  cards_.emplace_back(key, std::move(value), std::move(comment));
}

Result<Card> Header::Find(const std::string& key) const {
  for (const Card& c : cards_) {
    if (c.key() == key) return c;
  }
  return Status::NotFound("header card not found: " + key);
}

Result<bool> Header::GetBool(const std::string& key) const {
  auto c = Find(key);
  if (!c.ok()) return c.status();
  return c->AsBool();
}

Result<int64_t> Header::GetInt(const std::string& key) const {
  auto c = Find(key);
  if (!c.ok()) return c.status();
  return c->AsInt();
}

Result<double> Header::GetDouble(const std::string& key) const {
  auto c = Find(key);
  if (!c.ok()) return c.status();
  return c->AsDouble();
}

Result<std::string> Header::GetString(const std::string& key) const {
  auto c = Find(key);
  if (!c.ok()) return c.status();
  return c->AsString();
}

std::string Header::Serialize() const {
  std::string out;
  out.reserve((cards_.size() + 1) * 80);
  for (const Card& c : cards_) {
    if (c.is_end()) continue;  // END is emitted exactly once, below.
    out += c.Serialize();
  }
  out += Card::End().Serialize();
  size_t rem = out.size() % kBlockSize;
  if (rem != 0) out.append(kBlockSize - rem, ' ');
  return out;
}

Result<Header> Header::Parse(const std::string& data, size_t* offset) {
  Header h;
  size_t pos = *offset;
  bool saw_end = false;
  while (pos + 80 <= data.size()) {
    auto card = Card::Parse(data.substr(pos, 80));
    pos += 80;
    if (!card.ok()) return card.status();
    if (card->is_end()) {
      saw_end = true;
      break;
    }
    // Skip pure-blank padding records.
    if (card->key().empty() ||
        (card->is_comment() && card->comment().empty() &&
         card->key() == "COMMENT")) {
      continue;
    }
    h.Append(std::move(card).value());
  }
  if (!saw_end) {
    return Status::Corruption("FITS header missing END card");
  }
  // Advance to the next block boundary.
  size_t consumed = pos - *offset;
  size_t rem = consumed % kBlockSize;
  if (rem != 0) pos += kBlockSize - rem;
  if (pos > data.size()) {
    return Status::Corruption("FITS header padding truncated");
  }
  *offset = pos;
  return h;
}

}  // namespace sdss::fits
