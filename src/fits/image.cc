#include "fits/image.h"

#include <algorithm>
#include <cmath>

namespace sdss::fits {
namespace {

void PutI16(std::string* out, int16_t v) {
  auto u = static_cast<uint16_t>(v);
  out->push_back(static_cast<char>((u >> 8) & 0xff));
  out->push_back(static_cast<char>(u & 0xff));
}

int16_t GetI16(const char* p) {
  auto hi = static_cast<uint16_t>(static_cast<unsigned char>(p[0]));
  auto lo = static_cast<uint16_t>(static_cast<unsigned char>(p[1]));
  return static_cast<int16_t>(static_cast<uint16_t>((hi << 8) | lo));
}

}  // namespace

double Image::TotalFlux() const {
  double sum = 0.0;
  for (float p : pixels_) sum += p;
  return sum;
}

float Image::MinPixel() const {
  float m = pixels_.empty() ? 0.0f : pixels_[0];
  for (float p : pixels_) m = std::min(m, p);
  return m;
}

float Image::MaxPixel() const {
  float m = pixels_.empty() ? 0.0f : pixels_[0];
  for (float p : pixels_) m = std::max(m, p);
  return m;
}

std::string Image::Serialize(const Header& extra) const {
  // Quantization: physical = BZERO + BSCALE * stored, stored in
  // [-32767, 32767].
  float lo = MinPixel(), hi = MaxPixel();
  double bscale = (hi > lo) ? (hi - lo) / 65534.0 : 1.0;
  double bzero = (static_cast<double>(hi) + lo) / 2.0;

  Header h;
  h.Set("SIMPLE", true, "conforms to FITS");
  h.Set("BITPIX", int64_t{16}, "16-bit signed integers");
  h.Set("NAXIS", int64_t{2});
  h.Set("NAXIS1", static_cast<int64_t>(width_));
  h.Set("NAXIS2", static_cast<int64_t>(height_));
  h.Set("BSCALE", bscale, "physical = BZERO + BSCALE * stored");
  h.Set("BZERO", bzero);
  for (const Card& c : extra.cards()) h.Append(c);

  std::string out = h.Serialize();
  out.reserve(out.size() + pixels_.size() * 2 + kBlockSize);
  for (float p : pixels_) {
    double stored = (static_cast<double>(p) - bzero) / bscale;
    stored = std::clamp(stored, -32767.0, 32767.0);
    PutI16(&out, static_cast<int16_t>(std::lround(stored)));
  }
  size_t rem = out.size() % kBlockSize;
  if (rem != 0) out.append(kBlockSize - rem, '\0');
  return out;
}

Result<Image> Image::Parse(const std::string& data, size_t* offset,
                           Header* header_out) {
  auto header = Header::Parse(data, offset);
  if (!header.ok()) return header.status();
  auto simple = header->GetBool("SIMPLE");
  if (!simple.ok() || !*simple) {
    return Status::Corruption("not a primary FITS image (SIMPLE != T)");
  }
  auto bitpix = header->GetInt("BITPIX");
  if (!bitpix.ok() || *bitpix != 16) {
    return Status::NotSupported("only BITPIX = 16 images supported");
  }
  auto naxis1 = header->GetInt("NAXIS1");
  auto naxis2 = header->GetInt("NAXIS2");
  if (!naxis1.ok() || !naxis2.ok() || *naxis1 < 0 || *naxis2 < 0) {
    return Status::Corruption("image missing NAXIS1/NAXIS2");
  }
  double bscale = header->GetDouble("BSCALE").value_or(1.0);
  double bzero = header->GetDouble("BZERO").value_or(0.0);

  Image img(static_cast<size_t>(*naxis1), static_cast<size_t>(*naxis2));
  size_t bytes = img.pixels_.size() * 2;
  if (*offset + bytes > data.size()) {
    return Status::Corruption("image data truncated");
  }
  const char* p = data.data() + *offset;
  for (float& px : img.pixels_) {
    px = static_cast<float>(bzero + bscale * GetI16(p));
    p += 2;
  }
  size_t rem = bytes % kBlockSize;
  *offset += bytes + (rem ? kBlockSize - rem : 0);
  if (*offset > data.size()) *offset = data.size();
  if (header_out != nullptr) *header_out = std::move(header).value();
  return img;
}

}  // namespace sdss::fits
