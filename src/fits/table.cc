#include "fits/table.h"

#include <cstdio>
#include <cstring>

namespace sdss::fits {
namespace {

// Big-endian byte packing, as the FITS standard requires.
void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
}

uint32_t GetU32(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

uint64_t GetU64(const char* p) {
  return (static_cast<uint64_t>(GetU32(p)) << 32) | GetU32(p + 4);
}

void PadBlock(std::string* out, char fill) {
  size_t rem = out->size() % kBlockSize;
  if (rem != 0) out->append(kBlockSize - rem, fill);
}

std::string FormatTForm(const ColumnSpec& spec) {
  if (spec.type == ColumnType::kString) {
    return std::to_string(spec.width) + "A";
  }
  return std::string(1, TFormCode(spec.type));
}

Result<ColumnSpec> ParseTForm(const std::string& name,
                              const std::string& tform) {
  ColumnSpec spec;
  spec.name = name;
  if (tform.empty()) return Status::Corruption("empty TFORM");
  char code = tform.back();
  std::string count = tform.substr(0, tform.size() - 1);
  switch (code) {
    case 'E':
      spec.type = ColumnType::kFloat;
      break;
    case 'D':
      spec.type = ColumnType::kDouble;
      break;
    case 'J':
      spec.type = ColumnType::kInt32;
      break;
    case 'K':
      spec.type = ColumnType::kInt64;
      break;
    case 'A':
      spec.type = ColumnType::kString;
      spec.width = count.empty()
                       ? 1
                       : static_cast<size_t>(std::strtoull(
                             count.c_str(), nullptr, 10));
      break;
    default:
      return Status::Corruption("unsupported TFORM code: " + tform);
  }
  return spec;
}

}  // namespace

char TFormCode(ColumnType t) {
  switch (t) {
    case ColumnType::kFloat:
      return 'E';
    case ColumnType::kDouble:
      return 'D';
    case ColumnType::kInt32:
      return 'J';
    case ColumnType::kInt64:
      return 'K';
    case ColumnType::kString:
      return 'A';
  }
  return '?';
}

size_t TypeSize(ColumnType t) {
  switch (t) {
    case ColumnType::kFloat:
    case ColumnType::kInt32:
      return 4;
    case ColumnType::kDouble:
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kString:
      return 1;  // Per character; multiply by width.
  }
  return 0;
}

Table::Table(std::vector<ColumnSpec> columns) : specs_(std::move(columns)) {
  data_.reserve(specs_.size());
  for (const ColumnSpec& s : specs_) {
    switch (s.type) {
      case ColumnType::kFloat:
        data_.emplace_back(std::vector<float>{});
        break;
      case ColumnType::kDouble:
        data_.emplace_back(std::vector<double>{});
        break;
      case ColumnType::kInt32:
        data_.emplace_back(std::vector<int32_t>{});
        break;
      case ColumnType::kInt64:
        data_.emplace_back(std::vector<int64_t>{});
        break;
      case ColumnType::kString:
        data_.emplace_back(std::vector<std::string>{});
        break;
    }
  }
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

size_t Table::RowBytes() const {
  size_t n = 0;
  for (const ColumnSpec& s : specs_) {
    n += s.type == ColumnType::kString ? s.width : TypeSize(s.type);
  }
  return n;
}

Status Table::AppendRow(const std::vector<Cell>& cells) {
  if (cells.size() != specs_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells, table has " +
        std::to_string(specs_.size()) + " columns");
  }
  // Validate before mutating so a failed append leaves the table intact.
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    bool ok = false;
    switch (specs_[i].type) {
      case ColumnType::kFloat:
        ok = std::holds_alternative<float>(c);
        break;
      case ColumnType::kDouble:
        ok = std::holds_alternative<double>(c) ||
             std::holds_alternative<float>(c);
        break;
      case ColumnType::kInt32:
        ok = std::holds_alternative<int32_t>(c);
        break;
      case ColumnType::kInt64:
        ok = std::holds_alternative<int64_t>(c) ||
             std::holds_alternative<int32_t>(c);
        break;
      case ColumnType::kString:
        ok = std::holds_alternative<std::string>(c);
        break;
    }
    if (!ok) {
      return Status::InvalidArgument("cell " + std::to_string(i) +
                                     " type mismatch for column " +
                                     specs_[i].name);
    }
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    switch (specs_[i].type) {
      case ColumnType::kFloat:
        std::get<std::vector<float>>(data_[i]).push_back(std::get<float>(c));
        break;
      case ColumnType::kDouble:
        std::get<std::vector<double>>(data_[i]).push_back(
            std::holds_alternative<float>(c)
                ? static_cast<double>(std::get<float>(c))
                : std::get<double>(c));
        break;
      case ColumnType::kInt32:
        std::get<std::vector<int32_t>>(data_[i]).push_back(
            std::get<int32_t>(c));
        break;
      case ColumnType::kInt64:
        std::get<std::vector<int64_t>>(data_[i]).push_back(
            std::holds_alternative<int32_t>(c)
                ? static_cast<int64_t>(std::get<int32_t>(c))
                : std::get<int64_t>(c));
        break;
      case ColumnType::kString: {
        std::string s = std::get<std::string>(c);
        if (s.size() > specs_[i].width) s.resize(specs_[i].width);
        std::get<std::vector<std::string>>(data_[i]).push_back(std::move(s));
        break;
      }
    }
  }
  ++num_rows_;
  return Status::OK();
}

#define SDSS_TABLE_GETTER(METHOD, CPPTYPE, VECTYPE)                        \
  Result<CPPTYPE> Table::METHOD(size_t row, size_t col) const {           \
    if (col >= specs_.size())                                             \
      return Status::OutOfRange("column " + std::to_string(col));         \
    if (row >= num_rows_)                                                 \
      return Status::OutOfRange("row " + std::to_string(row));            \
    if (auto* v = std::get_if<std::vector<VECTYPE>>(&data_[col]))         \
      return (*v)[row];                                                   \
    return Status::InvalidArgument("column " + specs_[col].name +         \
                                   " type mismatch");                     \
  }

SDSS_TABLE_GETTER(GetFloat, float, float)
SDSS_TABLE_GETTER(GetDouble, double, double)
SDSS_TABLE_GETTER(GetInt32, int32_t, int32_t)
SDSS_TABLE_GETTER(GetInt64, int64_t, int64_t)
SDSS_TABLE_GETTER(GetString, std::string, std::string)
#undef SDSS_TABLE_GETTER

Result<double> Table::GetNumeric(size_t row, size_t col) const {
  if (col >= specs_.size()) {
    return Status::OutOfRange("column " + std::to_string(col));
  }
  if (row >= num_rows_) return Status::OutOfRange("row " + std::to_string(row));
  switch (specs_[col].type) {
    case ColumnType::kFloat:
      return static_cast<double>(std::get<std::vector<float>>(data_[col])[row]);
    case ColumnType::kDouble:
      return std::get<std::vector<double>>(data_[col])[row];
    case ColumnType::kInt32:
      return static_cast<double>(
          std::get<std::vector<int32_t>>(data_[col])[row]);
    case ColumnType::kInt64:
      return static_cast<double>(
          std::get<std::vector<int64_t>>(data_[col])[row]);
    case ColumnType::kString:
      return Status::InvalidArgument("column " + specs_[col].name +
                                     " is a string");
  }
  return Status::Internal("unreachable");
}

// ---------------------------------------------------------------------
// BinaryTable

std::string BinaryTable::Serialize(const Table& table, const Header& extra) {
  Header h;
  h.Set("XTENSION", std::string("BINTABLE"), "binary table extension");
  h.Set("BITPIX", int64_t{8});
  h.Set("NAXIS", int64_t{2});
  h.Set("NAXIS1", static_cast<int64_t>(table.RowBytes()), "bytes per row");
  h.Set("NAXIS2", static_cast<int64_t>(table.num_rows()), "number of rows");
  h.Set("PCOUNT", int64_t{0});
  h.Set("GCOUNT", int64_t{1});
  h.Set("TFIELDS", static_cast<int64_t>(table.num_columns()));
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const ColumnSpec& spec = table.columns()[i];
    std::string n = std::to_string(i + 1);
    h.Set("TTYPE" + n, spec.name);
    h.Set("TFORM" + n, FormatTForm(spec));
    if (!spec.unit.empty()) h.Set("TUNIT" + n, spec.unit);
  }
  for (const Card& c : extra.cards()) h.Append(c);

  std::string out = h.Serialize();

  // Row-major big-endian data.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnSpec& spec = table.columns()[c];
      switch (spec.type) {
        case ColumnType::kFloat: {
          float f = *table.GetFloat(r, c);
          uint32_t bits;
          std::memcpy(&bits, &f, 4);
          PutU32(&out, bits);
          break;
        }
        case ColumnType::kDouble: {
          double d = *table.GetDouble(r, c);
          uint64_t bits;
          std::memcpy(&bits, &d, 8);
          PutU64(&out, bits);
          break;
        }
        case ColumnType::kInt32:
          PutU32(&out, static_cast<uint32_t>(*table.GetInt32(r, c)));
          break;
        case ColumnType::kInt64:
          PutU64(&out, static_cast<uint64_t>(*table.GetInt64(r, c)));
          break;
        case ColumnType::kString: {
          std::string s = *table.GetString(r, c);
          s.resize(spec.width, ' ');
          out += s;
          break;
        }
      }
    }
  }
  PadBlock(&out, '\0');
  return out;
}

Result<Table> BinaryTable::Parse(const std::string& data, size_t* offset,
                                 Header* header_out) {
  auto header = Header::Parse(data, offset);
  if (!header.ok()) return header.status();
  auto xt = header->GetString("XTENSION");
  if (!xt.ok() || *xt != "BINTABLE") {
    return Status::Corruption("not a BINTABLE extension");
  }
  auto naxis1 = header->GetInt("NAXIS1");
  auto naxis2 = header->GetInt("NAXIS2");
  auto tfields = header->GetInt("TFIELDS");
  if (!naxis1.ok() || !naxis2.ok() || !tfields.ok()) {
    return Status::Corruption("BINTABLE missing NAXIS1/NAXIS2/TFIELDS");
  }

  std::vector<ColumnSpec> specs;
  for (int64_t i = 1; i <= *tfields; ++i) {
    std::string n = std::to_string(i);
    auto name = header->GetString("TTYPE" + n);
    auto tform = header->GetString("TFORM" + n);
    if (!name.ok() || !tform.ok()) {
      return Status::Corruption("BINTABLE missing TTYPE/TFORM " + n);
    }
    auto spec = ParseTForm(*name, *tform);
    if (!spec.ok()) return spec.status();
    auto unit = header->GetString("TUNIT" + n);
    if (unit.ok()) spec->unit = *unit;
    specs.push_back(std::move(spec).value());
  }

  Table table(std::move(specs));
  if (static_cast<int64_t>(table.RowBytes()) != *naxis1) {
    return Status::Corruption("NAXIS1 does not match TFORM row width");
  }
  size_t data_bytes =
      static_cast<size_t>(*naxis1) * static_cast<size_t>(*naxis2);
  if (*offset + data_bytes > data.size()) {
    return Status::Corruption("BINTABLE data truncated");
  }

  const char* p = data.data() + *offset;
  for (int64_t r = 0; r < *naxis2; ++r) {
    std::vector<Table::Cell> cells;
    cells.reserve(table.num_columns());
    for (const ColumnSpec& spec : table.columns()) {
      switch (spec.type) {
        case ColumnType::kFloat: {
          uint32_t bits = GetU32(p);
          float f;
          std::memcpy(&f, &bits, 4);
          cells.emplace_back(f);
          p += 4;
          break;
        }
        case ColumnType::kDouble: {
          uint64_t bits = GetU64(p);
          double d;
          std::memcpy(&d, &bits, 8);
          cells.emplace_back(d);
          p += 8;
          break;
        }
        case ColumnType::kInt32:
          cells.emplace_back(static_cast<int32_t>(GetU32(p)));
          p += 4;
          break;
        case ColumnType::kInt64:
          cells.emplace_back(static_cast<int64_t>(GetU64(p)));
          p += 8;
          break;
        case ColumnType::kString: {
          std::string s(p, spec.width);
          size_t e = s.find_last_not_of(' ');
          s = (e == std::string::npos) ? std::string() : s.substr(0, e + 1);
          cells.emplace_back(std::move(s));
          p += spec.width;
          break;
        }
      }
    }
    Status st = table.AppendRow(cells);
    if (!st.ok()) return st;
  }

  size_t consumed = data_bytes;
  size_t rem = consumed % kBlockSize;
  *offset += consumed + (rem ? kBlockSize - rem : 0);
  if (*offset > data.size()) *offset = data.size();
  if (header_out != nullptr) *header_out = std::move(header).value();
  return table;
}

// ---------------------------------------------------------------------
// AsciiTable

namespace {

// Fixed ASCII field widths per type (generous, value-preserving).
size_t AsciiWidth(const ColumnSpec& s) {
  switch (s.type) {
    case ColumnType::kFloat:
      return 16;
    case ColumnType::kDouble:
      return 25;
    case ColumnType::kInt32:
      return 12;
    case ColumnType::kInt64:
      return 21;
    case ColumnType::kString:
      return s.width;
  }
  return 0;
}

std::string AsciiTFormFor(const ColumnSpec& s) {
  switch (s.type) {
    case ColumnType::kFloat:
      return "E16.8";
    case ColumnType::kDouble:
      return "D25.17";
    case ColumnType::kInt32:
      return "I12";
    case ColumnType::kInt64:
      return "I21";
    case ColumnType::kString:
      return "A" + std::to_string(s.width);
  }
  return "";
}

}  // namespace

std::string AsciiTable::Serialize(const Table& table, const Header& extra) {
  size_t row_bytes = 0;
  for (const ColumnSpec& s : table.columns()) row_bytes += AsciiWidth(s) + 1;

  Header h;
  h.Set("XTENSION", std::string("TABLE"), "ASCII table extension");
  h.Set("BITPIX", int64_t{8});
  h.Set("NAXIS", int64_t{2});
  h.Set("NAXIS1", static_cast<int64_t>(row_bytes));
  h.Set("NAXIS2", static_cast<int64_t>(table.num_rows()));
  h.Set("PCOUNT", int64_t{0});
  h.Set("GCOUNT", int64_t{1});
  h.Set("TFIELDS", static_cast<int64_t>(table.num_columns()));
  size_t col_start = 1;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const ColumnSpec& spec = table.columns()[i];
    std::string n = std::to_string(i + 1);
    h.Set("TTYPE" + n, spec.name);
    h.Set("TFORM" + n, AsciiTFormFor(spec));
    h.Set("TBCOL" + n, static_cast<int64_t>(col_start));
    if (!spec.unit.empty()) h.Set("TUNIT" + n, spec.unit);
    col_start += AsciiWidth(spec) + 1;
  }
  for (const Card& c : extra.cards()) h.Append(c);

  std::string out = h.Serialize();
  char buf[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const ColumnSpec& spec = table.columns()[c];
      std::string field;
      switch (spec.type) {
        case ColumnType::kFloat:
          std::snprintf(buf, sizeof(buf), "%16.8E",
                        static_cast<double>(*table.GetFloat(r, c)));
          field = buf;
          break;
        case ColumnType::kDouble:
          std::snprintf(buf, sizeof(buf), "%25.17E", *table.GetDouble(r, c));
          field = buf;
          break;
        case ColumnType::kInt32:
          std::snprintf(buf, sizeof(buf), "%12d", *table.GetInt32(r, c));
          field = buf;
          break;
        case ColumnType::kInt64:
          std::snprintf(buf, sizeof(buf), "%21lld",
                        static_cast<long long>(*table.GetInt64(r, c)));
          field = buf;
          break;
        case ColumnType::kString: {
          field = *table.GetString(r, c);
          field.resize(spec.width, ' ');
          break;
        }
      }
      field.resize(AsciiWidth(spec), ' ');
      out += field;
      out += ' ';
    }
  }
  PadBlock(&out, ' ');
  return out;
}

Result<Table> AsciiTable::Parse(const std::string& data, size_t* offset,
                                Header* header_out) {
  auto header = Header::Parse(data, offset);
  if (!header.ok()) return header.status();
  auto xt = header->GetString("XTENSION");
  if (!xt.ok() || *xt != "TABLE") {
    return Status::Corruption("not an ASCII TABLE extension");
  }
  auto naxis1 = header->GetInt("NAXIS1");
  auto naxis2 = header->GetInt("NAXIS2");
  auto tfields = header->GetInt("TFIELDS");
  if (!naxis1.ok() || !naxis2.ok() || !tfields.ok()) {
    return Status::Corruption("TABLE missing NAXIS1/NAXIS2/TFIELDS");
  }

  std::vector<ColumnSpec> specs;
  for (int64_t i = 1; i <= *tfields; ++i) {
    std::string n = std::to_string(i);
    auto name = header->GetString("TTYPE" + n);
    auto tform = header->GetString("TFORM" + n);
    if (!name.ok() || !tform.ok()) {
      return Status::Corruption("TABLE missing TTYPE/TFORM " + n);
    }
    ColumnSpec spec;
    spec.name = *name;
    char code = (*tform)[0];
    std::string rest = tform->substr(1);
    size_t w = static_cast<size_t>(std::strtoull(rest.c_str(), nullptr, 10));
    switch (code) {
      case 'E':
        spec.type = ColumnType::kFloat;
        break;
      case 'D':
        spec.type = ColumnType::kDouble;
        break;
      case 'I':
        spec.type = (w > 12) ? ColumnType::kInt64 : ColumnType::kInt32;
        break;
      case 'A':
        spec.type = ColumnType::kString;
        spec.width = w;
        break;
      default:
        return Status::Corruption("unsupported ASCII TFORM: " + *tform);
    }
    auto unit = header->GetString("TUNIT" + n);
    if (unit.ok()) spec.unit = *unit;
    specs.push_back(std::move(spec));
  }

  Table table(specs);
  size_t data_bytes =
      static_cast<size_t>(*naxis1) * static_cast<size_t>(*naxis2);
  if (*offset + data_bytes > data.size()) {
    return Status::Corruption("TABLE data truncated");
  }
  const char* p = data.data() + *offset;
  for (int64_t r = 0; r < *naxis2; ++r) {
    std::vector<Table::Cell> cells;
    for (const ColumnSpec& spec : specs) {
      size_t w = AsciiWidth(spec);
      std::string field(p, w);
      p += w + 1;  // Field plus separating blank.
      switch (spec.type) {
        case ColumnType::kFloat:
          cells.emplace_back(
              static_cast<float>(std::strtod(field.c_str(), nullptr)));
          break;
        case ColumnType::kDouble:
          cells.emplace_back(std::strtod(field.c_str(), nullptr));
          break;
        case ColumnType::kInt32:
          cells.emplace_back(
              static_cast<int32_t>(std::strtoll(field.c_str(), nullptr, 10)));
          break;
        case ColumnType::kInt64:
          cells.emplace_back(
              static_cast<int64_t>(std::strtoll(field.c_str(), nullptr, 10)));
          break;
        case ColumnType::kString: {
          size_t e = field.find_last_not_of(' ');
          cells.emplace_back(e == std::string::npos ? std::string()
                                                    : field.substr(0, e + 1));
          break;
        }
      }
    }
    Status st = table.AppendRow(cells);
    if (!st.ok()) return st;
  }

  size_t rem = data_bytes % kBlockSize;
  *offset += data_bytes + (rem ? kBlockSize - rem : 0);
  if (*offset > data.size()) *offset = data.size();
  if (header_out != nullptr) *header_out = std::move(header).value();
  return table;
}

}  // namespace sdss::fits
