// FITS tables: an in-memory column-typed table plus binary (BINTABLE) and
// ASCII (TABLE) serialization. The SDSS pipelines "exchange most of their
// data as binary FITS files"; this module is that interchange layer.

#ifndef SDSS_FITS_TABLE_H_
#define SDSS_FITS_TABLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "core/status.h"
#include "fits/header.h"

namespace sdss::fits {

/// Supported FITS column types and their TFORM codes.
enum class ColumnType {
  kFloat,   ///< 'E'  IEEE float32, big-endian.
  kDouble,  ///< 'D'  IEEE float64, big-endian.
  kInt32,   ///< 'J'  two's-complement int32, big-endian.
  kInt64,   ///< 'K'  two's-complement int64, big-endian.
  kString,  ///< 'An' fixed-width ASCII, blank padded.
};

/// Returns the TFORM letter for a type.
char TFormCode(ColumnType t);

/// Bytes per element in a binary table (strings use the declared width).
size_t TypeSize(ColumnType t);

/// Declares one table column.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kDouble;
  size_t width = 0;  ///< For kString: fixed field width. Ignored otherwise.
  std::string unit;  ///< Optional TUNITn value ("deg", "mag", ...).
};

/// A column-oriented table with a fixed schema. Cell access is typed;
/// mismatched types are programming errors reported via Status.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<ColumnSpec> columns);

  const std::vector<ColumnSpec>& columns() const { return specs_; }
  size_t num_columns() const { return specs_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Index of a column by name, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Bytes of one serialized binary row (NAXIS1).
  size_t RowBytes() const;

  // Typed column append: call once per column per row, then CommitRow().
  // Simpler path: AppendRow with a variant list.
  using Cell = std::variant<float, double, int32_t, int64_t, std::string>;

  /// Appends a full row; the variant types must match the column specs
  /// (ints widen, floats widen, but never narrow silently).
  Status AppendRow(const std::vector<Cell>& cells);

  // Typed readers; the row/col must exist and the type must match.
  Result<float> GetFloat(size_t row, size_t col) const;
  Result<double> GetDouble(size_t row, size_t col) const;
  Result<int32_t> GetInt32(size_t row, size_t col) const;
  Result<int64_t> GetInt64(size_t row, size_t col) const;
  Result<std::string> GetString(size_t row, size_t col) const;

  /// Numeric read with widening (any numeric column -> double).
  Result<double> GetNumeric(size_t row, size_t col) const;

 private:
  friend class BinaryTable;
  friend class AsciiTable;

  using ColumnData =
      std::variant<std::vector<float>, std::vector<double>,
                   std::vector<int32_t>, std::vector<int64_t>,
                   std::vector<std::string>>;

  std::vector<ColumnSpec> specs_;
  std::vector<ColumnData> data_;
  size_t num_rows_ = 0;
};

/// Binary-table (XTENSION = 'BINTABLE') serialization.
class BinaryTable {
 public:
  /// Serializes `table` as a standalone FITS extension HDU: header block(s)
  /// + big-endian row data padded to kBlockSize. `extra` cards (e.g.
  /// packet-sequence keywords) are merged into the header.
  static std::string Serialize(const Table& table,
                               const Header& extra = Header());

  /// Parses one BINTABLE HDU starting at `data[*offset]`; advances
  /// *offset past the data padding. `header_out` (optional) receives the
  /// full parsed header.
  static Result<Table> Parse(const std::string& data, size_t* offset,
                             Header* header_out = nullptr);
};

/// ASCII-table serialization (human-readable interchange, the paper's
/// "ASCII FITS output stream").
class AsciiTable {
 public:
  static std::string Serialize(const Table& table,
                               const Header& extra = Header());
  static Result<Table> Parse(const std::string& data, size_t* offset,
                             Header* header_out = nullptr);
};

}  // namespace sdss::fits

#endif  // SDSS_FITS_TABLE_H_
