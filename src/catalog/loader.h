// Chunk loading into the Science Archive.
//
// The paper: "Loading data into the Science Archive could take a long
// time if the data were not clustered properly. ... Our load design
// minimizes disk accesses, touching each clustering unit at most once
// during a load. The chunk data is first examined to construct an index.
// This determines where each object will be located and creates a list of
// databases and containers that are needed. Then data is inserted into
// the containers in a single pass over the data objects."
//
// ChunkLoader implements that two-phase clustered load and, for the C6
// benchmark, the naive arrival-order load it replaces. Container
// "touches" are accounted against a disk cost model on the simulated
// clock so the benchmark reproduces the paper's 20 GB/day feasibility
// argument.

#ifndef SDSS_CATALOG_LOADER_H_
#define SDSS_CATALOG_LOADER_H_

#include <cstdint>

#include "catalog/object_store.h"
#include "catalog/sky_generator.h"
#include "core/sim_clock.h"
#include "core/status.h"

namespace sdss::catalog {

/// Disk cost model for the load accounting.
struct LoadCostModel {
  double seek_seconds = 0.008;       ///< Cost of opening a clustering unit.
  double write_mbps = 30.0;          ///< Sequential write bandwidth, MB/s.
  /// Bytes charged per object: the paper-scale full photometric row.
  uint64_t bytes_per_object = kPaperBytesPerPhotoObj;
};

/// Result of loading one chunk.
struct LoadStats {
  uint64_t objects = 0;
  uint64_t container_touches = 0;  ///< Clustering-unit open events.
  uint64_t bytes_written = 0;
  SimSeconds sim_seconds = 0.0;    ///< Modeled load time.
};

/// Loads observation chunks into an ObjectStore.
class ChunkLoader {
 public:
  explicit ChunkLoader(LoadCostModel cost = {}) : cost_(cost) {}

  /// Two-phase clustered load: phase 1 indexes the chunk and groups
  /// objects by destination container; phase 2 writes each container
  /// once. Touches = number of distinct destination containers.
  Result<LoadStats> LoadClustered(ObjectStore* store, const Chunk& chunk);

  /// Naive load: objects inserted in arrival order; every change of
  /// destination container is a new touch (the failure mode the paper's
  /// design avoids).
  Result<LoadStats> LoadNaive(ObjectStore* store, const Chunk& chunk);

  const LoadCostModel& cost_model() const { return cost_; }

 private:
  SimSeconds ModelTime(const LoadStats& s) const;

  LoadCostModel cost_;
};

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_LOADER_H_
