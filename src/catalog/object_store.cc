#include "catalog/object_store.h"

#include <algorithm>

#include "core/random.h"

namespace sdss::catalog {

using htm::Coverage;
using htm::CoverResult;
using htm::HtmId;
using htm::Region;
using htm::Trixel;

const std::vector<PhotoObj>& Container::rows() const {
  if (columnar.n == 0) return objects;
  LazyRows* l = lazy_.get();
  if (!l->rows_ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(l->mu);
    if (!l->rows_ready.load(std::memory_order_relaxed)) {
      l->rows = columnar.Materialize();
      l->rows_ready.store(true, std::memory_order_release);
    }
  }
  return l->rows;
}

const std::vector<TagObj>& Container::tag_rows() const {
  if (!columnar_tags) return tags;
  LazyRows* l = lazy_.get();
  if (!l->tags_ready.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(l->mu);
    if (!l->tags_ready.load(std::memory_order_relaxed)) {
      std::vector<TagObj> built;
      built.reserve(columnar.n);
      for (size_t i = 0; i < columnar.n; ++i) {
        built.push_back(TagObj::FromPhoto(columnar.MaterializeObject(i)));
      }
      l->tags = std::move(built);
      l->tags_ready.store(true, std::memory_order_release);
    }
  }
  return l->tags;
}

ObjectStore::ObjectStore(StoreOptions options)
    : options_(options), index_(options.cluster_level) {}

Status ObjectStore::Insert(const PhotoObj& obj) {
  // Bumped before the outcome is known: over-invalidating cached
  // results on a failed insert is harmless, serving stale ones is not.
  BumpEpoch();
  HtmId trixel = index_.Locate(obj.pos);
  Container& c = containers_[trixel.raw()];
  if (c.columnar.n > 0) {
    return Status::FailedPrecondition(
        "container " + std::to_string(trixel.raw()) +
        " is columnar (mapped snapshot) and immutable");
  }
  if (!c.trixel.valid()) c.trixel = trixel;
  c.objects.push_back(obj);
  if (options_.build_tags) c.tags.push_back(TagObj::FromPhoto(obj));
  ++object_count_;
  return Status::OK();
}

Status ObjectStore::BulkLoad(std::vector<PhotoObj> objects) {
  BumpEpoch();  // Before the outcome: a partial load still mutated.
  // Phase 1: compute container keys and sort so each container is touched
  // exactly once.
  std::vector<std::pair<uint64_t, size_t>> keys;
  keys.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    keys.emplace_back(index_.Locate(objects[i].pos).raw(), i);
  }
  std::sort(keys.begin(), keys.end());

  // Phase 2: one pass, one container at a time.
  size_t i = 0;
  while (i < keys.size()) {
    uint64_t raw = keys[i].first;
    size_t j = i;
    while (j < keys.size() && keys[j].first == raw) ++j;
    Container& c = containers_[raw];
    if (c.columnar.n > 0) {
      return Status::FailedPrecondition(
          "container " + std::to_string(raw) +
          " is columnar (mapped snapshot) and immutable");
    }
    if (!c.trixel.valid()) {
      auto id = HtmId::FromRaw(raw);
      if (!id.ok()) return id.status();
      c.trixel = *id;
    }
    c.objects.reserve(c.objects.size() + (j - i));
    if (options_.build_tags) c.tags.reserve(c.tags.size() + (j - i));
    for (size_t k = i; k < j; ++k) {
      const PhotoObj& obj = objects[keys[k].second];
      c.objects.push_back(obj);
      if (options_.build_tags) c.tags.push_back(TagObj::FromPhoto(obj));
    }
    object_count_ += j - i;
    i = j;
  }
  return Status::OK();
}

StoreStats ObjectStore::Stats() const {
  StoreStats s;
  s.object_count = object_count_;
  s.container_count = containers_.size();
  for (const auto& [raw, c] : containers_) {
    s.full_bytes += c.FullBytes();
    s.tag_bytes += c.TagBytes();
    s.max_container_objects =
        std::max<uint64_t>(s.max_container_objects, c.size());
  }
  s.mean_container_objects =
      containers_.empty()
          ? 0.0
          : static_cast<double>(object_count_) /
                static_cast<double>(containers_.size());
  return s;
}

const Container* ObjectStore::FindContainer(HtmId trixel) const {
  auto it = containers_.find(trixel.raw());
  return it == containers_.end() ? nullptr : &it->second;
}

std::map<uint64_t, uint64_t> ObjectStore::DensityMap() const {
  std::map<uint64_t, uint64_t> dm;
  for (const auto& [raw, c] : containers_) dm[raw] = c.size();
  return dm;
}

void ObjectStore::ForEachObject(
    const std::function<void(const PhotoObj&)>& fn) const {
  for (const auto& [raw, c] : containers_) {
    for (const PhotoObj& o : c.rows()) fn(o);
  }
}

void ObjectStore::ForEachTag(
    const std::function<void(const TagObj&)>& fn) const {
  for (const auto& [raw, c] : containers_) {
    for (const TagObj& t : c.tag_rows()) fn(t);
  }
}

ObjectStore::SpatialScanStats ObjectStore::QueryRegion(
    const Region& region,
    const std::function<void(const PhotoObj&)>& fn) const {
  SpatialScanStats stats;
  CoverResult cover = index_.CoverRegion(region);

  // FULL trixels may be coarser than the cluster level: walk the id range.
  for (HtmId id : cover.full) {
    uint64_t first, last;
    id.RangeAtLevel(options_.cluster_level, &first, &last);
    for (auto it = containers_.lower_bound(first);
         it != containers_.end() && it->first < last; ++it) {
      ++stats.full_containers;
      stats.bytes_touched += it->second.FullBytes();
      for (const PhotoObj& o : it->second.rows()) {
        ++stats.accepted;
        fn(o);
      }
    }
  }
  for (HtmId id : cover.partial) {
    uint64_t first, last;
    id.RangeAtLevel(options_.cluster_level, &first, &last);
    for (auto it = containers_.lower_bound(first);
         it != containers_.end() && it->first < last; ++it) {
      ++stats.partial_containers;
      stats.bytes_touched += it->second.FullBytes();
      for (const PhotoObj& o : it->second.rows()) {
        ++stats.objects_tested;
        if (region.Contains(o.pos)) {
          ++stats.accepted;
          fn(o);
        }
      }
    }
  }
  return stats;
}

ObjectStore::Prediction ObjectStore::PredictRegion(
    const Region& region) const {
  Prediction p;
  CoverResult cover = index_.CoverRegion(region);
  for (HtmId id : cover.full) {
    uint64_t first, last;
    id.RangeAtLevel(options_.cluster_level, &first, &last);
    for (auto it = containers_.lower_bound(first);
         it != containers_.end() && it->first < last; ++it) {
      p.min_objects += it->second.size();
      p.bytes_to_scan += it->second.FullBytes();
    }
  }
  uint64_t partial_objects = 0;
  for (HtmId id : cover.partial) {
    uint64_t first, last;
    id.RangeAtLevel(options_.cluster_level, &first, &last);
    for (auto it = containers_.lower_bound(first);
         it != containers_.end() && it->first < last; ++it) {
      partial_objects += it->second.size();
      p.bytes_to_scan += it->second.FullBytes();
    }
  }
  p.max_objects = p.min_objects + partial_objects;
  // Expectation: a bisected container contributes roughly half its
  // objects (boundary trixels are about half inside on average).
  p.expected_objects = static_cast<double>(p.min_objects) +
                       0.5 * static_cast<double>(partial_objects);
  return p;
}

ObjectStore ObjectStore::Sample(double fraction, uint64_t seed) const {
  ObjectStore out(options_);
  Rng rng(seed);
  std::vector<PhotoObj> picked;
  ForEachObject([&](const PhotoObj& o) {
    if (rng.Bernoulli(fraction)) picked.push_back(o);
  });
  // BulkLoad only fails on malformed trixel ids, which cannot happen for
  // ids produced by Locate().
  (void)out.BulkLoad(std::move(picked));
  return out;
}

ObjectStore ObjectStore::ExtractContainers(
    const std::vector<uint64_t>& ids) const {
  ObjectStore out(options_);
  for (uint64_t raw : ids) {
    auto it = containers_.find(raw);
    if (it == containers_.end()) continue;
    if (out.containers_.emplace(raw, it->second).second) {
      out.object_count_ += it->second.size();
    }
  }
  return out;
}

Status ObjectStore::AdoptContainer(htm::HtmId trixel,
                                   std::vector<PhotoObj> objects) {
  if (!trixel.valid() || trixel.level() != options_.cluster_level) {
    return Status::InvalidArgument(
        "adopted container trixel is not at the store's cluster level");
  }
  if (containers_.count(trixel.raw()) > 0) {
    return Status::AlreadyExists("container " +
                                 std::to_string(trixel.raw()) +
                                 " already present");
  }
  Container& c = containers_[trixel.raw()];
  c.trixel = trixel;
  c.objects = std::move(objects);
  if (options_.build_tags) {
    c.tags.reserve(c.objects.size());
    for (const PhotoObj& o : c.objects) {
      c.tags.push_back(TagObj::FromPhoto(o));
    }
  }
  object_count_ += c.objects.size();
  return Status::OK();
}

Status ObjectStore::AdoptColumnarContainer(
    htm::HtmId trixel, const ColumnarBlock& block,
    std::shared_ptr<const void> backing) {
  if (!trixel.valid() || trixel.level() != options_.cluster_level) {
    return Status::InvalidArgument(
        "adopted container trixel is not at the store's cluster level");
  }
  if (containers_.count(trixel.raw()) > 0) {
    return Status::AlreadyExists("container " +
                                 std::to_string(trixel.raw()) +
                                 " already present");
  }
  Container& c = containers_[trixel.raw()];
  c.trixel = trixel;
  c.columnar = block;
  c.columnar_tags = options_.build_tags;
  c.backing = std::move(backing);
  c.lazy_ = std::make_shared<Container::LazyRows>();
  object_count_ += block.n;
  return Status::OK();
}

void ObjectStore::Clear() {
  BumpEpoch();
  containers_.clear();
  object_count_ = 0;
}

}  // namespace sdss::catalog
