#include "catalog/atlas.h"

#include <cmath>

namespace sdss::catalog {
namespace {

// Counts for a magnitude under the options' calibration.
double CountsFor(float mag, const AtlasOptions& opt) {
  return opt.counts_mag20 * std::pow(10.0, -0.4 * (mag - 20.0));
}

}  // namespace

fits::Image RenderCutout(const PhotoObj& obj, Band band,
                         const AtlasOptions& opt) {
  size_t n = opt.size_pixels;
  fits::Image img(n, n);
  double center = (static_cast<double>(n) - 1.0) / 2.0;

  double psf_sigma_px =
      (opt.psf_fwhm_arcsec / 2.355) / opt.pixel_arcsec;
  bool point_source = obj.obj_class == ObjClass::kStar ||
                      obj.obj_class == ObjClass::kQuasar;
  // Galaxy: exponential disk with scale length = R_petro / 1.678
  // (half-light convention), broadened by the PSF in quadrature.
  double scale_px = point_source
                        ? psf_sigma_px
                        : std::sqrt(std::pow(obj.petro_radius_arcsec /
                                                 1.678 / opt.pixel_arcsec,
                                             2.0) +
                                    psf_sigma_px * psf_sigma_px);

  // Unnormalized profile, then scale to the calibrated total counts.
  double sum = 0.0;
  for (size_t y = 0; y < n; ++y) {
    for (size_t x = 0; x < n; ++x) {
      double dx = static_cast<double>(x) - center;
      double dy = static_cast<double>(y) - center;
      double r = std::sqrt(dx * dx + dy * dy);
      double value = point_source
                         ? std::exp(-0.5 * (r / scale_px) * (r / scale_px))
                         : std::exp(-r / scale_px);
      img.set(x, y, static_cast<float>(value));
      sum += value;
    }
  }
  double counts = CountsFor(obj.mag[band], opt);
  double norm = sum > 0 ? counts / sum : 0.0;
  for (size_t y = 0; y < n; ++y) {
    for (size_t x = 0; x < n; ++x) {
      img.set(x, y,
              static_cast<float>(img.at(x, y) * norm) + opt.sky_level);
    }
  }
  return img;
}

std::string SerializeAtlas(const PhotoObj& obj, const AtlasOptions& opt) {
  std::string out;
  for (int b = 0; b < kNumBands; ++b) {
    fits::Header extra;
    extra.Set("OBJID", static_cast<int64_t>(obj.obj_id));
    std::string band = kBandNames[b];
    for (char& c : band) c = static_cast<char>(std::toupper(c));
    extra.Set("BAND", band);
    out += RenderCutout(obj, static_cast<Band>(b), opt).Serialize(extra);
  }
  return out;
}

Result<std::array<fits::Image, kNumBands>> ParseAtlas(
    const std::string& data) {
  std::array<fits::Image, kNumBands> out;
  size_t offset = 0;
  for (int b = 0; b < kNumBands; ++b) {
    auto img = fits::Image::Parse(data, &offset);
    if (!img.ok()) return img.status();
    out[b] = std::move(img).value();
  }
  return out;
}

double MeasureMagnitude(const fits::Image& cutout, const AtlasOptions& opt,
                        double radius_pixels) {
  double center_x = (static_cast<double>(cutout.width()) - 1.0) / 2.0;
  double center_y = (static_cast<double>(cutout.height()) - 1.0) / 2.0;
  double flux = 0.0;
  for (size_t y = 0; y < cutout.height(); ++y) {
    for (size_t x = 0; x < cutout.width(); ++x) {
      double dx = static_cast<double>(x) - center_x;
      double dy = static_cast<double>(y) - center_y;
      if (dx * dx + dy * dy > radius_pixels * radius_pixels) continue;
      flux += cutout.at(x, y) - opt.sky_level;
    }
  }
  if (flux <= 0.0) return 99.0;  // Non-detection sentinel.
  return 20.0 - 2.5 * std::log10(flux / opt.counts_mag20);
}

}  // namespace sdss::catalog
