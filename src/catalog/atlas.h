// Atlas images: per-object cutouts.
//
// The paper: "Each object will have an associated image cutout ('atlas
// image') for each of the five filters" -- 10^9 cutouts totalling 1.5 TB
// in Table 1. This module renders synthetic cutouts from the catalog's
// photometric parameters (PSF for point sources, exponential profiles
// for galaxies) so the atlas data product exists as real pixels: the T1
// benchmark measures its serialized size, and the examples can cut out
// actual postage stamps.

#ifndef SDSS_CATALOG_ATLAS_H_
#define SDSS_CATALOG_ATLAS_H_

#include "catalog/photo_obj.h"
#include "core/status.h"
#include "fits/image.h"

namespace sdss::catalog {

/// Cutout rendering parameters.
struct AtlasOptions {
  size_t size_pixels = 32;       ///< Square cutout side.
  double pixel_arcsec = 0.4;     ///< The camera's 0.4 arcsec pixels.
  double psf_fwhm_arcsec = 1.4;  ///< Site seeing.
  float sky_level = 10.0f;       ///< Background counts per pixel.
  float counts_mag20 = 20000.0f; ///< Flux calibration: counts at mag 20.
};

/// Renders the atlas cutout of one object in one band. Point sources
/// (stars, quasars) render as the PSF; galaxies as an exponential
/// profile with the object's Petrosian radius, convolved approximately
/// with the PSF.
fits::Image RenderCutout(const PhotoObj& obj, Band band,
                         const AtlasOptions& options = {});

/// Serializes the five-band atlas stamp set of one object as consecutive
/// FITS image HDUs (keyword OBJID and BAND on each).
std::string SerializeAtlas(const PhotoObj& obj,
                           const AtlasOptions& options = {});

/// Reads back one five-band atlas produced by SerializeAtlas.
Result<std::array<fits::Image, kNumBands>> ParseAtlas(
    const std::string& data);

/// Crude aperture photometry on a cutout: sky-subtracted flux inside
/// `radius_pixels` of the center, converted back to a magnitude with the
/// same calibration. Used by tests to close the loop mag -> pixels ->
/// mag.
double MeasureMagnitude(const fits::Image& cutout,
                        const AtlasOptions& options,
                        double radius_pixels = 12.0);

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_ATLAS_H_
