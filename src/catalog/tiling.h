// Spectroscopic target selection and tiling.
//
// The paper: "The spectroscopic survey will target over a million objects
// chosen from the photometric survey ... The primary targets will be
// galaxies, selected by a magnitude and surface brightness limit in the r
// band. This sample of 900,000 galaxies will be complemented with 100,000
// very red galaxies ... An automated algorithm will select 100,000 quasar
// candidates ... The spectroscopic observations will be done in
// overlapping 3-degree circular 'tiles'. The tile centers are determined
// by an optimization algorithm, which maximizes overlaps at areas of
// highest target density. The spectroscopic survey will utilize two
// multi-fiber medium resolution spectrographs, with a total of 640
// optical fibers."
//
// This module implements all three stages: the per-class selection cuts,
// a greedy density-driven tile placement over the HTM density map, and
// per-tile fiber assignment with a minimum fiber separation constraint.

#ifndef SDSS_CATALOG_TILING_H_
#define SDSS_CATALOG_TILING_H_

#include <cstdint>
#include <vector>

#include "catalog/object_store.h"
#include "core/status.h"
#include "core/vec3.h"

namespace sdss::catalog {

/// Why an object was selected for spectroscopy.
enum class TargetClass : uint8_t {
  kMainGalaxy = 0,   ///< Magnitude + surface-brightness limited sample.
  kRedGalaxy = 1,    ///< "very red galaxies ... brightest at cluster cores".
  kQuasar = 2,       ///< UV-excess candidates.
};

const char* TargetClassName(TargetClass c);

/// One spectroscopic target.
struct Target {
  uint64_t obj_id = 0;
  Vec3 pos;
  TargetClass target_class = TargetClass::kMainGalaxy;
};

/// The paper's selection cuts (defaults follow the survey's design).
struct SelectionCuts {
  float main_r_limit = 17.8f;          ///< Main galaxy magnitude limit.
  float main_sb_limit = 24.5f;         ///< Surface-brightness limit.
  float red_color_min = 0.85f;         ///< g-r cut for the red sample.
  float red_r_limit = 19.5f;           ///< Fainter limit for red galaxies.
  float quasar_ug_max = 0.2f;          ///< UV excess cut.
  float quasar_r_limit = 22.0f;
};

/// Selects targets from a photometric store. The three classes are
/// disjoint: main-sample membership wins over red-galaxy, which wins
/// over quasar candidacy.
std::vector<Target> SelectTargets(const ObjectStore& store,
                                  const SelectionCuts& cuts = {});

/// Tiling parameters (defaults follow the instrument).
struct TilingOptions {
  double tile_radius_deg = 1.5;     ///< 3-degree circular tiles.
  int fibers_per_tile = 640;        ///< Two 320-fiber spectrographs.
  /// Fibers cannot be placed closer than this on one tile (plate
  /// mechanics; the survey's value was 55 arcsec).
  double fiber_collision_arcsec = 55.0;
  /// Stop when this fraction of targets is covered (1.0 = all reachable).
  double target_coverage = 0.98;
  /// Hard cap on tiles (0 = unlimited).
  size_t max_tiles = 0;
  /// HTM level whose trixel centers serve as candidate tile centers
  /// (level 6 spacing ~1.1 deg < tile radius, so no coverage gaps).
  int candidate_level = 6;
};

/// One placed tile.
struct Tile {
  Vec3 center;
  std::vector<uint64_t> assigned;   ///< Target obj_ids with fibers.
  size_t collisions_skipped = 0;    ///< Targets lost to fiber separation.
};

/// Tiling result.
struct TilingResult {
  std::vector<Tile> tiles;
  uint64_t targets_total = 0;
  uint64_t targets_assigned = 0;
  uint64_t targets_unreachable = 0;  ///< Not inside any candidate tile.

  double CoverageFraction() const {
    return targets_total == 0
               ? 1.0
               : static_cast<double>(targets_assigned) /
                     static_cast<double>(targets_total);
  }
};

/// Greedy tile placement: repeatedly picks the candidate center covering
/// the most unassigned targets ("maximizes overlaps at areas of highest
/// target density"), then assigns fibers subject to the collision limit.
/// Deterministic for fixed input.
Result<TilingResult> PlaceTiles(const std::vector<Target>& targets,
                                const TilingOptions& options = {});

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_TILING_H_
