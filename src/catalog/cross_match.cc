#include "catalog/cross_match.h"

#include <cmath>

#include "core/angle.h"
#include "htm/cover.h"
#include "htm/region.h"

namespace sdss::catalog {

std::vector<MatchPair> CrossMatch(const ObjectStore& a, const ObjectStore& b,
                                  const CrossMatchOptions& options,
                                  CrossMatchStats* stats) {
  std::vector<MatchPair> out;
  CrossMatchStats local;
  double radius_rad = ArcsecToRad(options.radius_arcsec);
  double cos_radius = std::cos(radius_rad);
  int level = b.cluster_level();

  a.ForEachObject([&](const PhotoObj& oa) {
    // Containers of B whose trixels can hold a neighbor within radius.
    htm::Region cap = htm::Region::CircleAround(
        oa.pos, ArcsecToDeg(options.radius_arcsec));
    htm::CoverResult cover = htm::Cover(cap, level);

    MatchPair best;
    bool have_best = false;
    auto consider = [&](const Container* c) {
      if (c == nullptr) return;
      for (const PhotoObj& ob : c->rows()) {
        ++local.candidates_tested;
        if (oa.pos.Dot(ob.pos) < cos_radius) continue;
        MatchPair m;
        m.obj_id_a = oa.obj_id;
        m.obj_id_b = ob.obj_id;
        m.separation_arcsec = RadToArcsec(oa.pos.AngleTo(ob.pos));
        if (options.best_match_only) {
          if (!have_best || m.separation_arcsec < best.separation_arcsec) {
            best = m;
            have_best = true;
          }
        } else {
          out.push_back(m);
          ++local.matches;
        }
      }
    };
    auto visit_range = [&](htm::HtmId id) {
      uint64_t first, last;
      id.RangeAtLevel(level, &first, &last);
      const auto& containers = b.containers();
      for (auto it = containers.lower_bound(first);
           it != containers.end() && it->first < last; ++it) {
        consider(&it->second);
      }
    };
    for (htm::HtmId id : cover.full) visit_range(id);
    for (htm::HtmId id : cover.partial) visit_range(id);

    if (options.best_match_only && have_best) {
      out.push_back(best);
      ++local.matches;
    }
  });

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace sdss::catalog
