// Runtime schema metadata and multi-representation emitters.
//
// The paper: "The schema is defined in a high level format, and an
// automated script generator creates the .h files for the C++ classes,
// and the .ddl files for Objectivity/DB. This approach enables us to
// easily create new data model representations in the future (SQL, IDL,
// XML, etc)." This module is that pipeline at runtime: one schema
// definition, emitted as SQL DDL, Objectivity-style DDL, or XML.

#ifndef SDSS_CATALOG_SCHEMA_H_
#define SDSS_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace sdss::catalog {

/// Field primitive types in the schema definition language.
enum class FieldType { kInt64, kInt32, kFloat, kDouble, kString, kEnum };

const char* FieldTypeName(FieldType t);

/// One attribute of a schema class.
struct FieldDef {
  std::string name;
  FieldType type = FieldType::kDouble;
  size_t array_length = 0;  ///< 0 = scalar.
  std::string unit;
  std::string doc;
};

/// One class (table) of the archive schema.
struct ClassDef {
  std::string name;
  std::string doc;
  std::vector<FieldDef> fields;

  /// Approximate serialized bytes per instance.
  size_t BytesPerInstance() const;
};

/// The archive schema: an ordered set of classes.
class Schema {
 public:
  void AddClass(ClassDef def) { classes_.push_back(std::move(def)); }
  const std::vector<ClassDef>& classes() const { return classes_; }
  Result<ClassDef> FindClass(const std::string& name) const;

  /// SQL DDL (CREATE TABLE ...) for every class.
  std::string ToSqlDdl() const;

  /// Objectivity-style .ddl class declarations.
  std::string ToObjectivityDdl() const;

  /// XML representation (the paper's planned interchange metadata).
  std::string ToXml() const;

  /// The built-in SDSS archive schema: PhotoObj, TagObj, SpecObj, Chunk.
  static Schema Sdss();

 private:
  std::vector<ClassDef> classes_;
};

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_SCHEMA_H_
