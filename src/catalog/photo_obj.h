// The SDSS object schemas: full photometric objects, spectroscopic
// objects, and the small "tag" objects of the paper's vertical
// partitioning ("the 10 most popular attributes: 3 Cartesian positions on
// the sky, 5 colors, 1 size, 1 classification parameter").
//
// The real survey records ~500 attributes per object; this reproduction
// models the 58 that the paper's query classes touch and accounts for the
// remainder with kFullObjectAttributeCount when extrapolating sizes.

#ifndef SDSS_CATALOG_PHOTO_OBJ_H_
#define SDSS_CATALOG_PHOTO_OBJ_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/vec3.h"

namespace sdss::catalog {

/// The five SDSS photometric bands, ultraviolet to near infrared.
enum Band : int { kU = 0, kG = 1, kR = 2, kI = 3, kZ = 4 };
inline constexpr int kNumBands = 5;
inline constexpr const char* kBandNames[kNumBands] = {"u", "g", "r", "i",
                                                      "z"};

/// Radial-profile annuli stored per object (r band).
inline constexpr int kProfileBins = 8;

/// Attribute count of the real survey's full photometric object, used for
/// size extrapolation in the Table 1 benchmark.
inline constexpr int kFullObjectAttributeCount = 500;

/// Object classification from the photometric pipeline.
enum class ObjClass : uint8_t {
  kUnknown = 0,
  kStar = 1,
  kGalaxy = 2,
  kQuasar = 3,
};

const char* ObjClassName(ObjClass c);
Result<ObjClass> ObjClassFromName(const std::string& name);

/// Processing flags (bitmask).
enum ObjFlags : uint32_t {
  kFlagNone = 0,
  kFlagSaturated = 1u << 0,
  kFlagBlended = 1u << 1,
  kFlagEdge = 1u << 2,
  kFlagVariable = 1u << 3,
  kFlagSpectroTarget = 1u << 4,
};

/// A full photometric catalog object. Positions are stored as a Cartesian
/// unit vector (the paper's x, y, z triplet); RA/Dec are kept alongside
/// for human-readable output only -- all geometry uses `pos`.
struct PhotoObj {
  uint64_t obj_id = 0;
  Vec3 pos;                   ///< Equatorial J2000 unit vector.
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  std::array<float, kNumBands> mag{};      ///< Model magnitudes u g r i z.
  std::array<float, kNumBands> mag_err{};  ///< 1-sigma errors.
  std::array<float, kProfileBins> profile{};  ///< r-band radial profile.
  float petro_radius_arcsec = 0.0f;  ///< Petrosian radius (the "size").
  float surface_brightness = 0.0f;   ///< r-band mean SB, mag/arcsec^2.
  float redshift = -1.0f;            ///< Spectroscopic z; -1 if none.
  uint32_t flags = kFlagNone;
  ObjClass obj_class = ObjClass::kUnknown;
  uint64_t htm_leaf = 0;  ///< HTM id at kGeneratorHtmLevel.

  /// Color index helper: mag[a] - mag[b] (e.g. Color(kU, kG) = u-g).
  float Color(Band a, Band b) const { return mag[a] - mag[b]; }
};

/// HTM depth at which `PhotoObj::htm_leaf` is computed: deep enough that a
/// leaf is ~arcsecond scale, so any coarser container id is a prefix.
inline constexpr int kGeneratorHtmLevel = 14;

/// The tag object: the vertically partitioned "10 most popular
/// attributes" (3 Cartesian positions, 5 magnitudes, size, class), plus
/// the object id used as the pointer back to the full object.
struct TagObj {
  uint64_t obj_id = 0;
  float cx = 0.0f, cy = 0.0f, cz = 0.0f;  ///< Unit vector, float precision.
  std::array<float, kNumBands> mag{};
  float size_arcsec = 0.0f;
  uint8_t obj_class = 0;

  /// Builds the tag projection of a full object.
  static TagObj FromPhoto(const PhotoObj& p);

  Vec3 Position() const {
    return Vec3(cx, cy, cz).Normalized();
  }
};

/// A spectroscopic catalog object (1 per fiber).
struct SpecObj {
  uint64_t spec_id = 0;
  uint64_t photo_obj_id = 0;  ///< Cross-link into the photometric catalog.
  float redshift = 0.0f;
  float redshift_err = 0.0f;
  ObjClass spec_class = ObjClass::kUnknown;
  /// Strongest identified emission/absorption lines (rest wavelengths,
  /// Angstrom); 0 marks unused slots.
  std::array<float, 4> line_wavelengths{};
};

/// "Logical" byte sizes used for paper-scale extrapolation: the real
/// archive stores ~500 attributes (~4 bytes each) per photometric object.
inline constexpr uint64_t kPaperBytesPerPhotoObj =
    kFullObjectAttributeCount * 4ull / 3 * 2;  // ~1333 B, matching 400GB/3e8.
inline constexpr uint64_t kPaperBytesPerTagObj = 48;

/// Attribute-by-name access for the query engine. Supported names:
/// obj_id, ra, dec, cx, cy, cz, u, g, r, i, z, err_u..err_z, size,
/// sb (surface brightness), redshift, flags, class, htm. Unknown names
/// return NotFound.
Result<double> GetAttribute(const PhotoObj& obj, const std::string& name);

/// Attribute access on tag objects; names limited to the tag's ten
/// attributes (plus obj_id). NotFound for anything else.
Result<double> GetTagAttribute(const TagObj& tag, const std::string& name);

/// True if `name` is resolvable on tag objects (used by the planner for
/// tag-store selection).
bool IsTagAttribute(const std::string& name);

/// All attribute names resolvable on PhotoObj, in canonical order.
const std::vector<std::string>& PhotoAttributeNames();

/// Inverse of GetAttribute: rebuilds a PhotoObj from parallel
/// (names, values) vectors. Every queryable attribute round-trips
/// exactly (`pos` is restored from cx/cy/cz); attributes absent from
/// `names` keep their default value. Unknown names return NotFound.
/// This is how a projected result row becomes a storable object again
/// (the MyDB "SELECT ... INTO" materialization path).
Result<PhotoObj> PhotoObjFromRow(const std::vector<std::string>& names,
                                 const std::vector<double>& values);

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_PHOTO_OBJ_H_
