#include "catalog/fits_io.h"

#include "core/coords.h"
#include "htm/trixel.h"

namespace sdss::catalog {

using fits::ColumnSpec;
using fits::ColumnType;
using fits::Table;

std::vector<ColumnSpec> PhotoObjFitsSchema() {
  std::vector<ColumnSpec> cols;
  cols.push_back({"OBJ_ID", ColumnType::kInt64, 0, ""});
  cols.push_back({"CX", ColumnType::kDouble, 0, ""});
  cols.push_back({"CY", ColumnType::kDouble, 0, ""});
  cols.push_back({"CZ", ColumnType::kDouble, 0, ""});
  for (int b = 0; b < kNumBands; ++b) {
    std::string n = kBandNames[b];
    for (char& c : n) c = static_cast<char>(std::toupper(c));
    cols.push_back({"MAG_" + n, ColumnType::kFloat, 0, "mag"});
  }
  for (int b = 0; b < kNumBands; ++b) {
    std::string n = kBandNames[b];
    for (char& c : n) c = static_cast<char>(std::toupper(c));
    cols.push_back({"ERR_" + n, ColumnType::kFloat, 0, "mag"});
  }
  for (int i = 0; i < kProfileBins; ++i) {
    cols.push_back({"PROF_" + std::to_string(i), ColumnType::kFloat, 0, ""});
  }
  cols.push_back({"PETRORAD", ColumnType::kFloat, 0, "arcsec"});
  cols.push_back({"SB", ColumnType::kFloat, 0, "mag/arcsec2"});
  cols.push_back({"REDSHIFT", ColumnType::kFloat, 0, ""});
  cols.push_back({"FLAGS", ColumnType::kInt32, 0, ""});
  cols.push_back({"CLASS", ColumnType::kInt32, 0, ""});
  return cols;
}

std::vector<ColumnSpec> TagObjFitsSchema() {
  std::vector<ColumnSpec> cols;
  cols.push_back({"OBJ_ID", ColumnType::kInt64, 0, ""});
  cols.push_back({"CX", ColumnType::kFloat, 0, ""});
  cols.push_back({"CY", ColumnType::kFloat, 0, ""});
  cols.push_back({"CZ", ColumnType::kFloat, 0, ""});
  for (int b = 0; b < kNumBands; ++b) {
    std::string n = kBandNames[b];
    for (char& c : n) c = static_cast<char>(std::toupper(c));
    cols.push_back({"MAG_" + n, ColumnType::kFloat, 0, "mag"});
  }
  cols.push_back({"SIZE", ColumnType::kFloat, 0, "arcsec"});
  cols.push_back({"CLASS", ColumnType::kInt32, 0, ""});
  return cols;
}

namespace {

std::vector<Table::Cell> PhotoObjToCells(const PhotoObj& o) {
  std::vector<Table::Cell> cells;
  cells.emplace_back(static_cast<int64_t>(o.obj_id));
  cells.emplace_back(o.pos.x);
  cells.emplace_back(o.pos.y);
  cells.emplace_back(o.pos.z);
  for (int b = 0; b < kNumBands; ++b) cells.emplace_back(o.mag[b]);
  for (int b = 0; b < kNumBands; ++b) cells.emplace_back(o.mag_err[b]);
  for (int i = 0; i < kProfileBins; ++i) cells.emplace_back(o.profile[i]);
  cells.emplace_back(o.petro_radius_arcsec);
  cells.emplace_back(o.surface_brightness);
  cells.emplace_back(o.redshift);
  cells.emplace_back(static_cast<int32_t>(o.flags));
  cells.emplace_back(static_cast<int32_t>(o.obj_class));
  return cells;
}

Result<PhotoObj> PhotoObjFromRow(const Table& t, size_t r) {
  PhotoObj o;
  size_t c = 0;
  auto i64 = t.GetInt64(r, c++);
  if (!i64.ok()) return i64.status();
  o.obj_id = static_cast<uint64_t>(*i64);
  auto x = t.GetDouble(r, c++);
  auto y = t.GetDouble(r, c++);
  auto z = t.GetDouble(r, c++);
  if (!x.ok() || !y.ok() || !z.ok()) {
    return Status::Corruption("bad position columns");
  }
  o.pos = Vec3(*x, *y, *z).Normalized();
  for (int b = 0; b < kNumBands; ++b) {
    auto m = t.GetFloat(r, c++);
    if (!m.ok()) return m.status();
    o.mag[b] = *m;
  }
  for (int b = 0; b < kNumBands; ++b) {
    auto m = t.GetFloat(r, c++);
    if (!m.ok()) return m.status();
    o.mag_err[b] = *m;
  }
  for (int i = 0; i < kProfileBins; ++i) {
    auto p = t.GetFloat(r, c++);
    if (!p.ok()) return p.status();
    o.profile[i] = *p;
  }
  auto petro = t.GetFloat(r, c++);
  auto sb = t.GetFloat(r, c++);
  auto redshift = t.GetFloat(r, c++);
  auto flags = t.GetInt32(r, c++);
  auto cls = t.GetInt32(r, c++);
  if (!petro.ok() || !sb.ok() || !redshift.ok() || !flags.ok() || !cls.ok()) {
    return Status::Corruption("bad scalar columns");
  }
  o.petro_radius_arcsec = *petro;
  o.surface_brightness = *sb;
  o.redshift = *redshift;
  o.flags = static_cast<uint32_t>(*flags);
  o.obj_class = static_cast<ObjClass>(*cls);
  SphericalFromUnitVector(o.pos, &o.ra_deg, &o.dec_deg);
  o.htm_leaf = htm::LookupId(o.pos, kGeneratorHtmLevel).raw();
  return o;
}

}  // namespace

Table PhotoObjsToTable(const std::vector<PhotoObj>& objects) {
  Table t(PhotoObjFitsSchema());
  for (const PhotoObj& o : objects) {
    // Schema matches construction; cannot fail.
    (void)t.AppendRow(PhotoObjToCells(o));
  }
  return t;
}

Result<std::vector<PhotoObj>> PhotoObjsFromTable(const Table& table) {
  std::vector<PhotoObj> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto o = PhotoObjFromRow(table, r);
    if (!o.ok()) return o.status();
    out.push_back(std::move(o).value());
  }
  return out;
}

Table TagObjsToTable(const std::vector<TagObj>& tags) {
  Table t(TagObjFitsSchema());
  for (const TagObj& tag : tags) {
    std::vector<Table::Cell> cells;
    cells.emplace_back(static_cast<int64_t>(tag.obj_id));
    cells.emplace_back(tag.cx);
    cells.emplace_back(tag.cy);
    cells.emplace_back(tag.cz);
    for (int b = 0; b < kNumBands; ++b) cells.emplace_back(tag.mag[b]);
    cells.emplace_back(tag.size_arcsec);
    cells.emplace_back(static_cast<int32_t>(tag.obj_class));
    (void)t.AppendRow(cells);
  }
  return t;
}

Result<std::vector<TagObj>> TagObjsFromTable(const Table& table) {
  std::vector<TagObj> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    TagObj tag;
    size_t c = 0;
    auto id = table.GetInt64(r, c++);
    if (!id.ok()) return id.status();
    tag.obj_id = static_cast<uint64_t>(*id);
    auto x = table.GetFloat(r, c++);
    auto y = table.GetFloat(r, c++);
    auto z = table.GetFloat(r, c++);
    if (!x.ok() || !y.ok() || !z.ok()) {
      return Status::Corruption("bad tag position");
    }
    tag.cx = *x;
    tag.cy = *y;
    tag.cz = *z;
    for (int b = 0; b < kNumBands; ++b) {
      auto m = table.GetFloat(r, c++);
      if (!m.ok()) return m.status();
      tag.mag[b] = *m;
    }
    auto size = table.GetFloat(r, c++);
    auto cls = table.GetInt32(r, c++);
    if (!size.ok() || !cls.ok()) return Status::Corruption("bad tag scalars");
    tag.size_arcsec = *size;
    tag.obj_class = static_cast<uint8_t>(*cls);
    out.push_back(tag);
  }
  return out;
}

std::string StoreToPacketStream(const ObjectStore& store,
                                size_t rows_per_packet,
                                fits::StreamEncoding encoding) {
  fits::PacketStreamWriter writer(
      PhotoObjFitsSchema(),
      {.rows_per_packet = rows_per_packet, .encoding = encoding});
  store.ForEachObject([&](const PhotoObj& o) {
    (void)writer.Append(PhotoObjToCells(o));
  });
  (void)writer.Finish();
  return writer.TakeOutput();
}

Result<ObjectStore> StoreFromPacketStream(const std::string& bytes,
                                          StoreOptions options) {
  ObjectStore store(options);
  std::vector<PhotoObj> batch;
  Status st = fits::PacketStreamReader::Consume(
      bytes, [&](const Table& packet, const fits::PacketStreamReader::
                                          PacketInfo&) {
        auto objs = PhotoObjsFromTable(packet);
        if (!objs.ok()) return false;  // Surfaceable via final status.
        for (PhotoObj& o : *objs) batch.push_back(std::move(o));
        return true;
      });
  if (!st.ok()) return st;
  SDSS_RETURN_IF_ERROR(store.BulkLoad(std::move(batch)));
  return store;
}

}  // namespace sdss::catalog
