#include "catalog/sky_generator.h"

#include <algorithm>
#include <cmath>

#include "core/angle.h"
#include "core/coords.h"
#include "htm/trixel.h"

namespace sdss::catalog {
namespace {

// Euclidean number counts: N(<m) ~ 10^(0.6 m). Inverse-CDF sample of an
// apparent magnitude between bright and faint limits.
double SampleMagnitude(Rng* rng, double bright, double faint) {
  double a = std::pow(10.0, 0.6 * bright);
  double b = std::pow(10.0, 0.6 * faint);
  double u = rng->Uniform();
  return std::log10(a + u * (b - a)) / 0.6;
}

float MagErr(float mag, float faint_limit) {
  return 0.02f +
         0.12f * std::pow(10.0f, 0.4f * (mag - faint_limit));
}

// Common strong lines (rest wavelengths, Angstrom).
constexpr float kHAlpha = 6563.0f;
constexpr float kHBeta = 4861.0f;
constexpr float kOiii = 5007.0f;
constexpr float kOii = 3727.0f;
constexpr float kMgii = 2798.0f;
constexpr float kLyAlpha = 1216.0f;

}  // namespace

SkyGenerator::SkyGenerator(SkyModel model) : model_(model) {}

Vec3 SkyGenerator::SampleFootprintPosition(Rng* rng) const {
  if (model_.footprint_min_gal_lat_deg <= 0.0) return rng->UnitSphere();
  // Rejection sample the northern galactic cap b >= min_lat. The cap pole
  // in equatorial coordinates:
  Vec3 ngp = RotationToEquatorial(Frame::kGalactic) * Vec3{0, 0, 1};
  double max_angle = DegToRad(90.0 - model_.footprint_min_gal_lat_deg);
  return rng->UnitCap(ngp, max_angle);
}

void SkyGenerator::FinishCommon(PhotoObj* obj) const {
  SphericalFromUnitVector(obj->pos, &obj->ra_deg, &obj->dec_deg);
  obj->htm_leaf = htm::LookupId(obj->pos, kGeneratorHtmLevel).raw();
  for (int b = 0; b < kNumBands; ++b) {
    obj->mag_err[b] = MagErr(obj->mag[b], model_.r_mag_faint);
  }
}

PhotoObj SkyGenerator::MakeGalaxy(uint64_t id, const Vec3& pos,
                                  Rng* rng) const {
  PhotoObj o;
  o.obj_id = id;
  o.pos = pos;
  o.obj_class = ObjClass::kGalaxy;

  float r = static_cast<float>(
      SampleMagnitude(rng, model_.r_mag_bright, model_.r_mag_faint));
  float gr = static_cast<float>(rng->Gaussian(0.7, 0.15));
  float ug = static_cast<float>(rng->Gaussian(1.3, 0.3));
  float ri = static_cast<float>(rng->Gaussian(0.4, 0.1));
  float iz = static_cast<float>(rng->Gaussian(0.3, 0.1));
  o.mag[kR] = r;
  o.mag[kG] = r + gr;
  o.mag[kU] = o.mag[kG] + ug;
  o.mag[kI] = r - ri;
  o.mag[kZ] = o.mag[kI] - iz;

  // Brighter galaxies are bigger; lognormal scatter.
  float radius = std::pow(10.0f, 0.15f * (22.0f - r)) *
                 static_cast<float>(std::exp(rng->Gaussian(0.0, 0.25)));
  o.petro_radius_arcsec = std::clamp(radius, 0.8f, 40.0f);
  o.surface_brightness =
      r + 2.5f * static_cast<float>(std::log10(
              2.0 * kPi * o.petro_radius_arcsec * o.petro_radius_arcsec));
  // Exponential radial profile.
  for (int k = 0; k < kProfileBins; ++k) {
    o.profile[k] = std::exp(-static_cast<float>(k) / 2.5f);
  }
  if (rng->Bernoulli(0.04)) o.flags |= kFlagBlended;
  return o;
}

PhotoObj SkyGenerator::MakeStar(uint64_t id, const Vec3& pos,
                                Rng* rng) const {
  PhotoObj o;
  o.obj_id = id;
  o.pos = pos;
  o.obj_class = ObjClass::kStar;

  float r = static_cast<float>(
      SampleMagnitude(rng, model_.r_mag_bright, model_.r_mag_faint));
  // Stellar locus parameterized by spectral type t in [0, 1] (blue->red).
  double t = rng->Uniform();
  float gr = static_cast<float>(-0.3 + 1.6 * t + rng->Gaussian(0, 0.04));
  float ug = static_cast<float>(0.8 + 2.0 * t * t + rng->Gaussian(0, 0.06));
  float ri = static_cast<float>(-0.1 + 1.1 * t * t + rng->Gaussian(0, 0.04));
  float iz = static_cast<float>(-0.05 + 0.6 * t * t + rng->Gaussian(0, 0.04));
  o.mag[kR] = r;
  o.mag[kG] = r + gr;
  o.mag[kU] = o.mag[kG] + ug;
  o.mag[kI] = r - ri;
  o.mag[kZ] = o.mag[kI] - iz;

  // Point source: size is the seeing PSF.
  o.petro_radius_arcsec = static_cast<float>(1.4 + rng->Gaussian(0, 0.1));
  o.surface_brightness = r;
  for (int k = 0; k < kProfileBins; ++k) {
    // PSF-like Gaussian falloff, much steeper than galaxies.
    o.profile[k] = std::exp(-static_cast<float>(k * k) / 2.0f);
  }
  if (r > 20.0f && rng->Bernoulli(0.01)) o.flags |= kFlagSaturated;
  if (rng->Bernoulli(0.005)) o.flags |= kFlagVariable;
  return o;
}

PhotoObj SkyGenerator::MakeQuasar(uint64_t id, const Vec3& pos,
                                  Rng* rng) const {
  PhotoObj o;
  o.obj_id = id;
  o.pos = pos;
  o.obj_class = ObjClass::kQuasar;

  float r = static_cast<float>(rng->Uniform(17.0, 22.0));
  // Quasars sit blueward of the stellar locus in u-g.
  float ug = static_cast<float>(rng->Gaussian(0.0, 0.12));
  float gr = static_cast<float>(rng->Gaussian(0.2, 0.1));
  float ri = static_cast<float>(rng->Gaussian(0.15, 0.08));
  float iz = static_cast<float>(rng->Gaussian(0.1, 0.08));
  o.mag[kR] = r;
  o.mag[kG] = r + gr;
  o.mag[kU] = o.mag[kG] + ug;
  o.mag[kI] = r - ri;
  o.mag[kZ] = o.mag[kI] - iz;

  o.petro_radius_arcsec = static_cast<float>(1.4 + rng->Gaussian(0, 0.1));
  o.surface_brightness = r;
  for (int k = 0; k < kProfileBins; ++k) {
    o.profile[k] = std::exp(-static_cast<float>(k * k) / 2.0f);
  }
  o.redshift = static_cast<float>(rng->Uniform(0.3, 5.0));
  o.flags |= kFlagSpectroTarget;
  if (rng->Bernoulli(0.1)) o.flags |= kFlagVariable;
  return o;
}

std::vector<PhotoObj> SkyGenerator::Generate() {
  Rng rng(model_.seed);
  std::vector<PhotoObj> out;
  out.reserve(model_.num_galaxies + model_.num_stars + model_.num_quasars);
  uint64_t next_id = 1;

  // Cluster centers (with per-cluster redshift for the red sequence).
  struct ClusterSeed {
    Vec3 center;
    float redshift;
  };
  std::vector<ClusterSeed> clusters;
  clusters.reserve(model_.num_clusters);
  for (uint64_t i = 0; i < model_.num_clusters; ++i) {
    clusters.push_back({SampleFootprintPosition(&rng),
                        static_cast<float>(rng.Uniform(0.05, 0.3))});
  }

  // Galaxies: field + cluster members.
  for (uint64_t i = 0; i < model_.num_galaxies; ++i) {
    bool in_cluster =
        !clusters.empty() && rng.Bernoulli(model_.cluster_fraction);
    Vec3 pos;
    const ClusterSeed* cl = nullptr;
    if (in_cluster) {
      cl = &clusters[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(clusters.size()) - 1))];
      // Concentrated profile: most members well inside the radius.
      double frac = std::fabs(rng.Gaussian(0.0, 0.5));
      pos = rng.UnitCap(cl->center,
                        DegToRad(model_.cluster_radius_deg *
                                 std::min(1.0, frac)));
    } else {
      pos = SampleFootprintPosition(&rng);
    }
    PhotoObj g = MakeGalaxy(next_id++, pos, &rng);
    if (cl != nullptr) {
      // Red-sequence members: tighter, redder colors.
      float gr = static_cast<float>(rng.Gaussian(0.9, 0.05));
      g.mag[kG] = g.mag[kR] + gr;
      g.mag[kU] = g.mag[kG] + static_cast<float>(rng.Gaussian(1.6, 0.15));
    }
    bool bright = g.mag[kR] < 17.8f;  // The paper's main galaxy sample cut.
    if (bright || rng.Bernoulli(model_.spectro_target_fraction)) {
      g.flags |= kFlagSpectroTarget;
      g.redshift = cl != nullptr
                       ? cl->redshift +
                             static_cast<float>(rng.Gaussian(0.0, 0.004))
                       : static_cast<float>(
                             std::max(0.01, rng.Gaussian(0.12, 0.06)));
    }
    FinishCommon(&g);
    out.push_back(std::move(g));
  }

  // Stars: concentrated toward the galactic plane edge of the footprint.
  for (uint64_t i = 0; i < model_.num_stars; ++i) {
    Vec3 pos;
    for (;;) {
      pos = SampleFootprintPosition(&rng);
      if (model_.footprint_min_gal_lat_deg <= 0.0) break;
      SphericalCoord gal = ToSpherical(pos, Frame::kGalactic);
      double w = std::exp(-(gal.lat_deg - model_.footprint_min_gal_lat_deg) /
                          25.0);
      if (rng.Bernoulli(std::min(1.0, w + 0.15))) break;
    }
    PhotoObj s = MakeStar(next_id++, pos, &rng);
    FinishCommon(&s);
    out.push_back(std::move(s));
  }

  // Quasars: sparse, uniform over the footprint.
  for (uint64_t i = 0; i < model_.num_quasars; ++i) {
    PhotoObj q = MakeQuasar(next_id++, SampleFootprintPosition(&rng), &rng);
    FinishCommon(&q);
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<Chunk> SkyGenerator::GenerateChunks(int num_nights) {
  std::vector<PhotoObj> all = Generate();
  std::vector<Chunk> chunks(static_cast<size_t>(std::max(1, num_nights)));
  double width = 360.0 / static_cast<double>(chunks.size());
  for (size_t n = 0; n < chunks.size(); ++n) {
    chunks[n].night = static_cast<int>(n);
    chunks[n].ra_min_deg = width * static_cast<double>(n);
    chunks[n].ra_max_deg = width * static_cast<double>(n + 1);
  }
  for (PhotoObj& o : all) {
    auto idx = static_cast<size_t>(o.ra_deg / width);
    if (idx >= chunks.size()) idx = chunks.size() - 1;
    chunks[idx].objects.push_back(std::move(o));
  }
  return chunks;
}

std::vector<SpecObj> SkyGenerator::GenerateSpectra(
    const std::vector<PhotoObj>& photo) {
  Rng rng(model_.seed ^ 0xabcdef);
  std::vector<SpecObj> out;
  uint64_t next_spec = 1;
  for (const PhotoObj& p : photo) {
    if ((p.flags & kFlagSpectroTarget) == 0) continue;
    SpecObj s;
    s.spec_id = next_spec++;
    s.photo_obj_id = p.obj_id;
    s.spec_class = p.obj_class;
    s.redshift = p.redshift >= 0.0f
                     ? p.redshift
                     : static_cast<float>(std::max(0.0, rng.Gaussian(0.1,
                                                                     0.05)));
    s.redshift_err = 1e-4f *
                     (1.0f + static_cast<float>(std::fabs(rng.Gaussian(0,
                                                                       1))));
    switch (p.obj_class) {
      case ObjClass::kGalaxy:
        s.line_wavelengths = {kHAlpha, kHBeta, kOiii, kOii};
        break;
      case ObjClass::kQuasar:
        s.line_wavelengths = {kLyAlpha, kMgii, kHBeta, 0.0f};
        break;
      case ObjClass::kStar:
      case ObjClass::kUnknown:
        s.line_wavelengths = {kHAlpha, kHBeta, 0.0f, 0.0f};
        break;
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace sdss::catalog
