#include "catalog/loader.h"

#include <algorithm>

#include "htm/trixel.h"

namespace sdss::catalog {

SimSeconds ChunkLoader::ModelTime(const LoadStats& s) const {
  double seeks = static_cast<double>(s.container_touches) *
                 cost_.seek_seconds;
  double transfer = static_cast<double>(s.bytes_written) /
                    (cost_.write_mbps * 1e6);
  return seeks + transfer;
}

Result<LoadStats> ChunkLoader::LoadClustered(ObjectStore* store,
                                             const Chunk& chunk) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  LoadStats stats;
  stats.objects = chunk.objects.size();
  stats.bytes_written = stats.objects * cost_.bytes_per_object;

  // Phase 1: index construction -- count distinct destination containers.
  int level = store->cluster_level();
  std::vector<uint64_t> keys;
  keys.reserve(chunk.objects.size());
  for (const PhotoObj& o : chunk.objects) {
    keys.push_back(htm::LookupId(o.pos, level).raw());
  }
  std::sort(keys.begin(), keys.end());
  stats.container_touches = static_cast<uint64_t>(
      std::unique(keys.begin(), keys.end()) - keys.begin());

  // Phase 2: single pass over the objects, one container at a time.
  SDSS_RETURN_IF_ERROR(store->BulkLoad(chunk.objects));
  stats.sim_seconds = ModelTime(stats);
  return stats;
}

Result<LoadStats> ChunkLoader::LoadNaive(ObjectStore* store,
                                         const Chunk& chunk) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  LoadStats stats;
  stats.objects = chunk.objects.size();
  stats.bytes_written = stats.objects * cost_.bytes_per_object;

  int level = store->cluster_level();
  uint64_t current = 0;
  bool first = true;
  for (const PhotoObj& o : chunk.objects) {
    uint64_t key = htm::LookupId(o.pos, level).raw();
    if (first || key != current) {
      ++stats.container_touches;  // Random container switch = one touch.
      current = key;
      first = false;
    }
    SDSS_RETURN_IF_ERROR(store->Insert(o));
  }
  stats.sim_seconds = ModelTime(stats);
  return stats;
}

}  // namespace sdss::catalog
