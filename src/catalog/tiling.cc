#include "catalog/tiling.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/angle.h"
#include "htm/cover.h"
#include "htm/region.h"
#include "htm/trixel.h"

namespace sdss::catalog {

const char* TargetClassName(TargetClass c) {
  switch (c) {
    case TargetClass::kMainGalaxy:
      return "MAIN";
    case TargetClass::kRedGalaxy:
      return "RED";
    case TargetClass::kQuasar:
      return "QSO";
  }
  return "?";
}

std::vector<Target> SelectTargets(const ObjectStore& store,
                                  const SelectionCuts& cuts) {
  std::vector<Target> out;
  store.ForEachObject([&](const PhotoObj& o) {
    Target t;
    t.obj_id = o.obj_id;
    t.pos = o.pos;
    if (o.obj_class == ObjClass::kGalaxy) {
      // Main sample: magnitude + surface-brightness limited.
      if (o.mag[kR] < cuts.main_r_limit &&
          o.surface_brightness < cuts.main_sb_limit) {
        t.target_class = TargetClass::kMainGalaxy;
        out.push_back(t);
        return;
      }
      // Very red galaxies to a fainter limit.
      if (o.Color(kG, kR) >= cuts.red_color_min &&
          o.mag[kR] < cuts.red_r_limit) {
        t.target_class = TargetClass::kRedGalaxy;
        out.push_back(t);
        return;
      }
      return;
    }
    // Quasar candidates: UV excess, point-like, bright enough.
    if (o.Color(kU, kG) <= cuts.quasar_ug_max &&
        o.mag[kR] < cuts.quasar_r_limit && o.petro_radius_arcsec < 2.5f) {
      t.target_class = TargetClass::kQuasar;
      out.push_back(t);
    }
  });
  return out;
}

namespace {

// Target indices within `radius_rad` of a candidate center, found via the
// HTM cover over a bucket map of targets.
std::vector<uint32_t> TargetsNear(
    const Vec3& center, double radius_deg, int level,
    const std::map<uint64_t, std::vector<uint32_t>>& buckets,
    const std::vector<Target>& targets) {
  std::vector<uint32_t> out;
  double cos_r = std::cos(DegToRad(radius_deg));
  htm::CoverResult cover =
      htm::Cover(htm::Region::CircleAround(center, radius_deg), level);
  auto visit = [&](htm::HtmId id) {
    uint64_t first, last;
    id.RangeAtLevel(level, &first, &last);
    for (auto it = buckets.lower_bound(first);
         it != buckets.end() && it->first < last; ++it) {
      for (uint32_t idx : it->second) {
        if (targets[idx].pos.Dot(center) >= cos_r) out.push_back(idx);
      }
    }
  };
  for (htm::HtmId id : cover.full) visit(id);
  for (htm::HtmId id : cover.partial) visit(id);
  return out;
}

}  // namespace

Result<TilingResult> PlaceTiles(const std::vector<Target>& targets,
                                const TilingOptions& options) {
  if (options.tile_radius_deg <= 0.0) {
    return Status::InvalidArgument("tile radius must be positive");
  }
  if (options.fibers_per_tile <= 0) {
    return Status::InvalidArgument("fibers_per_tile must be positive");
  }

  TilingResult result;
  result.targets_total = targets.size();
  if (targets.empty()) return result;

  int level = options.candidate_level;

  // Bucket targets by trixel; candidate tile centers are the centers of
  // occupied trixels and their neighbors (dense areas propose tiles).
  std::map<uint64_t, std::vector<uint32_t>> buckets;
  for (uint32_t i = 0; i < targets.size(); ++i) {
    buckets[htm::LookupId(targets[i].pos, level).raw()].push_back(i);
  }
  std::set<uint64_t> candidate_ids;
  for (const auto& [raw, members] : buckets) {
    candidate_ids.insert(raw);
    auto id = htm::HtmId::FromRaw(raw);
    if (!id.ok()) return id.status();
    for (htm::HtmId n : htm::Trixel::FromId(*id).Neighbors()) {
      candidate_ids.insert(n.raw());
    }
  }

  // Precompute each candidate's reachable-target list.
  struct Candidate {
    Vec3 center;
    std::vector<uint32_t> reach;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(candidate_ids.size());
  for (uint64_t raw : candidate_ids) {
    auto id = htm::HtmId::FromRaw(raw);
    if (!id.ok()) return id.status();
    Candidate c;
    c.center = htm::Trixel::FromId(*id).Center();
    c.reach = TargetsNear(c.center, options.tile_radius_deg, level, buckets,
                          targets);
    if (!c.reach.empty()) candidates.push_back(std::move(c));
  }

  std::vector<bool> assigned(targets.size(), false);
  std::vector<bool> reachable(targets.size(), false);
  for (const Candidate& c : candidates) {
    for (uint32_t idx : c.reach) reachable[idx] = true;
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!reachable[i]) ++result.targets_unreachable;
  }
  uint64_t assignable =
      result.targets_total - result.targets_unreachable;

  double min_sep_cos = std::cos(ArcsecToRad(options.fiber_collision_arcsec));
  uint64_t goal = static_cast<uint64_t>(
      std::ceil(options.target_coverage * static_cast<double>(assignable)));

  while (result.targets_assigned < goal) {
    if (options.max_tiles > 0 && result.tiles.size() >= options.max_tiles) {
      break;
    }
    // Pick the candidate covering the most unassigned targets.
    size_t best = candidates.size();
    size_t best_gain = 0;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      size_t gain = 0;
      for (uint32_t idx : candidates[ci].reach) {
        if (!assigned[idx]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = ci;
      }
    }
    if (best == candidates.size() || best_gain == 0) break;

    // Assign fibers on the winning tile, respecting the collision limit.
    Candidate& c = candidates[best];
    Tile tile;
    tile.center = c.center;
    std::vector<uint32_t> order;
    for (uint32_t idx : c.reach) {
      if (!assigned[idx]) order.push_back(idx);
    }
    // Deterministic priority: quasars, then red, then main, by id.
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      auto ka = static_cast<int>(targets[a].target_class);
      auto kb = static_cast<int>(targets[b].target_class);
      // Quasar(2) > Red(1) > Main(0): higher class first.
      if (ka != kb) return ka > kb;
      return targets[a].obj_id < targets[b].obj_id;
    });
    std::vector<uint32_t> placed;
    for (uint32_t idx : order) {
      if (static_cast<int>(tile.assigned.size()) >=
          options.fibers_per_tile) {
        break;
      }
      bool collides = false;
      for (uint32_t other : placed) {
        if (targets[idx].pos.Dot(targets[other].pos) > min_sep_cos) {
          collides = true;
          break;
        }
      }
      if (collides) {
        ++tile.collisions_skipped;
        continue;
      }
      placed.push_back(idx);
      tile.assigned.push_back(targets[idx].obj_id);
      assigned[idx] = true;
      ++result.targets_assigned;
    }
    if (tile.assigned.empty()) break;  // Only colliding targets remain.
    result.tiles.push_back(std::move(tile));
  }
  return result;
}

}  // namespace sdss::catalog
