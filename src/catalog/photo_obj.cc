#include "catalog/photo_obj.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace sdss::catalog {

const char* ObjClassName(ObjClass c) {
  switch (c) {
    case ObjClass::kUnknown:
      return "UNKNOWN";
    case ObjClass::kStar:
      return "STAR";
    case ObjClass::kGalaxy:
      return "GALAXY";
    case ObjClass::kQuasar:
      return "QSO";
  }
  return "?";
}

Result<ObjClass> ObjClassFromName(const std::string& name) {
  std::string n;
  for (char c : name) n.push_back(static_cast<char>(std::toupper(c)));
  if (n == "UNKNOWN") return ObjClass::kUnknown;
  if (n == "STAR") return ObjClass::kStar;
  if (n == "GALAXY" || n == "GAL") return ObjClass::kGalaxy;
  if (n == "QSO" || n == "QUASAR") return ObjClass::kQuasar;
  return Status::InvalidArgument("unknown object class: " + name);
}

TagObj TagObj::FromPhoto(const PhotoObj& p) {
  TagObj t;
  t.obj_id = p.obj_id;
  t.cx = static_cast<float>(p.pos.x);
  t.cy = static_cast<float>(p.pos.y);
  t.cz = static_cast<float>(p.pos.z);
  t.mag = p.mag;
  t.size_arcsec = p.petro_radius_arcsec;
  t.obj_class = static_cast<uint8_t>(p.obj_class);
  return t;
}

Result<double> GetAttribute(const PhotoObj& obj, const std::string& name) {
  if (name == "obj_id") return static_cast<double>(obj.obj_id);
  if (name == "ra") return obj.ra_deg;
  if (name == "dec") return obj.dec_deg;
  if (name == "cx") return obj.pos.x;
  if (name == "cy") return obj.pos.y;
  if (name == "cz") return obj.pos.z;
  for (int b = 0; b < kNumBands; ++b) {
    if (name == kBandNames[b]) return static_cast<double>(obj.mag[b]);
    if (name == std::string("err_") + kBandNames[b]) {
      return static_cast<double>(obj.mag_err[b]);
    }
  }
  if (name == "size") return static_cast<double>(obj.petro_radius_arcsec);
  if (name == "sb") return static_cast<double>(obj.surface_brightness);
  if (name == "redshift") return static_cast<double>(obj.redshift);
  if (name == "flags") return static_cast<double>(obj.flags);
  if (name == "class") return static_cast<double>(obj.obj_class);
  if (name == "htm") return static_cast<double>(obj.htm_leaf);
  if (name.rfind("profile", 0) == 0 && name.size() == 8) {
    int bin = name[7] - '0';
    if (bin >= 0 && bin < kProfileBins) {
      return static_cast<double>(obj.profile[static_cast<size_t>(bin)]);
    }
  }
  return Status::NotFound("unknown attribute: " + name);
}

Result<double> GetTagAttribute(const TagObj& tag, const std::string& name) {
  if (name == "obj_id") return static_cast<double>(tag.obj_id);
  if (name == "cx") return static_cast<double>(tag.cx);
  if (name == "cy") return static_cast<double>(tag.cy);
  if (name == "cz") return static_cast<double>(tag.cz);
  for (int b = 0; b < kNumBands; ++b) {
    if (name == kBandNames[b]) return static_cast<double>(tag.mag[b]);
  }
  if (name == "size") return static_cast<double>(tag.size_arcsec);
  if (name == "class") return static_cast<double>(tag.obj_class);
  return Status::NotFound("not a tag attribute: " + name);
}

bool IsTagAttribute(const std::string& name) {
  static const std::vector<std::string>* kTagNames =
      new std::vector<std::string>{"obj_id", "cx", "cy", "cz",  "u",
                                   "g",      "r",  "i",  "z",   "size",
                                   "class"};
  return std::find(kTagNames->begin(), kTagNames->end(), name) !=
         kTagNames->end();
}

const std::vector<std::string>& PhotoAttributeNames() {
  static const std::vector<std::string>* kNames = [] {
    auto* v = new std::vector<std::string>{
        "obj_id", "ra", "dec", "cx", "cy", "cz"};
    for (int b = 0; b < kNumBands; ++b) v->push_back(kBandNames[b]);
    for (int b = 0; b < kNumBands; ++b) {
      v->push_back(std::string("err_") + kBandNames[b]);
    }
    for (int i = 0; i < kProfileBins; ++i) {
      v->push_back("profile" + std::to_string(i));
    }
    v->insert(v->end(),
              {"size", "sb", "redshift", "flags", "class", "htm"});
    return v;
  }();
  return *kNames;
}

Result<PhotoObj> PhotoObjFromRow(const std::vector<std::string>& names,
                                 const std::vector<double>& values) {
  if (names.size() != values.size()) {
    return Status::InvalidArgument("attribute name/value count mismatch");
  }
  PhotoObj obj;
  for (size_t k = 0; k < names.size(); ++k) {
    const std::string& name = names[k];
    double v = values[k];
    if (name == "obj_id") {
      obj.obj_id = static_cast<uint64_t>(v);
    } else if (name == "ra") {
      obj.ra_deg = v;
    } else if (name == "dec") {
      obj.dec_deg = v;
    } else if (name == "cx") {
      obj.pos.x = v;
    } else if (name == "cy") {
      obj.pos.y = v;
    } else if (name == "cz") {
      obj.pos.z = v;
    } else if (name == "size") {
      obj.petro_radius_arcsec = static_cast<float>(v);
    } else if (name == "sb") {
      obj.surface_brightness = static_cast<float>(v);
    } else if (name == "redshift") {
      obj.redshift = static_cast<float>(v);
    } else if (name == "flags") {
      obj.flags = static_cast<uint32_t>(v);
    } else if (name == "class") {
      obj.obj_class = static_cast<ObjClass>(static_cast<uint8_t>(v));
    } else if (name == "htm") {
      obj.htm_leaf = static_cast<uint64_t>(v);
    } else if (name.rfind("profile", 0) == 0 && name.size() == 8 &&
               name[7] >= '0' && name[7] < '0' + kProfileBins) {
      obj.profile[static_cast<size_t>(name[7] - '0')] =
          static_cast<float>(v);
    } else {
      bool found = false;
      for (int b = 0; b < kNumBands && !found; ++b) {
        if (name == kBandNames[b]) {
          obj.mag[b] = static_cast<float>(v);
          found = true;
        } else if (name == std::string("err_") + kBandNames[b]) {
          obj.mag_err[b] = static_cast<float>(v);
          found = true;
        }
      }
      if (!found) return Status::NotFound("unknown attribute: " + name);
    }
  }
  return obj;
}

}  // namespace sdss::catalog
