// Finding charts.
//
// The paper: "At the simplest level these include the on-demand creation
// of (color) finding charts, with position information." A finding chart
// is a small annotated map of a sky neighborhood an observer takes to the
// telescope. This service renders one from the catalog: objects in a cone
// are projected onto a tangent-plane grid and drawn by class and
// brightness, with a legend and the position table.

#ifndef SDSS_CATALOG_FINDING_CHART_H_
#define SDSS_CATALOG_FINDING_CHART_H_

#include <string>
#include <vector>

#include "catalog/object_store.h"
#include "core/status.h"

namespace sdss::catalog {

/// Chart parameters.
struct ChartOptions {
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  double radius_deg = 0.25;
  float faint_limit_r = 21.0f;  ///< Objects fainter than this are omitted.
  size_t columns = 61;          ///< Chart raster size (odd keeps the
  size_t rows = 31;             ///< target on the center cell).
  size_t max_table_rows = 12;   ///< Position-table length.
};

/// One charted object.
struct ChartEntry {
  uint64_t obj_id = 0;
  double ra_deg = 0.0;
  double dec_deg = 0.0;
  float r_mag = 0.0f;
  ObjClass obj_class = ObjClass::kUnknown;
  char glyph = '?';
};

/// A rendered chart: the ASCII raster plus the entries drawn on it.
struct FindingChart {
  std::string ascii;                ///< Ready to print.
  std::vector<ChartEntry> entries;  ///< Sorted brightest first.
};

/// Renders a finding chart from the store (spatially indexed lookup).
/// Glyphs: '*' star, 'o' galaxy, 'Q' quasar, '.' faint anything,
/// '+' the requested center.
Result<FindingChart> RenderFindingChart(const ObjectStore& store,
                                        const ChartOptions& options);

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_FINDING_CHART_H_
