#include "catalog/columnar.h"

namespace sdss::catalog {

PhotoObj ColumnarBlock::MaterializeObject(size_t i) const {
  PhotoObj o;
  o.obj_id = obj_id[i];
  o.pos = Vec3(x[i], y[i], z[i]);
  o.ra_deg = ra[i];
  o.dec_deg = dec[i];
  for (int b = 0; b < kNumBands; ++b) {
    o.mag[static_cast<size_t>(b)] = mag[static_cast<size_t>(b)][i];
    o.mag_err[static_cast<size_t>(b)] =
        mag_err[static_cast<size_t>(b)][i];
  }
  for (int p = 0; p < kProfileBins; ++p) {
    o.profile[static_cast<size_t>(p)] = profile[static_cast<size_t>(p)][i];
  }
  o.petro_radius_arcsec = petro[i];
  o.surface_brightness = sb[i];
  o.redshift = redshift[i];
  o.flags = flags[i];
  o.obj_class = static_cast<ObjClass>(obj_class[i]);
  o.htm_leaf = htm_leaf[i];
  return o;
}

std::vector<PhotoObj> ColumnarBlock::Materialize() const {
  std::vector<PhotoObj> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(MaterializeObject(i));
  return out;
}

double ColumnGetter::operator()(const ColumnarBlock& b, size_t i) const {
  switch (field_) {
    case Field::kObjId:
      return static_cast<double>(b.obj_id[i]);
    case Field::kRa:
      return b.ra[i];
    case Field::kDec:
      return b.dec[i];
    case Field::kX:
      return b.x[i];
    case Field::kY:
      return b.y[i];
    case Field::kZ:
      return b.z[i];
    case Field::kMag:
      return static_cast<double>(b.mag[index_][i]);
    case Field::kMagErr:
      return static_cast<double>(b.mag_err[index_][i]);
    case Field::kProfile:
      return static_cast<double>(b.profile[index_][i]);
    case Field::kPetro:
      return static_cast<double>(b.petro[i]);
    case Field::kSb:
      return static_cast<double>(b.sb[i]);
    case Field::kRedshift:
      return static_cast<double>(b.redshift[i]);
    case Field::kFlags:
      return static_cast<double>(b.flags[i]);
    case Field::kClass:
      return static_cast<double>(b.obj_class[i]);
    case Field::kHtmLeaf:
      return static_cast<double>(b.htm_leaf[i]);
  }
  return 0.0;
}

namespace {

/// Gathers `m` elements of `col` starting at `base` into `out` as
/// doubles, bit-identical to per-element ColumnGetter evaluation. The
/// typed block copy plus typed convert loop is the shape the
/// auto-vectorizer handles; double columns are a straight memcpy.
template <typename T>
void GatherAs(const ColumnRef<T>& col, size_t base, size_t m,
              double* out) {
  if constexpr (std::is_same_v<T, double>) {
    col.CopyN(base, m, out);
  } else {
    constexpr size_t kStride = 256;
    T tmp[kStride];
    while (m != 0) {
      const size_t c = m < kStride ? m : kStride;
      col.CopyN(base, c, tmp);
      for (size_t k = 0; k < c; ++k) out[k] = static_cast<double>(tmp[k]);
      base += c;
      out += c;
      m -= c;
    }
  }
}

}  // namespace

void ColumnGetter::Gather(const ColumnarBlock& b, size_t base, size_t m,
                          double* out) const {
  switch (field_) {
    case Field::kObjId:
      GatherAs(b.obj_id, base, m, out);
      return;
    case Field::kRa:
      GatherAs(b.ra, base, m, out);
      return;
    case Field::kDec:
      GatherAs(b.dec, base, m, out);
      return;
    case Field::kX:
      GatherAs(b.x, base, m, out);
      return;
    case Field::kY:
      GatherAs(b.y, base, m, out);
      return;
    case Field::kZ:
      GatherAs(b.z, base, m, out);
      return;
    case Field::kMag:
      GatherAs(b.mag[index_], base, m, out);
      return;
    case Field::kMagErr:
      GatherAs(b.mag_err[index_], base, m, out);
      return;
    case Field::kProfile:
      GatherAs(b.profile[index_], base, m, out);
      return;
    case Field::kPetro:
      GatherAs(b.petro, base, m, out);
      return;
    case Field::kSb:
      GatherAs(b.sb, base, m, out);
      return;
    case Field::kRedshift:
      GatherAs(b.redshift, base, m, out);
      return;
    case Field::kFlags:
      GatherAs(b.flags, base, m, out);
      return;
    case Field::kClass:
      GatherAs(b.obj_class, base, m, out);
      return;
    case Field::kHtmLeaf:
      GatherAs(b.htm_leaf, base, m, out);
      return;
  }
}

Result<ColumnGetter> ResolveColumn(const std::string& name) {
  ColumnGetter g;
  auto make = [&g](ColumnGetter::Field f, uint8_t index = 0) {
    g.field_ = f;
    g.index_ = index;
    return g;
  };
  using F = ColumnGetter::Field;
  if (name == "obj_id") return make(F::kObjId);
  if (name == "ra") return make(F::kRa);
  if (name == "dec") return make(F::kDec);
  if (name == "cx") return make(F::kX);
  if (name == "cy") return make(F::kY);
  if (name == "cz") return make(F::kZ);
  for (int b = 0; b < kNumBands; ++b) {
    if (name == kBandNames[b]) {
      return make(F::kMag, static_cast<uint8_t>(b));
    }
    if (name == std::string("err_") + kBandNames[b]) {
      return make(F::kMagErr, static_cast<uint8_t>(b));
    }
  }
  if (name == "size") return make(F::kPetro);
  if (name == "sb") return make(F::kSb);
  if (name == "redshift") return make(F::kRedshift);
  if (name == "flags") return make(F::kFlags);
  if (name == "class") return make(F::kClass);
  if (name == "htm") return make(F::kHtmLeaf);
  if (name.rfind("profile", 0) == 0 && name.size() == 8) {
    int bin = name[7] - '0';
    if (bin >= 0 && bin < kProfileBins) {
      return make(F::kProfile, static_cast<uint8_t>(bin));
    }
  }
  return Status::NotFound("unknown attribute: " + name);
}

}  // namespace sdss::catalog
