#include "catalog/finding_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/angle.h"
#include "core/coords.h"
#include "htm/region.h"

namespace sdss::catalog {
namespace {

char GlyphFor(const PhotoObj& o, float faint_threshold) {
  if (o.mag[kR] > faint_threshold) return '.';
  switch (o.obj_class) {
    case ObjClass::kStar:
      return '*';
    case ObjClass::kGalaxy:
      return 'o';
    case ObjClass::kQuasar:
      return 'Q';
    case ObjClass::kUnknown:
      return '?';
  }
  return '?';
}

}  // namespace

Result<FindingChart> RenderFindingChart(const ObjectStore& store,
                                        const ChartOptions& options) {
  if (options.radius_deg <= 0.0) {
    return Status::InvalidArgument("chart radius must be positive");
  }
  if (options.columns < 3 || options.rows < 3) {
    return Status::InvalidArgument("chart raster too small");
  }

  Vec3 center = UnitVectorFromSpherical(options.ra_deg, options.dec_deg);
  htm::Region cone =
      htm::Region::CircleAround(center, options.radius_deg);

  FindingChart chart;
  store.QueryRegion(cone, [&](const PhotoObj& o) {
    if (o.mag[kR] > options.faint_limit_r) return;
    ChartEntry e;
    e.obj_id = o.obj_id;
    e.ra_deg = o.ra_deg;
    e.dec_deg = o.dec_deg;
    e.r_mag = o.mag[kR];
    e.obj_class = o.obj_class;
    // "Faint" rendering threshold: 2 magnitudes above the cut.
    e.glyph = GlyphFor(o, options.faint_limit_r - 2.0f);
    chart.entries.push_back(e);
  });
  std::sort(chart.entries.begin(), chart.entries.end(),
            [](const ChartEntry& a, const ChartEntry& b) {
              if (a.r_mag != b.r_mag) return a.r_mag < b.r_mag;
              return a.obj_id < b.obj_id;
            });

  // Raster: gnomonic-ish projection, East left (astronomical convention).
  std::vector<std::string> raster(options.rows,
                                  std::string(options.columns, ' '));
  double cos_dec = std::max(0.05, std::cos(DegToRad(options.dec_deg)));
  double half_w = options.radius_deg;
  double half_h = options.radius_deg;
  for (const ChartEntry& e : chart.entries) {
    double dra = NormalizeDeg180(e.ra_deg - options.ra_deg) * cos_dec;
    double ddec = e.dec_deg - options.dec_deg;
    if (std::fabs(dra) > half_w || std::fabs(ddec) > half_h) continue;
    auto col = static_cast<size_t>(
        std::lround((half_w - dra) / (2.0 * half_w) *
                    static_cast<double>(options.columns - 1)));
    auto row = static_cast<size_t>(
        std::lround((half_h - ddec) / (2.0 * half_h) *
                    static_cast<double>(options.rows - 1)));
    if (row < options.rows && col < options.columns) {
      char& cell = raster[row][col];
      // Brightest glyph wins a contested cell ('.' never overwrites).
      if (cell == ' ' || cell == '.') cell = e.glyph;
    }
  }
  raster[options.rows / 2][options.columns / 2] = '+';

  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Finding chart  ra=%.5f dec=%+.5f  radius=%.3f deg  "
                "(r <= %.1f)\n",
                options.ra_deg, options.dec_deg, options.radius_deg,
                options.faint_limit_r);
  chart.ascii = buf;
  std::string border(options.columns + 2, '-');
  chart.ascii += border + "\n";
  for (const std::string& line : raster) {
    chart.ascii += "|" + line + "|\n";
  }
  chart.ascii += border + "\n";
  chart.ascii +=
      "legend: * star  o galaxy  Q quasar  . faint  + field center\n";

  size_t n = std::min(chart.entries.size(), options.max_table_rows);
  if (n > 0) {
    chart.ascii += "\n  brightest objects:\n";
    chart.ascii += "  obj_id            ra          dec        r\n";
    for (size_t i = 0; i < n; ++i) {
      const ChartEntry& e = chart.entries[i];
      std::snprintf(buf, sizeof(buf), "  %-12llu %11.5f %+11.5f %8.2f %c\n",
                    static_cast<unsigned long long>(e.obj_id), e.ra_deg,
                    e.dec_deg, e.r_mag, e.glyph);
      chart.ascii += buf;
    }
  }
  return chart;
}

}  // namespace sdss::catalog
