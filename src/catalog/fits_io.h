// FITS import/export of catalog objects: the bridge between the object
// store and the interchange layer (binary FITS tables and the blocked
// packet stream the paper proposes for archive-to-archive transfer).

#ifndef SDSS_CATALOG_FITS_IO_H_
#define SDSS_CATALOG_FITS_IO_H_

#include <string>
#include <vector>

#include "catalog/object_store.h"
#include "catalog/photo_obj.h"
#include "core/status.h"
#include "fits/packet_stream.h"
#include "fits/table.h"

namespace sdss::catalog {

/// The FITS schema of a serialized PhotoObj row.
std::vector<fits::ColumnSpec> PhotoObjFitsSchema();

/// The FITS schema of a serialized TagObj row.
std::vector<fits::ColumnSpec> TagObjFitsSchema();

/// Converts objects to a FITS table (and back).
fits::Table PhotoObjsToTable(const std::vector<PhotoObj>& objects);
Result<std::vector<PhotoObj>> PhotoObjsFromTable(const fits::Table& table);

fits::Table TagObjsToTable(const std::vector<TagObj>& tags);
Result<std::vector<TagObj>> TagObjsFromTable(const fits::Table& table);

/// Serializes a whole store as a blocked binary FITS packet stream
/// (rows_per_packet objects per packet) and reloads it. Round-trips the
/// full photometric rows.
std::string StoreToPacketStream(const ObjectStore& store,
                                size_t rows_per_packet = 2048,
                                fits::StreamEncoding encoding =
                                    fits::StreamEncoding::kBinary);
Result<ObjectStore> StoreFromPacketStream(const std::string& bytes,
                                          StoreOptions options = {});

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_FITS_IO_H_
