// Catalog cross-identification.
//
// "As the reference astronomical data set, each subsequent astronomical
// survey will want to cross-identify its objects with the SDSS catalog."
// CrossMatch pairs objects of two stores within an angular tolerance
// using the HTM container index on both sides, so cost scales with the
// overlap area rather than the catalog product.

#ifndef SDSS_CATALOG_CROSS_MATCH_H_
#define SDSS_CATALOG_CROSS_MATCH_H_

#include <cstdint>
#include <vector>

#include "catalog/object_store.h"

namespace sdss::catalog {

/// One cross-identified pair.
struct MatchPair {
  uint64_t obj_id_a = 0;
  uint64_t obj_id_b = 0;
  double separation_arcsec = 0.0;
};

/// Options for cross matching.
struct CrossMatchOptions {
  double radius_arcsec = 2.0;  ///< Match tolerance.
  bool best_match_only = true;  ///< Keep only the nearest B per A object.
};

/// Statistics of one cross-match run.
struct CrossMatchStats {
  uint64_t candidates_tested = 0;  ///< Pairwise distance evaluations.
  uint64_t matches = 0;
};

/// Cross-identifies every object of `a` against `b`. For each object in
/// `a`, candidate B objects are drawn only from the containers whose
/// trixels intersect the match cap, via the HTM cover.
std::vector<MatchPair> CrossMatch(const ObjectStore& a, const ObjectStore& b,
                                  const CrossMatchOptions& options,
                                  CrossMatchStats* stats = nullptr);

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_CROSS_MATCH_H_
