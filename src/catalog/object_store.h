// The container-clustered object store: this reproduction's stand-in for
// the Objectivity/DB federation of the Science Archive.
//
// Objects are clustered into containers keyed by their HTM trixel at a
// configurable depth (the paper's "clustering units"). The container
// directory doubles as the coarse-grained density map the paper uses to
// predict output volume and search time; spatial queries accept FULL
// containers wholesale and filter PARTIAL containers per object, exactly
// as the index section of the paper describes.

#ifndef SDSS_CATALOG_OBJECT_STORE_H_
#define SDSS_CATALOG_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "catalog/columnar.h"
#include "catalog/photo_obj.h"
#include "core/status.h"
#include "htm/cover.h"
#include "htm/htm_index.h"
#include "htm/region.h"

namespace sdss::catalog {

/// Store configuration.
struct StoreOptions {
  /// HTM depth of the clustering containers (level 6 -> 32768 trixels,
  /// a few thousand occupied for a partial-sky survey).
  int cluster_level = 6;

  /// Maintain the tag vertical partition alongside the full objects.
  bool build_tags = true;
};

/// One clustering unit: the objects of a single trixel, stored
/// contiguously, plus the tag partition of the same objects.
///
/// A container is backed either by materialized row vectors (`objects`
/// / `tags`, the load path) or by a ColumnarBlock over externally owned
/// bytes (the mapped-snapshot cold-start path; `columnar.n > 0` and
/// `objects` stays empty). Readers that need rows go through `rows()` /
/// `tag_rows()`, which materialize a columnar container at most once;
/// the columnar scan kernel reads `columnar` directly and never pays
/// that cost. Copying a container (ExtractContainers) shares the lazy
/// cache and the mapping ownership.
struct Container {
  htm::HtmId trixel;
  std::vector<PhotoObj> objects;
  std::vector<TagObj> tags;  ///< Parallel to `objects` when tags enabled.

  /// Column views into the mapped snapshot; `n == 0` for row-backed
  /// containers. `backing` keeps the mapping (and thus every column
  /// pointer) alive for as long as any copy of this container exists.
  ColumnarBlock columnar;
  bool columnar_tags = false;  ///< Tag partition served from columns.
  std::shared_ptr<const void> backing;

  size_t size() const {
    return columnar.n > 0 ? columnar.n : objects.size();
  }

  /// The container's objects as rows. Row-backed: `objects` verbatim.
  /// Columnar: materialized on first use (thread-safe, cached).
  const std::vector<PhotoObj>& rows() const;

  /// The tag partition as rows; materialized on first use for columnar
  /// containers of tag-keeping stores.
  const std::vector<TagObj>& tag_rows() const;

  uint64_t FullBytes() const { return size() * sizeof(PhotoObj); }
  uint64_t TagBytes() const {
    return (columnar_tags ? columnar.n : tags.size()) * sizeof(TagObj);
  }

 private:
  /// Once-only row materialization for columnar containers. Shared so
  /// container copies (and the const scan paths) fill one cache;
  /// double-checked under `mu` with acquire/release ready flags.
  struct LazyRows {
    std::mutex mu;
    std::atomic<bool> rows_ready{false};
    std::atomic<bool> tags_ready{false};
    std::vector<PhotoObj> rows;
    std::vector<TagObj> tags;
  };
  mutable std::shared_ptr<LazyRows> lazy_;

  friend class ObjectStore;
};

/// Aggregate store statistics (the density map rolled up).
struct StoreStats {
  uint64_t object_count = 0;
  uint64_t container_count = 0;
  uint64_t full_bytes = 0;
  uint64_t tag_bytes = 0;
  uint64_t max_container_objects = 0;
  double mean_container_objects = 0.0;
};

/// The in-memory Science Archive object warehouse.
///
/// Thread-compatibility: loads are single-writer; all query/scan methods
/// are const and safe to call concurrently once loading is done.
class ObjectStore {
 public:
  explicit ObjectStore(StoreOptions options = {});

  const StoreOptions& options() const { return options_; }
  int cluster_level() const { return options_.cluster_level; }

  /// Monotonic mutation generation ("store epoch"). Every mutating
  /// entry point (Insert, BulkLoad, Clear) bumps it, so any cached
  /// derivation of the store's contents -- notably query results in
  /// query::ResultCache -- can be stamped with the epoch it was
  /// computed at and invalidated the instant the data moves. Adoption
  /// (AdoptContainer / AdoptColumnarContainer, the snapshot recovery
  /// path) deliberately does NOT bump: recovery rebuilds a store, it
  /// does not mutate one, and the writer's epoch is reinstated via
  /// RestoreEpoch so a recovered archive continues the same generation
  /// sequence instead of silently restarting it.
  uint64_t epoch() const { return epoch_; }

  /// Marks the store mutated. Called by every mutating entry point;
  /// exposed so owners that mutate containers out-of-band can keep the
  /// contract.
  void BumpEpoch() { ++epoch_; }

  /// Recovery (and epoch-neutral maintenance, e.g. replica promotion)
  /// hook: reinstates a previously observed epoch verbatim.
  void RestoreEpoch(uint64_t epoch) { epoch_ = epoch; }

  /// Inserts one object (computes its container from pos). Prefer
  /// BulkLoad for chunks -- this is the "naive load" path.
  Status Insert(const PhotoObj& obj);

  /// Inserts a batch grouped by container in one pass per container (the
  /// paper's two-phase clustered load is built on this; see ChunkLoader).
  Status BulkLoad(std::vector<PhotoObj> objects);

  uint64_t object_count() const { return object_count_; }
  size_t container_count() const { return containers_.size(); }
  StoreStats Stats() const;

  /// Container lookup by trixel id; nullptr when empty/absent.
  const Container* FindContainer(htm::HtmId trixel) const;

  /// The container directory: (trixel raw id -> object count), i.e. the
  /// coarse density map.
  std::map<uint64_t, uint64_t> DensityMap() const;

  /// Sequential scan over every object (the scan-machine access path).
  void ForEachObject(const std::function<void(const PhotoObj&)>& fn) const;

  /// Scan over every tag (the fast vertical-partition path).
  void ForEachTag(const std::function<void(const TagObj&)>& fn) const;

  /// Spatial query: calls `fn` exactly once for every object inside
  /// `region`. Containers FULLy inside are accepted without per-object
  /// tests; PARTIAL containers are filtered with the exact Region test.
  /// Returns the number of objects visited (accepted).
  struct SpatialScanStats {
    uint64_t accepted = 0;
    uint64_t full_containers = 0;
    uint64_t partial_containers = 0;
    uint64_t objects_tested = 0;  ///< Per-object tests in PARTIAL units.
    uint64_t bytes_touched = 0;
  };
  SpatialScanStats QueryRegion(
      const htm::Region& region,
      const std::function<void(const PhotoObj&)>& fn) const;

  /// Predicts result count and bytes touched for `region` from the
  /// density map alone (the paper: "a prediction of the output data
  /// volume and search time can be computed from the intersection
  /// volume"). No object data is read.
  struct Prediction {
    double expected_objects = 0.0;  ///< FULL count + half of PARTIAL.
    uint64_t max_objects = 0;       ///< FULL + all PARTIAL.
    uint64_t min_objects = 0;       ///< FULL only.
    uint64_t bytes_to_scan = 0;     ///< Data that must be read.
  };
  Prediction PredictRegion(const htm::Region& region) const;

  /// All objects of one container id range (used by the partitioner).
  const std::map<uint64_t, Container>& containers() const {
    return containers_;
  }

  /// Random sample of the catalog ("1% subsets allow debugging ...").
  /// Deterministic for a fixed seed; returns a new store with the same
  /// options.
  ObjectStore Sample(double fraction, uint64_t seed) const;

  /// Builds a sub-store holding exactly the listed containers, copied
  /// wholesale (no re-clustering; options carry over). Ids absent from
  /// this store are ignored. This is how the archive layer materializes
  /// per-server shard stores from a replication placement.
  ObjectStore ExtractContainers(const std::vector<uint64_t>& ids) const;

  /// Deserialization hook: installs `objects` as the container of
  /// `trixel` verbatim -- no re-clustering, positions are trusted -- so
  /// a store recovered from a persist::Snapshot has byte-identical
  /// container layout (and therefore identical scan behavior) to the
  /// store that was written. The trixel must be at cluster_level and
  /// not already present; tags are rebuilt when the store keeps them.
  Status AdoptContainer(htm::HtmId trixel, std::vector<PhotoObj> objects);

  /// Zero-copy sibling of AdoptContainer: installs column views over an
  /// externally owned byte range (an mmap'd snapshot) as the container
  /// of `trixel`. No rows are built -- cold start from a mapped
  /// snapshot costs only the directory walk. `backing` must own the
  /// bytes every column of `block` points into; the store (and any
  /// container copies handed out later) share that ownership. Same
  /// level/uniqueness rules as AdoptContainer. Columnar containers are
  /// immutable: Insert/BulkLoad into their trixel fail.
  Status AdoptColumnarContainer(htm::HtmId trixel,
                                const ColumnarBlock& block,
                                std::shared_ptr<const void> backing);

  /// Removes everything.
  void Clear();

 private:
  StoreOptions options_;
  htm::HtmIndex index_;
  std::map<uint64_t, Container> containers_;  // Keyed by trixel raw id.
  uint64_t object_count_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_OBJECT_STORE_H_
