// Columnar views of PhotoObj containers.
//
// The persist snapshot format already stores every container as
// per-field column arrays; this header is the in-memory face of that
// layout: a ColumnarBlock points straight into externally owned bytes
// (an mmap'd snapshot) and serves per-row values without ever building
// a PhotoObj. The query executor's columnar scan kernel runs predicate
// and aggregate loops directly over these views; everything that still
// needs row objects (the pair join, tag rebuilds, INTO sinks)
// materializes them on demand via Materialize().
//
// Layering: catalog defines the view and how it maps to PhotoObj;
// persist locates the byte ranges inside its file format and fills the
// column pointers in. Column bytes are little-endian, matching
// persist/coding.h's host assumption; accessors memcpy each element, so
// the (unaligned) mapped bytes are read without undefined behavior and
// the copies compile to plain unaligned loads.

#ifndef SDSS_CATALOG_COLUMNAR_H_
#define SDSS_CATALOG_COLUMNAR_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/photo_obj.h"
#include "core/status.h"
#include "core/vec3.h"

namespace sdss::catalog {

/// One column of `T` elements over externally owned, possibly
/// unaligned, little-endian bytes. Element reads copy through memcpy --
/// well-defined at any alignment, and the compiler lowers the 1/4/8
/// byte copies to single loads.
template <typename T>
class ColumnRef {
 public:
  ColumnRef() = default;
  explicit ColumnRef(const char* bytes) : bytes_(bytes) {}

  bool valid() const { return bytes_ != nullptr; }

  T operator[](size_t i) const {
    T v;
    std::memcpy(&v, bytes_ + i * sizeof(T), sizeof(T));
    return v;
  }

  /// Copies elements [base, base + m) into `out` as one block memcpy.
  /// Chunked accessors use this instead of per-element operator[]: the
  /// element-wise memcpy lowers to an integer load the vectorizer will
  /// not type as T, while a typed block copy plus a typed convert loop
  /// vectorizes.
  void CopyN(size_t base, size_t m, T* out) const {
    std::memcpy(out, bytes_ + base * sizeof(T), m * sizeof(T));
  }

 private:
  const char* bytes_ = nullptr;
};

/// One container's objects as columns over externally owned bytes (the
/// owner -- typically a persist::MappedSnapshot -- must outlive every
/// view). `n == 0` doubles as "no columnar backing".
struct ColumnarBlock {
  size_t n = 0;
  ColumnRef<uint64_t> obj_id;
  ColumnRef<double> x, y, z;
  ColumnRef<double> ra, dec;
  std::array<ColumnRef<float>, kNumBands> mag;
  std::array<ColumnRef<float>, kNumBands> mag_err;
  std::array<ColumnRef<float>, kProfileBins> profile;
  ColumnRef<float> petro, sb, redshift;
  ColumnRef<uint32_t> flags;
  ColumnRef<uint8_t> obj_class;
  ColumnRef<uint64_t> htm_leaf;

  Vec3 Position(size_t i) const { return Vec3(x[i], y[i], z[i]); }

  /// Rebuilds row `i` as a full PhotoObj, field for field.
  PhotoObj MaterializeObject(size_t i) const;

  /// Rebuilds the whole container row-wise, in column order -- the
  /// exact object vector the snapshot was encoded from.
  std::vector<PhotoObj> Materialize() const;
};

/// A resolved attribute accessor over a ColumnarBlock: the columnar
/// counterpart of catalog::GetAttribute, with the name resolved once
/// instead of string-compared per row. Values are converted to double
/// exactly as GetAttribute converts the corresponding PhotoObj field,
/// so the two paths are bit-identical.
class ColumnGetter {
 public:
  double operator()(const ColumnarBlock& b, size_t i) const;

  /// Chunk form of operator(): fills `out[0, m)` with the values of rows
  /// [base, base + m). Element k equals operator()(b, base + k) bit for
  /// bit; the field switch runs once per chunk instead of per row, so
  /// the per-field loops are flat load-convert-store sequences the
  /// compiler auto-vectorizes.
  void Gather(const ColumnarBlock& b, size_t base, size_t m,
              double* out) const;

 private:
  friend Result<ColumnGetter> ResolveColumn(const std::string& name);

  enum class Field : uint8_t {
    kObjId,
    kRa,
    kDec,
    kX,
    kY,
    kZ,
    kMag,
    kMagErr,
    kProfile,
    kPetro,
    kSb,
    kRedshift,
    kFlags,
    kClass,
    kHtmLeaf,
  };
  Field field_ = Field::kObjId;
  uint8_t index_ = 0;  ///< Band / profile bin for the array fields.
};

/// Resolves one GetAttribute name ("r", "err_g", "cx", "size", ...) to
/// its column accessor; NotFound for names GetAttribute rejects.
Result<ColumnGetter> ResolveColumn(const std::string& name);

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_COLUMNAR_H_
