// Synthetic survey generator: the reproduction's stand-in for the SDSS
// photometric pipeline output (see DESIGN.md, substitutions).
//
// The generated sky has the statistical features the paper's data
// structures are designed around: strong galaxy clustering (large density
// contrasts, [Csabai97]), a stellar population concentrated toward the
// galactic plane, sparse blue quasars, correlated color loci per class,
// and a survey footprint around the North Galactic Cap. All output is
// deterministic in the seed.

#ifndef SDSS_CATALOG_SKY_GENERATOR_H_
#define SDSS_CATALOG_SKY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "catalog/photo_obj.h"
#include "core/random.h"

namespace sdss::catalog {

/// Tunable sky model.
struct SkyModel {
  uint64_t seed = 42;

  // Class mix. The survey expects ~100M galaxies, ~100M stars, ~1M
  // quasars; defaults keep the same 100:100:1 proportions at demo scale.
  uint64_t num_galaxies = 50'000;
  uint64_t num_stars = 50'000;
  uint64_t num_quasars = 500;

  /// Fraction of galaxies placed inside clusters (density contrast).
  double cluster_fraction = 0.35;
  /// Number of galaxy clusters scattered over the footprint.
  uint64_t num_clusters = 60;
  /// Characteristic cluster angular radius, degrees.
  double cluster_radius_deg = 0.4;

  /// Survey footprint: galactic latitude |b| >= footprint_min_gal_lat
  /// restricted to the northern galactic cap (b > 0), approximating the
  /// paper's 10,000 sq deg around the North Galactic Cap. Set to 0 for
  /// full sky.
  double footprint_min_gal_lat_deg = 30.0;

  /// Fraction of bright galaxies flagged as spectroscopic targets.
  double spectro_target_fraction = 0.01;

  /// Magnitude range of the photometric survey (r band limits).
  float r_mag_bright = 14.0f;
  float r_mag_faint = 23.0f;
};

/// An observing chunk: "several segments of the sky that were scanned in
/// a single night" -- the unit the Operational Archive exports to the
/// Science Archive (~20 GB/day in the paper).
struct Chunk {
  int night = 0;
  double ra_min_deg = 0.0;  ///< Drift-scan stripe bounds.
  double ra_max_deg = 0.0;
  std::vector<PhotoObj> objects;

  /// Logical chunk size at paper scale (full photometric rows).
  uint64_t PaperBytes() const {
    return objects.size() * kPaperBytesPerPhotoObj;
  }
};

/// Deterministic synthetic sky generator.
class SkyGenerator {
 public:
  explicit SkyGenerator(SkyModel model = {});

  const SkyModel& model() const { return model_; }

  /// Generates the full object list (order: galaxies, stars, quasars;
  /// ids are sequential).
  std::vector<PhotoObj> Generate();

  /// Generates the same sky split into `num_nights` drift-scan chunks by
  /// right ascension, mimicking the OA -> SA nightly export.
  std::vector<Chunk> GenerateChunks(int num_nights);

  /// Generates matching spectroscopic objects for the flagged targets of
  /// `photo` (redshifts per class, line lists).
  std::vector<SpecObj> GenerateSpectra(const std::vector<PhotoObj>& photo);

 private:
  Vec3 SampleFootprintPosition(Rng* rng) const;
  PhotoObj MakeGalaxy(uint64_t id, const Vec3& pos, Rng* rng) const;
  PhotoObj MakeStar(uint64_t id, const Vec3& pos, Rng* rng) const;
  PhotoObj MakeQuasar(uint64_t id, const Vec3& pos, Rng* rng) const;
  void FinishCommon(PhotoObj* obj) const;

  SkyModel model_;
};

}  // namespace sdss::catalog

#endif  // SDSS_CATALOG_SKY_GENERATOR_H_
