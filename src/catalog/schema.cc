#include "catalog/schema.h"

#include "catalog/photo_obj.h"

namespace sdss::catalog {

const char* FieldTypeName(FieldType t) {
  switch (t) {
    case FieldType::kInt64:
      return "int64";
    case FieldType::kInt32:
      return "int32";
    case FieldType::kFloat:
      return "float32";
    case FieldType::kDouble:
      return "float64";
    case FieldType::kString:
      return "string";
    case FieldType::kEnum:
      return "enum";
  }
  return "?";
}

namespace {

size_t FieldBytes(const FieldDef& f) {
  size_t unit = 8;
  switch (f.type) {
    case FieldType::kInt64:
    case FieldType::kDouble:
      unit = 8;
      break;
    case FieldType::kInt32:
    case FieldType::kFloat:
      unit = 4;
      break;
    case FieldType::kString:
      unit = 16;
      break;
    case FieldType::kEnum:
      unit = 1;
      break;
  }
  return unit * (f.array_length == 0 ? 1 : f.array_length);
}

const char* SqlType(FieldType t) {
  switch (t) {
    case FieldType::kInt64:
      return "BIGINT";
    case FieldType::kInt32:
      return "INTEGER";
    case FieldType::kFloat:
      return "REAL";
    case FieldType::kDouble:
      return "DOUBLE PRECISION";
    case FieldType::kString:
      return "VARCHAR(64)";
    case FieldType::kEnum:
      return "SMALLINT";
  }
  return "?";
}

const char* OoType(FieldType t) {
  switch (t) {
    case FieldType::kInt64:
      return "ooInt64";
    case FieldType::kInt32:
      return "ooInt32";
    case FieldType::kFloat:
      return "ooFloat";
    case FieldType::kDouble:
      return "ooDouble";
    case FieldType::kString:
      return "ooVString";
    case FieldType::kEnum:
      return "ooInt8";
  }
  return "?";
}

}  // namespace

size_t ClassDef::BytesPerInstance() const {
  size_t n = 0;
  for (const FieldDef& f : fields) n += FieldBytes(f);
  return n;
}

Result<ClassDef> Schema::FindClass(const std::string& name) const {
  for (const ClassDef& c : classes_) {
    if (c.name == name) return c;
  }
  return Status::NotFound("no schema class named " + name);
}

std::string Schema::ToSqlDdl() const {
  std::string out;
  for (const ClassDef& c : classes_) {
    out += "-- " + c.doc + "\n";
    out += "CREATE TABLE " + c.name + " (\n";
    for (size_t i = 0; i < c.fields.size(); ++i) {
      const FieldDef& f = c.fields[i];
      if (f.array_length == 0) {
        out += "  " + f.name + " " + SqlType(f.type);
        if (i + 1 < c.fields.size()) out += ",";
        if (!f.unit.empty()) out += "  -- [" + f.unit + "] " + f.doc;
        out += "\n";
      } else {
        // Arrays unroll into numbered columns in the SQL representation.
        for (size_t k = 0; k < f.array_length; ++k) {
          out += "  " + f.name + "_" + std::to_string(k) + " " +
                 SqlType(f.type);
          if (i + 1 < c.fields.size() || k + 1 < f.array_length) out += ",";
          out += "\n";
        }
      }
    }
    out += ");\n\n";
  }
  return out;
}

std::string Schema::ToObjectivityDdl() const {
  std::string out;
  for (const ClassDef& c : classes_) {
    out += "// " + c.doc + "\n";
    out += "class " + c.name + " : public ooObj {\n";
    for (const FieldDef& f : c.fields) {
      out += "  ";
      out += OoType(f.type);
      out += " " + f.name;
      if (f.array_length > 0) {
        out += "[" + std::to_string(f.array_length) + "]";
      }
      out += ";";
      if (!f.doc.empty()) out += "  // " + f.doc;
      out += "\n";
    }
    out += "};\n\n";
  }
  return out;
}

std::string Schema::ToXml() const {
  std::string out = "<schema name=\"sdss\">\n";
  for (const ClassDef& c : classes_) {
    out += "  <class name=\"" + c.name + "\" doc=\"" + c.doc + "\">\n";
    for (const FieldDef& f : c.fields) {
      out += "    <field name=\"" + f.name + "\" type=\"" +
             FieldTypeName(f.type) + "\"";
      if (f.array_length > 0) {
        out += " length=\"" + std::to_string(f.array_length) + "\"";
      }
      if (!f.unit.empty()) out += " unit=\"" + f.unit + "\"";
      out += "/>\n";
    }
    out += "  </class>\n";
  }
  out += "</schema>\n";
  return out;
}

Schema Schema::Sdss() {
  Schema s;
  s.AddClass(ClassDef{
      "PhotoObj",
      "Full photometric catalog object",
      {
          {"obj_id", FieldType::kInt64, 0, "", "unique object id"},
          {"cx", FieldType::kDouble, 0, "", "unit vector x"},
          {"cy", FieldType::kDouble, 0, "", "unit vector y"},
          {"cz", FieldType::kDouble, 0, "", "unit vector z"},
          {"ra", FieldType::kDouble, 0, "deg", "right ascension J2000"},
          {"dec", FieldType::kDouble, 0, "deg", "declination J2000"},
          {"mag", FieldType::kFloat, kNumBands, "mag", "ugriz magnitudes"},
          {"mag_err", FieldType::kFloat, kNumBands, "mag", "1-sigma errors"},
          {"profile", FieldType::kFloat, kProfileBins, "",
           "r-band radial profile"},
          {"petro_radius", FieldType::kFloat, 0, "arcsec",
           "Petrosian radius"},
          {"sb", FieldType::kFloat, 0, "mag/arcsec2", "surface brightness"},
          {"redshift", FieldType::kFloat, 0, "", "spectroscopic redshift"},
          {"flags", FieldType::kInt32, 0, "", "processing flags"},
          {"class", FieldType::kEnum, 0, "", "star/galaxy/qso"},
          {"htm", FieldType::kInt64, 0, "", "HTM leaf id"},
      }});
  s.AddClass(ClassDef{
      "TagObj",
      "Vertical partition of the ten most popular attributes",
      {
          {"obj_id", FieldType::kInt64, 0, "", "pointer to PhotoObj"},
          {"cx", FieldType::kFloat, 0, "", "unit vector x"},
          {"cy", FieldType::kFloat, 0, "", "unit vector y"},
          {"cz", FieldType::kFloat, 0, "", "unit vector z"},
          {"mag", FieldType::kFloat, kNumBands, "mag", "ugriz magnitudes"},
          {"size", FieldType::kFloat, 0, "arcsec", "Petrosian radius"},
          {"class", FieldType::kEnum, 0, "", "star/galaxy/qso"},
      }});
  s.AddClass(ClassDef{
      "SpecObj",
      "Spectroscopic catalog object",
      {
          {"spec_id", FieldType::kInt64, 0, "", "unique spectrum id"},
          {"photo_obj_id", FieldType::kInt64, 0, "",
           "cross-link to PhotoObj"},
          {"redshift", FieldType::kFloat, 0, "", "heliocentric redshift"},
          {"redshift_err", FieldType::kFloat, 0, "", "redshift error"},
          {"spec_class", FieldType::kEnum, 0, "", "classification"},
          {"lines", FieldType::kFloat, 4, "Angstrom",
           "identified line wavelengths"},
      }});
  s.AddClass(ClassDef{
      "Chunk",
      "One night's calibrated export from the Operational Archive",
      {
          {"night", FieldType::kInt32, 0, "", "observing night index"},
          {"ra_min", FieldType::kDouble, 0, "deg", "stripe lower bound"},
          {"ra_max", FieldType::kDouble, 0, "deg", "stripe upper bound"},
          {"object_count", FieldType::kInt64, 0, "", "objects in chunk"},
      }});
  return s;
}

}  // namespace sdss::catalog
