// River dataflow graphs.
//
// "We propose to let astronomers construct dataflow graphs where the
// nodes consume one or more data streams, filter and combine the data,
// and then produce one or more result streams. ... The simplest river
// systems are sorting networks." [Arpaci-Dusseau 99, DeWitt92, Graefe93]
//
// A River is a linear pipeline of operators (filter, map, repartition,
// sort) applied with partition parallelism: the source is split into P
// partitions, per-partition stages run on real threads, a repartition
// stage exchanges records between partitions, and an ordered sink merges
// sorted partitions (the sorting-network case the paper cites from the
// Sort Benchmark).

#ifndef SDSS_DATAFLOW_RIVER_H_
#define SDSS_DATAFLOW_RIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dataflow/cluster.h"

namespace sdss::dataflow {

/// Run metrics of a river execution.
struct RiverStats {
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  double real_seconds = 0.0;       ///< Wall time of the real computation.
  SimSeconds sim_seconds = 0.0;    ///< Modeled time (I/O-bound source).
  double sim_mbps = 0.0;           ///< Modeled throughput.
};

/// A linear dataflow pipeline over PhotoObj records.
class River {
 public:
  using Record = catalog::PhotoObj;
  using FilterFn = std::function<bool(const Record&)>;
  using MapFn = std::function<Record(const Record&)>;
  using KeyFn = std::function<double(const Record&)>;
  using PartitionFn = std::function<size_t(const Record&)>;

  /// Builds a river fed by a cluster's partitioned data; one river
  /// partition per cluster node.
  explicit River(const ClusterSim* cluster);

  /// Appends a filter stage (per-partition, parallel).
  River& Filter(FilterFn fn);

  /// Appends a transform stage (per-partition, parallel).
  River& Map(MapFn fn);

  /// Appends an exchange: records are re-bucketed into `partitions`
  /// output partitions by `fn` (the hash-machine shuffle as a river
  /// stage).
  River& Repartition(PartitionFn fn, size_t partitions);

  /// The hash machine's spatial exchange as a river stage: records are
  /// re-bucketed by their home HTM trixel at `bucket_level` -- the same
  /// PairHasher phase-1 key the pair search and the distributed
  /// neighbor join hash on -- folded into `partitions` partitions.
  River& SpatialShuffle(int bucket_level, size_t partitions);

  /// Appends a sort stage: each partition sorts locally by `key`; the
  /// sink then performs an ordered k-way merge, making the whole output
  /// globally ordered iff a range Repartition preceded the sort, and
  /// partition-ordered otherwise.
  River& SortBy(KeyFn key);

  /// Executes the pipeline. `sink` sees every output record; when the
  /// last stage was SortBy, records arrive in ascending key order merged
  /// across partitions. Returns run metrics.
  RiverStats Run(const std::function<void(const Record&)>& sink);

 private:
  struct Stage {
    enum class Kind { kFilter, kMap, kRepartition, kSort } kind;
    FilterFn filter;
    MapFn map;
    PartitionFn partition;
    size_t partitions = 0;
    KeyFn key;
  };

  const ClusterSim* cluster_;
  std::vector<Stage> stages_;
};

}  // namespace sdss::dataflow

#endif  // SDSS_DATAFLOW_RIVER_H_
