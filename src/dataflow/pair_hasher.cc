#include "dataflow/pair_hasher.h"

#include <algorithm>
#include <cmath>

#include "core/angle.h"
#include "htm/cover.h"
#include "htm/region.h"
#include "htm/trixel.h"

namespace sdss::dataflow {

using catalog::PhotoObj;

PairHasher::PairHasher(double max_sep_arcsec, int bucket_level)
    : max_sep_arcsec_(max_sep_arcsec),
      max_sep_deg_(ArcsecToDeg(max_sep_arcsec)),
      cos_sep_(std::cos(ArcsecToRad(max_sep_arcsec))),
      bucket_level_(bucket_level) {}

void PairHasher::Add(const PhotoObj* obj, bool local) {
  AddComputed(obj, ComputeBuckets(*obj), local);
}

PairHasher::BucketSet PairHasher::ComputeBuckets(const PhotoObj& obj) const {
  BucketSet out;
  out.home = htm::LookupId(obj.pos, bucket_level_).raw();
  htm::CoverResult cover = htm::Cover(
      htm::Region::CircleAround(obj.pos, max_sep_deg_), bucket_level_);
  htm::ForEachRawInCover(cover, bucket_level_, [&out](uint64_t raw) {
    if (raw != out.home) out.ghosts.push_back(raw);
  });
  return out;
}

void PairHasher::AddComputed(const PhotoObj* obj, const BucketSet& buckets,
                             bool local) {
  (local ? local_objects_ : foreign_objects_) += 1;
  buckets_[buckets.home].push_back({obj, true, local});
  for (uint64_t raw : buckets.ghosts) {
    buckets_[raw].push_back({obj, false, local});
    ++ghost_entries_;
  }
}

uint64_t PairHasher::max_bucket() const {
  uint64_t max_size = 0;
  for (const auto& [raw, entries] : buckets_) {
    max_size = std::max<uint64_t>(max_size, entries.size());
  }
  return max_size;
}

std::vector<const PairHasher::Bucket*> PairHasher::BucketList() const {
  std::vector<const Bucket*> list;
  list.reserve(buckets_.size());
  for (const auto& [raw, entries] : buckets_) list.push_back(&entries);
  return list;
}

uint64_t PairHasher::ForEachCandidatePair(
    const Bucket& bucket,
    const std::function<bool(const PhotoObj&, const PhotoObj&, double)>&
        on_pair) const {
  uint64_t tests = 0;
  for (size_t x = 0; x < bucket.size(); ++x) {
    // The pair is emitted in the home bucket of its lower-id member, and
    // only by the machine that owns that member: x must be a local
    // primary. The partner is then present here -- locally or as a
    // ghost -- because its separation cap covers this trixel.
    if (!bucket[x].primary || !bucket[x].local) continue;
    const PhotoObj* a = bucket[x].obj;
    for (size_t y = 0; y < bucket.size(); ++y) {
      if (x == y) continue;
      const PhotoObj* b = bucket[y].obj;
      if (a->obj_id >= b->obj_id) continue;  // Lower-id member emits.
      ++tests;
      if (a->pos.Dot(b->pos) < cos_sep_) continue;
      double sep = RadToArcsec(a->pos.AngleTo(b->pos));
      if (!on_pair(*a, *b, sep)) return tests;
    }
  }
  return tests;
}

void PairHasher::SortPairs(std::vector<ObjectPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const ObjectPair& a, const ObjectPair& b) {
              if (a.obj_id_a != b.obj_id_a) return a.obj_id_a < b.obj_id_a;
              return a.obj_id_b < b.obj_id_b;
            });
}

uint64_t PairHasher::HomeBucket(const Vec3& pos_eq, int level) {
  return htm::LookupId(pos_eq, level).raw();
}

int PairHasher::ChooseBucketLevel(double max_sep_arcsec) {
  // A level-L trixel is ~90/2^L degrees across. Pick the deepest level
  // keeping the trixel at least ~4x the separation, so most caps stay
  // inside one bucket and ghost fan-out is small.
  double sep_deg = std::max(ArcsecToDeg(max_sep_arcsec), 1e-9);
  int level = static_cast<int>(std::floor(std::log2(90.0 / (4.0 * sep_deg))));
  return std::clamp(level, 4, 12);
}

}  // namespace sdss::dataflow
