// The scan machine: a continuously sweeping shared scan.
//
// "Our simplest approach is to run a scan machine that continuously scans
// the dataset evaluating user-supplied predicates on each object
// [Acharya95]. ... The scan machine will be interactively scheduled: when
// an astronomer has a query, it is added to the query mix immediately.
// All data that qualifies is sent back to the astronomer, and the query
// completes within the scan time."
//
// ScanMachine admits predicate queries at arbitrary simulated times; all
// active predicates are evaluated in one shared pass per cycle (real
// evaluation over the real data), and each query completes exactly one
// full cycle after its admission.

#ifndef SDSS_DATAFLOW_SCAN_MACHINE_H_
#define SDSS_DATAFLOW_SCAN_MACHINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dataflow/cluster.h"

namespace sdss::dataflow {

/// A user-supplied single-object predicate query.
struct ScanQuery {
  uint64_t id = 0;
  std::function<bool(const catalog::PhotoObj&)> predicate;
  SimSeconds admitted_at = 0.0;
};

/// Completion record for one query.
struct ScanCompletion {
  uint64_t query_id = 0;
  SimSeconds admitted_at = 0.0;
  SimSeconds completed_at = 0.0;
  uint64_t matches = 0;

  SimSeconds Latency() const { return completed_at - admitted_at; }
};

/// The interactive shared-scan service.
class ScanMachine {
 public:
  explicit ScanMachine(const ClusterSim* cluster) : cluster_(cluster) {}

  /// Admits a query at simulated time `now`. Queries may arrive mid-cycle.
  uint64_t Admit(std::function<bool(const catalog::PhotoObj&)> predicate,
                 SimSeconds now);

  /// Runs the machine until every admitted query has completed; returns
  /// the completion records (each query finishes exactly one full scan
  /// after admission). Predicates of all concurrently active queries are
  /// evaluated in the same pass -- the number of data passes equals the
  /// number of distinct cycles, not the number of queries.
  std::vector<ScanCompletion> RunUntilDrained();

  /// Duration of one full cycle over the partitioned dataset.
  SimSeconds CycleSimSeconds() const { return cluster_->FullScanSimSeconds(); }

  /// Number of shared data passes executed so far.
  uint64_t cycles_run() const { return cycles_run_; }

 private:
  const ClusterSim* cluster_;
  std::vector<ScanQuery> pending_;
  uint64_t next_id_ = 1;
  uint64_t cycles_run_ = 0;
};

}  // namespace sdss::dataflow

#endif  // SDSS_DATAFLOW_SCAN_MACHINE_H_
