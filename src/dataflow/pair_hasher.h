// The cluster-agnostic core of the two-phase spatial hash join.
//
// The paper's hash machine "'hashes' each object to the appropriate
// buckets -- a single object may go to several buckets (to allow objects
// near the edges of a region to go to all the neighboring regions as
// well). In a second phase all the objects in a bucket are compared to
// one another." PairHasher is that bucket/ghost core detached from any
// particular substrate: ClusterSim's HashMachine, the River shuffle, and
// the query executor's distributed kPairJoin operator all feed it object
// streams and share one emission discipline.
//
// Buckets are HTM trixels at a configurable level. Every added object
// lands in its home trixel and, as a ghost, in every other trixel
// intersecting the separation cap around it, so cross-boundary pairs are
// never missed. Objects are flagged local or foreign: a pair is emitted
// only in the home bucket of its lower-id member and only when that
// member is LOCAL. On one machine (everything local) this is the classic
// exactly-once rule; across a fleet where each shard adds its own
// objects as local and received boundary ghosts as foreign, the rule
// still emits each pair exactly once fleet-wide -- by the shard that
// owns the lower-id member.

#ifndef SDSS_DATAFLOW_PAIR_HASHER_H_
#define SDSS_DATAFLOW_PAIR_HASHER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "catalog/photo_obj.h"
#include "core/vec3.h"

namespace sdss::dataflow {

/// One matched pair from a spatial pair search.
struct ObjectPair {
  uint64_t obj_id_a = 0;
  uint64_t obj_id_b = 0;
  double separation_arcsec = 0.0;
};

/// Accumulates objects into spatial buckets (phase 1) and enumerates
/// candidate pairs per bucket (phase 2).
///
/// Thread-compatibility: Add is not thread-safe (callers serialize, as
/// the parallel scans in HashMachine and the executor do); once adding
/// is done, ForEachCandidatePair may run concurrently over distinct
/// buckets.
class PairHasher {
 public:
  /// One bucket membership: the object plus how it got here.
  struct Entry {
    const catalog::PhotoObj* obj;
    bool primary;  ///< Home-trixel entry (vs edge ghost).
    bool local;    ///< Owned by this machine (vs received ghost).
  };
  using Bucket = std::vector<Entry>;

  /// `bucket_level` is the HTM depth of the hash buckets; deeper =
  /// smaller buckets = fewer pair tests but more ghosts.
  PairHasher(double max_sep_arcsec, int bucket_level);

  double max_sep_arcsec() const { return max_sep_arcsec_; }
  int bucket_level() const { return bucket_level_; }

  /// Phase 1: hashes one object to its home bucket plus the ghost
  /// buckets covering the separation cap around it. `local` marks
  /// ownership (see the emission rule above); single-machine callers
  /// leave it true. The pointee must outlive the hasher.
  void Add(const catalog::PhotoObj* obj, bool local = true);

  /// The bucket ids one object hashes to: its home trixel plus the
  /// ghost trixels of its separation cap.
  struct BucketSet {
    uint64_t home = 0;
    std::vector<uint64_t> ghosts;
  };

  /// The expensive half of Add (point location + cover), safe to run
  /// concurrently with no synchronization -- parallel scans compute
  /// this outside their insert lock.
  BucketSet ComputeBuckets(const catalog::PhotoObj& obj) const;

  /// The cheap half of Add: files `obj` under a precomputed bucket set
  /// (callers serialize, as with Add).
  void AddComputed(const catalog::PhotoObj* obj, const BucketSet& buckets,
                   bool local = true);

  uint64_t local_objects() const { return local_objects_; }
  uint64_t foreign_objects() const { return foreign_objects_; }
  uint64_t ghost_entries() const { return ghost_entries_; }
  size_t bucket_count() const { return buckets_.size(); }
  uint64_t max_bucket() const;

  /// The non-empty buckets, for phase-2 fan-out.
  std::vector<const Bucket*> BucketList() const;

  /// Phase 2 over one bucket: invokes `on_pair(lo, hi, sep_arcsec)` for
  /// every distinct pair within the separation whose lower-id member is
  /// a LOCAL PRIMARY of this bucket -- the exactly-once discipline.
  /// `on_pair` returns false to abort the bucket. Returns the number of
  /// pairwise distance tests performed.
  uint64_t ForEachCandidatePair(
      const Bucket& bucket,
      const std::function<bool(const catalog::PhotoObj&,
                               const catalog::PhotoObj&, double)>& on_pair)
      const;

  /// The canonical pair order every layer sorts into: (obj_id_a,
  /// obj_id_b) ascending.
  static void SortPairs(std::vector<ObjectPair>* pairs);

  /// Home bucket (trixel raw id) of an Equatorial position at `level` --
  /// the shuffle key the River spatial exchange shares with phase 1.
  static uint64_t HomeBucket(const Vec3& pos_eq, int level);

  /// Planner heuristic: the deepest bucket level whose trixels stay
  /// comfortably wider than the separation, clamped to [4, 12]. Purely a
  /// performance choice -- ghost replication keeps any level exact.
  static int ChooseBucketLevel(double max_sep_arcsec);

 private:
  double max_sep_arcsec_;
  double max_sep_deg_;
  double cos_sep_;
  int bucket_level_;
  std::unordered_map<uint64_t, Bucket> buckets_;
  uint64_t local_objects_ = 0;
  uint64_t foreign_objects_ = 0;
  uint64_t ghost_entries_ = 0;
};

}  // namespace sdss::dataflow

#endif  // SDSS_DATAFLOW_PAIR_HASHER_H_
