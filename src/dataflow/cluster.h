// The commodity-cluster substrate of the paper's scan/hash/river machines.
//
// "Acceptable I/O performance can be achieved ... with many commodity
// servers operating in parallel. ... Each node has 4 Intel Xeon 450 Mhz
// processors, 256MB of RAM, and 12x18GB disks. ... one node is capable of
// reading data at 150 MBps. If the data is spread among the 20 nodes,
// they can scan the data at an aggregate rate of 3 GBps."
//
// ClusterSim spreads a catalog's containers across N simulated nodes and
// runs real computation over the real objects on a thread pool, while
// accounting elapsed time on the simulated clock from the configured disk
// bandwidth -- so benchmark output reproduces the paper's arithmetic (2
// minute full scans) deterministically on any host.

#ifndef SDSS_DATAFLOW_CLUSTER_H_
#define SDSS_DATAFLOW_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "catalog/object_store.h"
#include "core/sim_clock.h"
#include "core/status.h"
#include "core/thread_pool.h"

namespace sdss::dataflow {

/// Per-node hardware model (defaults follow [Hartman98]).
struct NodeSpec {
  double disk_mbps = 150.0;     ///< Sequential scan bandwidth, MB/s.
  double network_mbps = 100.0;  ///< Per-node repartitioning bandwidth.
  int cpus = 4;
};

/// Cluster-wide configuration.
struct ClusterConfig {
  size_t num_nodes = 20;
  NodeSpec node;
  /// Paper-scale bytes charged per object scanned (full photometric row).
  uint64_t bytes_per_object = catalog::kPaperBytesPerPhotoObj;
};

/// A scan outcome: real counts plus modeled (simulated) elapsed time.
struct ScanReport {
  uint64_t objects_scanned = 0;
  uint64_t bytes_scanned = 0;     ///< Paper-scale bytes.
  SimSeconds sim_seconds = 0.0;   ///< max over nodes of node I/O time.
  double aggregate_mbps = 0.0;    ///< bytes / sim time.
};

/// A catalog spread over simulated nodes.
class ClusterSim {
 public:
  explicit ClusterSim(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Spatially partitions `store` across the nodes: containers are dealt
  /// round-robin in trixel order, so every node holds a balanced sample
  /// of sky areas ("the base-data objects will be spatially partitioned
  /// among the servers").
  Status LoadPartitioned(const catalog::ObjectStore& store);

  /// Objects resident on one node.
  const std::vector<catalog::PhotoObj>& NodeObjects(size_t node) const {
    return nodes_[node];
  }
  uint64_t NodeBytes(size_t node) const {
    return nodes_[node].size() * config_.bytes_per_object;
  }
  uint64_t TotalObjects() const;
  uint64_t TotalBytes() const {
    return TotalObjects() * config_.bytes_per_object;
  }

  /// Time for one full synchronized pass: max over nodes of
  /// node_bytes / disk_mbps.
  SimSeconds FullScanSimSeconds() const;

  /// Runs `fn` over every object of every node, in parallel over nodes
  /// (real threads), and reports the modeled scan time. `fn` must be
  /// thread-safe; it receives (node_index, object).
  ScanReport ParallelScan(
      const std::function<void(size_t, const catalog::PhotoObj&)>& fn) const;

  /// Grows the cluster and rebalances containers round-robin over the new
  /// width ("As new servers are added, the data will repartition").
  /// Returns the fraction of objects that moved between nodes.
  double AddNodes(size_t additional);

 private:
  void Redistribute(size_t new_width,
                    std::vector<std::vector<catalog::PhotoObj>>* out) const;

  ClusterConfig config_;
  /// Container ids (trixel raw) in order; parallel to container->node map.
  std::vector<uint64_t> container_order_;
  std::vector<std::vector<catalog::PhotoObj>> nodes_;
  std::vector<std::vector<std::pair<uint64_t, size_t>>> node_containers_;
  mutable ThreadPool pool_;
};

}  // namespace sdss::dataflow

#endif  // SDSS_DATAFLOW_CLUSTER_H_
