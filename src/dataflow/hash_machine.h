// The hash machine: parallel two-phase bucket comparison.
//
// "The hash phase scans the entire dataset, selects a subset of the
// objects based on some predicate, and 'hashes' each object to the
// appropriate buckets -- a single object may go to several buckets (to
// allow objects near the edges of a region to go to all the neighboring
// regions as well). In a second phase all the objects in a bucket are
// compared to one another. ... These operations are analogous to
// relational hash-join. ... The application of the hash-machine to tasks
// like finding gravitational lenses or clustering by spectral type or by
// redshift-distance vector should be obvious: each bucket represents a
// neighborhood in these high-dimensional spaces."
//
// Two bucket domains are provided: spatial buckets (HTM trixels, with
// edge-ghost replication so cross-boundary pairs are never missed) and a
// generic user key (color-space cells, redshift bins, ...). Pair output
// from the spatial machine is exact: property tests compare it to the
// brute-force O(N^2) result.
//
// The spatial bucket/ghost core lives in PairHasher (pair_hasher.h);
// this class is the ClusterSim-substrate wrapper that adds the parallel
// scan plumbing and the paper's timing model. The query executor's
// distributed kPairJoin operator drives the same PairHasher.

#ifndef SDSS_DATAFLOW_HASH_MACHINE_H_
#define SDSS_DATAFLOW_HASH_MACHINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "dataflow/cluster.h"
#include "dataflow/pair_hasher.h"

namespace sdss::dataflow {

/// Hash-machine timing/shape report.
struct HashReport {
  uint64_t selected = 0;          ///< Objects surviving the phase-1 filter.
  uint64_t ghosts = 0;            ///< Edge replicas created.
  uint64_t buckets = 0;           ///< Non-empty buckets.
  uint64_t max_bucket = 0;        ///< Largest bucket population.
  uint64_t pair_tests = 0;        ///< Phase-2 pairwise evaluations.
  uint64_t pairs_found = 0;
  SimSeconds phase1_sim_seconds = 0.0;  ///< Scan + hash (I/O bound).
  SimSeconds phase2_sim_seconds = 0.0;  ///< Bucket comparisons (CPU bound).
  SimSeconds total_sim_seconds = 0.0;
};

/// Options for the spatial pair search.
struct PairSearchOptions {
  /// HTM depth of the hash buckets. Deeper = smaller buckets = fewer
  /// pair tests but more ghosts; must satisfy bucket size >= max_sep.
  int bucket_level = 10;
  /// Modeled cost of one pairwise comparison (seconds of one CPU).
  double seconds_per_pair_test = 10e-9;
};

/// The parallel hash machine over a cluster.
class HashMachine {
 public:
  explicit HashMachine(const ClusterSim* cluster) : cluster_(cluster) {}

  /// Finds all pairs of distinct objects (a, b) with separation <=
  /// `max_sep_arcsec` where both pass `select` and the pair passes
  /// `pair_predicate`. Each unordered pair is reported exactly once.
  std::vector<ObjectPair> FindPairs(
      const std::function<bool(const catalog::PhotoObj&)>& select,
      double max_sep_arcsec,
      const std::function<bool(const catalog::PhotoObj&,
                               const catalog::PhotoObj&)>& pair_predicate,
      const PairSearchOptions& options, HashReport* report = nullptr);

  /// Generic bucket machine: phase 1 hashes selected objects by
  /// `bucket_key` (e.g. a color-space cell or redshift bin); phase 2
  /// invokes `process` once per bucket with all its members. Returns the
  /// report; bucket contents are processed in parallel.
  HashReport ProcessBuckets(
      const std::function<bool(const catalog::PhotoObj&)>& select,
      const std::function<int64_t(const catalog::PhotoObj&)>& bucket_key,
      const std::function<void(int64_t,
                               const std::vector<const catalog::PhotoObj*>&)>&
          process);

  /// Brute-force O(N^2) pair search over the whole cluster, for the
  /// benchmark baseline and the property tests.
  std::vector<ObjectPair> FindPairsBruteForce(
      const std::function<bool(const catalog::PhotoObj&)>& select,
      double max_sep_arcsec,
      const std::function<bool(const catalog::PhotoObj&,
                               const catalog::PhotoObj&)>& pair_predicate,
      uint64_t* pair_tests = nullptr);

 private:
  const ClusterSim* cluster_;
};

}  // namespace sdss::dataflow

#endif  // SDSS_DATAFLOW_HASH_MACHINE_H_
