#include "dataflow/hash_machine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "core/angle.h"
#include "htm/cover.h"
#include "htm/region.h"
#include "htm/trixel.h"

namespace sdss::dataflow {

using catalog::PhotoObj;

std::vector<ObjectPair> HashMachine::FindPairs(
    const std::function<bool(const PhotoObj&)>& select, double max_sep_arcsec,
    const std::function<bool(const PhotoObj&, const PhotoObj&)>&
        pair_predicate,
    const PairSearchOptions& options, HashReport* report) {
  HashReport rep;
  double max_sep_deg = ArcsecToDeg(max_sep_arcsec);
  double cos_sep = std::cos(ArcsecToRad(max_sep_arcsec));

  // Phase 1: shared scan; selected objects hash to their home trixel as
  // "primaries" and to every other trixel intersecting the max_sep cap
  // around them as "ghosts".
  struct Entry {
    const PhotoObj* obj;
    bool primary;
  };
  std::unordered_map<uint64_t, std::vector<Entry>> buckets;
  std::mutex mu;
  cluster_->ParallelScan([&](size_t, const PhotoObj& o) {
    if (!select(o)) return;
    uint64_t home = htm::LookupId(o.pos, options.bucket_level).raw();
    htm::CoverResult cover = htm::Cover(
        htm::Region::CircleAround(o.pos, max_sep_deg), options.bucket_level);
    std::lock_guard<std::mutex> lock(mu);
    ++rep.selected;
    buckets[home].push_back({&o, true});
    auto ghost_into = [&](htm::HtmId id) {
      uint64_t first, last;
      id.RangeAtLevel(options.bucket_level, &first, &last);
      for (uint64_t raw = first; raw < last; ++raw) {
        if (raw == home) continue;
        buckets[raw].push_back({&o, false});
        ++rep.ghosts;
      }
    };
    for (htm::HtmId id : cover.full) ghost_into(id);
    for (htm::HtmId id : cover.partial) ghost_into(id);
  });

  rep.buckets = buckets.size();
  for (const auto& [raw, entries] : buckets) {
    rep.max_bucket = std::max<uint64_t>(rep.max_bucket, entries.size());
  }

  // Phase 2: per-bucket pairwise comparison. A pair (a, b) is emitted in
  // the home bucket of the lower-id member only, so each unordered pair
  // appears exactly once.
  std::vector<const std::vector<Entry>*> bucket_list;
  bucket_list.reserve(buckets.size());
  for (const auto& [raw, entries] : buckets) bucket_list.push_back(&entries);

  std::vector<ObjectPair> pairs;
  std::mutex pairs_mu;
  ThreadPool pool(std::min<size_t>(cluster_->num_nodes(), 16));
  std::atomic<uint64_t> tests{0};
  pool.ParallelFor(bucket_list.size(), [&](size_t bi) {
    const std::vector<Entry>& entries = *bucket_list[bi];
    std::vector<ObjectPair> local;
    for (size_t x = 0; x < entries.size(); ++x) {
      if (!entries[x].primary) continue;
      const PhotoObj* a = entries[x].obj;
      for (size_t y = 0; y < entries.size(); ++y) {
        if (x == y) continue;
        const PhotoObj* b = entries[y].obj;
        if (a->obj_id >= b->obj_id) continue;  // Lower-id member emits.
        // Emit in a's home bucket only: a must be primary here (checked),
        // and to avoid double emission when both are primary in this
        // bucket it is still unique because a pair shares at most one
        // bucket where the lower id is primary... both primaries in the
        // same bucket is fine: the pair is seen once (x ranges over a).
        tests.fetch_add(1, std::memory_order_relaxed);
        if (a->pos.Dot(b->pos) < cos_sep) continue;
        if (!pair_predicate(*a, *b)) continue;
        ObjectPair p;
        p.obj_id_a = a->obj_id;
        p.obj_id_b = b->obj_id;
        p.separation_arcsec = RadToArcsec(a->pos.AngleTo(b->pos));
        local.push_back(p);
      }
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(pairs_mu);
      pairs.insert(pairs.end(), local.begin(), local.end());
    }
  });

  rep.pair_tests = tests.load();
  rep.pairs_found = pairs.size();

  // Timing model: phase 1 is a full I/O-bound scan; phase 2 is CPU bound,
  // parallel over nodes * cpus.
  rep.phase1_sim_seconds = cluster_->FullScanSimSeconds();
  double total_cpus = static_cast<double>(cluster_->num_nodes()) *
                      static_cast<double>(cluster_->config().node.cpus);
  rep.phase2_sim_seconds = static_cast<double>(rep.pair_tests) *
                           options.seconds_per_pair_test / total_cpus;
  rep.total_sim_seconds = rep.phase1_sim_seconds + rep.phase2_sim_seconds;
  if (report != nullptr) *report = rep;

  // Deterministic output order for tests.
  std::sort(pairs.begin(), pairs.end(),
            [](const ObjectPair& a, const ObjectPair& b) {
              if (a.obj_id_a != b.obj_id_a) return a.obj_id_a < b.obj_id_a;
              return a.obj_id_b < b.obj_id_b;
            });
  return pairs;
}

HashReport HashMachine::ProcessBuckets(
    const std::function<bool(const PhotoObj&)>& select,
    const std::function<int64_t(const PhotoObj&)>& bucket_key,
    const std::function<void(int64_t,
                             const std::vector<const PhotoObj*>&)>& process) {
  HashReport rep;
  std::unordered_map<int64_t, std::vector<const PhotoObj*>> buckets;
  std::mutex mu;
  cluster_->ParallelScan([&](size_t, const PhotoObj& o) {
    if (!select(o)) return;
    int64_t key = bucket_key(o);
    std::lock_guard<std::mutex> lock(mu);
    ++rep.selected;
    buckets[key].push_back(&o);
  });
  rep.buckets = buckets.size();

  std::vector<std::pair<int64_t, const std::vector<const PhotoObj*>*>> list;
  list.reserve(buckets.size());
  for (const auto& [key, members] : buckets) {
    rep.max_bucket = std::max<uint64_t>(rep.max_bucket, members.size());
    list.emplace_back(key, &members);
  }
  ThreadPool pool(std::min<size_t>(cluster_->num_nodes(), 16));
  pool.ParallelFor(list.size(), [&](size_t i) {
    process(list[i].first, *list[i].second);
  });

  rep.phase1_sim_seconds = cluster_->FullScanSimSeconds();
  rep.total_sim_seconds = rep.phase1_sim_seconds;
  return rep;
}

std::vector<ObjectPair> HashMachine::FindPairsBruteForce(
    const std::function<bool(const PhotoObj&)>& select, double max_sep_arcsec,
    const std::function<bool(const PhotoObj&, const PhotoObj&)>&
        pair_predicate,
    uint64_t* pair_tests) {
  std::vector<const PhotoObj*> selected;
  std::mutex mu;
  cluster_->ParallelScan([&](size_t, const PhotoObj& o) {
    if (!select(o)) return;
    std::lock_guard<std::mutex> lock(mu);
    selected.push_back(&o);
  });

  double cos_sep = std::cos(ArcsecToRad(max_sep_arcsec));
  uint64_t tests = 0;
  std::vector<ObjectPair> pairs;
  for (size_t i = 0; i < selected.size(); ++i) {
    for (size_t j = i + 1; j < selected.size(); ++j) {
      const PhotoObj* a = selected[i];
      const PhotoObj* b = selected[j];
      ++tests;
      if (a->pos.Dot(b->pos) < cos_sep) continue;
      if (a->obj_id == b->obj_id) continue;
      const PhotoObj* lo = a->obj_id < b->obj_id ? a : b;
      const PhotoObj* hi = a->obj_id < b->obj_id ? b : a;
      if (!pair_predicate(*lo, *hi)) continue;
      ObjectPair p;
      p.obj_id_a = lo->obj_id;
      p.obj_id_b = hi->obj_id;
      p.separation_arcsec = RadToArcsec(a->pos.AngleTo(b->pos));
      pairs.push_back(p);
    }
  }
  if (pair_tests != nullptr) *pair_tests = tests;
  std::sort(pairs.begin(), pairs.end(),
            [](const ObjectPair& a, const ObjectPair& b) {
              if (a.obj_id_a != b.obj_id_a) return a.obj_id_a < b.obj_id_a;
              return a.obj_id_b < b.obj_id_b;
            });
  return pairs;
}

}  // namespace sdss::dataflow
