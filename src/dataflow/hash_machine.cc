#include "dataflow/hash_machine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "core/angle.h"

namespace sdss::dataflow {

using catalog::PhotoObj;

std::vector<ObjectPair> HashMachine::FindPairs(
    const std::function<bool(const PhotoObj&)>& select, double max_sep_arcsec,
    const std::function<bool(const PhotoObj&, const PhotoObj&)>&
        pair_predicate,
    const PairSearchOptions& options, HashReport* report) {
  HashReport rep;

  // Phase 1: shared scan; selected objects hash into the PairHasher core
  // (home-trixel primaries plus edge ghosts). The spatial cover runs
  // outside the lock; only the bucket insert serializes.
  PairHasher hasher(max_sep_arcsec, options.bucket_level);
  std::mutex mu;
  cluster_->ParallelScan([&](size_t, const PhotoObj& o) {
    if (!select(o)) return;
    PairHasher::BucketSet buckets = hasher.ComputeBuckets(o);
    std::lock_guard<std::mutex> lock(mu);
    hasher.AddComputed(&o, buckets);
  });

  rep.selected = hasher.local_objects();
  rep.ghosts = hasher.ghost_entries();
  rep.buckets = hasher.bucket_count();
  rep.max_bucket = hasher.max_bucket();

  // Phase 2: per-bucket pairwise comparison, parallel over buckets. The
  // hasher's emission rule yields each unordered pair exactly once.
  std::vector<const PairHasher::Bucket*> bucket_list = hasher.BucketList();
  std::vector<ObjectPair> pairs;
  std::mutex pairs_mu;
  ThreadPool pool(std::min<size_t>(cluster_->num_nodes(), 16));
  std::atomic<uint64_t> tests{0};
  pool.ParallelFor(bucket_list.size(), [&](size_t bi) {
    std::vector<ObjectPair> local;
    uint64_t bucket_tests = hasher.ForEachCandidatePair(
        *bucket_list[bi],
        [&](const PhotoObj& a, const PhotoObj& b, double sep_arcsec) {
          if (pair_predicate(a, b)) {
            local.push_back({a.obj_id, b.obj_id, sep_arcsec});
          }
          return true;
        });
    tests.fetch_add(bucket_tests, std::memory_order_relaxed);
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(pairs_mu);
      pairs.insert(pairs.end(), local.begin(), local.end());
    }
  });

  rep.pair_tests = tests.load();
  rep.pairs_found = pairs.size();

  // Timing model: phase 1 is a full I/O-bound scan; phase 2 is CPU bound,
  // parallel over nodes * cpus.
  rep.phase1_sim_seconds = cluster_->FullScanSimSeconds();
  double total_cpus = static_cast<double>(cluster_->num_nodes()) *
                      static_cast<double>(cluster_->config().node.cpus);
  rep.phase2_sim_seconds = static_cast<double>(rep.pair_tests) *
                           options.seconds_per_pair_test / total_cpus;
  rep.total_sim_seconds = rep.phase1_sim_seconds + rep.phase2_sim_seconds;
  if (report != nullptr) *report = rep;

  // Deterministic output order for tests.
  PairHasher::SortPairs(&pairs);
  return pairs;
}

HashReport HashMachine::ProcessBuckets(
    const std::function<bool(const PhotoObj&)>& select,
    const std::function<int64_t(const PhotoObj&)>& bucket_key,
    const std::function<void(int64_t,
                             const std::vector<const PhotoObj*>&)>& process) {
  HashReport rep;
  std::unordered_map<int64_t, std::vector<const PhotoObj*>> buckets;
  std::mutex mu;
  cluster_->ParallelScan([&](size_t, const PhotoObj& o) {
    if (!select(o)) return;
    int64_t key = bucket_key(o);
    std::lock_guard<std::mutex> lock(mu);
    ++rep.selected;
    buckets[key].push_back(&o);
  });
  rep.buckets = buckets.size();

  std::vector<std::pair<int64_t, const std::vector<const PhotoObj*>*>> list;
  list.reserve(buckets.size());
  for (const auto& [key, members] : buckets) {
    rep.max_bucket = std::max<uint64_t>(rep.max_bucket, members.size());
    list.emplace_back(key, &members);
  }
  ThreadPool pool(std::min<size_t>(cluster_->num_nodes(), 16));
  pool.ParallelFor(list.size(), [&](size_t i) {
    process(list[i].first, *list[i].second);
  });

  rep.phase1_sim_seconds = cluster_->FullScanSimSeconds();
  rep.total_sim_seconds = rep.phase1_sim_seconds;
  return rep;
}

std::vector<ObjectPair> HashMachine::FindPairsBruteForce(
    const std::function<bool(const PhotoObj&)>& select, double max_sep_arcsec,
    const std::function<bool(const PhotoObj&, const PhotoObj&)>&
        pair_predicate,
    uint64_t* pair_tests) {
  std::vector<const PhotoObj*> selected;
  std::mutex mu;
  cluster_->ParallelScan([&](size_t, const PhotoObj& o) {
    if (!select(o)) return;
    std::lock_guard<std::mutex> lock(mu);
    selected.push_back(&o);
  });

  double cos_sep = std::cos(ArcsecToRad(max_sep_arcsec));
  uint64_t tests = 0;
  std::vector<ObjectPair> pairs;
  for (size_t i = 0; i < selected.size(); ++i) {
    for (size_t j = i + 1; j < selected.size(); ++j) {
      const PhotoObj* a = selected[i];
      const PhotoObj* b = selected[j];
      ++tests;
      if (a->pos.Dot(b->pos) < cos_sep) continue;
      if (a->obj_id == b->obj_id) continue;
      const PhotoObj* lo = a->obj_id < b->obj_id ? a : b;
      const PhotoObj* hi = a->obj_id < b->obj_id ? b : a;
      if (!pair_predicate(*lo, *hi)) continue;
      ObjectPair p;
      p.obj_id_a = lo->obj_id;
      p.obj_id_b = hi->obj_id;
      p.separation_arcsec = RadToArcsec(a->pos.AngleTo(b->pos));
      pairs.push_back(p);
    }
  }
  if (pair_tests != nullptr) *pair_tests = tests;
  PairHasher::SortPairs(&pairs);
  return pairs;
}

}  // namespace sdss::dataflow
