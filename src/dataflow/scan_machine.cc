#include "dataflow/scan_machine.h"

#include <algorithm>
#include <atomic>

namespace sdss::dataflow {

uint64_t ScanMachine::Admit(
    std::function<bool(const catalog::PhotoObj&)> predicate, SimSeconds now) {
  ScanQuery q;
  q.id = next_id_++;
  q.predicate = std::move(predicate);
  q.admitted_at = now;
  uint64_t id = q.id;
  pending_.push_back(std::move(q));
  return id;
}

std::vector<ScanCompletion> ScanMachine::RunUntilDrained() {
  std::vector<ScanCompletion> out;
  if (pending_.empty()) return out;

  // Evaluate every query's predicate over the full dataset in shared
  // passes. Queries admitted within the same cycle window share a pass.
  std::sort(pending_.begin(), pending_.end(),
            [](const ScanQuery& a, const ScanQuery& b) {
              return a.admitted_at < b.admitted_at;
            });
  SimSeconds cycle = CycleSimSeconds();

  size_t i = 0;
  while (i < pending_.size()) {
    // One shared pass serves every query admitted before this pass's
    // sweep completes its wrap for them; group queries whose admission
    // times fall within one cycle window of the group leader.
    SimSeconds window_start = pending_[i].admitted_at;
    size_t j = i;
    while (j < pending_.size() &&
           pending_[j].admitted_at < window_start + cycle) {
      ++j;
    }

    // Real shared evaluation: one pass over the data for the group.
    std::vector<std::atomic<uint64_t>> matches(j - i);
    cluster_->ParallelScan([&](size_t, const catalog::PhotoObj& o) {
      for (size_t k = i; k < j; ++k) {
        if (pending_[k].predicate(o)) {
          matches[k - i].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    ++cycles_run_;

    for (size_t k = i; k < j; ++k) {
      ScanCompletion c;
      c.query_id = pending_[k].id;
      c.admitted_at = pending_[k].admitted_at;
      // The sweep is continuous: a query admitted at time t completes
      // after exactly one full rotation.
      c.completed_at = pending_[k].admitted_at + cycle;
      c.matches = matches[k - i].load();
      out.push_back(c);
    }
    i = j;
  }
  pending_.clear();
  return out;
}

}  // namespace sdss::dataflow
