#include "dataflow/river.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <queue>

#include "dataflow/pair_hasher.h"

namespace sdss::dataflow {

River::River(const ClusterSim* cluster) : cluster_(cluster) {}

River& River::Filter(FilterFn fn) {
  Stage s;
  s.kind = Stage::Kind::kFilter;
  s.filter = std::move(fn);
  stages_.push_back(std::move(s));
  return *this;
}

River& River::Map(MapFn fn) {
  Stage s;
  s.kind = Stage::Kind::kMap;
  s.map = std::move(fn);
  stages_.push_back(std::move(s));
  return *this;
}

River& River::Repartition(PartitionFn fn, size_t partitions) {
  Stage s;
  s.kind = Stage::Kind::kRepartition;
  s.partition = std::move(fn);
  s.partitions = std::max<size_t>(1, partitions);
  stages_.push_back(std::move(s));
  return *this;
}

River& River::SpatialShuffle(int bucket_level, size_t partitions) {
  return Repartition(
      [bucket_level](const Record& r) {
        return static_cast<size_t>(PairHasher::HomeBucket(r.pos,
                                                          bucket_level));
      },
      partitions);
}

River& River::SortBy(KeyFn key) {
  Stage s;
  s.kind = Stage::Kind::kSort;
  s.key = std::move(key);
  stages_.push_back(std::move(s));
  return *this;
}

RiverStats River::Run(const std::function<void(const Record&)>& sink) {
  RiverStats stats;
  auto t0 = std::chrono::steady_clock::now();

  // Source: one partition per cluster node.
  std::vector<std::vector<Record>> parts(cluster_->num_nodes());
  for (size_t n = 0; n < cluster_->num_nodes(); ++n) {
    parts[n] = cluster_->NodeObjects(n);
    stats.records_in += parts[n].size();
  }

  ThreadPool pool(std::min<size_t>(cluster_->num_nodes(), 16));
  bool sorted_output = false;
  KeyFn final_key;

  for (const Stage& stage : stages_) {
    switch (stage.kind) {
      case Stage::Kind::kFilter: {
        sorted_output = false;
        pool.ParallelFor(parts.size(), [&](size_t p) {
          std::vector<Record> kept;
          kept.reserve(parts[p].size());
          for (Record& r : parts[p]) {
            if (stage.filter(r)) kept.push_back(std::move(r));
          }
          parts[p] = std::move(kept);
        });
        break;
      }
      case Stage::Kind::kMap: {
        pool.ParallelFor(parts.size(), [&](size_t p) {
          for (Record& r : parts[p]) r = stage.map(r);
        });
        break;
      }
      case Stage::Kind::kRepartition: {
        sorted_output = false;
        std::vector<std::vector<Record>> next(stage.partitions);
        std::vector<std::mutex> locks(stage.partitions);
        pool.ParallelFor(parts.size(), [&](size_t p) {
          // Local staging per output partition, then one locked append,
          // mirroring the network exchange of a real river.
          std::vector<std::vector<Record>> staged(stage.partitions);
          for (Record& r : parts[p]) {
            size_t dest = stage.partition(r) % stage.partitions;
            staged[dest].push_back(std::move(r));
          }
          for (size_t d = 0; d < stage.partitions; ++d) {
            if (staged[d].empty()) continue;
            std::lock_guard<std::mutex> lock(locks[d]);
            next[d].insert(next[d].end(),
                           std::make_move_iterator(staged[d].begin()),
                           std::make_move_iterator(staged[d].end()));
          }
        });
        parts = std::move(next);
        break;
      }
      case Stage::Kind::kSort: {
        pool.ParallelFor(parts.size(), [&](size_t p) {
          std::sort(parts[p].begin(), parts[p].end(),
                    [&](const Record& a, const Record& b) {
                      double ka = stage.key(a), kb = stage.key(b);
                      if (ka != kb) return ka < kb;
                      return a.obj_id < b.obj_id;
                    });
        });
        sorted_output = true;
        final_key = stage.key;
        break;
      }
    }
  }

  // Sink: ordered k-way merge after a sort, plain concatenation otherwise.
  if (sorted_output) {
    struct HeapItem {
      double key;
      uint64_t obj_id;
      size_t part;
      size_t index;
    };
    auto cmp = [](const HeapItem& a, const HeapItem& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.obj_id > b.obj_id;
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(cmp)> heap(
        cmp);
    for (size_t p = 0; p < parts.size(); ++p) {
      if (!parts[p].empty()) {
        heap.push({final_key(parts[p][0]), parts[p][0].obj_id, p, 0});
      }
    }
    while (!heap.empty()) {
      HeapItem top = heap.top();
      heap.pop();
      sink(parts[top.part][top.index]);
      ++stats.records_out;
      size_t next = top.index + 1;
      if (next < parts[top.part].size()) {
        const Record& r = parts[top.part][next];
        heap.push({final_key(r), r.obj_id, top.part, next});
      }
    }
  } else {
    for (const auto& p : parts) {
      for (const Record& r : p) {
        sink(r);
        ++stats.records_out;
      }
    }
  }

  stats.real_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Modeled time: the source read is the bottleneck (disk-bound river).
  stats.sim_seconds = cluster_->FullScanSimSeconds();
  uint64_t bytes = stats.records_in * cluster_->config().bytes_per_object;
  stats.sim_mbps = stats.sim_seconds > 0
                       ? static_cast<double>(bytes) / 1e6 / stats.sim_seconds
                       : 0.0;
  return stats;
}

}  // namespace sdss::dataflow
