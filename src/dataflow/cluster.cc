#include "dataflow/cluster.h"

#include <algorithm>
#include <atomic>

namespace sdss::dataflow {

ClusterSim::ClusterSim(ClusterConfig config)
    : config_(config),
      pool_(std::min<size_t>(std::max<size_t>(config.num_nodes, 1), 16)) {
  if (config_.num_nodes == 0) config_.num_nodes = 1;
  nodes_.resize(config_.num_nodes);
  node_containers_.resize(config_.num_nodes);
}

Status ClusterSim::LoadPartitioned(const catalog::ObjectStore& store) {
  for (auto& n : nodes_) n.clear();
  for (auto& n : node_containers_) n.clear();
  container_order_.clear();

  size_t idx = 0;
  for (const auto& [raw, container] : store.containers()) {
    size_t node = idx % nodes_.size();
    container_order_.push_back(raw);
    node_containers_[node].emplace_back(raw, container.size());
    const auto& rows = container.rows();
    nodes_[node].insert(nodes_[node].end(), rows.begin(), rows.end());
    ++idx;
  }
  return Status::OK();
}

uint64_t ClusterSim::TotalObjects() const {
  uint64_t n = 0;
  for (const auto& node : nodes_) n += node.size();
  return n;
}

SimSeconds ClusterSim::FullScanSimSeconds() const {
  SimSeconds worst = 0.0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    double t = static_cast<double>(NodeBytes(i)) /
               (config_.node.disk_mbps * 1e6);
    worst = std::max(worst, t);
  }
  return worst;
}

ScanReport ClusterSim::ParallelScan(
    const std::function<void(size_t, const catalog::PhotoObj&)>& fn) const {
  ScanReport report;
  std::atomic<uint64_t> objects{0};
  pool_.ParallelFor(nodes_.size(), [&](size_t node) {
    for (const catalog::PhotoObj& o : nodes_[node]) fn(node, o);
    objects.fetch_add(nodes_[node].size());
  });
  report.objects_scanned = objects.load();
  report.bytes_scanned = report.objects_scanned * config_.bytes_per_object;
  report.sim_seconds = FullScanSimSeconds();
  report.aggregate_mbps =
      report.sim_seconds > 0.0
          ? static_cast<double>(report.bytes_scanned) / 1e6 /
                report.sim_seconds
          : 0.0;
  return report;
}

double ClusterSim::AddNodes(size_t additional) {
  size_t old_width = nodes_.size();
  size_t new_width = old_width + additional;
  if (additional == 0) return 0.0;

  // Rebuild the container -> node assignment at the new width and count
  // how many objects change nodes.
  std::vector<std::vector<catalog::PhotoObj>> new_nodes(new_width);
  std::vector<std::vector<std::pair<uint64_t, size_t>>> new_map(new_width);

  // Flatten current data back into container order.
  std::map<uint64_t, std::vector<catalog::PhotoObj>> containers;
  for (size_t node = 0; node < old_width; ++node) {
    size_t offset = 0;
    for (const auto& [raw, count] : node_containers_[node]) {
      auto& vec = containers[raw];
      vec.insert(vec.end(),
                 nodes_[node].begin() + static_cast<ptrdiff_t>(offset),
                 nodes_[node].begin() + static_cast<ptrdiff_t>(offset +
                                                               count));
      offset += count;
    }
  }

  uint64_t moved = 0, total = 0;
  size_t idx = 0;
  for (uint64_t raw : container_order_) {
    size_t old_node = idx % old_width;
    size_t new_node = idx % new_width;
    auto& vec = containers[raw];
    total += vec.size();
    if (new_node != old_node) moved += vec.size();
    new_map[new_node].emplace_back(raw, vec.size());
    new_nodes[new_node].insert(new_nodes[new_node].end(), vec.begin(),
                               vec.end());
    ++idx;
  }

  nodes_ = std::move(new_nodes);
  node_containers_ = std::move(new_map);
  config_.num_nodes = new_width;
  return total == 0 ? 0.0
                    : static_cast<double>(moved) / static_cast<double>(total);
}

}  // namespace sdss::dataflow
