// Deterministic random number generation for reproducible synthetic skies,
// sampling, and simulation. All randomness in the library flows through
// Rng so a fixed seed reproduces every experiment bit-for-bit.

#ifndef SDSS_CORE_RANDOM_H_
#define SDSS_CORE_RANDOM_H_

#include <cstdint>
#include <random>

#include "core/vec3.h"

namespace sdss {

/// A seeded pseudo-random generator with the distributions the archive
/// needs. Not thread-safe; use one Rng per thread (see Fork()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal deviate times `sigma`, shifted by `mean`.
  double Gaussian(double mean = 0.0, double sigma = 1.0) {
    std::normal_distribution<double> d(mean, sigma);
    return d(engine_);
  }

  /// Exponential deviate with the given rate parameter.
  double Exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  /// Poisson deviate with the given mean.
  int64_t Poisson(double mean) {
    std::poisson_distribution<int64_t> d(mean);
    return d(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// A uniformly distributed point on the unit sphere.
  Vec3 UnitSphere() {
    double z = Uniform(-1.0, 1.0);
    double phi = Uniform(0.0, 2.0 * 3.14159265358979323846);
    double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
  }

  /// A uniformly distributed point within angular radius `radius_rad` of
  /// unit direction `center` (uniform over the spherical cap area).
  Vec3 UnitCap(const Vec3& center, double radius_rad);

  /// Derives an independent child generator; deterministic given the parent
  /// state. Used to hand one stream to each worker thread.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  /// Raw 64-bit draw (for hashing/shuffling).
  uint64_t Next64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace sdss

#endif  // SDSS_CORE_RANDOM_H_
