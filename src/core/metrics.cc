#include "core/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sdss::metrics {

namespace {

size_t BucketIndex(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));  // bit_width(0) == 0.
}

}  // namespace

uint64_t HistogramBucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Bucket counts are monotonic; reading them while writers record
  // yields a value at least as old as `count` read afterwards, so the
  // snapshot is a consistent-enough point in time for quantiles.
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) snap.buckets.emplace_back(static_cast<uint8_t>(i), c);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::min(count, std::max<uint64_t>(1, rank));
  uint64_t seen = 0;
  for (const auto& [index, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen >= rank) return HistogramBucketUpperBound(index);
  }
  // Sparse buckets summed short of `count`: a racing snapshot; report
  // the largest populated bucket.
  return buckets.empty() ? 0 : HistogramBucketUpperBound(buckets.back().first);
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    counters_.emplace_back();
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter = &counters_.back();
    it = by_name_.emplace(std::string(name), entry).first;
  }
  if (it->second.kind != Kind::kCounter) {
    // Kind clash: hand out a detached instrument instead of aliasing
    // the registered one (the snapshot keeps the first registration).
    counters_.emplace_back();
    return &counters_.back();
  }
  return it->second.counter;
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    gauges_.emplace_back();
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge = &gauges_.back();
    it = by_name_.emplace(std::string(name), entry).first;
  }
  if (it->second.kind != Kind::kGauge) {
    gauges_.emplace_back();
    return &gauges_.back();
  }
  return it->second.gauge;
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    histograms_.emplace_back();
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram = &histograms_.back();
    it = by_name_.emplace(std::string(name), entry).first;
  }
  if (it->second.kind != Kind::kHistogram) {
    histograms_.emplace_back();
    return &histograms_.back();
  }
  return it->second.histogram;
}

std::vector<InstrumentSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InstrumentSnapshot> out;
  out.reserve(by_name_.size());
  for (const auto& [name, entry] : by_name_) {
    InstrumentSnapshot snap;
    snap.name = name;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counter = entry.counter->Value();
        break;
      case Kind::kGauge:
        snap.gauge = entry.gauge->Value();
        break;
      case Kind::kHistogram:
        snap.hist = entry.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string PrometheusMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (alpha || (digit && i > 0)) {
      out.push_back(c);
    } else if (digit) {
      out.push_back('_');  // Leading digit: "2fast" -> "_2fast".
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string Registry::TextExposition() const {
  std::vector<InstrumentSnapshot> snaps = Snapshot();
  std::string out;
  // Two registry names may sanitize to the same exposition name; the
  // page then carries duplicate series, which strict parsers reject.
  // Registry names follow the convention already, so this stays a
  // theoretical wrinkle rather than a dedup pass.
  for (const InstrumentSnapshot& s : snaps) {
    const std::string name = PrometheusMetricName(s.name);
    switch (s.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(s.counter) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(s.gauge) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (const auto& [index, count] : s.hist.buckets) {
          cumulative += count;
          out += name + "_bucket{le=\"" +
                 std::to_string(HistogramBucketUpperBound(index)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(s.hist.count) +
               "\n";
        out += name + "_sum " + std::to_string(s.hist.sum) + "\n";
        out += name + "_count " + std::to_string(s.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace sdss::metrics
