#include "core/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace sdss::metrics {

namespace {

size_t BucketIndex(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));  // bit_width(0) == 0.
}

}  // namespace

uint64_t HistogramBucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Bucket counts are monotonic; reading them while writers record
  // yields a value at least as old as `count` read afterwards, so the
  // snapshot is a consistent-enough point in time for quantiles.
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) snap.buckets.emplace_back(static_cast<uint8_t>(i), c);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::min(count, std::max<uint64_t>(1, rank));
  uint64_t seen = 0;
  for (const auto& [index, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen >= rank) return HistogramBucketUpperBound(index);
  }
  // Sparse buckets summed short of `count`: a racing snapshot; report
  // the largest populated bucket.
  return buckets.empty() ? 0 : HistogramBucketUpperBound(buckets.back().first);
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    counters_.emplace_back();
    Entry entry;
    entry.kind = Kind::kCounter;
    entry.counter = &counters_.back();
    it = by_name_.emplace(std::string(name), entry).first;
  }
  if (it->second.kind != Kind::kCounter) {
    // Kind clash: hand out a detached instrument instead of aliasing
    // the registered one (the snapshot keeps the first registration).
    counters_.emplace_back();
    return &counters_.back();
  }
  return it->second.counter;
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    gauges_.emplace_back();
    Entry entry;
    entry.kind = Kind::kGauge;
    entry.gauge = &gauges_.back();
    it = by_name_.emplace(std::string(name), entry).first;
  }
  if (it->second.kind != Kind::kGauge) {
    gauges_.emplace_back();
    return &gauges_.back();
  }
  return it->second.gauge;
}

Histogram* Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    histograms_.emplace_back();
    Entry entry;
    entry.kind = Kind::kHistogram;
    entry.histogram = &histograms_.back();
    it = by_name_.emplace(std::string(name), entry).first;
  }
  if (it->second.kind != Kind::kHistogram) {
    histograms_.emplace_back();
    return &histograms_.back();
  }
  return it->second.histogram;
}

std::vector<InstrumentSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InstrumentSnapshot> out;
  out.reserve(by_name_.size());
  for (const auto& [name, entry] : by_name_) {
    InstrumentSnapshot snap;
    snap.name = name;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counter = entry.counter->Value();
        break;
      case Kind::kGauge:
        snap.gauge = entry.gauge->Value();
        break;
      case Kind::kHistogram:
        snap.hist = entry.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string Registry::TextExposition() const {
  std::vector<InstrumentSnapshot> snaps = Snapshot();
  std::string out;
  char buf[160];
  for (const InstrumentSnapshot& s : snaps) {
    switch (s.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %" PRIu64 "\n",
                      s.name.c_str(), s.name.c_str(), s.counter);
        out += buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %" PRId64 "\n",
                      s.name.c_str(), s.name.c_str(), s.gauge);
        out += buf;
        break;
      case Kind::kHistogram: {
        std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n",
                      s.name.c_str());
        out += buf;
        uint64_t cumulative = 0;
        for (const auto& [index, count] : s.hist.buckets) {
          cumulative += count;
          std::snprintf(buf, sizeof(buf),
                        "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        s.name.c_str(), HistogramBucketUpperBound(index),
                        cumulative);
          out += buf;
        }
        std::snprintf(buf, sizeof(buf),
                      "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n%s_sum %" PRIu64
                      "\n%s_count %" PRIu64 "\n",
                      s.name.c_str(), s.hist.count, s.name.c_str(),
                      s.hist.sum, s.name.c_str(), s.hist.count);
        out += buf;
        break;
      }
    }
  }
  return out;
}

Registry& DefaultRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace sdss::metrics
