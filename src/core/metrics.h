// Process-wide, low-overhead metrics: atomic counters, gauges, and
// fixed log2-bucket latency histograms with quantile extraction.
//
// The registry is the observability substrate the rest of the archive
// reports into: the query server's ServerStats, the federated engine's
// result-cache verdicts, the workbench's lane depths and queue-wait,
// and the journal's append/fsync latency all live here (ISSUE 9). Two
// read surfaces: a struct snapshot (`Registry::Snapshot`, also what the
// STATS wire frame ships) and a Prometheus-style text exposition.
//
// Hot-path cost: recording touches one (counter/gauge) or three
// (histogram) relaxed atomics through a pointer obtained once at setup
// -- no locks, no allocation, no name lookup. The registry mutex guards
// only registration and snapshotting.

#ifndef SDSS_CORE_METRICS_H_
#define SDSS_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdss::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A value that goes up and down (queue depths, live sessions).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed log2 bucket layout shared by live histograms and their
/// snapshots: bucket 0 counts zero values; bucket i (i >= 1) counts
/// values v with 2^(i-1) <= v < 2^i, i.e. i == std::bit_width(v).
/// 65 buckets cover the whole uint64_t range.
inline constexpr size_t kHistogramBuckets = 65;

/// Inclusive upper bound of bucket `i` (0 for bucket 0, 2^i - 1 else),
/// the representative value quantile extraction reports.
uint64_t HistogramBucketUpperBound(size_t i);

/// Point-in-time copy of one histogram, sparse (zero buckets omitted).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// (bucket index, bucket count), ascending index, counts > 0 only.
  std::vector<std::pair<uint8_t, uint64_t>> buckets;

  /// The inclusive upper bound of the bucket holding the q-quantile
  /// observation (0 <= q <= 1; rank = ceil(q * count) clamped to
  /// [1, count]). 0 when the histogram is empty. Bucket-resolution by
  /// construction: the true observation is within 2x of the answer.
  uint64_t Quantile(double q) const;
  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }
};

/// Latency/size distribution over fixed log2 buckets. Record() is three
/// relaxed atomic adds; quantiles come from snapshots.
class Histogram {
 public:
  void Record(uint64_t v);
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kHistogramBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class Kind : uint8_t {
  kCounter = 1,
  kGauge = 2,
  kHistogram = 3,
};

/// One instrument's point-in-time value, the unit of both the struct
/// snapshot API and the STATS wire frame.
struct InstrumentSnapshot {
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;  ///< kCounter.
  int64_t gauge = 0;     ///< kGauge.
  HistogramSnapshot hist;  ///< kHistogram.
};

/// Named instruments with stable addresses. Get* registers on first
/// use and returns the existing instrument afterwards, so independent
/// components wire themselves to a shared registry without
/// coordination; a name keeps its first kind (a Get* under a different
/// kind returns a detached dummy instrument rather than aliasing).
///
/// Thread-safety: all methods may be called concurrently; returned
/// instrument pointers stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Names should follow Prometheus convention ([a-z0-9_], e.g.
  /// "server_sessions_accepted", "persist_journal_fsync_us").
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Every instrument, sorted by name.
  std::vector<InstrumentSnapshot> Snapshot() const;

  /// Prometheus text exposition (text format 0.0.4): `# TYPE` comments,
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for
  /// histograms. Instrument names are passed through
  /// PrometheusMetricName, so a registry name that strays outside the
  /// Prometheus charset still yields a scrapeable page.
  std::string TextExposition() const;

 private:
  struct Entry {
    Kind kind = Kind::kCounter;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Entry, std::less<>> by_name_;
};

/// `name` coerced into the Prometheus metric-name charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid characters become '_', and a
/// leading digit gets a '_' prefix. The exposition format has no name
/// escaping, so sanitizing is the only way a stray name stays
/// parseable. Empty input yields "_".
std::string PrometheusMetricName(std::string_view name);

/// The process-wide default registry, for callers that do not wire an
/// explicit one. Components with per-instance semantics (one
/// QueryServer's ServerStats) default to a private registry instead.
Registry& DefaultRegistry();

}  // namespace sdss::metrics

#endif  // SDSS_CORE_METRICS_H_
