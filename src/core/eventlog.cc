#include "core/eventlog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/io.h"

namespace sdss {
namespace {

constexpr char kFilePrefix[] = "events-";
constexpr char kFileSuffix[] = ".jsonl";

std::string FileName(uint64_t file) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kFilePrefix,
                static_cast<unsigned long long>(file), kFileSuffix);
  return buf;
}

/// Parses "events-NNNNNN.jsonl" -> NNNNNN; 0 if the name does not match.
uint64_t FileNumber(const std::string& name) {
  const size_t prefix = sizeof(kFilePrefix) - 1;
  const size_t suffix = sizeof(kFileSuffix) - 1;
  if (name.size() <= prefix + suffix) return 0;
  if (name.compare(0, prefix, kFilePrefix) != 0) return 0;
  if (name.compare(name.size() - suffix, suffix, kFileSuffix) != 0) {
    return 0;
  }
  uint64_t n = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    n = n * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return n;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

uint64_t SystemNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo:
      return "INFO";
    case EventSeverity::kWarn:
      return "WARN";
    case EventSeverity::kError:
      return "ERROR";
  }
  return "?";
}

std::vector<std::string> ListEventLogFiles(const std::string& dir) {
  std::vector<std::string> files;
  auto entries = ListDir(dir);
  if (!entries.ok()) return files;
  for (const std::string& name : *entries) {
    if (FileNumber(name) > 0) files.push_back(name);
  }
  std::sort(files.begin(), files.end(),
            [](const std::string& a, const std::string& b) {
              return FileNumber(a) < FileNumber(b);
            });
  return files;
}

Result<std::unique_ptr<EventLog>> EventLog::Open(const std::string& dir,
                                                 Options options) {
  SDSS_RETURN_IF_ERROR(CreateDirs(dir));
  uint64_t max_file = 0;
  for (const std::string& name : ListEventLogFiles(dir)) {
    max_file = std::max(max_file, FileNumber(name));
  }
  // Like the journal: never append to an existing file (its tail may be
  // a torn line from a crash mid-write); start a fresh one.
  std::unique_ptr<EventLog> log(new EventLog(dir, options, max_file + 1));
  {
    std::lock_guard<std::mutex> lock(log->mu_);
    SDSS_RETURN_IF_ERROR(log->OpenFileLocked(max_file + 1));
  }
  return log;
}

EventLog::EventLog(std::string dir, Options options, uint64_t first_file)
    : dir_(std::move(dir)), options_(options), file_(first_file) {
  if (options_.metrics != nullptr) {
    m_emitted_ = options_.metrics->GetCounter("eventlog_events_emitted");
    m_write_errors_ =
        options_.metrics->GetCounter("eventlog_write_errors");
    m_rotations_ = options_.metrics->GetCounter("eventlog_rotations");
  }
}

EventLog::~EventLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status EventLog::OpenFileLocked(uint64_t file) {
  const std::string path = dir_ + "/" + FileName(file);
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  fd_ = fd;
  file_ = file;
  file_bytes_ = 0;
  return Status::OK();
}

void EventLog::RotateLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!OpenFileLocked(file_ + 1).ok()) {
    ++errors_;
    if (m_write_errors_ != nullptr) m_write_errors_->Inc();
    return;
  }
  if (m_rotations_ != nullptr) m_rotations_->Inc();
  // Prune oldest files beyond the retention count (the file just opened
  // is the newest).
  const size_t keep = std::max<size_t>(1, options_.max_files);
  std::vector<std::string> files = ListEventLogFiles(dir_);
  if (files.size() <= keep) return;
  const size_t excess = files.size() - keep;
  for (size_t i = 0; i < excess; ++i) {
    (void)RemoveFile(dir_ + "/" + files[i]);
  }
}

std::string EventLog::FormatLine(const Event& event, uint64_t ts_ms) {
  std::string line;
  line.reserve(128);
  line += "{\"ts_ms\":";
  line += std::to_string(ts_ms);
  line += ",\"severity\":\"";
  line += EventSeverityName(event.severity);
  line += "\",\"component\":";
  AppendJsonString(&line, event.component);
  line += ",\"event\":";
  AppendJsonString(&line, event.name);
  if (event.id != 0) {
    line += ",\"id\":";
    line += std::to_string(event.id);
  }
  for (const auto& [key, value] : event.fields) {
    line.push_back(',');
    AppendJsonString(&line, key);
    line.push_back(':');
    AppendJsonString(&line, value);
  }
  line.push_back('}');
  return line;
}

void EventLog::Emit(const Event& event) {
  const uint64_t ts_ms =
      options_.now_ms ? options_.now_ms() : SystemNowMs();
  std::string line = FormatLine(event, ts_ms);
  line.push_back('\n');

  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    // A previous rotation failed to open a file; try again so a
    // transient condition (ENOSPC that cleared) heals itself.
    if (!OpenFileLocked(file_).ok()) {
      ++errors_;
      if (m_write_errors_ != nullptr) m_write_errors_->Inc();
      return;
    }
  }
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ++errors_;
      if (m_write_errors_ != nullptr) m_write_errors_->Inc();
      return;
    }
    off += static_cast<size_t>(n);
  }
  file_bytes_ += line.size();
  ++events_;
  if (m_emitted_ != nullptr) m_emitted_->Inc();
  if (file_bytes_ > options_.rotate_bytes) RotateLocked();
}

void EventLog::Emit(
    EventSeverity severity, std::string_view component, std::string_view name,
    uint64_t id,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        fields) {
  Event event;
  event.severity = severity;
  event.component.assign(component);
  event.name.assign(name);
  event.id = id;
  event.fields.reserve(fields.size());
  for (const auto& [key, value] : fields) {
    event.fields.emplace_back(std::string(key), std::string(value));
  }
  Emit(event);
}

uint64_t EventLog::events_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t EventLog::write_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

uint64_t EventLog::current_file() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_;
}

}  // namespace sdss
