#include "core/sim_clock.h"

#include <cstdio>

namespace sdss {

std::string FormatSimDuration(SimSeconds s) {
  char buf[64];
  if (s < kSimMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s < kSimHour) {
    std::snprintf(buf, sizeof(buf), "%.2f min", s / kSimMinute);
  } else if (s < kSimDay) {
    std::snprintf(buf, sizeof(buf), "%.2f h", s / kSimHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f d", s / kSimDay);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  constexpr uint64_t kKb = 1000, kMb = kKb * 1000, kGb = kMb * 1000,
                     kTb = kGb * 1000;
  if (bytes < kKb) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < kMb) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / double(kKb));
  } else if (bytes < kGb) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / double(kMb));
  } else if (bytes < kTb) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / double(kGb));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f TB", bytes / double(kTb));
  }
  return buf;
}

}  // namespace sdss
