#include "core/proc_stats.h"

#include <cstdlib>
#include <string>

#include "core/io.h"

namespace sdss {

namespace {

/// "<key>:   <number> ..." value of one /proc/self/status line, or -1.
int64_t StatusLineValue(const std::string& status, const char* key) {
  size_t pos = status.find(key);
  if (pos == std::string::npos) return -1;
  pos += std::string(key).size();
  while (pos < status.size() && (status[pos] == ' ' || status[pos] == '\t')) {
    ++pos;
  }
  size_t end = pos;
  while (end < status.size() && status[end] >= '0' && status[end] <= '9') {
    ++end;
  }
  if (end == pos) return -1;
  return std::strtoll(status.substr(pos, end - pos).c_str(), nullptr, 10);
}

}  // namespace

Result<int64_t> ReadOpenFdCount() {
  auto entries = ListDir("/proc/self/fd");
  if (!entries.ok()) return entries.status();
  // The directory fd ListDir itself held is counted; that off-by-one is
  // constant and irrelevant at EMFILE scale.
  return static_cast<int64_t>(entries->size());
}

Result<int64_t> ReadThreadCount() {
  auto status = ReadFileToString("/proc/self/status");
  if (!status.ok()) return status.status();
  int64_t threads = StatusLineValue(*status, "Threads:");
  if (threads < 0) {
    return Status::NotFound("no Threads: line in /proc/self/status");
  }
  return threads;
}

Result<int64_t> ReadRssBytes() {
  auto status = ReadFileToString("/proc/self/status");
  if (!status.ok()) return status.status();
  int64_t rss_kb = StatusLineValue(*status, "VmRSS:");
  if (rss_kb < 0) {
    return Status::NotFound("no VmRSS: line in /proc/self/status");
  }
  return rss_kb * 1024;
}

void UpdateProcessMetrics(metrics::Registry* registry,
                          double uptime_seconds) {
  if (registry == nullptr) return;
  if (auto fds = ReadOpenFdCount(); fds.ok()) {
    registry->GetGauge("process_open_fds")->Set(*fds);
  }
  if (auto threads = ReadThreadCount(); threads.ok()) {
    registry->GetGauge("process_threads")->Set(*threads);
  }
  if (auto rss = ReadRssBytes(); rss.ok()) {
    registry->GetGauge("process_rss_bytes")->Set(*rss);
  }
  registry->GetGauge("process_uptime_seconds")
      ->Set(static_cast<int64_t>(uptime_seconds));
}

}  // namespace sdss
