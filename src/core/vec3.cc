#include "core/vec3.h"

#include <cstdio>

namespace sdss {

std::string Vec3::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.9f, %.9f, %.9f)", x, y, z);
  return buf;
}

Matrix3 Matrix3::FromRows(const Vec3& r0, const Vec3& r1, const Vec3& r2) {
  Matrix3 r;
  r.m = {{{r0.x, r0.y, r0.z}, {r1.x, r1.y, r1.z}, {r2.x, r2.y, r2.z}}};
  return r;
}

Matrix3 Matrix3::RotationZ(double a) {
  double c = std::cos(a), s = std::sin(a);
  Matrix3 r;
  r.m = {{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}};
  return r;
}

Matrix3 Matrix3::RotationY(double a) {
  double c = std::cos(a), s = std::sin(a);
  Matrix3 r;
  r.m = {{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}};
  return r;
}

Matrix3 Matrix3::RotationX(double a) {
  double c = std::cos(a), s = std::sin(a);
  Matrix3 r;
  r.m = {{{1, 0, 0}, {0, c, -s}, {0, s, c}}};
  return r;
}

Matrix3 Matrix3::operator*(const Matrix3& o) const {
  Matrix3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) sum += m[i][k] * o.m[k][j];
      r.m[i][j] = sum;
    }
  }
  return r;
}

Matrix3 Matrix3::Transposed() const {
  Matrix3 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
  return r;
}

double Matrix3::Determinant() const {
  return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
         m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
         m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

}  // namespace sdss
