#include "core/status.h"

namespace sdss {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace sdss
