// Health watchdog: readiness rules evaluated over the metric history.
//
// Liveness ("the process answers") is cheap; readiness ("the process
// should receive traffic") needs judgment: a front door surviving on
// accept-retries, a quick lane pinned at its admission bound, a
// poisoned journal, or fsync latency through the floor are all states
// where a load balancer should drain us even though every thread is
// alive. The watchdog encodes those judgments as declarative rules over
// metrics::History windows and folds them into one ready() bit the
// admin endpoint's /healthz serves.
//
// Evaluate() runs after every history sample (wired as the sampler's
// on_sample hook), so readiness flips within one sampler period of the
// condition appearing -- and clears the same way. Transitions (fire and
// clear, never steady state) are emitted to the EventLog.

#ifndef SDSS_CORE_WATCHDOG_H_
#define SDSS_CORE_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/eventlog.h"
#include "core/metrics_history.h"

namespace sdss {

/// One readiness rule over a single instrument.
struct HealthRule {
  enum class Kind {
    /// Counter rate over `window_seconds` exceeds `threshold` (per
    /// second).
    kCounterRateAbove,
    /// Gauge >= `threshold` on `consecutive` successive evaluations --
    /// "pinned", not "spiked".
    kGaugeAtLeast,
    /// Gauge != 0 right now (latched conditions: journal poisoned).
    kGaugeNonZero,
    /// p99 of the histogram's delta over `window_seconds` exceeds
    /// `threshold` (same unit the histogram records, typically us).
    /// Windows with no observations pass.
    kHistogramP99Above,
  };

  std::string name;    ///< Rule name in /healthz bodies and events.
  Kind kind = Kind::kGaugeNonZero;
  std::string metric;  ///< Instrument name in the registry.
  double threshold = 0.0;
  double window_seconds = 60.0;  ///< Rate / p99 kinds.
  int consecutive = 1;           ///< kGaugeAtLeast.
};

/// Evaluates rules against a History and keeps the readiness verdict.
/// Thread-safety: Evaluate is serialized internally; ready()/failing()
/// may be called from any thread (the admin endpoint's).
class HealthWatchdog {
 public:
  struct Options {
    std::vector<HealthRule> rules;
    /// Fire/clear transition events land here (component "watchdog").
    /// Null = no events; must outlive the watchdog.
    EventLog* events = nullptr;
  };

  HealthWatchdog(metrics::History* history, Options options);

  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  /// Re-evaluates every rule against the current history. Call after
  /// each History::Sample (the sampler hook does).
  void Evaluate();

  /// True when no rule is firing. Starts true: a watchdog that has not
  /// evaluated yet must not fail its process's first health check.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Names of the rules currently firing, in Options order.
  std::vector<std::string> failing() const;

  uint64_t evaluations() const;

  /// The archive's stock rules (thresholds documented in BUILDING.md's
  /// Monitoring plane section): accept-retries climbing, the quick lane
  /// pinned at >= `quick_depth_max` queued jobs, a poisoned journal,
  /// and journal fsync p99 above `fsync_p99_us`.
  static std::vector<HealthRule> DefaultRules(size_t quick_depth_max,
                                              uint64_t fsync_p99_us = 200000);

 private:
  struct RuleState {
    int hit_streak = 0;  ///< Consecutive evaluations over threshold.
    bool firing = false;
  };

  /// True when `rule`'s condition holds right now. Needs mu_.
  bool ConditionHolds(const HealthRule& rule);

  metrics::History* const history_;
  const Options options_;
  mutable std::mutex mu_;
  std::vector<RuleState> states_;
  uint64_t evaluations_ = 0;
  std::atomic<bool> ready_{true};
};

}  // namespace sdss

#endif  // SDSS_CORE_WATCHDOG_H_
