#include "core/metrics_history.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace sdss::metrics {

namespace {

/// Baseline lookup: `instruments` is sorted by name (Registry::Snapshot
/// order). Returns null when absent.
const InstrumentSnapshot* FindInstrument(
    const std::vector<InstrumentSnapshot>& instruments,
    const std::string& name) {
  auto it = std::lower_bound(
      instruments.begin(), instruments.end(), name,
      [](const InstrumentSnapshot& s, const std::string& n) {
        return s.name < n;
      });
  if (it == instruments.end() || it->name != name) return nullptr;
  return &*it;
}

/// new - old per bucket, sparse; counts that went backwards clamp to 0.
HistogramSnapshot HistogramDelta(const HistogramSnapshot& now,
                                 const HistogramSnapshot& base) {
  HistogramSnapshot delta;
  delta.count = now.count >= base.count ? now.count - base.count : 0;
  delta.sum = now.sum >= base.sum ? now.sum - base.sum : 0;
  size_t b = 0;
  for (const auto& [index, count] : now.buckets) {
    while (b < base.buckets.size() && base.buckets[b].first < index) ++b;
    uint64_t old_count =
        b < base.buckets.size() && base.buckets[b].first == index
            ? base.buckets[b].second
            : 0;
    if (count > old_count) delta.buckets.emplace_back(index, count - old_count);
  }
  return delta;
}

}  // namespace

const WindowEntry* WindowStats::Find(std::string_view name) const {
  for (const WindowEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

History::History(Registry* registry, Options options)
    : registry_(registry), options_(options) {
  ring_.resize(std::max<size_t>(2, options_.capacity));
}

History::~History() { Stop(); }

void History::Sample(double now_seconds) {
  std::vector<InstrumentSnapshot> instruments = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ > 0 && SlotFromNewestLocked(0).ts >= now_seconds) {
    return;  // The timeline only moves forward.
  }
  SampleSlot& slot = ring_[next_];
  slot.ts = now_seconds;
  slot.instruments = std::move(instruments);
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++taken_;
}

const History::SampleSlot& History::SlotFromNewestLocked(size_t back) const {
  // next_ points one past the newest; walk backwards through the ring.
  size_t index = (next_ + ring_.size() - 1 - back) % ring_.size();
  return ring_[index];
}

size_t History::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

uint64_t History::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return taken_;
}

Result<WindowStats> History::Window(double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ < 2) {
    return Status::FailedPrecondition(
        "metrics history needs at least two samples");
  }
  const SampleSlot& newest = SlotFromNewestLocked(0);
  const double target = newest.ts - std::max(0.0, window_seconds);
  // Baseline: the newest retained sample at least `window_seconds` old,
  // clamped to the oldest retained; always strictly older than the
  // newest sample so the elapsed span is positive.
  size_t base_back = 1;
  for (size_t back = 1; back < size_; ++back) {
    base_back = back;
    if (SlotFromNewestLocked(back).ts <= target) break;
  }
  const SampleSlot& base = SlotFromNewestLocked(base_back);

  WindowStats stats;
  stats.seconds = newest.ts - base.ts;
  stats.samples = base_back + 1;
  stats.entries.reserve(newest.instruments.size());
  for (const InstrumentSnapshot& now : newest.instruments) {
    const InstrumentSnapshot* old = FindInstrument(base.instruments, now.name);
    if (old != nullptr && old->kind != now.kind) old = nullptr;
    WindowEntry entry;
    entry.name = now.name;
    entry.kind = now.kind;
    switch (now.kind) {
      case Kind::kCounter: {
        const uint64_t before = old != nullptr ? old->counter : 0;
        entry.delta = now.counter >= before ? now.counter - before : 0;
        entry.rate_per_sec =
            stats.seconds > 0.0
                ? static_cast<double>(entry.delta) / stats.seconds
                : 0.0;
        break;
      }
      case Kind::kGauge: {
        entry.gauge_last = now.gauge;
        entry.gauge_min = now.gauge;
        entry.gauge_max = now.gauge;
        // Envelope over every sample inside the window (instruments
        // registered mid-window contribute from their first sample).
        for (size_t back = 1; back <= base_back; ++back) {
          const InstrumentSnapshot* s = FindInstrument(
              SlotFromNewestLocked(back).instruments, now.name);
          if (s == nullptr || s->kind != Kind::kGauge) continue;
          entry.gauge_min = std::min(entry.gauge_min, s->gauge);
          entry.gauge_max = std::max(entry.gauge_max, s->gauge);
        }
        break;
      }
      case Kind::kHistogram: {
        static const HistogramSnapshot kEmpty;
        entry.hist_delta =
            HistogramDelta(now.hist, old != nullptr ? old->hist : kEmpty);
        break;
      }
    }
    stats.entries.push_back(std::move(entry));
  }
  return stats;
}

Result<std::string> History::TextWindow(double window_seconds) const {
  auto window = Window(window_seconds);
  if (!window.ok()) return window.status();
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "# window %.1fs (%llu samples, period %.1fs)\n",
                window->seconds,
                static_cast<unsigned long long>(window->samples),
                options_.period_seconds);
  out += buf;
  for (const WindowEntry& entry : window->entries) {
    out += entry.name;
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf), " rate=%.2f/s delta=%llu\n",
                      entry.rate_per_sec,
                      static_cast<unsigned long long>(entry.delta));
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf), " value=%lld min=%lld max=%lld\n",
                      static_cast<long long>(entry.gauge_last),
                      static_cast<long long>(entry.gauge_min),
                      static_cast<long long>(entry.gauge_max));
        break;
      case Kind::kHistogram:
        std::snprintf(buf, sizeof(buf),
                      " count=%llu p50=%lluus p95=%lluus p99=%lluus\n",
                      static_cast<unsigned long long>(entry.hist_delta.count),
                      static_cast<unsigned long long>(entry.hist_delta.P50()),
                      static_cast<unsigned long long>(entry.hist_delta.P95()),
                      static_cast<unsigned long long>(entry.hist_delta.P99()));
        break;
    }
    out += buf;
  }
  return out;
}

void History::Start(std::function<void()> on_sample) {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_running_) return;
  sampler_running_ = true;
  sampler_stop_ = false;
  sampler_ = std::thread([this, on_sample = std::move(on_sample)] {
    const auto origin = std::chrono::steady_clock::now();
    for (;;) {
      const double now_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - origin)
                               .count();
      Sample(now_s);
      if (on_sample) on_sample();
      std::unique_lock<std::mutex> lock(sampler_mu_);
      sampler_cv_.wait_for(
          lock,
          std::chrono::duration<double>(options_.period_seconds),
          [this] { return sampler_stop_; });
      if (sampler_stop_) return;
    }
  });
}

void History::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_running_) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(sampler_mu_);
  sampler_running_ = false;
}

}  // namespace sdss::metrics
