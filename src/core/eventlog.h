// Structured, machine-parseable operational event log (JSONL).
//
// The archive's monitoring plane needs a stream a human can tail and a
// pipeline can parse: one JSON object per line, rotated by size, with a
// fixed envelope (timestamp, severity, component, event name, optional
// query/job id) plus free-form key=value fields. The query server
// (refused sessions, auth failures, protocol errors), the workbench
// (slow queries), the journal (poisoning), and the health watchdog
// (rule fire/clear transitions) all write to one EventLog, so "what
// happened around 03:12" is a single grep instead of four.
//
// Deliberately not the write-ahead journal: events are best-effort
// observability, never durability. Writes are appended without fsync;
// an I/O failure is counted (eventlog_write_errors) and swallowed --
// losing an event must never take a query down with it.

#ifndef SDSS_CORE_EVENTLOG_H_
#define SDSS_CORE_EVENTLOG_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"

namespace sdss {

enum class EventSeverity : uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

const char* EventSeverityName(EventSeverity severity);

/// One structured event. `fields` become top-level JSON keys, so they
/// must not collide with the envelope keys (ts_ms, severity, component,
/// event, id); colliding keys would produce duplicate-key JSON, which
/// parsers resolve unpredictably.
struct Event {
  EventSeverity severity = EventSeverity::kInfo;
  std::string component;  ///< "server", "workbench", "persist", "watchdog".
  std::string name;       ///< "slow_query", "journal_poisoned", ...
  uint64_t id = 0;        ///< Job/session id; 0 = not tied to one.
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Append side of the event log. Thread-safe: Emit may be called from
/// any thread; one mutex serializes the write and rotation check (event
/// volume is operational, not per-row).
///
/// On-disk layout mirrors the journal's segment discipline:
///
///   <dir>/events-000001.jsonl, events-000002.jsonl, ...
///
/// A reopened log never appends to an old file (its tail may be a torn
/// line); it always starts max+1. A file exceeding rotate_bytes after a
/// write is closed, the next Emit opens a fresh one, and files beyond
/// max_files are pruned oldest-first.
class EventLog {
 public:
  struct Options {
    /// Roll to the next file once the current one exceeds this.
    uint64_t rotate_bytes = 1ull << 20;
    /// Files kept after rotation (oldest pruned). Minimum 1.
    size_t max_files = 8;
    /// Wall-clock milliseconds for the ts_ms envelope field; injectable
    /// so tests pin byte-exact lines. Default: system_clock.
    std::function<uint64_t()> now_ms;
    /// When set, the log publishes eventlog_events_emitted,
    /// eventlog_write_errors, and eventlog_rotations counters. Must
    /// outlive the log.
    metrics::Registry* metrics = nullptr;
  };

  /// Opens `dir` for appending (creating it if needed).
  static Result<std::unique_ptr<EventLog>> Open(const std::string& dir,
                                                Options options);
  static Result<std::unique_ptr<EventLog>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event as a JSONL line. Best-effort: failures are
  /// counted, never returned (see the file comment).
  void Emit(const Event& event);

  /// Convenience form building the Event in place.
  void Emit(EventSeverity severity, std::string_view component,
            std::string_view name, uint64_t id,
            std::initializer_list<std::pair<std::string_view, std::string_view>>
                fields = {});

  /// The exact line Emit writes (sans trailing newline), exposed so
  /// tests pin the format without filesystem round trips.
  static std::string FormatLine(const Event& event, uint64_t ts_ms);

  const std::string& dir() const { return dir_; }
  uint64_t events_written() const;
  uint64_t write_errors() const;
  uint64_t current_file() const;

 private:
  EventLog(std::string dir, Options options, uint64_t first_file);

  /// Opens events-<file>.jsonl for appending. Needs mu_.
  Status OpenFileLocked(uint64_t file);
  /// Closes the current file, opens the next, prunes old ones. Needs mu_.
  void RotateLocked();

  const std::string dir_;
  const Options options_;
  // Instruments resolved once at construction; null when
  // Options::metrics is unset.
  metrics::Counter* m_emitted_ = nullptr;
  metrics::Counter* m_write_errors_ = nullptr;
  metrics::Counter* m_rotations_ = nullptr;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t file_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t events_ = 0;
  uint64_t errors_ = 0;
};

/// Null-safe emit: call sites hold an optional EventLog* and must not
/// branch at every site.
inline void LogEvent(
    EventLog* log, EventSeverity severity, std::string_view component,
    std::string_view name, uint64_t id,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        fields = {}) {
  if (log != nullptr) log->Emit(severity, component, name, id, fields);
}

/// Names of the event log files in `dir`, ascending. Empty when the
/// directory does not exist.
std::vector<std::string> ListEventLogFiles(const std::string& dir);

}  // namespace sdss

#endif  // SDSS_CORE_EVENTLOG_H_
