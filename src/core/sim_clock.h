// Deterministic simulated time.
//
// The paper's performance claims (150 MB/s per node, full scan every two
// minutes, 1-2 year publication delays) are bandwidth/latency arithmetic
// over hardware we don't have. ClusterSim and ArchivePipeline do the real
// data processing on real data but account elapsed *simulated* time through
// this clock, so benchmark output reproduces the paper's shape
// deterministically on any machine.

#ifndef SDSS_CORE_SIM_CLOCK_H_
#define SDSS_CORE_SIM_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace sdss {

/// Simulated time point/duration in seconds.
using SimSeconds = double;

inline constexpr SimSeconds kSimMinute = 60.0;
inline constexpr SimSeconds kSimHour = 3600.0;
inline constexpr SimSeconds kSimDay = 86400.0;

/// A monotonically advancing simulated clock.
class SimClock {
 public:
  SimClock() = default;

  SimSeconds now() const { return now_; }

  /// Advances the clock by `dt` seconds (must be >= 0).
  void Advance(SimSeconds dt) { now_ += std::max(0.0, dt); }

  /// Moves the clock forward to `t` if `t` is later than now.
  void AdvanceTo(SimSeconds t) { now_ = std::max(now_, t); }

  void Reset() { now_ = 0.0; }

 private:
  SimSeconds now_ = 0.0;
};

/// Formats a simulated duration as "3.2 s", "2.1 min", "4.0 h" or "1.5 d".
std::string FormatSimDuration(SimSeconds s);

/// Formats a byte count as "512 B", "20.0 GB", "1.50 TB", etc.
std::string FormatBytes(uint64_t bytes);

}  // namespace sdss

#endif  // SDSS_CORE_SIM_CLOCK_H_
