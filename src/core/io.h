// Filesystem primitives for the durable persistence layer.
//
// Thin Status-returning wrappers over POSIX: everything the persist
// module (and anything else that touches disk) needs, in one place, so
// error handling and durability discipline (fsync-before-rename) cannot
// diverge between call sites. No other core header touches the
// filesystem.

#ifndef SDSS_CORE_IO_H_
#define SDSS_CORE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace sdss {

/// A read-only memory mapping of a whole regular file (mmap(2),
/// PROT_READ | MAP_PRIVATE). Move-only; the destructor unmaps. The view
/// stays valid even if the file is later unlinked (POSIX keeps mapped
/// pages alive), but bytes changed by a concurrent writer are
/// unspecified -- map only immutably written files (temp + rename).
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. An empty file maps to a valid empty view.
  /// With `sequential`, advises the kernel the mapping will be read
  /// front to back (madvise MADV_SEQUENTIAL -- aggressive readahead for
  /// scan workloads).
  static Result<MappedFile> Open(const std::string& path,
                                 bool sequential = true);

  bool valid() const { return mapped_; }
  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  std::string_view view() const {
    return std::string_view(data(), size_);
  }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

/// True if `path` names an existing file or directory.
bool PathExists(const std::string& path);

/// mkdir -p: creates `path` and any missing parents. OK if it already
/// exists as a directory.
Status CreateDirs(const std::string& path);

/// Regular-file size in bytes; NotFound / IOError on failure.
Result<uint64_t> FileSize(const std::string& path);

/// Reads a whole regular file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Durably writes `data` as `path`: writes `path`.tmp, fsyncs it,
/// renames over `path`, then fsyncs the parent directory -- so after an
/// OK return the file survives a crash, and a crash mid-write leaves at
/// worst a `.tmp` leftover, never a half-written `path`.
Status WriteFileDurable(const std::string& path, const std::string& data);

/// Deletes a file. OK if it does not exist (idempotent cleanup).
Status RemoveFile(const std::string& path);

/// Names (not paths) of the entries of a directory, sorted. "." and ".."
/// are omitted. NotFound when the directory does not exist.
Result<std::vector<std::string>> ListDir(const std::string& path);

/// Fsyncs a directory, making previously created/renamed entries
/// durable.
Status SyncDir(const std::string& path);

/// Validates `name` as a single on-disk path component: non-empty, at
/// most 64 bytes, no '/', '\\', or NUL, no leading '.', and no ".."
/// anywhere (so a name can never escape or hide inside its directory).
/// `what` labels the error message
/// ("mydb table name"). Always kInvalidArgument on rejection -- the
/// parser and archive::MyDb both gate on this one function so the two
/// layers cannot disagree.
Status ValidatePathComponent(const std::string& name, const char* what);

}  // namespace sdss

#endif  // SDSS_CORE_IO_H_
