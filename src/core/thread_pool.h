// A fixed-size worker pool used by the QET executor and the dataflow
// machines. Supports fire-and-forget tasks, futures, and a parallel-for
// helper for partitioned scans.

#ifndef SDSS_CORE_THREAD_POOL_H_
#define SDSS_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sdss {

/// A simple FIFO thread pool. Tasks may enqueue further tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1; 0 means hardware
  /// concurrency).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto SubmitWithResult(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Submit([task]() { (*task)(); });
    return fut;
  }

  /// Runs body(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. The calling thread participates, so this is safe to
  /// invoke from outside the pool even when the pool has a single worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stop_ = false;
};

/// An RAII bundle of joinable threads: Spawn() detachable work, JoinAll()
/// explicitly or let the destructor do it. Used for the QET executor's
/// per-node threads and the federated engine's per-shard drivers, where a
/// dynamic number of long-lived threads must never be leaked on an error
/// path.
class ThreadGroup {
 public:
  ThreadGroup() = default;
  ~ThreadGroup() { JoinAll(); }

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  /// Starts a new thread running `fn`.
  void Spawn(std::function<void()> fn);

  /// Joins every spawned thread (idempotent).
  void JoinAll();

  size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace sdss

#endif  // SDSS_CORE_THREAD_POOL_H_
