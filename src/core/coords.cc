#include "core/coords.h"

#include <algorithm>
#include <cctype>

#include "core/angle.h"

namespace sdss {
namespace {

// J2000 direction of the North Galactic Pole and the Galactic Center,
// used to construct the Equatorial->Galactic rotation.
constexpr double kNgpRaDeg = 192.859508;
constexpr double kNgpDecDeg = 27.128336;
constexpr double kGalCenterRaDeg = 266.405100;
constexpr double kGalCenterDecDeg = -28.936175;

// Supergalactic frame (de Vaucouleurs), defined in Galactic coordinates:
// the supergalactic north pole is at (l, b) = (47.37, +6.32) and the
// origin of supergalactic longitude is at (l, b) = (137.37, 0).
constexpr double kSgpGalLonDeg = 47.37;
constexpr double kSgpGalLatDeg = 6.32;
constexpr double kSgOriginGalLonDeg = 137.37;
constexpr double kSgOriginGalLatDeg = 0.0;

// Builds an orthonormal rotation whose +Z row is `pole` and whose +X row is
// the component of `origin` perpendicular to `pole`. Both inputs are unit
// vectors in the source frame; the result maps source-frame vectors into
// the frame defined by (origin-projected, pole).
Matrix3 FrameRotation(const Vec3& pole, const Vec3& origin) {
  Vec3 z = pole.Normalized();
  Vec3 x = (origin - z * origin.Dot(z)).Normalized();
  Vec3 y = z.Cross(x);
  return Matrix3::FromRows(x, y, z);
}

Matrix3 BuildEquatorialToGalactic() {
  Vec3 pole = UnitVectorFromSpherical(kNgpRaDeg, kNgpDecDeg);
  Vec3 center = UnitVectorFromSpherical(kGalCenterRaDeg, kGalCenterDecDeg);
  return FrameRotation(pole, center);
}

Matrix3 BuildEquatorialToSupergalactic() {
  Matrix3 eq_to_gal = BuildEquatorialToGalactic();
  Vec3 pole_gal = UnitVectorFromSpherical(kSgpGalLonDeg, kSgpGalLatDeg);
  Vec3 origin_gal =
      UnitVectorFromSpherical(kSgOriginGalLonDeg, kSgOriginGalLatDeg);
  Matrix3 gal_to_sg = FrameRotation(pole_gal, origin_gal);
  return gal_to_sg * eq_to_gal;
}

struct FrameMatrices {
  Matrix3 identity = Matrix3::Identity();
  Matrix3 eq_to_gal = BuildEquatorialToGalactic();
  Matrix3 gal_to_eq = eq_to_gal.Transposed();
  Matrix3 eq_to_sg = BuildEquatorialToSupergalactic();
  Matrix3 sg_to_eq = eq_to_sg.Transposed();
};

const FrameMatrices& Matrices() {
  static const FrameMatrices* kMatrices = new FrameMatrices();
  return *kMatrices;
}

}  // namespace

const char* FrameName(Frame frame) {
  switch (frame) {
    case Frame::kEquatorial:
      return "Equatorial";
    case Frame::kGalactic:
      return "Galactic";
    case Frame::kSupergalactic:
      return "Supergalactic";
  }
  return "Unknown";
}

Result<Frame> FrameFromName(const std::string& name) {
  std::string n;
  n.reserve(name.size());
  for (char c : name) n.push_back(static_cast<char>(std::tolower(c)));
  if (n == "equatorial" || n == "eq" || n == "j2000") {
    return Frame::kEquatorial;
  }
  if (n == "galactic" || n == "gal") return Frame::kGalactic;
  if (n == "supergalactic" || n == "sgal" || n == "sg") {
    return Frame::kSupergalactic;
  }
  return Status::InvalidArgument("unknown coordinate frame: " + name);
}

Vec3 UnitVectorFromSpherical(double lon_deg, double lat_deg) {
  double lon = DegToRad(lon_deg);
  double lat = DegToRad(lat_deg);
  double cl = std::cos(lat);
  return {cl * std::cos(lon), cl * std::sin(lon), std::sin(lat)};
}

void SphericalFromUnitVector(const Vec3& v, double* lon_deg, double* lat_deg) {
  double z = std::clamp(v.z, -1.0, 1.0);
  *lat_deg = RadToDeg(std::asin(z));
  if (std::fabs(v.x) < 1e-15 && std::fabs(v.y) < 1e-15) {
    *lon_deg = 0.0;  // Longitude is undefined at the poles.
    return;
  }
  *lon_deg = NormalizeDeg360(RadToDeg(std::atan2(v.y, v.x)));
}

const Matrix3& RotationFromEquatorial(Frame frame) {
  switch (frame) {
    case Frame::kEquatorial:
      return Matrices().identity;
    case Frame::kGalactic:
      return Matrices().eq_to_gal;
    case Frame::kSupergalactic:
      return Matrices().eq_to_sg;
  }
  return Matrices().identity;
}

const Matrix3& RotationToEquatorial(Frame frame) {
  switch (frame) {
    case Frame::kEquatorial:
      return Matrices().identity;
    case Frame::kGalactic:
      return Matrices().gal_to_eq;
    case Frame::kSupergalactic:
      return Matrices().sg_to_eq;
  }
  return Matrices().identity;
}

Vec3 TransformFrame(const Vec3& v, Frame from, Frame to) {
  if (from == to) return v;
  Vec3 eq = RotationToEquatorial(from) * v;
  return RotationFromEquatorial(to) * eq;
}

Vec3 EquatorialUnitVector(const SphericalCoord& c) {
  Vec3 v = UnitVectorFromSpherical(c.lon_deg, c.lat_deg);
  return RotationToEquatorial(c.frame) * v;
}

SphericalCoord ToSpherical(const Vec3& equatorial_unit, Frame frame) {
  Vec3 v = RotationFromEquatorial(frame) * equatorial_unit;
  SphericalCoord out;
  out.frame = frame;
  SphericalFromUnitVector(v, &out.lon_deg, &out.lat_deg);
  return out;
}

double AngularDistanceDeg(double ra1_deg, double dec1_deg, double ra2_deg,
                          double dec2_deg) {
  Vec3 a = UnitVectorFromSpherical(ra1_deg, dec1_deg);
  Vec3 b = UnitVectorFromSpherical(ra2_deg, dec2_deg);
  return RadToDeg(AngularDistanceRad(a, b));
}

}  // namespace sdss
