// Process self-metrics from /proc/self: the gauges an operator checks
// before blaming the workload.
//
// Open fd count (the accept loop's EMFILE backoff has a cause), thread
// count (session threads are reaped, not leaked -- this gauge is the
// proof in production, as the /proc test is in CI), resident set size,
// and uptime. UpdateProcessMetrics refreshes them into a registry; the
// monitoring plane calls it on every history sample and on every
// /metrics scrape, so the values are at most one period stale.

#ifndef SDSS_CORE_PROC_STATS_H_
#define SDSS_CORE_PROC_STATS_H_

#include <cstdint>

#include "core/metrics.h"
#include "core/status.h"

namespace sdss {

/// Number of open file descriptors (entries of /proc/self/fd).
Result<int64_t> ReadOpenFdCount();

/// Threads of this process (/proc/self/status "Threads:" line).
Result<int64_t> ReadThreadCount();

/// Resident set size in bytes (/proc/self/status "VmRSS:" line).
Result<int64_t> ReadRssBytes();

/// Refreshes the process self-gauges in `registry`:
///   process_open_fds, process_threads, process_rss_bytes,
///   process_uptime_seconds (from the caller's `uptime_seconds`).
/// A /proc read that fails (non-Linux platform) leaves that gauge at
/// its previous value; uptime always updates.
void UpdateProcessMetrics(metrics::Registry* registry,
                          double uptime_seconds);

}  // namespace sdss

#endif  // SDSS_CORE_PROC_STATS_H_
