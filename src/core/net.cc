#include "core/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sdss {
namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Resolves the two spellings the library supports without pulling in
/// getaddrinfo (the server binds loopback or a numeric address).
Result<in_addr_t> ResolveHost(const std::string& host) {
  if (host.empty() || host == "localhost") {
    return static_cast<in_addr_t>(htonl(INADDR_LOOPBACK));
  }
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return static_cast<in_addr_t>(addr.s_addr);
}

}  // namespace

TcpConn::~TcpConn() { Close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpConn> TcpConn::Connect(const std::string& host, uint16_t port) {
  auto addr = ResolveHost(host);
  if (!addr.ok()) return addr.status();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = *addr;
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  // The protocol writes small frames and waits for replies; Nagle only
  // adds latency to that shape.
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

Status TcpConn::WriteAll(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("write on closed conn");
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConn::ReadExact(void* buf, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("read on closed conn");
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (got == 0) return Status::Aborted("peer closed the connection");
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<bool> TcpConn::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("poll on closed conn");
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  return rc > 0;
}

void TcpConn::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Listen(const std::string& host,
                                        uint16_t port, int backlog) {
  auto addr = ResolveHost(host);
  if (!addr.ok()) return addr.status();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = *addr;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(sa.sin_port);
  return listener;
}

Result<TcpConn> TcpListener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("accept on closed listener");
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpConn(fd);
    }
    if (errno == EINTR) continue;
    // A connection that died while sitting in the backlog (or tripped a
    // protocol error during the handshake) indicts only itself -- take
    // the next one.
    if (errno == ECONNABORTED || errno == EPROTO) continue;
    // EINVAL is Linux's verdict on accept(2) after shutdown(2): the
    // listener was woken deliberately, not broken.
    if (errno == EINVAL) {
      return Status::Aborted("listener shut down");
    }
    // Resource exhaustion starves accept but breaks nothing: the
    // listener is healthy and pending connections stay queued in the
    // backlog. Report it as retryable so callers can back off instead
    // of tearing down the front door.
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      return Status::Unavailable(std::string("accept: ") +
                                 std::strerror(errno));
    }
    return Errno("accept");
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sdss
