// Angle units and conversions.
//
// Astronomy mixes degrees (catalog coordinates), arcminutes/arcseconds
// (search radii, "within 5 arcsec"), and radians (math). These helpers make
// the unit explicit at every conversion site.

#ifndef SDSS_CORE_ANGLE_H_
#define SDSS_CORE_ANGLE_H_

#include <cmath>

namespace sdss {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kDegPerRad = 180.0 / kPi;
inline constexpr double kRadPerDeg = kPi / 180.0;
inline constexpr double kArcminPerDeg = 60.0;
inline constexpr double kArcsecPerDeg = 3600.0;

/// Full sky solid angle in square degrees (~41252.96).
inline constexpr double kSquareDegreesOnSky = 360.0 * 360.0 / kPi;

constexpr double DegToRad(double deg) { return deg * kRadPerDeg; }
constexpr double RadToDeg(double rad) { return rad * kDegPerRad; }
constexpr double ArcminToDeg(double arcmin) { return arcmin / kArcminPerDeg; }
constexpr double ArcsecToDeg(double arcsec) { return arcsec / kArcsecPerDeg; }
constexpr double DegToArcsec(double deg) { return deg * kArcsecPerDeg; }
constexpr double ArcsecToRad(double arcsec) {
  return DegToRad(ArcsecToDeg(arcsec));
}
constexpr double RadToArcsec(double rad) {
  return DegToArcsec(RadToDeg(rad));
}

/// Normalizes an angle in degrees to [0, 360).
inline double NormalizeDeg360(double deg) {
  double d = std::fmod(deg, 360.0);
  if (d < 0.0) d += 360.0;
  return d;
}

/// Normalizes an angle in degrees to [-180, 180).
inline double NormalizeDeg180(double deg) {
  double d = NormalizeDeg360(deg);
  return d >= 180.0 ? d - 360.0 : d;
}

/// Clamps a latitude-like angle to [-90, 90].
inline double ClampLatitudeDeg(double deg) {
  if (deg > 90.0) return 90.0;
  if (deg < -90.0) return -90.0;
  return deg;
}

}  // namespace sdss

#endif  // SDSS_CORE_ANGLE_H_
