// 3-vector and 3x3 matrix primitives for spherical geometry.
//
// The paper stores angular coordinates as Cartesian unit vectors (x, y, z)
// so that spherical-cap and coordinate-system constraints become linear
// tests (dot products) rather than trigonometric expressions. Vec3 is the
// foundation of that representation.

#ifndef SDSS_CORE_VEC3_H_
#define SDSS_CORE_VEC3_H_

#include <array>
#include <cmath>
#include <string>

namespace sdss {

/// A 3-component double vector. Used both as a free vector and as a unit
/// direction on the celestial sphere.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  /// Inner product.
  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }

  /// Cross product (right-handed).
  constexpr Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double NormSquared() const { return Dot(*this); }
  double Norm() const { return std::sqrt(NormSquared()); }

  /// Returns this vector scaled to unit length. Returns the zero vector
  /// unchanged (callers must not normalize degenerate inputs).
  Vec3 Normalized() const {
    double n = Norm();
    return n > 0.0 ? (*this) / n : *this;
  }

  /// Angle in radians between this and `o`, both treated as directions.
  /// Numerically robust near 0 and pi (uses atan2 of cross/dot).
  double AngleTo(const Vec3& o) const {
    return std::atan2(Cross(o).Norm(), Dot(o));
  }

  std::string ToString() const;
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// True if vectors are component-wise within `eps`.
inline bool ApproxEqual(const Vec3& a, const Vec3& b, double eps = 1e-12) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps &&
         std::fabs(a.z - b.z) <= eps;
}

/// Row-major 3x3 matrix, used for celestial coordinate-frame rotations.
struct Matrix3 {
  // m[row][col]
  std::array<std::array<double, 3>, 3> m = {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};

  static Matrix3 Identity() { return Matrix3{}; }

  /// Builds a matrix from three row vectors.
  static Matrix3 FromRows(const Vec3& r0, const Vec3& r1, const Vec3& r2);

  /// Rotation about the +Z axis by `angle_rad` (right-handed).
  static Matrix3 RotationZ(double angle_rad);
  /// Rotation about the +Y axis by `angle_rad` (right-handed).
  static Matrix3 RotationY(double angle_rad);
  /// Rotation about the +X axis by `angle_rad` (right-handed).
  static Matrix3 RotationX(double angle_rad);

  Vec3 operator*(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  Matrix3 operator*(const Matrix3& o) const;

  /// Matrix transpose; for rotation matrices this is the inverse.
  Matrix3 Transposed() const;

  /// Determinant (rotations have determinant +1).
  double Determinant() const;
};

}  // namespace sdss

#endif  // SDSS_CORE_VEC3_H_
