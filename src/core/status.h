// Status and Result<T>: error handling primitives used across the library.
//
// Follows the RocksDB/Arrow convention: fallible operations return a Status
// (or a Result<T> carrying a value on success) instead of throwing. Errors
// carry a code and a human-readable message.

#ifndef SDSS_CORE_STATUS_H_
#define SDSS_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sdss {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kNotSupported,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kCancelled,
  /// The operation was interrupted mid-flight (e.g. by a crash) and left
  /// no partial effects; retrying the whole operation is safe.
  kAborted,
  /// The service is temporarily overloaded or shedding work; the request
  /// was refused without side effects and should be retried after a
  /// backoff (the query server maps this to a protocol-level BUSY).
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK.
///
/// Usage:
///   Status s = store.Put(obj);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Exactly one is present.
///
/// Usage:
///   Result<HtmId> r = HtmId::FromName("N012");
///   if (!r.ok()) return r.status();
///   HtmId id = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when failed.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression: RETURN_IF_ERROR(DoThing());
#define SDSS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::sdss::Status _s = (expr);                 \
    if (!_s.ok()) return _s;                    \
  } while (0)

}  // namespace sdss

#endif  // SDSS_CORE_STATUS_H_
