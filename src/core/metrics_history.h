// Fixed-size ring of registry snapshots: rate history for /varz and
// the health watchdog.
//
// A Registry answers "how many, ever"; operators ask "how fast, lately".
// History samples the registry on a fixed period into a ring (default
// 360 samples x 10 s = one hour) and answers windowed questions:
// counter rates (delta / elapsed), gauge last/min/max over the window,
// and histogram *deltas* (the window's own count/sum/buckets, so a p99
// over the last minute is not drowned by a week of history).
//
// Time is injectable: Sample(now_seconds) takes one sample stamped with
// a caller-supplied monotonic timestamp, so tests drive the ring with a
// SimClock and pin rates deterministically. Production wires the
// built-in sampler thread (Start/Stop), which stamps samples from
// steady_clock and invokes an optional per-sample hook -- where the
// health watchdog evaluates its rules.

#ifndef SDSS_CORE_METRICS_HISTORY_H_
#define SDSS_CORE_METRICS_HISTORY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"

namespace sdss::metrics {

/// One instrument's change over a trailing window.
struct WindowEntry {
  std::string name;
  Kind kind = Kind::kCounter;
  // kCounter: raw increase and per-second rate over the window. A
  // counter that went backwards (registry swapped under the sampler)
  // reads as delta 0, never negative.
  uint64_t delta = 0;
  double rate_per_sec = 0.0;
  // kGauge: the newest value plus the window's envelope -- "pinned at
  // max" is min == max == bound over every sample, which a last-value
  // read alone cannot distinguish from one unlucky instant.
  int64_t gauge_last = 0;
  int64_t gauge_min = 0;
  int64_t gauge_max = 0;
  // kHistogram: the window's own distribution (count/sum/buckets are
  // deltas between the window's edges); quantiles answer "p99 lately".
  HistogramSnapshot hist_delta;
};

/// Every instrument's WindowEntry over one trailing window, sorted by
/// name (the registry snapshot order).
struct WindowStats {
  double seconds = 0.0;  ///< Actual elapsed span between the edge samples.
  uint64_t samples = 0;  ///< Samples inside the window (>= 2).
  std::vector<WindowEntry> entries;

  const WindowEntry* Find(std::string_view name) const;
};

/// The sampler + ring. All methods are thread-safe.
class History {
 public:
  struct Options {
    /// Ring capacity in samples; with the default period this retains
    /// one hour.
    size_t capacity = 360;
    /// Sampler-thread period (also the /varz resolution floor). Tests
    /// that call Sample() directly stamp their own timeline and never
    /// consult this.
    double period_seconds = 10.0;
  };

  History(Registry* registry, Options options);
  explicit History(Registry* registry) : History(registry, Options()) {}
  ~History();

  History(const History&) = delete;
  History& operator=(const History&) = delete;

  /// Takes one sample stamped `now_seconds` (monotonic, caller-chosen
  /// origin). A stamp not later than the newest retained sample is
  /// ignored -- the ring's timeline only moves forward.
  void Sample(double now_seconds);

  /// Starts the built-in sampler thread: one Sample per period (stamped
  /// from steady_clock), then `on_sample` (may be null) -- the hook the
  /// health watchdog evaluates from. No-op if already started.
  void Start(std::function<void()> on_sample = nullptr);
  /// Stops and joins the sampler thread. Idempotent; the destructor
  /// calls it.
  void Stop();

  size_t size() const;            ///< Samples currently retained.
  uint64_t samples_taken() const; ///< Total, including overwritten ones.
  double period_seconds() const { return options_.period_seconds; }
  size_t capacity() const { return options_.capacity; }

  /// Stats over the trailing `window_seconds`: delta between the newest
  /// sample and the newest sample at least that old (clamped to the
  /// oldest retained). FailedPrecondition until two samples exist.
  Result<WindowStats> Window(double window_seconds) const;

  /// /varz rendering of Window(): one line per instrument --
  ///   counter:   `name rate=12.40/s delta=744`
  ///   gauge:     `name value=3 min=0 max=5`
  ///   histogram: `name count=120 p50=512us p95=2047us p99=4095us`
  /// headed by a `# window ...` comment line.
  Result<std::string> TextWindow(double window_seconds) const;

 private:
  struct SampleSlot {
    double ts = 0.0;
    std::vector<InstrumentSnapshot> instruments;
  };

  /// The retained samples oldest -> newest. Needs mu_.
  const SampleSlot& SlotFromNewestLocked(size_t back) const;

  Registry* const registry_;
  const Options options_;
  mutable std::mutex mu_;
  std::vector<SampleSlot> ring_;  ///< Fixed capacity, circular.
  size_t next_ = 0;               ///< Ring slot the next sample lands in.
  size_t size_ = 0;
  uint64_t taken_ = 0;
  // Sampler thread state.
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  std::thread sampler_;
  bool sampler_running_ = false;
  bool sampler_stop_ = false;
};

}  // namespace sdss::metrics

#endif  // SDSS_CORE_METRICS_HISTORY_H_
