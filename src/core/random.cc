#include "core/random.h"

#include <cmath>

namespace sdss {

Vec3 Rng::UnitCap(const Vec3& center, double radius_rad) {
  // Sample uniformly over the cap: cos(theta) uniform in [cos(r), 1].
  double cos_r = std::cos(radius_rad);
  double cos_t = Uniform(cos_r, 1.0);
  double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
  double phi = Uniform(0.0, 2.0 * 3.14159265358979323846);

  // Build an orthonormal basis (u, v, w) with w = center.
  Vec3 w = center.Normalized();
  Vec3 helper = std::fabs(w.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  Vec3 u = w.Cross(helper).Normalized();
  Vec3 v = w.Cross(u);
  return (w * cos_t + u * (sin_t * std::cos(phi)) + v * (sin_t * std::sin(phi)))
      .Normalized();
}

}  // namespace sdss
