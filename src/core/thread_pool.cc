#include "core/thread_pool.h"

#include <atomic>

namespace sdss {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;

  // Shared state lives on the heap: helper tasks may still be finishing
  // their final (empty) loop iteration after the caller has been released,
  // so stack storage would dangle.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t n;
    const std::function<void(size_t)>* body;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->body = &body;

  auto worker = [state] {
    for (;;) {
      size_t i = state->next.fetch_add(1);
      if (i >= state->n) break;
      (*state->body)(i);
      if (state->done.fetch_add(1) + 1 == state->n) {
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(n - 1, num_threads());
  for (size_t i = 0; i < helpers; ++i) Submit(worker);
  worker();  // The calling thread participates.

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() >= n; });
  // `body` is only dereferenced by workers that won an index < n, all of
  // which completed before done reached n; stragglers touch only `state`.
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadGroup::Spawn(std::function<void()> fn) {
  threads_.emplace_back(std::move(fn));
}

void ThreadGroup::JoinAll() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace sdss
