// TCP socket and poll primitives for the query server.
//
// Thin Status-returning wrappers over POSIX stream sockets, the network
// counterpart of core/io.h's file primitives: everything the server
// module (and its client library) needs, in one place, so error
// handling, EINTR discipline, and shutdown-based unblocking cannot
// diverge between call sites. No other core header touches the network.
//
// Threading contract: a TcpConn may be used full-duplex from two
// threads (one reader, one writer) -- the query server streams result
// frames from a scheduler worker while the session thread blocks
// reading the next request. Shutdown() is additionally safe to call
// from any thread and wakes both directions; Close() is not, and must
// only run once no other thread touches the object (the owner's
// destructor).

#ifndef SDSS_CORE_NET_H_
#define SDSS_CORE_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"

namespace sdss {

/// One end of a connected TCP stream. Move-only; the destructor closes.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();

  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to host:port (numeric IPv4 dotted quad or "localhost").
  static Result<TcpConn> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// Writes all of `data`, retrying short writes and EINTR. SIGPIPE is
  /// suppressed (MSG_NOSIGNAL); a peer that vanished mid-write surfaces
  /// as an IOError, never a signal.
  Status WriteAll(std::string_view data);

  /// Reads exactly `n` bytes. A clean EOF before the first byte is
  /// kAborted ("peer closed"); EOF mid-buffer or a socket error is
  /// kIOError. Blocks until satisfied, errored, or Shutdown().
  Status ReadExact(void* buf, size_t n);

  /// Polls for readability. Returns true when a read would not block
  /// (data or EOF pending), false on timeout. `timeout_ms < 0` blocks
  /// indefinitely.
  Result<bool> WaitReadable(int timeout_ms);

  /// Half-close both directions (shutdown(2)): wakes any thread blocked
  /// in ReadExact/WriteAll with an error, but keeps the fd valid so
  /// concurrent calls fail cleanly instead of racing a reused
  /// descriptor. Safe from any thread; idempotent.
  void Shutdown();

  /// Closes the fd. Only the owning thread, after Shutdown() has
  /// quiesced any peers.
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. Move-only; the destructor closes.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port with SO_REUSEADDR. `port == 0`
  /// picks an ephemeral port, readable back via port().
  static Result<TcpListener> Listen(const std::string& host, uint16_t port,
                                    int backlog);

  bool valid() const { return fd_ >= 0; }

  /// The bound port (resolved when Listen was given port 0).
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. After Shutdown() (from any
  /// thread), pending and future calls return kAborted -- the accept
  /// loop's clean exit signal. Per-connection failures that say nothing
  /// about the listener (ECONNABORTED: the peer hung up while queued;
  /// EPROTO) are retried here. Resource exhaustion (EMFILE / ENFILE /
  /// ENOBUFS / ENOMEM) is kUnavailable -- transient, retry after a
  /// breath; the connection stays in the backlog meanwhile. Anything
  /// else is kIOError (the listener itself is broken).
  Result<TcpConn> Accept();

  /// Wakes blocked Accept calls with kAborted. Safe from any thread;
  /// idempotent.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace sdss

#endif  // SDSS_CORE_NET_H_
