#include "core/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sdss {
namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

/// The directory part of `path` ("" -> ".").
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return Status::IOError(Errno("fsync", path));
  return Status::OK();
}

}  // namespace

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_), mapped_(other.mapped_) {
  other.addr_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.addr_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path,
                                    bool sequential) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IOError(Errno("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IOError(Errno("fstat", path));
    ::close(fd);
    return s;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  file.mapped_ = true;
  if (file.size_ > 0) {
    void* addr =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      Status s = Status::IOError(Errno("mmap", path));
      ::close(fd);
      return s;
    }
    if (sequential) (void)::madvise(addr, file.size_, MADV_SEQUENTIAL);
    file.addr_ = addr;
  }
  ::close(fd);  // The mapping outlives the descriptor.
  return file;
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status CreateDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    partial = path.substr(0, slash);
    pos = slash + 1;
    if (partial.empty()) continue;  // Leading '/'.
    if (::mkdir(partial.c_str(), 0775) != 0 && errno != EEXIST) {
      return Status::IOError(Errno("mkdir", partial));
    }
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IOError("'" + path + "' exists but is not a directory");
  }
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no file '" + path + "'");
    return Status::IOError(Errno("stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file '" + path + "'");
    return Status::IOError(Errno("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IOError(Errno("read", path));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileDurable(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0664);
  if (fd < 0) return Status::IOError(Errno("open", tmp));
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IOError(Errno("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<size_t>(n);
  }
  Status sync = SyncFd(fd, tmp);
  ::close(fd);
  if (!sync.ok()) {
    ::unlink(tmp.c_str());
    return sync;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::IOError(Errno("rename", tmp));
    ::unlink(tmp.c_str());
    return s;
  }
  return SyncDir(DirName(path));
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("unlink", path));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no directory '" + path + "'");
    }
    return Status::IOError(Errno("opendir", path));
  }
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(dir)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("open dir", path));
  Status s = SyncFd(fd, path);
  ::close(fd);
  return s;
}

Status ValidatePathComponent(const std::string& name, const char* what) {
  auto reject = [&](const char* why) {
    return Status::InvalidArgument(std::string(what) + " '" + name +
                                   "' is invalid: " + why +
                                   " (1-64 chars, no '/', no '..')");
  };
  if (name.empty()) return reject("empty");
  if (name.size() > 64) return reject("longer than 64 bytes");
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos ||
      name.find('\0') != std::string::npos) {
    return reject("contains a path separator");
  }
  if (name[0] == '.' || name.find("..") != std::string::npos) {
    return reject("starts with '.' or contains '..'");
  }
  return Status::OK();
}

}  // namespace sdss
