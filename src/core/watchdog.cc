#include "core/watchdog.h"

#include <algorithm>
#include <cstdio>

namespace sdss {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

HealthWatchdog::HealthWatchdog(metrics::History* history, Options options)
    : history_(history), options_(std::move(options)) {
  states_.resize(options_.rules.size());
}

bool HealthWatchdog::ConditionHolds(const HealthRule& rule) {
  switch (rule.kind) {
    case HealthRule::Kind::kCounterRateAbove: {
      auto window = history_->Window(rule.window_seconds);
      if (!window.ok()) return false;  // Too young to judge.
      const metrics::WindowEntry* entry = window->Find(rule.metric);
      return entry != nullptr && entry->kind == metrics::Kind::kCounter &&
             entry->rate_per_sec > rule.threshold;
    }
    case HealthRule::Kind::kGaugeAtLeast:
    case HealthRule::Kind::kGaugeNonZero: {
      // The newest sample alone decides; the streak (below) adds the
      // "pinned for N periods" persistence for kGaugeAtLeast.
      auto window = history_->Window(0.0);
      if (!window.ok()) return false;
      const metrics::WindowEntry* entry = window->Find(rule.metric);
      if (entry == nullptr || entry->kind != metrics::Kind::kGauge) {
        return false;
      }
      if (rule.kind == HealthRule::Kind::kGaugeNonZero) {
        return entry->gauge_last != 0;
      }
      return static_cast<double>(entry->gauge_last) >= rule.threshold;
    }
    case HealthRule::Kind::kHistogramP99Above: {
      auto window = history_->Window(rule.window_seconds);
      if (!window.ok()) return false;
      const metrics::WindowEntry* entry = window->Find(rule.metric);
      if (entry == nullptr || entry->kind != metrics::Kind::kHistogram ||
          entry->hist_delta.count == 0) {
        return false;  // No observations this window: nothing to judge.
      }
      return static_cast<double>(entry->hist_delta.P99()) > rule.threshold;
    }
  }
  return false;
}

void HealthWatchdog::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;
  bool all_ok = true;
  for (size_t i = 0; i < options_.rules.size(); ++i) {
    const HealthRule& rule = options_.rules[i];
    RuleState& state = states_[i];
    const bool hit = ConditionHolds(rule);
    state.hit_streak = hit ? state.hit_streak + 1 : 0;
    const bool firing = state.hit_streak >= std::max(1, rule.consecutive);
    if (firing != state.firing) {
      LogEvent(options_.events,
               firing ? EventSeverity::kError : EventSeverity::kInfo,
               "watchdog", firing ? "rule_fired" : "rule_cleared", 0,
               {{"rule", rule.name},
                {"metric", rule.metric},
                {"threshold", FormatDouble(rule.threshold)}});
    }
    state.firing = firing;
    all_ok = all_ok && !firing;
  }
  ready_.store(all_ok, std::memory_order_release);
}

std::vector<std::string> HealthWatchdog::failing() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (size_t i = 0; i < options_.rules.size(); ++i) {
    if (states_[i].firing) out.push_back(options_.rules[i].name);
  }
  return out;
}

uint64_t HealthWatchdog::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

std::vector<HealthRule> HealthWatchdog::DefaultRules(size_t quick_depth_max,
                                                     uint64_t fsync_p99_us) {
  std::vector<HealthRule> rules;
  // The front door is surviving on backoff: fds or socket buffers are
  // exhausted and connections are waiting in the backlog.
  HealthRule accept;
  accept.name = "accept_retries_climbing";
  accept.kind = HealthRule::Kind::kCounterRateAbove;
  accept.metric = "server_accept_retries";
  accept.threshold = 1.0;
  accept.window_seconds = 60.0;
  rules.push_back(std::move(accept));
  // The interactive lane has been at its admission bound for three
  // straight periods: every new QUERY is being shed with BUSY.
  HealthRule lane;
  lane.name = "quick_lane_pinned";
  lane.kind = HealthRule::Kind::kGaugeAtLeast;
  lane.metric = "workbench_quick_queued";
  lane.threshold = static_cast<double>(quick_depth_max);
  lane.consecutive = 3;
  rules.push_back(std::move(lane));
  // A poisoned journal means writes are no longer durable; nothing
  // state-changing should be routed here until an operator intervenes.
  HealthRule journal;
  journal.name = "journal_poisoned";
  journal.kind = HealthRule::Kind::kGaugeNonZero;
  journal.metric = "persist_journal_poisoned";
  rules.push_back(std::move(journal));
  // Sync latency through the floor: admission throughput is bounded by
  // the synced append, so a sick disk shows up here first.
  HealthRule fsync;
  fsync.name = "fsync_p99_high";
  fsync.kind = HealthRule::Kind::kHistogramP99Above;
  fsync.metric = "persist_journal_fsync_us";
  fsync.threshold = static_cast<double>(fsync_p99_us);
  fsync.window_seconds = 60.0;
  rules.push_back(std::move(fsync));
  return rules;
}

}  // namespace sdss
