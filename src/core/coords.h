// Celestial coordinate systems and Cartesian <-> spherical conversion.
//
// The paper: "We store the angular coordinates in a Cartesian form ... The
// coordinates in the different celestial coordinate systems (Equatorial,
// Galactic, Supergalactic, etc) can be constructed from the Cartesian
// coordinates on the fly." This module provides exactly that: a single unit
// vector per object plus rotation matrices between frames, so constraints
// expressed in any frame become linear half-space tests on (x, y, z).

#ifndef SDSS_CORE_COORDS_H_
#define SDSS_CORE_COORDS_H_

#include <string>

#include "core/status.h"
#include "core/vec3.h"

namespace sdss {

/// Celestial reference frames supported by the archive.
enum class Frame {
  kEquatorial,    ///< J2000 right ascension / declination.
  kGalactic,      ///< Galactic longitude / latitude (l, b).
  kSupergalactic  ///< de Vaucouleurs supergalactic (SGL, SGB).
};

/// Returns "Equatorial", "Galactic" or "Supergalactic".
const char* FrameName(Frame frame);

/// Parses a frame name (case-insensitive); accepts "eq"/"gal"/"sgal" too.
Result<Frame> FrameFromName(const std::string& name);

/// A position on the celestial sphere in a named frame, in degrees.
/// lon is RA / l / SGL in [0, 360); lat is Dec / b / SGB in [-90, 90].
struct SphericalCoord {
  double lon_deg = 0.0;
  double lat_deg = 0.0;
  Frame frame = Frame::kEquatorial;
};

/// Converts spherical (degrees, in its own frame) to a unit vector in the
/// same frame's Cartesian basis.
Vec3 UnitVectorFromSpherical(double lon_deg, double lat_deg);

/// Converts a unit vector (assumed normalized) to spherical degrees in the
/// same frame. lon in [0, 360), lat in [-90, 90]. At the poles lon is 0.
void SphericalFromUnitVector(const Vec3& v, double* lon_deg, double* lat_deg);

/// Rotation matrix that maps Equatorial(J2000) unit vectors into `frame`.
/// Identity for kEquatorial.
const Matrix3& RotationFromEquatorial(Frame frame);

/// Rotation matrix that maps `frame` unit vectors back into Equatorial.
const Matrix3& RotationToEquatorial(Frame frame);

/// Transforms a unit vector between frames.
Vec3 TransformFrame(const Vec3& v, Frame from, Frame to);

/// Converts a spherical coordinate in any frame to the Equatorial unit
/// vector used as the canonical internal representation.
Vec3 EquatorialUnitVector(const SphericalCoord& c);

/// Converts a canonical Equatorial unit vector to spherical degrees in the
/// requested frame.
SphericalCoord ToSpherical(const Vec3& equatorial_unit, Frame frame);

/// Great-circle (angular) distance between two unit vectors, radians.
inline double AngularDistanceRad(const Vec3& a, const Vec3& b) {
  return a.AngleTo(b);
}

/// Great-circle distance between (ra, dec) pairs in degrees, result degrees.
double AngularDistanceDeg(double ra1_deg, double dec1_deg, double ra2_deg,
                          double dec2_deg);

}  // namespace sdss

#endif  // SDSS_CORE_COORDS_H_
