// The multi-tier archive pipeline of Figure 2.
//
// "Telescope data (T) is shipped on tapes to FNAL, where it is processed
// into the Operational Archive (OA). Calibrated data is transferred into
// the Master Science Archive (MSA) and then to Local Archives (LA). The
// data gets into the public archives (MPA, PA) after approximately 1-2
// years of science verification, and recalibration (if necessary)."
//
// ArchivePipeline tracks every observation chunk through the tiers on
// simulated time, supports recalibration (version bumps that re-publish),
// and answers "what is visible at tier X at time t" -- the F2 benchmark
// replays an observing campaign through it.

#ifndef SDSS_ARCHIVE_ARCHIVE_H_
#define SDSS_ARCHIVE_ARCHIVE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/sim_clock.h"
#include "core/status.h"

namespace sdss::archive {

/// Archive tiers, in pipeline order (Figure 2).
enum class Tier {
  kTelescope = 0,      ///< T: raw tapes at the mountain.
  kOperational = 1,    ///< OA: reduced + calibrated, behind the firewall.
  kMasterScience = 2,  ///< MSA: organized for science use.
  kLocal = 3,          ///< LA: replicas at collaboration sites.
  kMasterPublic = 4,   ///< MPA: verified public master.
  kPublic = 5,         ///< PA: public replicas / WWW access.
};

inline constexpr int kNumTiers = 6;

const char* TierName(Tier t);

/// Per-hop publication delays (defaults follow Figure 2's annotations).
struct PipelineDelays {
  SimSeconds telescope_to_operational = 1 * kSimDay;     ///< Tape shipment.
  SimSeconds operational_to_master = 14 * kSimDay;       ///< "2 weeks".
  SimSeconds master_to_local = 14 * kSimDay;             ///< "2 weeks".
  SimSeconds master_to_master_public = 547 * kSimDay;    ///< "1-2 years".
  SimSeconds master_public_to_public = 7 * kSimDay;      ///< "1 week".
};

/// The lifecycle record of one observation chunk.
struct ChunkRecord {
  int night = 0;
  uint64_t objects = 0;
  uint64_t bytes = 0;
  int version = 1;  ///< Calibration version; bumps re-publish downstream.
  /// Time the current version becomes visible per tier.
  double visible_at[kNumTiers] = {0, 0, 0, 0, 0, 0};
};

/// One tier-transition event, for audit logs / plots.
struct ArchiveEvent {
  int night = 0;
  Tier tier = Tier::kTelescope;
  int version = 1;
  SimSeconds at = 0.0;
};

/// The archive publication pipeline.
class ArchivePipeline {
 public:
  explicit ArchivePipeline(PipelineDelays delays = {});

  /// Records a chunk observed (written to tape) at simulated time `t`.
  Status ObserveChunk(int night, uint64_t objects, uint64_t bytes,
                      SimSeconds t);

  /// Recalibration at time `t` of all chunks with night <= `through_night`:
  /// bumps their version; the new version flows MSA -> LA -> MPA -> PA
  /// with the regular delays starting at `t` ("the archive, or at least a
  /// part of it, be dynamic").
  Status Recalibrate(int through_night, SimSeconds t);

  /// Chunk state; NotFound for unknown nights.
  Result<ChunkRecord> GetChunk(int night) const;

  /// Objects visible at `tier` at time `t` (current versions only).
  uint64_t ObjectsVisible(Tier tier, SimSeconds t) const;
  uint64_t BytesVisible(Tier tier, SimSeconds t) const;

  /// Latency from observation to public availability for one chunk.
  Result<SimSeconds> TimeToPublic(int night) const;

  /// All transition events, time-ordered.
  std::vector<ArchiveEvent> Events() const;

  size_t chunk_count() const { return chunks_.size(); }

 private:
  void Publish(ChunkRecord* rec, SimSeconds observed_at);

  PipelineDelays delays_;
  std::map<int, ChunkRecord> chunks_;
  std::vector<ArchiveEvent> events_;
};

/// A set of local-archive replicas with per-site replication lag on top
/// of the MSA availability ("Science archive data is replicated to Local
/// Archives"). Site 0 is the closest mirror.
class LocalArchiveSet {
 public:
  /// `site_lags` holds each site's extra delay after MSA visibility.
  explicit LocalArchiveSet(std::vector<SimSeconds> site_lags)
      : lags_(std::move(site_lags)) {}

  size_t site_count() const { return lags_.size(); }

  /// Objects visible at `site` at `t`, given the pipeline state.
  uint64_t ObjectsVisible(const ArchivePipeline& pipeline, size_t site,
                          SimSeconds t) const;

  /// Maximum replication lag across sites for a chunk (staleness bound).
  SimSeconds MaxLag() const;

 private:
  std::vector<SimSeconds> lags_;
};

}  // namespace sdss::archive

#endif  // SDSS_ARCHIVE_ARCHIVE_H_
