// Materialized shard stores for the replicated server fleet.
//
// ReplicationManager decides WHERE containers live; ShardedStore makes
// that placement physical: every server gets an ObjectStore holding all
// the containers it replicates (primary or not), so when a server is
// marked down its containers can be re-routed to a surviving replica
// without moving any data. LiveShards() exposes the current routing as
// the query::Shard set the FederatedQueryEngine fans out over.

#ifndef SDSS_ARCHIVE_SHARDED_STORE_H_
#define SDSS_ARCHIVE_SHARDED_STORE_H_

#include <mutex>
#include <vector>

#include "archive/replication.h"
#include "catalog/object_store.h"
#include "core/status.h"
#include "query/federated_engine.h"

namespace sdss::archive {

/// Owns one materialized ObjectStore per server plus the replication
/// routing over them.
///
/// Thread-safety: MarkServerDown/Up and LiveShards may interleave from
/// any threads; the shard stores themselves are immutable after
/// construction, so queries running against a previously obtained
/// LiveShards() snapshot are never invalidated (a downed server's store
/// stays readable -- it is the routing that stops pointing at it).
class ShardedStore {
 public:
  /// Materializes the fleet from `source` under `options` (placement via
  /// ReplicationManager::AssignFrom: primaries round-robin, base_replicas
  /// copies of every container).
  ShardedStore(const catalog::ObjectStore& source,
               ReplicationOptions options);

  size_t num_servers() const { return stores_.size(); }

  /// The materialized store of one server: every container it holds a
  /// replica of (not just the ones it currently serves).
  const catalog::ObjectStore& server_store(size_t server) const {
    return stores_[server];
  }

  bool server_up(size_t server) const;

  /// Failure injection / recovery. Routing changes take effect on the
  /// next LiveShards() call.
  Status MarkServerDown(size_t server);
  Status MarkServerUp(size_t server);

  /// Fleet-wide store epoch: the sum of every shard store's mutation
  /// generation (catalog::ObjectStore::epoch). Any data mutation on any
  /// server moves it; routing-only events (MarkServerDown/Up) and
  /// replica promotion (which copies data it already serves) do not, so
  /// cached query results survive failover but never survive a write.
  uint64_t Epoch() const;

  /// Access-heat tracking, forwarded to the ReplicationManager.
  void RecordAccess(uint64_t container, uint64_t count = 1);

  /// Recorded accesses of one container (0 for unknown containers).
  uint64_t HeatOf(uint64_t container) const;

  /// Promotes the hottest containers AND makes the promotion physical:
  /// the heat-chosen servers receive a copy of each promoted container
  /// (copied from an existing replica), and the next LiveShards() routes
  /// the container to its new preferred server. This is a provisioning
  /// operation that grows shard stores in place: do not run it while
  /// queries execute against a previously obtained LiveShards snapshot.
  Status PromoteHotContainers(double top_fraction, size_t extra);

  /// Replica servers of one container, preferred first.
  ///
  /// With `join_sep_arcsec` > 0 the order feeds the predicted network
  /// cost of a neighbor join into the routing choice: for each replica
  /// server the boundary-band estimate (the ShardPrediction
  /// bytes_shipped model) prices the ghost traffic the server would
  /// RECEIVE from adjacent containers currently served elsewhere, and
  /// the replica that minimizes predicted shipping moves to the front --
  /// but only when the shipping saving dominates the container's own
  /// scan bytes, so cheap scans keep the heat/primary-preferred order.
  /// `join_sep_arcsec` <= 0 preserves the plain placement order.
  Result<std::vector<size_t>> ReplicasFor(
      uint64_t container, double join_sep_arcsec = 0.0) const;

  /// Current routing: every container assigned to its first live replica
  /// (primary preferred), grouped per server. Servers with nothing to
  /// serve are omitted. Fails with the router's Unavailable-flavored
  /// error when any container has lost every replica -- a clean refusal
  /// instead of a silent partial result.
  Result<std::vector<query::Shard>> LiveShards() const;

  /// Placement statistics (all replicas, up or down).
  PlacementStats Stats() const;

 private:
  mutable std::mutex mu_;
  ReplicationManager manager_;
  std::vector<catalog::ObjectStore> stores_;
  std::vector<bool> up_;
};

}  // namespace sdss::archive

#endif  // SDSS_ARCHIVE_SHARDED_STORE_H_
