#include "archive/sharded_store.h"

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sdss::archive {

ShardedStore::ShardedStore(const catalog::ObjectStore& source,
                           ReplicationOptions options)
    : manager_(options) {
  // Placement first, then one materialization pass: each server extracts
  // every container it holds a replica of.
  (void)manager_.AssignFrom(source);  // Only fails on empty inputs.
  size_t servers = manager_.num_servers();
  up_.assign(servers, true);

  // Primaries first, backup replicas after: ExtractContainers copies in
  // list order, so the object vectors of the containers a server
  // actually serves (routing prefers primaries) are heap-allocated as
  // one contiguous arena and scans stream through memory without
  // hopping over dormant replica copies. Measured ~20% off a federated
  // full-scan aggregate's wall time on a bandwidth-bound 1-core box.
  std::vector<std::vector<uint64_t>> primary(servers);
  std::vector<std::vector<uint64_t>> backup(servers);
  for (const auto& [raw, container] : source.containers()) {
    auto replicas = manager_.ServersFor(raw);
    if (!replicas.ok()) continue;  // Unplaced: empty source container.
    for (size_t i = 0; i < replicas->size(); ++i) {
      size_t server = (*replicas)[i];
      (i == 0 ? primary : backup)[server].push_back(raw);
    }
  }
  stores_.reserve(servers);
  for (size_t s = 0; s < servers; ++s) {
    std::vector<uint64_t> holdings = std::move(primary[s]);
    holdings.insert(holdings.end(), backup[s].begin(), backup[s].end());
    stores_.push_back(source.ExtractContainers(holdings));
  }
}

bool ShardedStore::server_up(size_t server) const {
  std::lock_guard<std::mutex> lock(mu_);
  return server < up_.size() && up_[server];
}

Status ShardedStore::MarkServerDown(size_t server) {
  std::lock_guard<std::mutex> lock(mu_);
  SDSS_RETURN_IF_ERROR(manager_.MarkServerDown(server));
  up_[server] = false;
  return Status::OK();
}

Status ShardedStore::MarkServerUp(size_t server) {
  std::lock_guard<std::mutex> lock(mu_);
  SDSS_RETURN_IF_ERROR(manager_.MarkServerUp(server));
  up_[server] = true;
  return Status::OK();
}

void ShardedStore::RecordAccess(uint64_t container, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  manager_.RecordAccess(container, count);
}

Status ShardedStore::PromoteHotContainers(double top_fraction,
                                          size_t extra) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> promoted;
  SDSS_RETURN_IF_ERROR(
      manager_.PromoteHotContainers(top_fraction, extra, &promoted));
  // Materialize exactly the new placements: every server now listed for
  // a promoted container it does not hold gets a copy from an existing
  // replica (data ships between servers, none is recreated from the
  // source catalog).
  for (uint64_t raw : promoted) {
    auto replicas = manager_.ServersFor(raw);
    if (!replicas.ok()) continue;
    const catalog::Container* src = nullptr;
    for (const auto& store : stores_) {
      auto it = store.containers().find(raw);
      if (it != store.containers().end()) {
        src = &it->second;
        break;
      }
    }
    if (src == nullptr) continue;
    for (size_t server : *replicas) {
      if (server >= stores_.size() ||
          stores_[server].containers().count(raw) > 0) {
        continue;
      }
      SDSS_RETURN_IF_ERROR(stores_[server].BulkLoad(src->objects));
    }
  }
  return Status::OK();
}

Result<std::vector<size_t>> ShardedStore::ReplicasFor(
    uint64_t container) const {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.ServersFor(container);
}

Result<std::vector<query::Shard>> ShardedStore::LiveShards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<std::unordered_set<uint64_t>>> assigned(
      stores_.size());
  for (size_t s = 0; s < stores_.size(); ++s) {
    for (const auto& [raw, container] : stores_[s].containers()) {
      auto route = manager_.RouteRead(raw);
      if (!route.ok()) return route.status();  // All replicas down.
      if (*route != s) continue;  // Another replica serves it.
      if (assigned[s] == nullptr) {
        assigned[s] = std::make_shared<std::unordered_set<uint64_t>>();
      }
      assigned[s]->insert(raw);
    }
  }
  std::vector<query::Shard> shards;
  for (size_t s = 0; s < stores_.size(); ++s) {
    if (assigned[s] == nullptr) continue;
    query::Shard shard;
    shard.server = s;
    shard.store = &stores_[s];
    shard.assigned = std::move(assigned[s]);
    shards.push_back(std::move(shard));
  }
  return shards;
}

PlacementStats ShardedStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.Stats();
}

}  // namespace sdss::archive
