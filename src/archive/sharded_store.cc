#include "archive/sharded_store.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/angle.h"
#include "htm/trixel.h"

namespace sdss::archive {

ShardedStore::ShardedStore(const catalog::ObjectStore& source,
                           ReplicationOptions options)
    : manager_(options) {
  // Placement first, then one materialization pass: each server extracts
  // every container it holds a replica of.
  (void)manager_.AssignFrom(source);  // Only fails on empty inputs.
  size_t servers = manager_.num_servers();
  up_.assign(servers, true);

  // Primaries first, backup replicas after: ExtractContainers copies in
  // list order, so the object vectors of the containers a server
  // actually serves (routing prefers primaries) are heap-allocated as
  // one contiguous arena and scans stream through memory without
  // hopping over dormant replica copies. Measured ~20% off a federated
  // full-scan aggregate's wall time on a bandwidth-bound 1-core box.
  std::vector<std::vector<uint64_t>> primary(servers);
  std::vector<std::vector<uint64_t>> backup(servers);
  for (const auto& [raw, container] : source.containers()) {
    auto replicas = manager_.ServersFor(raw);
    if (!replicas.ok()) continue;  // Unplaced: empty source container.
    for (size_t i = 0; i < replicas->size(); ++i) {
      size_t server = (*replicas)[i];
      (i == 0 ? primary : backup)[server].push_back(raw);
    }
  }
  stores_.reserve(servers);
  for (size_t s = 0; s < servers; ++s) {
    std::vector<uint64_t> holdings = std::move(primary[s]);
    holdings.insert(holdings.end(), backup[s].begin(), backup[s].end());
    stores_.push_back(source.ExtractContainers(holdings));
  }
}

bool ShardedStore::server_up(size_t server) const {
  std::lock_guard<std::mutex> lock(mu_);
  return server < up_.size() && up_[server];
}

Status ShardedStore::MarkServerDown(size_t server) {
  std::lock_guard<std::mutex> lock(mu_);
  SDSS_RETURN_IF_ERROR(manager_.MarkServerDown(server));
  up_[server] = false;
  return Status::OK();
}

Status ShardedStore::MarkServerUp(size_t server) {
  std::lock_guard<std::mutex> lock(mu_);
  SDSS_RETURN_IF_ERROR(manager_.MarkServerUp(server));
  up_[server] = true;
  return Status::OK();
}

uint64_t ShardedStore::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t epoch = 0;
  for (const auto& store : stores_) epoch += store.epoch();
  return epoch;
}

void ShardedStore::RecordAccess(uint64_t container, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  manager_.RecordAccess(container, count);
}

uint64_t ShardedStore::HeatOf(uint64_t container) const {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.HeatOf(container);
}

Status ShardedStore::PromoteHotContainers(double top_fraction,
                                          size_t extra) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> promoted;
  SDSS_RETURN_IF_ERROR(
      manager_.PromoteHotContainers(top_fraction, extra, &promoted));
  // Materialize exactly the new placements: every server now listed for
  // a promoted container it does not hold gets a copy from an existing
  // replica (data ships between servers, none is recreated from the
  // source catalog).
  for (uint64_t raw : promoted) {
    auto replicas = manager_.ServersFor(raw);
    if (!replicas.ok()) continue;
    const catalog::Container* src = nullptr;
    for (const auto& store : stores_) {
      auto it = store.containers().find(raw);
      if (it != store.containers().end()) {
        src = &it->second;
        break;
      }
    }
    if (src == nullptr) continue;
    for (size_t server : *replicas) {
      if (server >= stores_.size() ||
          stores_[server].containers().count(raw) > 0) {
        continue;
      }
      // Promotion copies data the fleet already serves: no result any
      // reader could have cached changes, so the copy must not look
      // like a mutation. BulkLoad bumps the receiving store's epoch;
      // reinstate it.
      const uint64_t epoch = stores_[server].epoch();
      SDSS_RETURN_IF_ERROR(stores_[server].BulkLoad(src->rows()));
      stores_[server].RestoreEpoch(epoch);
    }
  }
  return Status::OK();
}

Result<std::vector<size_t>> ShardedStore::ReplicasFor(
    uint64_t container, double join_sep_arcsec) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto replicas = manager_.ServersFor(container);
  if (!replicas.ok() || join_sep_arcsec <= 0.0 || replicas->size() < 2) {
    return replicas;
  }

  // Bytes of one container, read from any server that materialized it.
  auto bytes_of = [this](uint64_t raw) -> uint64_t {
    for (const auto& store : stores_) {
      auto it = store.containers().find(raw);
      if (it != store.containers().end()) return it->second.FullBytes();
    }
    return 0;
  };

  auto id = htm::HtmId::FromRaw(container);
  if (!id.ok()) return replicas;
  const uint64_t scan_bytes = bytes_of(container);

  // Boundary-band fraction: the share of a neighbor's objects within the
  // join radius of the shared edge (same model as ShardPrediction's
  // bytes_shipped estimate).
  int level = id->level();
  double side_deg = 90.0 / static_cast<double>(1u << level);
  double band_frac = std::min(
      1.0, 3.0 * ArcsecToDeg(join_sep_arcsec) / side_deg);

  // Predicted receive-side ghost traffic per candidate server: every
  // adjacent container served by a DIFFERENT server ships its band here.
  std::vector<std::pair<uint64_t, size_t>> neighbor_homes;
  for (htm::HtmId n : htm::Trixel::FromId(*id).Neighbors()) {
    uint64_t nbytes = bytes_of(n.raw());
    if (nbytes == 0) continue;  // Empty or unplaced neighbor trixel.
    auto served_by = manager_.RouteRead(n.raw());
    if (!served_by.ok()) continue;
    neighbor_homes.emplace_back(nbytes, *served_by);
  }
  auto predicted_ship = [&](size_t server) {
    double shipped = 0.0;
    for (const auto& [nbytes, home] : neighbor_homes) {
      if (home != server) shipped += band_frac * static_cast<double>(nbytes);
    }
    return static_cast<uint64_t>(shipped);
  };

  size_t best = 0;
  for (size_t i = 1; i < replicas->size(); ++i) {
    if (predicted_ship((*replicas)[i]) < predicted_ship((*replicas)[best])) {
      best = i;
    }
  }
  // Route to the shipping-minimal replica only when the saving dominates
  // the scan: re-reading the container locally costs its full bytes, so
  // a smaller saving is not worth giving up the heat-preferred copy.
  if (best != 0 && predicted_ship((*replicas)[0]) -
                           predicted_ship((*replicas)[best]) >
                       scan_bytes) {
    size_t chosen = (*replicas)[best];
    replicas->erase(replicas->begin() + static_cast<ptrdiff_t>(best));
    replicas->insert(replicas->begin(), chosen);
  }
  return replicas;
}

Result<std::vector<query::Shard>> ShardedStore::LiveShards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<std::unordered_set<uint64_t>>> assigned(
      stores_.size());
  for (size_t s = 0; s < stores_.size(); ++s) {
    for (const auto& [raw, container] : stores_[s].containers()) {
      auto route = manager_.RouteRead(raw);
      if (!route.ok()) return route.status();  // All replicas down.
      if (*route != s) continue;  // Another replica serves it.
      if (assigned[s] == nullptr) {
        assigned[s] = std::make_shared<std::unordered_set<uint64_t>>();
      }
      assigned[s]->insert(raw);
    }
  }
  std::vector<query::Shard> shards;
  for (size_t s = 0; s < stores_.size(); ++s) {
    if (assigned[s] == nullptr) continue;
    query::Shard shard;
    shard.server = s;
    shard.store = &stores_[s];
    shard.assigned = std::move(assigned[s]);
    shards.push_back(std::move(shard));
  }
  return shards;
}

PlacementStats ShardedStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.Stats();
}

}  // namespace sdss::archive
