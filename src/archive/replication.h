// Partition and replication management across archive servers.
//
// The paper: "The SDSS data is too large to fit on one disk or even one
// server. The base-data objects will be spatially partitioned among the
// servers. As new servers are added, the data will repartition. Some of
// the high-traffic data will be replicated among servers. It is up to the
// database software to manage this partitioning and replication."
//
// ReplicationManager places each clustering container on a primary server
// plus k-1 replicas, tracks per-container access heat, promotes extra
// replicas for the hottest containers, survives server failures as long
// as one replica remains, and rebalances when servers are added --
// reporting the moved-byte fraction.

#ifndef SDSS_ARCHIVE_REPLICATION_H_
#define SDSS_ARCHIVE_REPLICATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "catalog/object_store.h"
#include "core/status.h"

namespace sdss::archive {

/// Placement policy knobs.
struct ReplicationOptions {
  size_t num_servers = 20;
  size_t base_replicas = 2;  ///< Copies of every container (>= 1).
};

/// Aggregate placement statistics.
struct PlacementStats {
  uint64_t containers = 0;
  uint64_t total_bytes = 0;        ///< Sum over all replicas.
  uint64_t max_server_bytes = 0;
  uint64_t min_server_bytes = 0;
  double imbalance = 0.0;          ///< max/mean server bytes.
};

/// Manages container -> server placement with replication.
class ReplicationManager {
 public:
  explicit ReplicationManager(ReplicationOptions options);

  /// (Re)builds the placement from a store's container directory.
  Status AssignFrom(const catalog::ObjectStore& store);

  size_t num_servers() const { return servers_up_.size(); }
  size_t containers() const { return placement_.size(); }

  /// Servers currently holding a replica of `container` (live or not).
  Result<std::vector<size_t>> ServersFor(uint64_t container) const;

  /// A live server to read `container` from, preferring the primary.
  /// Unavailable (all replicas down) returns Unavailable-flavored error.
  Result<size_t> RouteRead(uint64_t container) const;

  /// Access-heat tracking ("high-traffic data").
  void RecordAccess(uint64_t container, uint64_t count = 1);

  /// Recorded accesses of one container (0 for unknown containers).
  uint64_t HeatOf(uint64_t container) const;

  /// Gives the hottest `top_fraction` of containers `extra` additional
  /// replicas on the least-loaded live servers. Each new replica becomes
  /// the preferred read target of its container (load-aware routing, not
  /// just primacy), so promotion actually shifts traffic. When
  /// `promoted` is non-null it receives the ids of containers that
  /// gained at least one replica, so callers can materialize exactly
  /// the new placements.
  Status PromoteHotContainers(double top_fraction, size_t extra,
                              std::vector<uint64_t>* promoted = nullptr);

  /// Failure injection.
  Status MarkServerDown(size_t server);
  Status MarkServerUp(size_t server);

  /// Fraction of containers still readable (>= 1 live replica).
  double AvailableFraction() const;

  /// Adds servers and rebalances primaries round-robin over the new
  /// width. Returns the fraction of placed bytes that moved.
  double AddServers(size_t additional);

  /// Bytes stored on one server (all replicas it holds).
  uint64_t ServerBytes(size_t server) const;

  PlacementStats Stats() const;

 private:
  struct ContainerInfo {
    uint64_t bytes = 0;
    uint64_t heat = 0;
    /// replicas[0] is the preferred read target: the primary from
    /// placement, until a promotion front-inserts a heat-chosen copy.
    std::vector<size_t> replicas;
  };

  size_t LeastLoadedLiveServer(const std::set<size_t>& exclude) const;
  void Rebuild();

  ReplicationOptions options_;
  std::map<uint64_t, ContainerInfo> placement_;
  std::vector<bool> servers_up_;
  std::vector<uint64_t> server_bytes_;
};

}  // namespace sdss::archive

#endif  // SDSS_ARCHIVE_REPLICATION_H_
