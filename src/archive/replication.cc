#include "archive/replication.h"

#include <algorithm>

namespace sdss::archive {

ReplicationManager::ReplicationManager(ReplicationOptions options)
    : options_(options) {
  if (options_.num_servers == 0) options_.num_servers = 1;
  if (options_.base_replicas == 0) options_.base_replicas = 1;
  options_.base_replicas =
      std::min(options_.base_replicas, options_.num_servers);
  servers_up_.assign(options_.num_servers, true);
  server_bytes_.assign(options_.num_servers, 0);
}

Status ReplicationManager::AssignFrom(const catalog::ObjectStore& store) {
  placement_.clear();
  std::fill(server_bytes_.begin(), server_bytes_.end(), 0);
  size_t idx = 0;
  for (const auto& [raw, container] : store.containers()) {
    ContainerInfo info;
    info.bytes = container.FullBytes();
    // Primary round-robin in trixel order (spatial balance); replicas on
    // the following servers.
    for (size_t r = 0; r < options_.base_replicas; ++r) {
      size_t server = (idx + r) % servers_up_.size();
      info.replicas.push_back(server);
      server_bytes_[server] += info.bytes;
    }
    placement_[raw] = std::move(info);
    ++idx;
  }
  return Status::OK();
}

Result<std::vector<size_t>> ReplicationManager::ServersFor(
    uint64_t container) const {
  auto it = placement_.find(container);
  if (it == placement_.end()) {
    return Status::NotFound("container not placed: " +
                            std::to_string(container));
  }
  return it->second.replicas;
}

Result<size_t> ReplicationManager::RouteRead(uint64_t container) const {
  auto it = placement_.find(container);
  if (it == placement_.end()) {
    return Status::NotFound("container not placed: " +
                            std::to_string(container));
  }
  for (size_t server : it->second.replicas) {
    if (servers_up_[server]) return server;
  }
  return Status::ResourceExhausted("all replicas down for container " +
                                   std::to_string(container));
}

void ReplicationManager::RecordAccess(uint64_t container, uint64_t count) {
  auto it = placement_.find(container);
  if (it != placement_.end()) it->second.heat += count;
}

uint64_t ReplicationManager::HeatOf(uint64_t container) const {
  auto it = placement_.find(container);
  return it == placement_.end() ? 0 : it->second.heat;
}

size_t ReplicationManager::LeastLoadedLiveServer(
    const std::set<size_t>& exclude) const {
  size_t best = servers_up_.size();
  uint64_t best_bytes = UINT64_MAX;
  for (size_t s = 0; s < servers_up_.size(); ++s) {
    if (!servers_up_[s] || exclude.count(s)) continue;
    if (server_bytes_[s] < best_bytes) {
      best_bytes = server_bytes_[s];
      best = s;
    }
  }
  return best;
}

Status ReplicationManager::PromoteHotContainers(
    double top_fraction, size_t extra, std::vector<uint64_t>* promoted) {
  if (promoted != nullptr) promoted->clear();
  if (top_fraction <= 0.0 || top_fraction > 1.0) {
    return Status::InvalidArgument("top_fraction must be in (0, 1]");
  }
  if (placement_.empty()) {
    return Status::FailedPrecondition("no placement; call AssignFrom");
  }
  // Rank containers by heat.
  std::vector<std::pair<uint64_t, uint64_t>> heat;  // (heat, id)
  heat.reserve(placement_.size());
  for (const auto& [raw, info] : placement_) {
    heat.emplace_back(info.heat, raw);
  }
  std::sort(heat.rbegin(), heat.rend());
  size_t hot_count = std::max<size_t>(
      1, static_cast<size_t>(top_fraction *
                             static_cast<double>(heat.size())));

  for (size_t i = 0; i < hot_count; ++i) {
    ContainerInfo& info = placement_[heat[i].second];
    bool grew = false;
    for (size_t e = 0; e < extra; ++e) {
      std::set<size_t> exclude(info.replicas.begin(), info.replicas.end());
      if (exclude.size() >= servers_up_.size()) break;  // Fully spread.
      size_t target = LeastLoadedLiveServer(exclude);
      if (target >= servers_up_.size()) break;  // No live server left.
      // The fresh copy becomes the preferred read target, so RouteRead
      // actually moves the hot traffic onto the heat-chosen server
      // instead of piling onto the already-loaded primary.
      info.replicas.insert(info.replicas.begin(), target);
      server_bytes_[target] += info.bytes;
      grew = true;
    }
    if (grew && promoted != nullptr) {
      promoted->push_back(heat[i].second);
    }
  }
  return Status::OK();
}

Status ReplicationManager::MarkServerDown(size_t server) {
  if (server >= servers_up_.size()) {
    return Status::OutOfRange("no server " + std::to_string(server));
  }
  servers_up_[server] = false;
  return Status::OK();
}

Status ReplicationManager::MarkServerUp(size_t server) {
  if (server >= servers_up_.size()) {
    return Status::OutOfRange("no server " + std::to_string(server));
  }
  servers_up_[server] = true;
  return Status::OK();
}

double ReplicationManager::AvailableFraction() const {
  if (placement_.empty()) return 1.0;
  uint64_t available = 0;
  for (const auto& [raw, info] : placement_) {
    for (size_t server : info.replicas) {
      if (servers_up_[server]) {
        ++available;
        break;
      }
    }
  }
  return static_cast<double>(available) /
         static_cast<double>(placement_.size());
}

double ReplicationManager::AddServers(size_t additional) {
  if (additional == 0 || placement_.empty()) {
    servers_up_.resize(servers_up_.size() + additional, true);
    server_bytes_.resize(server_bytes_.size() + additional, 0);
    return 0.0;
  }
  size_t new_width = servers_up_.size() + additional;
  servers_up_.resize(new_width, true);
  server_bytes_.assign(new_width, 0);

  uint64_t moved = 0, total = 0;
  size_t idx = 0;
  for (auto& [raw, info] : placement_) {
    std::vector<size_t> fresh;
    for (size_t r = 0; r < options_.base_replicas; ++r) {
      fresh.push_back((idx + r) % new_width);
    }
    // Bytes move where the fresh replica set differs from the old one.
    for (size_t r = 0; r < fresh.size(); ++r) {
      total += info.bytes;
      bool existed =
          std::find(info.replicas.begin(), info.replicas.end(), fresh[r]) !=
          info.replicas.end();
      if (!existed) moved += info.bytes;
      server_bytes_[fresh[r]] += info.bytes;
    }
    info.replicas = std::move(fresh);  // Promotions reset on rebalance.
    ++idx;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(moved) / static_cast<double>(total);
}

uint64_t ReplicationManager::ServerBytes(size_t server) const {
  return server < server_bytes_.size() ? server_bytes_[server] : 0;
}

PlacementStats ReplicationManager::Stats() const {
  PlacementStats s;
  s.containers = placement_.size();
  uint64_t sum = 0;
  s.min_server_bytes = UINT64_MAX;
  for (size_t i = 0; i < server_bytes_.size(); ++i) {
    sum += server_bytes_[i];
    s.max_server_bytes = std::max(s.max_server_bytes, server_bytes_[i]);
    s.min_server_bytes = std::min(s.min_server_bytes, server_bytes_[i]);
  }
  if (server_bytes_.empty()) s.min_server_bytes = 0;
  s.total_bytes = sum;
  double mean = server_bytes_.empty()
                    ? 0.0
                    : static_cast<double>(sum) /
                          static_cast<double>(server_bytes_.size());
  s.imbalance = mean > 0 ? static_cast<double>(s.max_server_bytes) / mean
                         : 0.0;
  return s;
}

}  // namespace sdss::archive
