#include "archive/mydb.h"

#include <algorithm>
#include <utility>

#include "core/io.h"
#include "persist/coding.h"
#include "persist/snapshot.h"

namespace sdss::archive {
namespace {

/// Journal record types. The CREATE record is the commit point of a
/// materialization: it is appended only after the table's snapshot file
/// is durably in place.
enum class MyDbRecord : uint8_t { kCreate = 1, kDrop = 2, kQuota = 3 };

std::string EncodeCreate(const std::string& user, const std::string& name,
                         uint64_t bytes) {
  std::string rec;
  persist::PutFixed8(&rec, static_cast<uint8_t>(MyDbRecord::kCreate));
  persist::PutLengthPrefixed(&rec, user);
  persist::PutLengthPrefixed(&rec, name);
  persist::PutFixed64(&rec, bytes);
  return rec;
}

std::string EncodeDrop(const std::string& user, const std::string& name) {
  std::string rec;
  persist::PutFixed8(&rec, static_cast<uint8_t>(MyDbRecord::kDrop));
  persist::PutLengthPrefixed(&rec, user);
  persist::PutLengthPrefixed(&rec, name);
  return rec;
}

std::string EncodeQuota(const std::string& user, uint64_t quota) {
  std::string rec;
  persist::PutFixed8(&rec, static_cast<uint8_t>(MyDbRecord::kQuota));
  persist::PutLengthPrefixed(&rec, user);
  persist::PutFixed64(&rec, quota);
  return rec;
}

/// State a journal replay reconstructs before any snapshot is read.
struct ReplayedState {
  /// user -> name -> committed payload bytes.
  std::map<std::string, std::map<std::string, uint64_t>> live;
  std::map<std::string, uint64_t> quotas;
};

Status ApplyRecord(std::string_view record, ReplayedState* state) {
  persist::Cursor cursor(record);
  uint8_t type = 0;
  if (!cursor.GetFixed8(&type)) {
    return Status::Corruption("mydb journal record is empty");
  }
  std::string_view user, name;
  uint64_t bytes = 0;
  switch (static_cast<MyDbRecord>(type)) {
    case MyDbRecord::kCreate:
      if (!cursor.GetLengthPrefixed(&user) ||
          !cursor.GetLengthPrefixed(&name) || !cursor.GetFixed64(&bytes)) {
        return Status::Corruption("bad mydb CREATE record");
      }
      state->live[std::string(user)][std::string(name)] = bytes;
      return Status::OK();
    case MyDbRecord::kDrop:
      if (!cursor.GetLengthPrefixed(&user) ||
          !cursor.GetLengthPrefixed(&name)) {
        return Status::Corruption("bad mydb DROP record");
      }
      state->live[std::string(user)].erase(std::string(name));
      return Status::OK();
    case MyDbRecord::kQuota:
      if (!cursor.GetLengthPrefixed(&user) || !cursor.GetFixed64(&bytes)) {
        return Status::Corruption("bad mydb QUOTA record");
      }
      state->quotas[std::string(user)] = bytes;
      return Status::OK();
  }
  return Status::Corruption("unknown mydb journal record type " +
                            std::to_string(type));
}

constexpr char kSnapSuffix[] = ".snap";

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::string MyDb::TablePath(const std::string& user,
                            const std::string& name) const {
  return options_.persist_dir + "/tables/" + user + "/" + name +
         kSnapSuffix;
}

Result<MyDbRecoveryReport> MyDb::AttachStorage() {
  if (options_.persist_dir.empty()) {
    return Status::InvalidArgument(
        "MyDb::AttachStorage requires Options::persist_dir");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) {
    return Status::FailedPrecondition("storage already attached");
  }
  if (!users_.empty()) {
    return Status::FailedPrecondition(
        "AttachStorage must run before any table exists");
  }
  const std::string journal_dir = options_.persist_dir + "/journal";
  const std::string tables_dir = options_.persist_dir + "/tables";
  SDSS_RETURN_IF_ERROR(CreateDirs(tables_dir));

  // 1. The journal decides what exists: replay create/drop/quota.
  MyDbRecoveryReport report;
  ReplayedState state;
  auto replay = persist::ReplayJournal(
      journal_dir,
      [&state](std::string_view rec) { return ApplyRecord(rec, &state); });
  if (!replay.ok()) return replay.status();
  report.journal = *replay;

  // 2. Load exactly the committed tables. A committed CREATE implies its
  // snapshot was durably renamed into place first, so a missing or
  // corrupt file here is real damage, not a crash artifact.
  for (const auto& [user, tables] : state.live) {
    for (const auto& [name, bytes] : tables) {
      const std::string path = TablePath(user, name);
      // Mapped cold start: adopt the snapshot's columns in place (same
      // verification, no rebuild); the legacy path decodes row stores.
      auto store = options_.map_snapshots
                       ? persist::MapSnapshotStore(path)
                       : persist::SnapshotReader(path).Read();
      if (!store.ok()) {
        return Status::Corruption(
            "committed table mydb." + name + " of user '" + user +
            "' failed to load: " + store.status().ToString());
      }
      auto owned =
          std::make_unique<catalog::ObjectStore>(std::move(*store));
      UserSpace& space = users_[user];
      const uint64_t loaded_bytes =
          owned->object_count() * sizeof(catalog::PhotoObj);
      space.used_bytes += loaded_bytes;
      space.tables.emplace(name, std::move(owned));
      ++report.tables_loaded;
      report.bytes_loaded += loaded_bytes;
    }
  }
  for (const auto& [user, quota] : state.quotas) {
    users_[user].quota_override = quota;
  }

  // 3. Sweep debris: .tmp leftovers and snapshots without a committed
  // CREATE (a crash mid-INTO, or a DROP whose unlink did not finish).
  auto user_dirs = ListDir(tables_dir);
  if (user_dirs.ok()) {
    for (const std::string& user : *user_dirs) {
      auto files = ListDir(tables_dir + "/" + user);
      if (!files.ok()) continue;
      for (const std::string& file : *files) {
        std::string name = file;
        bool orphan = false;
        if (HasSuffix(name, ".tmp")) {
          orphan = true;
        } else if (HasSuffix(name, kSnapSuffix)) {
          name.resize(name.size() - (sizeof(kSnapSuffix) - 1));
          auto uit = state.live.find(user);
          orphan =
              uit == state.live.end() || uit->second.count(name) == 0;
        }
        if (orphan) {
          if (RemoveFile(tables_dir + "/" + user + "/" + file).ok()) {
            ++report.orphans_removed;
          }
        }
      }
    }
  }

  // 4. Journal future changes (a fresh segment; old ones stay replayable).
  auto journal = persist::Journal::Open(journal_dir);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(*journal);
  return report;
}

bool MyDb::persistent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_ != nullptr;
}

Status MyDb::Put(const std::string& user, const std::string& name,
                 std::vector<catalog::PhotoObj> objects) {
  SDSS_RETURN_IF_ERROR(ValidatePathComponent(user, "mydb user name"));
  SDSS_RETURN_IF_ERROR(ValidatePathComponent(name, "mydb table name"));
  const uint64_t incoming_bytes =
      objects.size() * sizeof(catalog::PhotoObj);

  // Build the store outside the lock (clustering is the slow part), then
  // publish it atomically: readers either see the whole table or none.
  catalog::StoreOptions store_options;
  store_options.cluster_level = options_.cluster_level;
  store_options.build_tags = false;  // Personal stores hold full objects.
  auto store = std::make_unique<catalog::ObjectStore>(store_options);
  SDSS_RETURN_IF_ERROR(store->BulkLoad(std::move(objects)));

  std::lock_guard<std::mutex> lock(mu_);
  UserSpace& space = users_[user];
  if (space.tables.count(name) > 0) {
    return Status::AlreadyExists("mydb." + name +
                                 " already exists; DROP it first");
  }
  const uint64_t quota = QuotaLocked(&space);
  if (space.used_bytes + incoming_bytes > quota) {
    return Status::ResourceExhausted(
        "mydb quota exceeded for user '" + user + "': " +
        std::to_string(space.used_bytes + incoming_bytes) + " of " +
        std::to_string(quota) + " bytes");
  }
  if (journal_ != nullptr) {
    // Durable commit protocol: snapshot file first (atomic rename), THEN
    // the journaled CREATE as the commit point. A crash between the two
    // leaves an orphan file that recovery deletes -- never a visible
    // partial table.
    SDSS_RETURN_IF_ERROR(
        CreateDirs(options_.persist_dir + "/tables/" + user));
    persist::SnapshotWriter writer(TablePath(user, name));
    SDSS_RETURN_IF_ERROR(writer.Write(*store));
    Status committed =
        journal_->Append(EncodeCreate(user, name, incoming_bytes));
    if (!committed.ok()) {
      // Do NOT delete the snapshot: an un-acked CREATE may still reach
      // the disk (the journal is poisoned precisely because its sync
      // state is unknowable), and a durable CREATE without its file
      // would brick recovery. Either the CREATE never lands and the
      // next recovery sweeps the file as an orphan, or it lands and
      // the table is simply... there -- whole and committed.
      return committed;
    }
  }
  space.used_bytes += incoming_bytes;
  space.tables.emplace(name, std::move(store));
  return Status::OK();
}

Result<const catalog::ObjectStore*> MyDb::Find(
    const std::string& user, const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  if (uit != users_.end()) {
    auto tit = uit->second.tables.find(name);
    if (tit != uit->second.tables.end()) return tit->second.get();
  }
  return Status::NotFound("mydb." + name + " does not exist");
}

Status MyDb::Drop(const std::string& user, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  if (uit == users_.end() || uit->second.tables.count(name) == 0) {
    return Status::NotFound("mydb." + name + " does not exist");
  }
  if (journal_ != nullptr) {
    // The DROP record is the commit point; the unlink afterwards is
    // best-effort (recovery sweeps snapshots without a live CREATE).
    SDSS_RETURN_IF_ERROR(journal_->Append(EncodeDrop(user, name)));
    (void)RemoveFile(TablePath(user, name));
  }
  UserSpace& space = uit->second;
  uint64_t bytes =
      space.tables[name]->object_count() * sizeof(catalog::PhotoObj);
  space.used_bytes -= std::min(space.used_bytes, bytes);
  space.tables.erase(name);
  return Status::OK();
}

std::vector<std::string> MyDb::List(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  auto uit = users_.find(user);
  if (uit != users_.end()) {
    for (const auto& [name, store] : uit->second.tables) {
      names.push_back(name);
    }
  }
  return names;
}

Status MyDb::SetQuota(const std::string& user, uint64_t quota_bytes) {
  SDSS_RETURN_IF_ERROR(ValidatePathComponent(user, "mydb user name"));
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) {
    SDSS_RETURN_IF_ERROR(journal_->Append(EncodeQuota(user, quota_bytes)));
  }
  users_[user].quota_override = quota_bytes;
  return Status::OK();
}

uint64_t MyDb::QuotaLocked(const UserSpace* space) const {
  if (space != nullptr && space->quota_override.has_value()) {
    return *space->quota_override;
  }
  return options_.per_user_quota_bytes;
}

uint64_t MyDb::UsedBytes(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  return uit == users_.end() ? 0 : uit->second.used_bytes;
}

uint64_t MyDb::QuotaBytes(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  return QuotaLocked(uit == users_.end() ? nullptr : &uit->second);
}

uint64_t MyDb::RemainingBytes(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  const UserSpace* space = uit == users_.end() ? nullptr : &uit->second;
  const uint64_t quota = QuotaLocked(space);
  const uint64_t used = space == nullptr ? 0 : space->used_bytes;
  return used >= quota ? 0 : quota - used;
}

query::MyDbResolver MyDb::ResolverFor(const std::string& user) const {
  return [this, user](const std::string& name) -> const
         catalog::ObjectStore* {
           auto found = Find(user, name);
           return found.ok() ? *found : nullptr;
         };
}

}  // namespace sdss::archive
