#include "archive/mydb.h"

#include <algorithm>
#include <utility>

namespace sdss::archive {

Status MyDb::Put(const std::string& user, const std::string& name,
                 std::vector<catalog::PhotoObj> objects) {
  if (name.empty()) {
    return Status::InvalidArgument("mydb table name is empty");
  }
  const uint64_t incoming_bytes =
      objects.size() * sizeof(catalog::PhotoObj);

  // Build the store outside the lock (clustering is the slow part), then
  // publish it atomically: readers either see the whole table or none.
  catalog::StoreOptions store_options;
  store_options.cluster_level = options_.cluster_level;
  store_options.build_tags = false;  // Personal stores hold full objects.
  auto store = std::make_unique<catalog::ObjectStore>(store_options);
  SDSS_RETURN_IF_ERROR(store->BulkLoad(std::move(objects)));

  std::lock_guard<std::mutex> lock(mu_);
  UserSpace& space = users_[user];
  if (space.tables.count(name) > 0) {
    return Status::AlreadyExists("mydb." + name +
                                 " already exists; DROP it first");
  }
  if (space.used_bytes + incoming_bytes > options_.per_user_quota_bytes) {
    return Status::ResourceExhausted(
        "mydb quota exceeded for user '" + user + "': " +
        std::to_string(space.used_bytes + incoming_bytes) + " of " +
        std::to_string(options_.per_user_quota_bytes) + " bytes");
  }
  space.used_bytes += incoming_bytes;
  space.tables.emplace(name, std::move(store));
  return Status::OK();
}

Result<const catalog::ObjectStore*> MyDb::Find(
    const std::string& user, const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  if (uit != users_.end()) {
    auto tit = uit->second.tables.find(name);
    if (tit != uit->second.tables.end()) return tit->second.get();
  }
  return Status::NotFound("mydb." + name + " does not exist");
}

Status MyDb::Drop(const std::string& user, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  if (uit == users_.end() || uit->second.tables.count(name) == 0) {
    return Status::NotFound("mydb." + name + " does not exist");
  }
  UserSpace& space = uit->second;
  uint64_t bytes =
      space.tables[name]->object_count() * sizeof(catalog::PhotoObj);
  space.used_bytes -= std::min(space.used_bytes, bytes);
  space.tables.erase(name);
  return Status::OK();
}

std::vector<std::string> MyDb::List(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  auto uit = users_.find(user);
  if (uit != users_.end()) {
    for (const auto& [name, store] : uit->second.tables) {
      names.push_back(name);
    }
  }
  return names;
}

uint64_t MyDb::UsedBytes(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto uit = users_.find(user);
  return uit == users_.end() ? 0 : uit->second.used_bytes;
}

uint64_t MyDb::RemainingBytes(const std::string& user) const {
  uint64_t used = UsedBytes(user);
  return used >= options_.per_user_quota_bytes
             ? 0
             : options_.per_user_quota_bytes - used;
}

query::MyDbResolver MyDb::ResolverFor(const std::string& user) const {
  return [this, user](const std::string& name) -> const
         catalog::ObjectStore* {
           auto found = Find(user, name);
           return found.ok() ? *found : nullptr;
         };
}

}  // namespace sdss::archive
