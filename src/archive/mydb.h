// MyDB: per-user personal result stores for the batch workbench.
//
// The CasJobs/MyDB model from the paper's successor systems: a long
// query materializes its result set into a named container owned by the
// submitting user ("SELECT ... INTO mydb.<name>"), and follow-up queries
// mine that container ("FROM mydb.<name>") instead of re-scanning --
// or, federated, re-shipping -- the base data. Each named table is a
// full catalog::ObjectStore (HTM-clustered like the archive itself), so
// spatial pruning and the density-map predictions keep working on
// derived data.
//
// Quotas are per user in bytes: a Put that would exceed the owner's
// quota is refused whole (no partial container is ever stored).

#ifndef SDSS_ARCHIVE_MYDB_H_
#define SDSS_ARCHIVE_MYDB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/object_store.h"
#include "core/status.h"
#include "query/qet.h"

namespace sdss::archive {

/// Thread-safe per-user namespace of named result stores.
///
/// Store pointers returned by Find / the resolver stay valid until the
/// table is dropped; callers must not Drop a table while a query planned
/// against it is still executing (the workbench serializes this by
/// running a user's jobs under a concurrency quota).
class MyDb {
 public:
  struct Options {
    /// Byte budget per user, measured in stored PhotoObj payload.
    uint64_t per_user_quota_bytes = 64ull << 20;
    /// Clustering depth of materialized stores (matches the archive
    /// default so covers and predictions behave identically).
    int cluster_level = 6;
  };

  MyDb() : MyDb(Options()) {}
  explicit MyDb(Options options) : options_(options) {}

  /// Materializes `objects` as mydb.<name> for `user`. Fails with
  /// AlreadyExists when the name is taken and ResourceExhausted when the
  /// user's quota would be exceeded; in both cases nothing is stored.
  Status Put(const std::string& user, const std::string& name,
             std::vector<catalog::PhotoObj> objects);

  /// The store backing mydb.<name>, or NotFound.
  Result<const catalog::ObjectStore*> Find(const std::string& user,
                                           const std::string& name) const;

  /// Drops mydb.<name>, releasing its bytes against the quota.
  Status Drop(const std::string& user, const std::string& name);

  /// Table names owned by `user`, sorted.
  std::vector<std::string> List(const std::string& user) const;

  uint64_t UsedBytes(const std::string& user) const;
  uint64_t RemainingBytes(const std::string& user) const;
  const Options& options() const { return options_; }

  /// Binds `user`'s namespace as the planner's mydb resolver: unknown
  /// names resolve to null (the planner reports NotFound). The returned
  /// callable holds a reference to this MyDb; it must not outlive it.
  query::MyDbResolver ResolverFor(const std::string& user) const;

 private:
  struct UserSpace {
    std::map<std::string, std::unique_ptr<catalog::ObjectStore>> tables;
    uint64_t used_bytes = 0;
  };

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, UserSpace> users_;
};

}  // namespace sdss::archive

#endif  // SDSS_ARCHIVE_MYDB_H_
