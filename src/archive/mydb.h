// MyDB: per-user personal result stores for the batch workbench.
//
// The CasJobs/MyDB model from the paper's successor systems: a long
// query materializes its result set into a named container owned by the
// submitting user ("SELECT ... INTO mydb.<name>"), and follow-up queries
// mine that container ("FROM mydb.<name>") instead of re-scanning --
// or, federated, re-shipping -- the base data. Each named table is a
// full catalog::ObjectStore (HTM-clustered like the archive itself), so
// spatial pruning and the density-map predictions keep working on
// derived data.
//
// Quotas are per user in bytes: a Put that would exceed the owner's
// quota is refused whole (no partial container is ever stored).
//
// Durability (optional): with Options::persist_dir set and
// AttachStorage() called, every table lives on disk as a
// persist::Snapshot and every state change (create / drop / quota
// update) is committed through a persist::Journal, with all-or-nothing
// semantics -- the snapshot file is written durably FIRST, then the
// journaled CREATE record is the commit point, so a crash anywhere
// mid-materialization recovers to either the whole table or no trace of
// it, never a partial one. Layout under persist_dir:
//
//   journal/journal-NNNNNN.log    state-change records
//   tables/<user>/<name>.snap     one snapshot per live table
//
// Recovery (inside AttachStorage) replays the journal to learn which
// tables are committed, loads exactly those snapshots, and deletes
// orphans (snapshots with no committed CREATE: the debris of a crash
// mid-INTO).

#ifndef SDSS_ARCHIVE_MYDB_H_
#define SDSS_ARCHIVE_MYDB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/object_store.h"
#include "core/status.h"
#include "persist/journal.h"
#include "query/qet.h"

namespace sdss::archive {

/// What MyDb::AttachStorage rebuilt from disk.
struct MyDbRecoveryReport {
  uint64_t tables_loaded = 0;    ///< Committed snapshots restored.
  uint64_t orphans_removed = 0;  ///< Uncommitted/dropped files deleted.
  uint64_t bytes_loaded = 0;     ///< Sum of restored table payloads.
  persist::ReplayReport journal; ///< The journal replay outcome.
};

/// Thread-safe per-user namespace of named result stores.
///
/// Store pointers returned by Find / the resolver stay valid until the
/// table is dropped; callers must not Drop a table while a query planned
/// against it is still executing (the workbench serializes this by
/// running a user's jobs under a concurrency quota).
class MyDb {
 public:
  struct Options {
    /// Byte budget per user, measured in stored PhotoObj payload.
    uint64_t per_user_quota_bytes = 64ull << 20;
    /// Clustering depth of materialized stores (matches the archive
    /// default so covers and predictions behave identically).
    int cluster_level = 6;
    /// Durable-store root. Empty = in-memory only (tables die with the
    /// process). Non-empty: call AttachStorage() before use.
    std::string persist_dir;
    /// Recover tables as zero-copy mapped snapshots (columnar views
    /// over mmap'd files; no store rebuild) instead of decoding them
    /// into row stores. Query answers are identical either way; off is
    /// only useful for comparing the two paths.
    bool map_snapshots = true;
  };

  MyDb() : MyDb(Options()) {}
  explicit MyDb(Options options) : options_(std::move(options)) {}

  /// Recovers the namespace from Options::persist_dir and starts
  /// journaling subsequent changes there. Must be called before any
  /// table exists (i.e. right after construction) and requires a
  /// non-empty persist_dir. Idempotent per instance: a second call is
  /// FailedPrecondition.
  Result<MyDbRecoveryReport> AttachStorage();

  /// True once AttachStorage succeeded (changes are being journaled).
  bool persistent() const;

  /// Materializes `objects` as mydb.<name> for `user`. Fails with
  /// InvalidArgument when either name is not a valid on-disk name (see
  /// core ValidatePathComponent), AlreadyExists when the name is taken,
  /// and ResourceExhausted when the user's quota would be exceeded; in
  /// all cases nothing is stored, in memory or on disk.
  Status Put(const std::string& user, const std::string& name,
             std::vector<catalog::PhotoObj> objects);

  /// The store backing mydb.<name>, or NotFound.
  Result<const catalog::ObjectStore*> Find(const std::string& user,
                                           const std::string& name) const;

  /// Drops mydb.<name>, releasing its bytes against the quota. Durably
  /// journaled before the table disappears from memory.
  Status Drop(const std::string& user, const std::string& name);

  /// Table names owned by `user`, sorted.
  std::vector<std::string> List(const std::string& user) const;

  /// Overrides the byte quota of one user (journaled when persistent);
  /// other users keep Options::per_user_quota_bytes.
  Status SetQuota(const std::string& user, uint64_t quota_bytes);

  uint64_t UsedBytes(const std::string& user) const;
  uint64_t QuotaBytes(const std::string& user) const;
  uint64_t RemainingBytes(const std::string& user) const;
  const Options& options() const { return options_; }

  /// Binds `user`'s namespace as the planner's mydb resolver: unknown
  /// names resolve to null (the planner reports NotFound). The returned
  /// callable holds a reference to this MyDb; it must not outlive it.
  query::MyDbResolver ResolverFor(const std::string& user) const;

 private:
  struct UserSpace {
    std::map<std::string, std::unique_ptr<catalog::ObjectStore>> tables;
    uint64_t used_bytes = 0;
    std::optional<uint64_t> quota_override;
  };

  uint64_t QuotaLocked(const UserSpace* space) const;
  std::string TablePath(const std::string& user,
                        const std::string& name) const;

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, UserSpace> users_;
  std::unique_ptr<persist::Journal> journal_;  ///< Null until attached.
};

}  // namespace sdss::archive

#endif  // SDSS_ARCHIVE_MYDB_H_
