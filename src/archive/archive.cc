#include "archive/archive.h"

#include <algorithm>

namespace sdss::archive {

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kTelescope:
      return "T";
    case Tier::kOperational:
      return "OA";
    case Tier::kMasterScience:
      return "MSA";
    case Tier::kLocal:
      return "LA";
    case Tier::kMasterPublic:
      return "MPA";
    case Tier::kPublic:
      return "PA";
  }
  return "?";
}

ArchivePipeline::ArchivePipeline(PipelineDelays delays) : delays_(delays) {}

void ArchivePipeline::Publish(ChunkRecord* rec, SimSeconds observed_at) {
  double t = observed_at;
  rec->visible_at[static_cast<int>(Tier::kTelescope)] = t;
  t += delays_.telescope_to_operational;
  rec->visible_at[static_cast<int>(Tier::kOperational)] = t;
  t += delays_.operational_to_master;
  rec->visible_at[static_cast<int>(Tier::kMasterScience)] = t;
  rec->visible_at[static_cast<int>(Tier::kLocal)] =
      t + delays_.master_to_local;
  double mpa = t + delays_.master_to_master_public;
  rec->visible_at[static_cast<int>(Tier::kMasterPublic)] = mpa;
  rec->visible_at[static_cast<int>(Tier::kPublic)] =
      mpa + delays_.master_public_to_public;

  for (int tier = 0; tier < kNumTiers; ++tier) {
    events_.push_back({rec->night, static_cast<Tier>(tier), rec->version,
                       rec->visible_at[tier]});
  }
}

Status ArchivePipeline::ObserveChunk(int night, uint64_t objects,
                                     uint64_t bytes, SimSeconds t) {
  if (chunks_.count(night) > 0) {
    return Status::AlreadyExists("chunk for night " + std::to_string(night));
  }
  ChunkRecord rec;
  rec.night = night;
  rec.objects = objects;
  rec.bytes = bytes;
  Publish(&rec, t);
  chunks_[night] = rec;
  return Status::OK();
}

Status ArchivePipeline::Recalibrate(int through_night, SimSeconds t) {
  bool any = false;
  for (auto& [night, rec] : chunks_) {
    if (night > through_night) continue;
    any = true;
    ++rec.version;
    // The new calibration starts at the MSA and flows downstream; the
    // telescope/OA copies are unaffected (raw data does not change).
    rec.visible_at[static_cast<int>(Tier::kMasterScience)] = t;
    rec.visible_at[static_cast<int>(Tier::kLocal)] =
        t + delays_.master_to_local;
    double mpa = t + delays_.master_to_master_public;
    rec.visible_at[static_cast<int>(Tier::kMasterPublic)] = mpa;
    rec.visible_at[static_cast<int>(Tier::kPublic)] =
        mpa + delays_.master_public_to_public;
    for (int tier = static_cast<int>(Tier::kMasterScience);
         tier < kNumTiers; ++tier) {
      events_.push_back({night, static_cast<Tier>(tier), rec.version,
                         rec.visible_at[tier]});
    }
  }
  if (!any) {
    return Status::NotFound("no chunks at or before night " +
                            std::to_string(through_night));
  }
  return Status::OK();
}

Result<ChunkRecord> ArchivePipeline::GetChunk(int night) const {
  auto it = chunks_.find(night);
  if (it == chunks_.end()) {
    return Status::NotFound("no chunk for night " + std::to_string(night));
  }
  return it->second;
}

uint64_t ArchivePipeline::ObjectsVisible(Tier tier, SimSeconds t) const {
  uint64_t n = 0;
  for (const auto& [night, rec] : chunks_) {
    if (rec.visible_at[static_cast<int>(tier)] <= t) n += rec.objects;
  }
  return n;
}

uint64_t ArchivePipeline::BytesVisible(Tier tier, SimSeconds t) const {
  uint64_t n = 0;
  for (const auto& [night, rec] : chunks_) {
    if (rec.visible_at[static_cast<int>(tier)] <= t) n += rec.bytes;
  }
  return n;
}

Result<SimSeconds> ArchivePipeline::TimeToPublic(int night) const {
  auto rec = GetChunk(night);
  if (!rec.ok()) return rec.status();
  return rec->visible_at[static_cast<int>(Tier::kPublic)] -
         rec->visible_at[static_cast<int>(Tier::kTelescope)];
}

std::vector<ArchiveEvent> ArchivePipeline::Events() const {
  std::vector<ArchiveEvent> out = events_;
  std::sort(out.begin(), out.end(),
            [](const ArchiveEvent& a, const ArchiveEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.night != b.night) return a.night < b.night;
              return static_cast<int>(a.tier) < static_cast<int>(b.tier);
            });
  return out;
}

uint64_t LocalArchiveSet::ObjectsVisible(const ArchivePipeline& pipeline,
                                         size_t site, SimSeconds t) const {
  if (site >= lags_.size()) return 0;
  // Visible at a site when visible at the MSA at least `lag` ago.
  return pipeline.ObjectsVisible(Tier::kMasterScience, t - lags_[site]);
}

SimSeconds LocalArchiveSet::MaxLag() const {
  SimSeconds m = 0.0;
  for (SimSeconds l : lags_) m = std::max(m, l);
  return m;
}

}  // namespace sdss::archive
