// Little-endian binary encoding for journal records and snapshot blocks.
//
// Writers append onto a std::string; readers consume from a Cursor over
// a string_view. Every Get* checks bounds and returns false on underrun,
// so a torn or corrupted byte stream decodes to a clean error, never out
// of bounds.

#ifndef SDSS_PERSIST_CODING_H_
#define SDSS_PERSIST_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sdss::persist {

void PutFixed8(std::string* dst, uint8_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
/// u32 length prefix + raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view v);

/// Appends `count` elements of `elem_size` bytes each as raw
/// little-endian memory (host is assumed little-endian; the snapshot
/// header magic would read back reversed on a big-endian host and fail
/// loudly rather than decode garbage).
void PutRaw(std::string* dst, const void* data, size_t bytes);

/// Bounds-checked sequential reader.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool GetFixed8(uint8_t* v);
  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetLengthPrefixed(std::string_view* v);
  /// Copies `bytes` raw bytes into `out`.
  bool GetRaw(void* out, size_t bytes);
  /// Skips `bytes` without copying.
  bool Skip(size_t bytes);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sdss::persist

#endif  // SDSS_PERSIST_CODING_H_
