#include "persist/snapshot.h"

#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include "core/io.h"
#include "htm/htm_id.h"
#include "persist/coding.h"
#include "persist/crc32.h"

namespace sdss::persist {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'S', 'S', 'S', 'N', 'P', '1'};
/// Version 2 appended epoch:u64 to the header (the trailing-bytes
/// versioning rule of docs/PROTOCOL.md section 8: new fields append,
/// decoders key the header size off the version). Version 1 files are
/// still read, with epoch 0.
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytesV1 = 8 + 4 + 4 + 1 + 8 + 8;
constexpr size_t kTrailerBytes = 4;

size_t HeaderBytes(uint32_t version) {
  return version >= 2 ? kHeaderBytesV1 + 8 : kHeaderBytesV1;
}
/// Fixed bytes of one object across all columns (the n-proportional part
/// of a container block).
constexpr uint64_t kBytesPerObject = 8 +       // obj_id
                                     3 * 8 +   // x y z
                                     2 * 8 +   // ra dec
                                     5 * 4 +   // mag
                                     5 * 4 +   // mag_err
                                     8 * 4 +   // profile
                                     3 * 4 +   // petro sb redshift
                                     4 +       // flags
                                     1 +       // class
                                     8;        // htm_leaf

void PutF32(std::string* dst, float v) {
  PutFixed32(dst, std::bit_cast<uint32_t>(v));
}
void PutF64(std::string* dst, double v) {
  PutFixed64(dst, std::bit_cast<uint64_t>(v));
}
bool GetF32(Cursor* c, float* v) {
  uint32_t bits;
  if (!c->GetFixed32(&bits)) return false;
  *v = std::bit_cast<float>(bits);
  return true;
}
bool GetF64(Cursor* c, double* v) {
  uint64_t bits;
  if (!c->GetFixed64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

Status Corrupt(const std::string& why) {
  return Status::Corruption("snapshot: " + why);
}

void EncodeContainer(const catalog::Container& c, std::string* out) {
  // rows() (not `objects`) so a store adopted from a mapped snapshot
  // re-encodes to the identical byte string.
  const auto& objs = c.rows();
  const uint64_t n = objs.size();
  PutFixed64(out, c.trixel.raw());
  PutFixed64(out, n);
  for (const auto& o : objs) PutFixed64(out, o.obj_id);
  for (const auto& o : objs) PutF64(out, o.pos.x);
  for (const auto& o : objs) PutF64(out, o.pos.y);
  for (const auto& o : objs) PutF64(out, o.pos.z);
  for (const auto& o : objs) PutF64(out, o.ra_deg);
  for (const auto& o : objs) PutF64(out, o.dec_deg);
  for (int b = 0; b < catalog::kNumBands; ++b) {
    for (const auto& o : objs) PutF32(out, o.mag[b]);
  }
  for (int b = 0; b < catalog::kNumBands; ++b) {
    for (const auto& o : objs) PutF32(out, o.mag_err[b]);
  }
  for (int p = 0; p < catalog::kProfileBins; ++p) {
    for (const auto& o : objs) PutF32(out, o.profile[p]);
  }
  for (const auto& o : objs) PutF32(out, o.petro_radius_arcsec);
  for (const auto& o : objs) PutF32(out, o.surface_brightness);
  for (const auto& o : objs) PutF32(out, o.redshift);
  for (const auto& o : objs) PutFixed32(out, o.flags);
  for (const auto& o : objs) {
    PutFixed8(out, static_cast<uint8_t>(o.obj_class));
  }
  for (const auto& o : objs) PutFixed64(out, o.htm_leaf);
}

/// Lays column views over one container's `n`-object column block
/// starting at `bytes` (the byte just past the trixel/n prefix). Offsets
/// mirror EncodeContainer's write order exactly.
catalog::ColumnarBlock IndexColumns(const char* bytes, uint64_t n) {
  using catalog::ColumnRef;
  catalog::ColumnarBlock b;
  b.n = n;
  const char* cur = bytes;
  auto take = [&cur, n](size_t elem_bytes) {
    const char* col = cur;
    cur += elem_bytes * n;
    return col;
  };
  b.obj_id = ColumnRef<uint64_t>(take(8));
  b.x = ColumnRef<double>(take(8));
  b.y = ColumnRef<double>(take(8));
  b.z = ColumnRef<double>(take(8));
  b.ra = ColumnRef<double>(take(8));
  b.dec = ColumnRef<double>(take(8));
  for (int band = 0; band < catalog::kNumBands; ++band) {
    b.mag[static_cast<size_t>(band)] = ColumnRef<float>(take(4));
  }
  for (int band = 0; band < catalog::kNumBands; ++band) {
    b.mag_err[static_cast<size_t>(band)] = ColumnRef<float>(take(4));
  }
  for (int p = 0; p < catalog::kProfileBins; ++p) {
    b.profile[static_cast<size_t>(p)] = ColumnRef<float>(take(4));
  }
  b.petro = ColumnRef<float>(take(4));
  b.sb = ColumnRef<float>(take(4));
  b.redshift = ColumnRef<float>(take(4));
  b.flags = ColumnRef<uint32_t>(take(4));
  b.obj_class = ColumnRef<uint8_t>(take(1));
  b.htm_leaf = ColumnRef<uint64_t>(take(8));
  return b;
}

bool DecodeContainer(Cursor* cursor, uint64_t* trixel_raw,
                     std::vector<catalog::PhotoObj>* objs) {
  uint64_t n = 0;
  if (!cursor->GetFixed64(trixel_raw) || !cursor->GetFixed64(&n)) {
    return false;
  }
  // Division avoids overflow on a corrupt (huge) count.
  if (n > cursor->remaining() / kBytesPerObject) return false;
  objs->assign(n, catalog::PhotoObj{});
  auto& v = *objs;
  bool ok = true;
  for (auto& o : v) ok = ok && cursor->GetFixed64(&o.obj_id);
  for (auto& o : v) ok = ok && GetF64(cursor, &o.pos.x);
  for (auto& o : v) ok = ok && GetF64(cursor, &o.pos.y);
  for (auto& o : v) ok = ok && GetF64(cursor, &o.pos.z);
  for (auto& o : v) ok = ok && GetF64(cursor, &o.ra_deg);
  for (auto& o : v) ok = ok && GetF64(cursor, &o.dec_deg);
  for (int b = 0; b < catalog::kNumBands; ++b) {
    for (auto& o : v) ok = ok && GetF32(cursor, &o.mag[b]);
  }
  for (int b = 0; b < catalog::kNumBands; ++b) {
    for (auto& o : v) ok = ok && GetF32(cursor, &o.mag_err[b]);
  }
  for (int p = 0; p < catalog::kProfileBins; ++p) {
    for (auto& o : v) ok = ok && GetF32(cursor, &o.profile[p]);
  }
  for (auto& o : v) ok = ok && GetF32(cursor, &o.petro_radius_arcsec);
  for (auto& o : v) ok = ok && GetF32(cursor, &o.surface_brightness);
  for (auto& o : v) ok = ok && GetF32(cursor, &o.redshift);
  for (auto& o : v) ok = ok && cursor->GetFixed32(&o.flags);
  for (auto& o : v) {
    uint8_t cls = 0;
    ok = ok && cursor->GetFixed8(&cls);
    o.obj_class = static_cast<catalog::ObjClass>(cls);
  }
  for (auto& o : v) ok = ok && cursor->GetFixed64(&o.htm_leaf);
  return ok;
}

}  // namespace

std::string EncodeSnapshot(const catalog::ObjectStore& store) {
  std::string out;
  uint64_t payload = 0;
  for (const auto& [raw, c] : store.containers()) {
    payload += 16 + c.size() * kBytesPerObject;
  }
  out.reserve(HeaderBytes(kVersion) + payload + kTrailerBytes);
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, kVersion);
  PutFixed32(&out, static_cast<uint32_t>(store.cluster_level()));
  PutFixed8(&out, store.options().build_tags ? 1 : 0);
  PutFixed64(&out, store.container_count());
  PutFixed64(&out, store.object_count());
  PutFixed64(&out, store.epoch());
  // std::map iteration is trixel-ascending: the encoding is canonical,
  // so byte-comparing two snapshots compares the stores.
  for (const auto& [raw, c] : store.containers()) {
    EncodeContainer(c, &out);
  }
  PutFixed32(&out, Crc32(out));
  return out;
}

Result<SnapshotHeader> DecodeSnapshotHeader(std::string_view data) {
  if (data.size() < kHeaderBytesV1 + kTrailerBytes) {
    return Corrupt("file shorter than header + trailer");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  const uint32_t crc =
      Crc32(data.data(), data.size() - kTrailerBytes);
  Cursor trailer(data);
  trailer.Skip(data.size() - kTrailerBytes);
  uint32_t stored_crc = 0;
  trailer.GetFixed32(&stored_crc);
  if (crc != stored_crc) return Corrupt("CRC mismatch");

  Cursor cursor(data);
  cursor.Skip(sizeof(kMagic));
  SnapshotHeader h;
  uint32_t level = 0;
  uint8_t tags = 0;
  if (!cursor.GetFixed32(&h.version) || !cursor.GetFixed32(&level) ||
      !cursor.GetFixed8(&tags) || !cursor.GetFixed64(&h.container_count) ||
      !cursor.GetFixed64(&h.object_count)) {
    return Corrupt("truncated header");
  }
  if (h.version < 1 || h.version > kVersion) {
    return Corrupt("unsupported version " + std::to_string(h.version));
  }
  // Version 2 appended the epoch; version 1 files decode with epoch 0.
  if (h.version >= 2 && !cursor.GetFixed64(&h.epoch)) {
    return Corrupt("truncated header");
  }
  h.cluster_level = static_cast<int>(level);
  h.build_tags = tags != 0;
  return h;
}

Result<catalog::ObjectStore> DecodeSnapshot(std::string_view data) {
  auto header = DecodeSnapshotHeader(data);
  if (!header.ok()) return header.status();

  catalog::StoreOptions options;
  options.cluster_level = header->cluster_level;
  options.build_tags = header->build_tags;
  catalog::ObjectStore store(options);

  Cursor cursor(data.substr(0, data.size() - kTrailerBytes));
  cursor.Skip(HeaderBytes(header->version));
  for (uint64_t i = 0; i < header->container_count; ++i) {
    uint64_t trixel_raw = 0;
    std::vector<catalog::PhotoObj> objects;
    if (!DecodeContainer(&cursor, &trixel_raw, &objects)) {
      return Corrupt("truncated container block " + std::to_string(i));
    }
    auto trixel = htm::HtmId::FromRaw(trixel_raw);
    if (!trixel.ok()) return Corrupt("invalid container trixel id");
    SDSS_RETURN_IF_ERROR(store.AdoptContainer(*trixel, std::move(objects)));
  }
  if (!cursor.done()) return Corrupt("trailing bytes after containers");
  if (store.object_count() != header->object_count) {
    return Corrupt("object count mismatch");
  }
  // Adoption did not bump; the recovered store continues the writer's
  // generation sequence (and re-encodes to the identical byte string).
  store.RestoreEpoch(header->epoch);
  return store;
}

Status SnapshotWriter::Write(const catalog::ObjectStore& store) {
  std::string encoded = EncodeSnapshot(store);
  SDSS_RETURN_IF_ERROR(WriteFileDurable(path_, encoded));
  bytes_written_ = encoded.size();
  return Status::OK();
}

Result<catalog::ObjectStore> SnapshotReader::Read() const {
  auto data = ReadFileToString(path_);
  if (!data.ok()) return data.status();
  return DecodeSnapshot(*data);
}

Result<SnapshotHeader> SnapshotReader::ReadHeader() const {
  auto data = ReadFileToString(path_);
  if (!data.ok()) return data.status();
  return DecodeSnapshotHeader(*data);
}

Result<MappedSnapshot> MappedSnapshot::Open(const std::string& path) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();

  MappedSnapshot snap;
  snap.file_ = std::move(*file);
  const std::string_view data = snap.file_.view();

  auto header = DecodeSnapshotHeader(data);
  if (!header.ok()) return header.status();
  snap.header_ = *header;

  // Walk the container directory, validating exactly what
  // DecodeSnapshot validates, but record view offsets instead of
  // materializing objects.
  Cursor cursor(data.substr(0, data.size() - kTrailerBytes));
  cursor.Skip(HeaderBytes(snap.header_.version));
  uint64_t total_objects = 0;
  uint64_t prev_raw = 0;
  snap.blocks_.reserve(snap.header_.container_count);
  for (uint64_t i = 0; i < snap.header_.container_count; ++i) {
    uint64_t trixel_raw = 0;
    uint64_t n = 0;
    if (!cursor.GetFixed64(&trixel_raw) || !cursor.GetFixed64(&n)) {
      return Corrupt("truncated container block " + std::to_string(i));
    }
    if (n > cursor.remaining() / kBytesPerObject) {
      return Corrupt("truncated container block " + std::to_string(i));
    }
    auto trixel = htm::HtmId::FromRaw(trixel_raw);
    if (!trixel.ok()) return Corrupt("invalid container trixel id");
    if (!snap.blocks_.empty() && trixel_raw <= prev_raw) {
      return Corrupt("container trixels out of order");
    }
    prev_raw = trixel_raw;
    snap.blocks_.emplace_back(
        *trixel, IndexColumns(data.data() + cursor.position(), n));
    cursor.Skip(n * kBytesPerObject);
    total_objects += n;
  }
  if (!cursor.done()) return Corrupt("trailing bytes after containers");
  if (total_objects != snap.header_.object_count) {
    return Corrupt("object count mismatch");
  }
  return snap;
}

Result<catalog::ObjectStore> AdoptStore(
    std::shared_ptr<const MappedSnapshot> snap) {
  if (snap == nullptr) {
    return Status::InvalidArgument("null mapped snapshot");
  }
  catalog::StoreOptions options;
  options.cluster_level = snap->header().cluster_level;
  options.build_tags = snap->header().build_tags;
  catalog::ObjectStore store(options);
  for (const auto& [trixel, block] : snap->blocks()) {
    SDSS_RETURN_IF_ERROR(store.AdoptColumnarContainer(trixel, block, snap));
  }
  store.RestoreEpoch(snap->header().epoch);
  return store;
}

Result<catalog::ObjectStore> MapSnapshotStore(const std::string& path) {
  auto snap = MappedSnapshot::Open(path);
  if (!snap.ok()) return snap.status();
  return AdoptStore(
      std::make_shared<const MappedSnapshot>(std::move(*snap)));
}

}  // namespace sdss::persist
