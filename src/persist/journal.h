// Append-only, CRC32-framed, segment-rotating write-ahead journal.
//
// The durability half of the persistence subsystem: state-changing
// operations (MyDB creates/drops/quota updates, workbench job
// transitions) append one framed record each, and recovery replays the
// records in order to rebuild the in-memory state a crash destroyed.
//
// On-disk format (see BUILDING.md "On-disk formats"):
//
//   <dir>/journal-000001.log, journal-000002.log, ...   (segments)
//
//   segment := frame*
//   frame   := crc:u32 | len:u32 | payload:len bytes
//
// `crc` is the CRC-32 of the len field plus the payload, so neither a
// torn length nor a torn payload can frame-shift the reader. Replay
// walks segments in numeric order and stops cleanly at the first frame
// that is incomplete (torn tail: fewer bytes than the header claims) or
// whose CRC mismatches -- everything before that point is replayed,
// nothing after it is trusted. A reopened journal never appends to an
// old segment (the tail may be torn); it always starts segment max+1,
// so the "last valid frame" boundary is stable across restarts.

#ifndef SDSS_PERSIST_JOURNAL_H_
#define SDSS_PERSIST_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/eventlog.h"
#include "core/metrics.h"
#include "core/status.h"

namespace sdss::persist {

/// Append side. Thread-safe: Append may be called from any thread.
class Journal {
 public:
  struct Options {
    /// A segment exceeding this after an append is closed and the next
    /// append opens a fresh one.
    uint64_t segment_bytes = 4ull << 20;
    /// fdatasync after every append: the record is durable when Append
    /// returns. Turning this off batches syncs into explicit Sync()
    /// calls (faster, but a crash can lose un-synced suffix records --
    /// replay still stops cleanly, it just stops earlier).
    bool sync_each_append = true;
    /// Metrics registry the journal publishes into
    /// (persist_journal_appends counter, persist_journal_append_us /
    /// persist_journal_fsync_us latency histograms). Null = no
    /// instrumentation; must outlive the journal when set. When set,
    /// the journal also registers a persist_journal_poisoned gauge
    /// (0 healthy, 1 poisoned) -- the latched signal the health
    /// watchdog's journal_poisoned rule reads.
    metrics::Registry* metrics = nullptr;
    /// Operational events (component "persist"): poisoning emits one
    /// kError journal_poisoned event carrying the error. Null = no
    /// events; must outlive the journal.
    EventLog* events = nullptr;
  };

  /// Opens `dir` for appending (creating it if needed). Existing
  /// segments are left untouched; appends go to a new segment numbered
  /// one past the highest present.
  static Result<std::unique_ptr<Journal>> Open(const std::string& dir,
                                               Options options);
  static Result<std::unique_ptr<Journal>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one framed record (durable on return when
  /// sync_each_append). After a write or sync failure the journal is
  /// POISONED: the segment may hold a partial frame, and bytes whose
  /// sync failed may still reach the disk later, so no further record
  /// may be appended behind them -- every subsequent Append/Sync
  /// returns the original error. (Replay handles the torn segment; a
  /// reopened journal starts a fresh one.)
  Status Append(std::string_view record);

  /// Flushes appended-but-unsynced records to stable storage.
  Status Sync();

  const std::string& dir() const { return dir_; }
  uint64_t records_appended() const;
  uint64_t current_segment() const;

  /// OK while the journal is healthy; the poisoning error afterwards.
  /// The monitoring plane's /statusz and the watchdog's gauge-based
  /// rule both key off this latch.
  Status health() const;
  bool poisoned() const { return !health().ok(); }

 private:
  Journal(std::string dir, Options options, uint64_t first_segment);

  Status RotateLocked();  ///< Opens segment `segment_ + 1`. Needs mu_.
  Status OpenSegmentLocked(uint64_t segment);

  /// Closes the fd and records `error` as the permanent poison status.
  /// Needs mu_.
  Status PoisonLocked(Status error);

  const std::string dir_;
  const Options options_;
  // Instruments resolved once at construction; all null when
  // Options::metrics is unset.
  metrics::Counter* m_appends_ = nullptr;
  metrics::Histogram* m_append_us_ = nullptr;
  metrics::Histogram* m_fsync_us_ = nullptr;
  metrics::Gauge* g_poisoned_ = nullptr;
  mutable std::mutex mu_;
  Status poisoned_;  ///< Non-OK once an append/sync failed.
  int fd_ = -1;
  uint64_t segment_ = 0;
  uint64_t segment_bytes_written_ = 0;
  uint64_t records_ = 0;
};

/// Outcome of a replay pass.
struct ReplayReport {
  uint64_t records = 0;   ///< Records successfully decoded and applied.
  uint64_t segments = 0;  ///< Segment files visited.
  /// Bytes after the last valid frame that were ignored (torn tail or
  /// trailing corruption). 0 means every byte decoded cleanly.
  uint64_t dropped_bytes = 0;
  /// Human-readable note when dropped_bytes > 0 ("torn frame in
  /// journal-000002.log at offset 128").
  std::string tail_note;
};

/// Replays every valid record of the journal in `dir` in append order,
/// invoking `apply` for each. A non-OK status from `apply` aborts the
/// replay and is returned. A missing directory replays zero records
/// (fresh start). Torn or corrupt tails are not errors: replay stops at
/// the last valid frame and reports what it dropped.
Result<ReplayReport> ReplayJournal(
    const std::string& dir,
    const std::function<Status(std::string_view)>& apply);

/// Names of the journal segment files in `dir`, ascending. Empty when
/// the directory does not exist.
std::vector<std::string> ListJournalSegments(const std::string& dir);

}  // namespace sdss::persist

#endif  // SDSS_PERSIST_JOURNAL_H_
