#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/io.h"
#include "persist/coding.h"
#include "persist/crc32.h"

namespace sdss::persist {
namespace {

constexpr char kSegmentPrefix[] = "journal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr size_t kFrameHeaderBytes = 8;  // crc:u32 + len:u32.
/// Upper bound on one record: anything larger in a length field is
/// corruption, not a record (journal users write KB-scale records).
constexpr uint32_t kMaxRecordBytes = 64u << 20;

std::string SegmentName(uint64_t segment) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%06llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(segment), kSegmentSuffix);
  return buf;
}

/// Parses "journal-NNNNNN.log" -> NNNNNN; 0 if the name does not match.
uint64_t SegmentNumber(const std::string& name) {
  const size_t prefix = sizeof(kSegmentPrefix) - 1;
  const size_t suffix = sizeof(kSegmentSuffix) - 1;
  if (name.size() <= prefix + suffix) return 0;
  if (name.compare(0, prefix, kSegmentPrefix) != 0) return 0;
  if (name.compare(name.size() - suffix, suffix, kSegmentSuffix) != 0) {
    return 0;
  }
  uint64_t n = 0;
  for (size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    n = n * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return n;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// CRC of a frame: the len field followed by the payload.
uint32_t FrameCrc(uint32_t len, std::string_view payload) {
  std::string len_bytes;
  PutFixed32(&len_bytes, len);
  return Crc32(payload.data(), payload.size(), Crc32(len_bytes));
}

}  // namespace

std::vector<std::string> ListJournalSegments(const std::string& dir) {
  std::vector<std::string> segments;
  auto entries = ListDir(dir);
  if (!entries.ok()) return segments;
  for (const std::string& name : *entries) {
    if (SegmentNumber(name) > 0) segments.push_back(name);
  }
  // Fixed-width numbering makes lexicographic == numeric order, but be
  // explicit in case a segment count ever overflows the width.
  std::sort(segments.begin(), segments.end(),
            [](const std::string& a, const std::string& b) {
              return SegmentNumber(a) < SegmentNumber(b);
            });
  return segments;
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& dir,
                                               Options options) {
  SDSS_RETURN_IF_ERROR(CreateDirs(dir));
  uint64_t max_segment = 0;
  for (const std::string& name : ListJournalSegments(dir)) {
    max_segment = std::max(max_segment, SegmentNumber(name));
  }
  // Never append to an existing segment: its tail may be torn, and a
  // frame written after a torn tail would be unreachable to replay.
  std::unique_ptr<Journal> journal(
      new Journal(dir, options, max_segment + 1));
  {
    std::lock_guard<std::mutex> lock(journal->mu_);
    SDSS_RETURN_IF_ERROR(journal->OpenSegmentLocked(max_segment + 1));
  }
  return journal;
}

Journal::Journal(std::string dir, Options options, uint64_t first_segment)
    : dir_(std::move(dir)), options_(options), segment_(first_segment) {
  if (options_.metrics != nullptr) {
    m_appends_ = options_.metrics->GetCounter("persist_journal_appends");
    m_append_us_ =
        options_.metrics->GetHistogram("persist_journal_append_us");
    m_fsync_us_ =
        options_.metrics->GetHistogram("persist_journal_fsync_us");
    // Register at 0 so the watchdog's journal_poisoned rule sees a
    // healthy gauge from the first sample, not a missing instrument.
    g_poisoned_ = options_.metrics->GetGauge("persist_journal_poisoned");
    g_poisoned_->Set(0);
  }
}

Journal::~Journal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Status Journal::OpenSegmentLocked(uint64_t segment) {
  if (fd_ >= 0) {
    if (::fdatasync(fd_) != 0 || ::close(fd_) != 0) {
      fd_ = -1;
      return Status::IOError("closing journal segment: " +
                             std::string(std::strerror(errno)));
    }
    fd_ = -1;
  }
  const std::string path = dir_ + "/" + SegmentName(segment);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
               0664);
  if (fd_ < 0) {
    return Status::IOError("open journal segment '" + path +
                           "': " + std::strerror(errno));
  }
  segment_ = segment;
  segment_bytes_written_ = 0;
  // Make the new directory entry durable so a post-crash replay sees
  // the segment (and with it the ordering boundary).
  return SyncDir(dir_);
}

Status Journal::RotateLocked() { return OpenSegmentLocked(segment_ + 1); }

Status Journal::PoisonLocked(Status error) {
  poisoned_ = error;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (g_poisoned_ != nullptr) g_poisoned_->Set(1);
  LogEvent(options_.events, EventSeverity::kError, "persist",
           "journal_poisoned", 0,
           {{"dir", dir_}, {"error", error.ToString()}});
  return error;
}

Status Journal::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

Status Journal::Append(std::string_view record) {
  if (record.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("journal record exceeds 64 MiB");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + record.size());
  const uint32_t len = static_cast<uint32_t>(record.size());
  PutFixed32(&frame, FrameCrc(len, record));
  PutFixed32(&frame, len);
  frame.append(record.data(), record.size());

  std::lock_guard<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  if (fd_ < 0) return Status::FailedPrecondition("journal is closed");
  const auto t0 = std::chrono::steady_clock::now();
  if (segment_bytes_written_ >= options_.segment_bytes) {
    Status rotated = RotateLocked();
    if (!rotated.ok()) {
      // The old segment is closed and no new one opened: there is
      // nowhere correct to append. Latch it like any other I/O failure
      // so callers (and the watchdog's gauge) see one consistent state.
      return PoisonLocked(std::move(rotated));
    }
  }
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The frame may be partially on disk: nothing may ever be
      // appended behind it (replay could not reach it).
      return PoisonLocked(Status::IOError(
          "journal append: " + std::string(std::strerror(errno))));
    }
    written += static_cast<size_t>(n);
  }
  segment_bytes_written_ += frame.size();
  if (options_.sync_each_append) {
    const auto f0 = std::chrono::steady_clock::now();
    if (::fdatasync(fd_) != 0) {
      // The record was written but not acknowledged durable -- yet the
      // kernel may still flush it later. The only safe stance is to stop
      // appending: the record stays un-acked AND nothing lands behind it.
      return PoisonLocked(Status::IOError(
          "journal sync: " + std::string(std::strerror(errno))));
    }
    if (m_fsync_us_ != nullptr) m_fsync_us_->Record(ElapsedUs(f0));
  }
  ++records_;
  if (m_appends_ != nullptr) m_appends_->Inc();
  if (m_append_us_ != nullptr) m_append_us_->Record(ElapsedUs(t0));
  return Status::OK();
}

Status Journal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  if (fd_ < 0) return Status::FailedPrecondition("journal is closed");
  const auto f0 = std::chrono::steady_clock::now();
  if (::fdatasync(fd_) != 0) {
    return PoisonLocked(Status::IOError(
        "journal sync: " + std::string(std::strerror(errno))));
  }
  if (m_fsync_us_ != nullptr) m_fsync_us_->Record(ElapsedUs(f0));
  return Status::OK();
}

uint64_t Journal::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

uint64_t Journal::current_segment() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_;
}

Result<ReplayReport> ReplayJournal(
    const std::string& dir,
    const std::function<Status(std::string_view)>& apply) {
  ReplayReport report;
  if (!PathExists(dir)) return report;  // Fresh start.
  auto note_tail = [&report](const std::string& what,
                             const std::string& segment, size_t offset) {
    if (!report.tail_note.empty()) report.tail_note += "; ";
    report.tail_note +=
        what + " in " + segment + " at offset " + std::to_string(offset);
  };
  for (const std::string& name : ListJournalSegments(dir)) {
    const std::string path = dir + "/" + name;
    auto data = ReadFileToString(path);
    if (!data.ok()) return data.status();
    ++report.segments;
    Cursor cursor(*data);
    while (!cursor.done()) {
      const size_t frame_start = cursor.position();
      uint32_t crc = 0, len = 0;
      if (!cursor.GetFixed32(&crc) || !cursor.GetFixed32(&len) ||
          len > kMaxRecordBytes || cursor.remaining() < len) {
        // Torn tail: a frame the writer never finished. Everything
        // after it in THIS segment is unreachable (the frame boundary
        // is lost), but later segments were written by later
        // incarnations -- a reopen never appends to a torn segment --
        // so their committed records must still replay. Skip to the
        // next segment instead of aborting the whole journal.
        report.dropped_bytes += data->size() - frame_start;
        note_tail("torn frame", name, frame_start);
        break;
      }
      std::string_view payload(data->data() + cursor.position(), len);
      cursor.Skip(len);
      if (FrameCrc(len, payload) != crc) {
        report.dropped_bytes += data->size() - frame_start;
        note_tail("bad frame CRC", name, frame_start);
        break;
      }
      SDSS_RETURN_IF_ERROR(apply(payload));
      ++report.records;
    }
  }
  return report;
}

}  // namespace sdss::persist
