// Binary columnar snapshots of catalog::ObjectStore.
//
// The checkpoint half of the persistence subsystem: a snapshot is one
// self-verifying file holding a whole store -- every PhotoObj field as
// a per-container column, containers in trixel order -- so a recovered
// store is bit-exact (re-encoding it yields the identical byte string)
// and scans at the same speed as the store that was written: container
// clustering, contiguity, and the tag partition all survive the round
// trip (tags are rebuilt deterministically from the photo columns).
//
// On-disk format (see BUILDING.md "On-disk formats"):
//
//   header   := magic "SDSSSNP1" | version:u32 | cluster_level:u32 |
//               build_tags:u8 | container_count:u64 | object_count:u64 |
//               epoch:u64                                 (version >= 2)
//   container:= trixel:u64 | n:u64 | columns
//   columns  := obj_id[n]:u64 | x[n]:f64 | y[n]:f64 | z[n]:f64 |
//               ra[n]:f64 | dec[n]:f64 | mag[5][n]:f32 |
//               mag_err[5][n]:f32 | profile[8][n]:f32 | petro[n]:f32 |
//               sb[n]:f32 | redshift[n]:f32 | flags[n]:u32 |
//               class[n]:u8 | htm_leaf[n]:u64
//   trailer  := crc:u32   (CRC-32 of every preceding byte)
//
// All integers and IEEE floats are little-endian. Files are written
// durably (temp + fsync + rename), so a crash mid-write leaves at worst
// a `.tmp` leftover and never a readable-but-partial snapshot.

#ifndef SDSS_PERSIST_SNAPSHOT_H_
#define SDSS_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/object_store.h"
#include "core/io.h"
#include "core/status.h"
#include "htm/htm_id.h"

namespace sdss::persist {

/// Decoded snapshot header (a cheap peek that reads no column data).
struct SnapshotHeader {
  uint32_t version = 0;
  int cluster_level = 0;
  bool build_tags = false;
  uint64_t container_count = 0;
  uint64_t object_count = 0;
  /// The store's mutation generation at encode time (see
  /// catalog::ObjectStore::epoch). Version 1 files predate the field and
  /// decode as epoch 0.
  uint64_t epoch = 0;
};

/// Serializes `store` into the snapshot byte format (header + columns +
/// CRC trailer). Deterministic: equal stores encode to equal bytes.
std::string EncodeSnapshot(const catalog::ObjectStore& store);

/// Decodes and verifies a snapshot byte string (magic, version, CRC,
/// exact length) into a freshly built store. Corruption anywhere --
/// truncation, a flipped bit, trailing garbage -- fails with
/// kCorruption; no partial store is ever returned.
Result<catalog::ObjectStore> DecodeSnapshot(std::string_view data);

/// Header of an encoded snapshot without decoding the columns.
Result<SnapshotHeader> DecodeSnapshotHeader(std::string_view data);

/// Writes snapshots durably to one path.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::string path) : path_(std::move(path)) {}

  /// Encodes `store` and durably writes it (temp + fsync + rename).
  Status Write(const catalog::ObjectStore& store);

  const std::string& path() const { return path_; }
  /// Size of the last successful Write, 0 before one.
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Reads and verifies snapshots from one path.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string path) : path_(std::move(path)) {}

  /// Loads the whole store. Any corruption yields kCorruption and no
  /// store.
  Result<catalog::ObjectStore> Read() const;

  /// Verifies the file and returns only its header.
  Result<SnapshotHeader> ReadHeader() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A verified snapshot file held as a read-only memory mapping, with
/// every container's columns indexed as zero-copy views into the mapped
/// bytes. Open() pays one sequential pass for the CRC plus a directory
/// walk; no object is ever materialized. The same corruption cases
/// DecodeSnapshot rejects (bad magic, wrong version, truncation, CRC
/// mismatch, trailing bytes, count mismatches) fail here with
/// kCorruption too.
class MappedSnapshot {
 public:
  /// Maps and verifies `path`, indexing per-container column views.
  static Result<MappedSnapshot> Open(const std::string& path);

  const SnapshotHeader& header() const { return header_; }
  size_t container_count() const { return blocks_.size(); }

  /// The indexed containers, trixel-ascending. Views stay valid only
  /// while this MappedSnapshot (or a sharing store) is alive.
  const std::vector<std::pair<htm::HtmId, catalog::ColumnarBlock>>&
  blocks() const {
    return blocks_;
  }

 private:
  MappedSnapshot() = default;

  MappedFile file_;
  SnapshotHeader header_;
  std::vector<std::pair<htm::HtmId, catalog::ColumnarBlock>> blocks_;
};

/// Builds an ObjectStore whose containers are columnar views into
/// `snap`'s mapping -- the zero-rebuild cold-start path. The store (and
/// every container copy extracted from it later) shares ownership of
/// the mapping, so the views outlive the caller's handle.
Result<catalog::ObjectStore> AdoptStore(
    std::shared_ptr<const MappedSnapshot> snap);

/// Open + AdoptStore in one call: maps `path` and returns a store that
/// serves column scans straight off the file's pages.
Result<catalog::ObjectStore> MapSnapshotStore(const std::string& path);

}  // namespace sdss::persist

#endif  // SDSS_PERSIST_SNAPSHOT_H_
