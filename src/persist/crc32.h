// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip checksum) for journal
// frames and snapshot trailers.

#ifndef SDSS_PERSIST_CRC32_H_
#define SDSS_PERSIST_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sdss::persist {

/// CRC-32 of `data`, continuing from `seed` (pass a previous return
/// value to checksum discontiguous pieces as one stream; 0 starts
/// fresh).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace sdss::persist

#endif  // SDSS_PERSIST_CRC32_H_
