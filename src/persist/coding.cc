#include "persist/coding.h"

#include <cstring>

namespace sdss::persist {

void PutFixed8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutLengthPrefixed(std::string* dst, std::string_view v) {
  PutFixed32(dst, static_cast<uint32_t>(v.size()));
  dst->append(v.data(), v.size());
}

void PutRaw(std::string* dst, const void* data, size_t bytes) {
  dst->append(static_cast<const char*>(data), bytes);
}

bool Cursor::GetFixed8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool Cursor::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return false;
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data() + pos_);
  *v = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
       static_cast<uint32_t>(p[2]) << 16 |
       static_cast<uint32_t>(p[3]) << 24;
  pos_ += 4;
  return true;
}

bool Cursor::GetFixed64(uint64_t* v) {
  uint32_t lo, hi;
  if (remaining() < 8 || !GetFixed32(&lo) || !GetFixed32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | static_cast<uint64_t>(hi) << 32;
  return true;
}

bool Cursor::GetLengthPrefixed(std::string_view* v) {
  uint32_t len;
  size_t saved = pos_;
  if (!GetFixed32(&len)) return false;
  if (remaining() < len) {
    pos_ = saved;
    return false;
  }
  *v = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

bool Cursor::GetRaw(void* out, size_t bytes) {
  if (remaining() < bytes) return false;
  std::memcpy(out, data_.data() + pos_, bytes);
  pos_ += bytes;
  return true;
}

bool Cursor::Skip(size_t bytes) {
  if (remaining() < bytes) return false;
  pos_ += bytes;
  return true;
}

}  // namespace sdss::persist
