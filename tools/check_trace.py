#!/usr/bin/env python3
"""Validates a chrome://tracing JSON capture produced by QueryTrace.

Usage: tools/check_trace.py <trace.json> [<trace.json> ...]

Checks the Trace Event Format invariants our exporter promises
(src/query/trace.cc ToChromeJson):

  - top level: traceEvents list, displayTimeUnit "ms", otherData object
  - every event is a complete ("X") event with name/ts/dur/pid/tid/args
  - timestamps are origin-relative: min(ts) == 0, every ts/dur >= 0
  - tids (display lanes) are positive integers

Exit 0 when every file validates; 1 with a diagnostic otherwise. Used
by the CI trace-smoke step against examples/explain_analyze's output.
"""

import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not readable JSON: {e}")

    if not isinstance(trace, dict):
        return fail(path, "top level is not an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "traceEvents missing or empty")
    if trace.get("displayTimeUnit") != "ms":
        return fail(path, "displayTimeUnit is not 'ms'")
    if not isinstance(trace.get("otherData"), dict):
        return fail(path, "otherData missing")

    min_ts = None
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(path, f"{where} is not an object")
        if ev.get("ph") != "X":
            return fail(path, f"{where}: ph is not 'X'")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f"{where}: missing span name")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                return fail(path, f"{where} ({name}): bad {key}: {v!r}")
        if ev.get("pid") != 1:
            return fail(path, f"{where} ({name}): pid is not 1")
        tid = ev.get("tid")
        if not isinstance(tid, int) or tid < 1:
            return fail(path, f"{where} ({name}): bad tid: {tid!r}")
        if not isinstance(ev.get("args"), dict):
            return fail(path, f"{where} ({name}): args missing")
        min_ts = ev["ts"] if min_ts is None else min(min_ts, ev["ts"])

    if min_ts != 0:
        return fail(path, f"timestamps not origin-relative: min ts {min_ts}")

    print(f"{path}: ok ({len(events)} spans)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return max(check(path) for path in argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
