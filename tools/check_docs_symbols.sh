#!/usr/bin/env bash
# Docs lint: every repo path and ::-qualified own-namespace symbol the
# docs mention must still exist in the tree, so a rename or deletion
# cannot silently strand the documentation. Run from anywhere:
#
#   tools/check_docs_symbols.sh [doc.md ...]
#
# With no arguments, lints docs/*.md, BUILDING.md and ROADMAP.md.
# Exits non-zero after listing every dead reference.

set -u
cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
  DOCS=("$@")
else
  DOCS=(docs/*.md BUILDING.md ROADMAP.md)
fi

fail=0
note() {
  echo "docs-lint: $*" >&2
  fail=1
}

for doc in "${DOCS[@]}"; do
  if [ ! -f "$doc" ]; then
    note "no such doc: $doc"
    continue
  fi

  # 1. Repo paths. Anything shaped like  <top-dir>/.../file.ext  must
  # exist relative to the repo root.
  while IFS= read -r path; do
    [ -e "$path" ] || note "$doc references missing file: $path"
  done < <(grep -oE '\b(src|tests|bench|examples|tools|docs|\.github)/[A-Za-z0-9_./-]+\.(h|cc|cpp|md|sh|yml|json)\b' "$doc" | sort -u)

  # 2. Relative markdown links (http(s) and pure-anchor links skipped).
  # Resolved against the doc's own directory, then the repo root.
  dir=$(dirname "$doc")
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|'#'*) continue ;;
    esac
    t="${target%%#*}"
    [ -z "$t" ] && continue
    [ -e "$dir/$t" ] || [ -e "$t" ] ||
      note "$doc links to missing file: $target"
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' | sort -u)

  # 3. ::-qualified symbols. Foreign namespaces are not ours to check;
  # for everything else every identifier segment must still appear as a
  # word somewhere under src/ -- the level of indirection that survives
  # moves between headers but catches renames and deletions.
  while IFS= read -r sym; do
    case "$sym" in
      std::*|benchmark::*|testing::*|GTest::*) continue ;;
    esac
    missing=""
    while IFS= read -r part; do
      [ -z "$part" ] && continue
      grep -rqw --include='*.h' --include='*.cc' -- "$part" src ||
        missing="$part"
    done < <(printf '%s\n' "$sym" | sed 's/::/\n/g')
    [ -z "$missing" ] ||
      note "$doc references dead symbol: $sym (no '$missing' in src/)"
  done < <(grep -oE '[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_][A-Za-z0-9_]*)+' "$doc" | sort -u)
done

if [ "$fail" -ne 0 ]; then
  echo "docs-lint: FAILED" >&2
  exit 1
fi
echo "docs-lint: OK (${#DOCS[@]} docs checked)"
