#!/usr/bin/env python3
"""Strict validator for a Prometheus text-format (0.0.4) exposition.

Reads the exposition from a file argument (or stdin) and exits nonzero
on the first malformed line. Scoped to what the archive's
Registry::TextExposition emits -- `# TYPE` comments, bare samples, and
histogram families -- but every check is a real text-format rule, so a
conforming general exposition also passes:

  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - every sample is preceded by its family's # TYPE comment
  - TYPE is one of counter / gauge / histogram
  - histogram families expose _bucket (cumulative, ending in le="+Inf"),
    _sum, and _count, with _count == the +Inf bucket
  - sample values parse as numbers

Usage: check_prometheus.py [metrics.txt]
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
BUCKET_RE = re.compile(r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
                       r'\{le="(?P<le>[^"]+)"\}$')


def fail(lineno, line, why):
    print(f"check_prometheus: line {lineno}: {why}: {line!r}",
          file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) > 1:
        text = open(sys.argv[1], "r", encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    if not text:
        print("check_prometheus: empty exposition", file=sys.stderr)
        sys.exit(1)
    if not text.endswith("\n"):
        print("check_prometheus: exposition must end with a newline",
              file=sys.stderr)
        sys.exit(1)

    families = 0
    samples = 0
    fam_name = None
    fam_type = None
    bucket_cumulative = None
    saw_inf = False
    prev_le = None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                fail(lineno, line, "malformed TYPE comment")
            fam_name, fam_type = parts
            if not NAME_RE.match(fam_name):
                fail(lineno, line, f"invalid metric name {fam_name!r}")
            if fam_type not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                fail(lineno, line, f"invalid type {fam_type!r}")
            families += 1
            bucket_cumulative = 0
            saw_inf = False
            prev_le = None
            continue
        if line.startswith("#"):
            continue  # Other comments (HELP) are legal free text.
        if not line.strip():
            continue
        if fam_name is None:
            fail(lineno, line, "sample before any TYPE comment")
        left, _, value = line.rpartition(" ")
        if not left:
            fail(lineno, line, "no sample value")
        try:
            num = float(value) if value in ("+Inf", "-Inf", "NaN") \
                else int(value)
        except ValueError:
            try:
                num = float(value)
            except ValueError:
                fail(lineno, line, f"unparseable value {value!r}")
        samples += 1

        m = BUCKET_RE.match(left)
        if m:
            name = m.group("name")
            le = m.group("le")
            if not name.endswith("_bucket"):
                fail(lineno, line, "le label on a non-_bucket series")
            if fam_type != "histogram" or name != fam_name + "_bucket":
                fail(lineno, line,
                     f"bucket outside histogram family {fam_name!r}")
            bound = float("inf") if le == "+Inf" else float(le)
            if prev_le is not None and bound <= prev_le:
                fail(lineno, line, "le bounds must strictly increase")
            prev_le = bound
            if num < bucket_cumulative:
                fail(lineno, line, "bucket counts must be cumulative")
            bucket_cumulative = num
            if le == "+Inf":
                saw_inf = True
            continue

        if not NAME_RE.match(left):
            fail(lineno, line, f"invalid series name {left!r}")
        if fam_type == "histogram":
            if left == fam_name + "_count":
                if not saw_inf:
                    fail(lineno, line, "histogram without +Inf bucket")
                if num != bucket_cumulative:
                    fail(lineno, line,
                         f"_count {num} != +Inf bucket {bucket_cumulative}")
            elif left != fam_name + "_sum":
                fail(lineno, line,
                     f"unexpected series in histogram family {fam_name!r}")
        elif left != fam_name:
            fail(lineno, line,
                 f"series {left!r} does not match family {fam_name!r}")

    if families == 0 or samples == 0:
        print("check_prometheus: no metric families found", file=sys.stderr)
        sys.exit(1)
    print(f"check_prometheus: OK ({families} families, {samples} samples)")


if __name__ == "__main__":
    main()
