#include "htm/cover.h"

#include <gtest/gtest.h>

#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "htm/htm_index.h"

namespace sdss::htm {
namespace {

TEST(CoverTest, WholeSphereRegionCoversAllBases) {
  // A convex with no constraints covers the sphere.
  Region all;
  all.Add(Convex{});
  CoverResult cover = Cover(all, 4);
  EXPECT_EQ(cover.full.size(), 8u);
  EXPECT_TRUE(cover.partial.empty());
  EXPECT_EQ(cover.ToRangeSet().CardinalityCount(), TrixelCountAtLevel(4));
}

TEST(CoverTest, EmptyRegionCoversNothing) {
  Region none;
  CoverResult cover = Cover(none, 4);
  EXPECT_TRUE(cover.full.empty());
  EXPECT_TRUE(cover.partial.empty());
}

TEST(CoverTest, SmallCircleProducesFewTrixels) {
  CoverResult cover = Cover(Region::Circle(45.0, 30.0, 0.5), 8);
  EXPECT_FALSE(cover.partial.empty() && cover.full.empty());
  // A 0.5-deg circle is tiny compared to the sphere; the cover must prune
  // almost everything.
  uint64_t accepted = cover.ToRangeSet().CardinalityCount();
  EXPECT_LT(accepted, TrixelCountAtLevel(8) / 1000);
}

TEST(CoverTest, CoverContainsAllInsidePointsAndOnlyThem) {
  Rng rng(42);
  Region region = Region::Circle(120.0, -35.0, 7.5);
  int level = 7;
  CoverResult cover = Cover(region, level);
  RangeSet accepted = cover.ToRangeSet();
  RangeSet full = cover.FullRangeSet();

  Vec3 center = EquatorialUnitVector({120.0, -35.0, Frame::kEquatorial});
  for (int i = 0; i < 3000; ++i) {
    // Half the samples concentrated near the region for coverage of the
    // boundary, half uniform for the rejection side.
    Vec3 p = (i % 2 == 0) ? rng.UnitCap(center, DegToRad(12.0))
                          : rng.UnitSphere();
    uint64_t leaf = LookupId(p, level).raw();
    bool inside = region.Contains(p);
    if (inside) {
      // Soundness: every inside point's leaf is accepted.
      EXPECT_TRUE(accepted.Contains(leaf)) << p.ToString();
    }
    if (full.Contains(leaf)) {
      // FULL trixels contain only inside points.
      EXPECT_TRUE(inside) << p.ToString();
    }
  }
}

TEST(CoverTest, Figure4StyleTwoSystemQuery) {
  // The paper's Figure 4: a declination band intersected with a band in
  // another spherical coordinate system.
  Region dec_band = Region::LatBand(10.0, 30.0, Frame::kEquatorial);
  Region gal_band = Region::LatBand(-15.0, 15.0, Frame::kGalactic);
  Region query = dec_band.IntersectWith(gal_band);

  int level = 6;
  CoverResult cover = Cover(query, level);
  EXPECT_FALSE(cover.full.empty());
  EXPECT_FALSE(cover.partial.empty());

  // Exactness on sampled points.
  Rng rng(7);
  RangeSet accepted = cover.ToRangeSet();
  RangeSet full = cover.FullRangeSet();
  for (int i = 0; i < 4000; ++i) {
    Vec3 p = rng.UnitSphere();
    uint64_t leaf = LookupId(p, level).raw();
    if (query.Contains(p)) {
      EXPECT_TRUE(accepted.Contains(leaf));
    }
    if (full.Contains(leaf)) {
      EXPECT_TRUE(query.Contains(p));
    }
  }
}

TEST(CoverTest, DeeperLevelsShrinkPartialArea) {
  // As the recursion deepens, the bisected band around the boundary
  // narrows: partial area must drop monotonically (up to tiny jitter).
  Region region = Region::Circle(200.0, 10.0, 15.0);
  double prev_partial_area = 1e18;
  for (int level = 2; level <= 8; ++level) {
    CoverResult cover = Cover(region, level);
    double partial_area = cover.PartialAreaSquareDegrees();
    EXPECT_LT(partial_area, prev_partial_area * 1.05)
        << "level " << level;
    prev_partial_area = partial_area;
  }
}

TEST(CoverTest, FullPlusPartialAreaBracketsRegionArea) {
  // FULL area <= true region area <= FULL + PARTIAL area.
  double radius_deg = 12.0;
  Region region = Region::Circle(80.0, 40.0, radius_deg);
  double true_area =
      2.0 * kPi * (1.0 - std::cos(DegToRad(radius_deg))) * kDegPerRad *
      kDegPerRad;
  CoverResult cover = Cover(region, 8);
  double full_area = cover.FullAreaSquareDegrees();
  double partial_area = cover.PartialAreaSquareDegrees();
  EXPECT_LE(full_area, true_area * 1.001);
  EXPECT_GE(full_area + partial_area, true_area * 0.999);
  // At level 8 the bracket is tight for this radius.
  EXPECT_GT(full_area, 0.8 * true_area);
  EXPECT_LT(full_area + partial_area, 1.2 * true_area);
}

TEST(CoverTest, LevelStatsAreConsistent) {
  Region region = Region::Circle(10.0, 10.0, 5.0);
  CoverResult cover = Cover(region, 6);
  ASSERT_EQ(cover.level_stats.size(), 7u);
  EXPECT_EQ(cover.level_stats[0].tested, 8u);
  for (size_t lv = 1; lv < cover.level_stats.size(); ++lv) {
    const auto& prev = cover.level_stats[lv - 1];
    const auto& cur = cover.level_stats[lv];
    // Children tested = 4 * partial parents (except at the last level
    // where partials are emitted instead of recursed).
    EXPECT_EQ(cur.tested, 4u * prev.partial) << "level " << lv;
    EXPECT_EQ(cur.tested, cur.full + cur.partial + cur.disjoint);
  }
}

TEST(CoverTest, MaxTrixelsBudgetIsHonored) {
  Region region = Region::Circle(0.0, 0.0, 20.0);
  CoverOptions opt;
  opt.level = 10;
  opt.max_trixels = 64;
  CoverResult budget = Cover(region, opt);
  EXPECT_LE(budget.full.size() + budget.partial.size(), 64u * 5u);

  // Budgeted covers remain sound (a superset of the exact cover).
  CoverResult exact = Cover(region, 10);
  RangeSet budget_rs = budget.ToRangeSet();
  RangeSet exact_rs = exact.ToRangeSet();
  EXPECT_TRUE(exact_rs.DifferenceWith(budget_rs).empty());
}

TEST(CoverTest, CoarseFullTrixelsAreNotSplit) {
  // A huge circle: most base trixels should be emitted FULL at coarse
  // levels, not exploded into leaves.
  Region region = Region::Circle(0.0, 90.0, 89.0);
  CoverResult cover = Cover(region, 8);
  bool has_coarse_full = false;
  for (HtmId id : cover.full) {
    if (id.level() < 8) has_coarse_full = true;
  }
  EXPECT_TRUE(has_coarse_full);
}

TEST(HtmIndexTest, FacadeRoundTrip) {
  HtmIndex index(6);
  EXPECT_EQ(index.level(), 6);
  HtmId id = index.Locate(100.0, 25.0);
  EXPECT_EQ(id.level(), 6);
  EXPECT_TRUE(Trixel::FromId(id).Contains(UnitVectorFromSpherical(100, 25)));
  CoverResult cover = index.CoverRegion(Region::Circle(100.0, 25.0, 1.0));
  EXPECT_TRUE(cover.ToRangeSet().Contains(id.raw()));
  EXPECT_NEAR(index.MeanTrixelAreaSquareDegrees(),
              kSquareDegreesOnSky / TrixelCountAtLevel(6), 1e-9);
}

}  // namespace
}  // namespace sdss::htm
