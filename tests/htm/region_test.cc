#include "htm/region.h"

#include <gtest/gtest.h>

#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"

namespace sdss::htm {
namespace {

TEST(HalfspaceTest, CapContainment) {
  Halfspace h = Halfspace::Cap(Vec3(0, 0, 1), DegToRad(10.0));
  EXPECT_TRUE(h.Contains(Vec3(0, 0, 1)));
  EXPECT_TRUE(h.Contains(UnitVectorFromSpherical(120.0, 81.0)));
  EXPECT_FALSE(h.Contains(UnitVectorFromSpherical(120.0, 79.0)));
  EXPECT_NEAR(RadToDeg(h.RadiusRad()), 10.0, 1e-12);
}

TEST(HalfspaceTest, GreatCircleHalfspace) {
  Halfspace h{Vec3(0, 0, 1), 0.0};  // Northern hemisphere.
  EXPECT_TRUE(h.Contains(Vec3(1, 0, 0)));  // Boundary counts as inside.
  EXPECT_TRUE(h.Contains(Vec3(0, 0, 1)));
  EXPECT_FALSE(h.Contains(Vec3(0, 0, -1)));
}

TEST(HalfspaceTest, NegativeDistCoversMoreThanHemisphere) {
  Halfspace h{Vec3(0, 0, 1), -0.5};  // All but a southern cap of 60 deg.
  EXPECT_TRUE(h.Contains(Vec3(0, 0, 1)));
  EXPECT_TRUE(h.Contains(Vec3(1, 0, 0)));
  EXPECT_TRUE(h.Contains(UnitVectorFromSpherical(0, -25.0)));
  EXPECT_FALSE(h.Contains(Vec3(0, 0, -1)));
}

TEST(ConvexTest, EmptyConvexIsWholeSphere) {
  Convex c;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(c.Contains(rng.UnitSphere()));
  EXPECT_EQ(c.Classify(Trixel::FromId(HtmId::Base(0))), Coverage::kFull);
}

TEST(ConvexTest, IntersectionOfCaps) {
  Convex c;
  c.Add(Halfspace::Cap(UnitVectorFromSpherical(0, 0), DegToRad(30)));
  c.Add(Halfspace::Cap(UnitVectorFromSpherical(40, 0), DegToRad(30)));
  // The lens between the caps: (20, 0) is inside both.
  EXPECT_TRUE(c.Contains(UnitVectorFromSpherical(20, 0)));
  EXPECT_FALSE(c.Contains(UnitVectorFromSpherical(0, 0).Cross(Vec3(0, 0, 1))));
  EXPECT_FALSE(c.Contains(UnitVectorFromSpherical(-20, 0)));
  EXPECT_FALSE(c.Contains(UnitVectorFromSpherical(60, 0)));
}

TEST(ConvexTest, BoundingCapIsTightestConstraint) {
  Convex c;
  c.Add(Halfspace::Cap(Vec3(0, 0, 1), DegToRad(60)));
  c.Add(Halfspace::Cap(Vec3(1, 0, 0), DegToRad(10)));
  auto cap = c.BoundingCap();
  ASSERT_TRUE(cap.has_value());
  EXPECT_TRUE(ApproxEqual(cap->center, Vec3(1, 0, 0)));
  EXPECT_NEAR(RadToDeg(cap->radius_rad), 10.0, 1e-9);
}

TEST(ConvexTest, InteriorPointSatisfiesConstraints) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    Convex c;
    Vec3 axis = rng.UnitSphere();
    c.Add(Halfspace::Cap(axis, DegToRad(rng.Uniform(5, 80))));
    Vec3 axis2 = rng.UnitCap(axis, DegToRad(20));
    c.Add(Halfspace::Cap(axis2, DegToRad(rng.Uniform(30, 80))));
    auto p = c.InteriorPoint();
    ASSERT_TRUE(p.has_value()) << i;
    for (const Halfspace& h : c.constraints()) {
      EXPECT_GE(h.direction.Dot(*p), h.dist - 1e-9);
    }
  }
}

TEST(RegionTest, EmptyRegionContainsNothing) {
  Region r;
  EXPECT_FALSE(r.Contains(Vec3(0, 0, 1)));
  EXPECT_EQ(r.Classify(Trixel::FromId(HtmId::Base(0))), Coverage::kDisjoint);
}

TEST(RegionTest, CircleMembership) {
  Region r = Region::Circle(180.0, 0.0, 5.0);
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(180, 0)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(184, 0)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(186, 0)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(180, 4.9)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(180, 5.1)));
}

TEST(RegionTest, CircleInGalacticFrame) {
  // A circle around the galactic center, expressed in galactic coords.
  Region r = Region::Circle(0.0, 0.0, 3.0, Frame::kGalactic);
  Vec3 gc_eq = EquatorialUnitVector({0.0, 0.0, Frame::kGalactic});
  EXPECT_TRUE(r.Contains(gc_eq));
  Vec3 off = EquatorialUnitVector({5.0, 0.0, Frame::kGalactic});
  EXPECT_FALSE(r.Contains(off));
}

TEST(RegionTest, LatBandMembership) {
  Region band = Region::LatBand(-10.0, 10.0);
  EXPECT_TRUE(band.Contains(UnitVectorFromSpherical(77, 0)));
  EXPECT_TRUE(band.Contains(UnitVectorFromSpherical(77, 9.9)));
  EXPECT_TRUE(band.Contains(UnitVectorFromSpherical(77, -9.9)));
  EXPECT_FALSE(band.Contains(UnitVectorFromSpherical(77, 10.5)));
  EXPECT_FALSE(band.Contains(UnitVectorFromSpherical(77, -10.5)));
}

TEST(RegionTest, GalacticBandDiffersFromEquatorialBand) {
  Region gal_band = Region::LatBand(-5.0, 5.0, Frame::kGalactic);
  // The galactic plane passes nowhere near the celestial equator at
  // ra=0: (0, 0) equatorial is at b ~ -60.
  EXPECT_FALSE(gal_band.Contains(UnitVectorFromSpherical(0, 0)));
  // A point on the galactic equator is inside.
  Vec3 on_plane = EquatorialUnitVector({100.0, 0.0, Frame::kGalactic});
  EXPECT_TRUE(gal_band.Contains(on_plane));
}

TEST(RegionTest, RectMembershipNarrow) {
  Region r = Region::Rect(10.0, 20.0, 30.0, 40.0);
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(15, 35)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(5, 35)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(25, 35)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(15, 25)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(15, 45)));
  // Corners are inside (closed region).
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(10, 30)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(20, 40)));
}

TEST(RegionTest, RectWrapsAroundZero) {
  Region r = Region::Rect(350.0, 10.0, -5.0, 5.0);
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(355, 0)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(5, 0)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(0, 0)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(20, 0)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(340, 0)));
}

TEST(RegionTest, WideRectOver180Degrees) {
  Region r = Region::Rect(0.0, 270.0, -10.0, 10.0);
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(100, 0)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(200, 0)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(260, 5)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(300, 0)));
}

TEST(RegionTest, FullLongitudeRangeIsBand) {
  Region r = Region::Rect(0.0, 360.0, 20.0, 30.0);
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(123, 25)));
  EXPECT_TRUE(r.Contains(UnitVectorFromSpherical(321, 25)));
  EXPECT_FALSE(r.Contains(UnitVectorFromSpherical(123, 35)));
}

TEST(RegionTest, PolygonFromTriangle) {
  std::vector<Vec3> verts = {UnitVectorFromSpherical(0, 0),
                             UnitVectorFromSpherical(20, 0),
                             UnitVectorFromSpherical(10, 20)};
  auto r = Region::Polygon(verts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains(UnitVectorFromSpherical(10, 5)));
  EXPECT_FALSE(r->Contains(UnitVectorFromSpherical(10, 25)));
  EXPECT_FALSE(r->Contains(UnitVectorFromSpherical(-5, 0)));
}

TEST(RegionTest, PolygonAcceptsClockwiseInput) {
  std::vector<Vec3> verts = {UnitVectorFromSpherical(10, 20),
                             UnitVectorFromSpherical(20, 0),
                             UnitVectorFromSpherical(0, 0)};
  auto r = Region::Polygon(verts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains(UnitVectorFromSpherical(10, 5)));
}

TEST(RegionTest, PolygonRejectsTooFewVertices) {
  EXPECT_FALSE(Region::Polygon({Vec3(1, 0, 0), Vec3(0, 1, 0)}).ok());
}

TEST(RegionTest, UnionOfDisjointCircles) {
  Region a = Region::Circle(0, 0, 2);
  Region b = Region::Circle(90, 0, 2);
  Region u = a.UnionWith(b);
  EXPECT_TRUE(u.Contains(UnitVectorFromSpherical(0, 0)));
  EXPECT_TRUE(u.Contains(UnitVectorFromSpherical(90, 0)));
  EXPECT_FALSE(u.Contains(UnitVectorFromSpherical(45, 0)));
}

TEST(RegionTest, IntersectionDistributes) {
  // (circleA | circleB) & band == (A & band) | (B & band).
  Region circles =
      Region::Circle(0, 0, 10).UnionWith(Region::Circle(50, 0, 10));
  Region band = Region::LatBand(2.0, 90.0);
  Region inter = circles.IntersectWith(band);
  EXPECT_EQ(inter.convexes().size(), 2u);
  EXPECT_TRUE(inter.Contains(UnitVectorFromSpherical(0, 5)));
  EXPECT_TRUE(inter.Contains(UnitVectorFromSpherical(50, 5)));
  EXPECT_FALSE(inter.Contains(UnitVectorFromSpherical(0, -5)));
  EXPECT_FALSE(inter.Contains(UnitVectorFromSpherical(50, -5)));
  EXPECT_FALSE(inter.Contains(UnitVectorFromSpherical(25, 5)));
}

// --- Classification tests ----------------------------------------------

TEST(ClassifyTest, TrixelFullyInsideBigCircle) {
  Trixel t = Trixel::FromId(LookupId(45.0, 45.0, 6));
  Region big = Region::Circle(45.0, 45.0, 30.0);
  EXPECT_EQ(big.Classify(t), Coverage::kFull);
}

TEST(ClassifyTest, TrixelDisjointFromFarCircle) {
  Trixel t = Trixel::FromId(LookupId(45.0, 45.0, 6));
  Region far = Region::Circle(225.0, -45.0, 5.0);
  EXPECT_EQ(far.Classify(t), Coverage::kDisjoint);
}

TEST(ClassifyTest, TrixelBisectedByCircleBoundary) {
  Trixel t = Trixel::FromId(LookupId(45.0, 45.0, 6));
  Cap cap = t.BoundingCap();
  // A circle whose boundary passes through the trixel center.
  SphericalCoord center = ToSpherical(
      (t.Center() + Vec3(0, 0, 1) * 0.2).Normalized(), Frame::kEquatorial);
  double radius =
      RadToDeg(UnitVectorFromSpherical(center.lon_deg, center.lat_deg)
                   .AngleTo(t.Center()));
  (void)cap;
  Region r = Region::Circle(center.lon_deg, center.lat_deg, radius);
  EXPECT_EQ(r.Classify(t), Coverage::kPartial);
}

TEST(ClassifyTest, SmallCircleInsideTrixelIsPartial) {
  // A circle much smaller than the trixel, centered at its centroid: no
  // trixel vertex is inside, no edge crossing, but the region is within.
  Trixel t = Trixel::FromId(LookupId(10.0, -30.0, 3));
  SphericalCoord c = ToSpherical(t.Center(), Frame::kEquatorial);
  Region r = Region::Circle(c.lon_deg, c.lat_deg, 0.1);
  EXPECT_EQ(r.Classify(t), Coverage::kPartial);
}

TEST(ClassifyTest, HoleInsideTrixelIsDetected) {
  // Convex = everything except a small cap centered inside the trixel.
  // All trixel corners are inside, nothing crosses the edges, yet the
  // trixel is not fully covered.
  Trixel t = Trixel::FromId(LookupId(10.0, -30.0, 3));
  Vec3 center = t.Center();
  Convex c;
  // Exclude a 0.1-deg cap around `center`: direction -center, dist
  // cos(pi - r) = -cos(r).
  c.Add({-center, -std::cos(DegToRad(0.1))});
  Region r;
  r.Add(c);
  EXPECT_EQ(r.Classify(t), Coverage::kPartial);
  // Sanity: corners are all inside the halfspace.
  for (const Vec3& v : t.vertices()) {
    EXPECT_TRUE(r.Contains(v));
  }
  EXPECT_FALSE(r.Contains(center));
}

TEST(ClassifyTest, BandClassifiesEquatorTrixels) {
  Region band = Region::LatBand(-2.0, 2.0);
  // A trixel at the pole is disjoint.
  EXPECT_EQ(band.Classify(Trixel::FromId(LookupId(0.0, 89.0, 5))),
            Coverage::kDisjoint);
  // A trixel straddling the equator is partial.
  EXPECT_EQ(band.Classify(Trixel::FromId(LookupId(33.0, 0.0, 5))),
            Coverage::kPartial);
}

TEST(ClassifyTest, UnionClassification) {
  Trixel t = Trixel::FromId(LookupId(45.0, 45.0, 6));
  Region covering = Region::Circle(45.0, 45.0, 30.0);
  Region far = Region::Circle(200.0, -50.0, 5.0);
  // Union with a far circle keeps FULL.
  EXPECT_EQ(far.UnionWith(covering).Classify(t), Coverage::kFull);
  // Union of two far circles stays DISJOINT.
  Region far2 = Region::Circle(300.0, 50.0, 5.0);
  EXPECT_EQ(far.UnionWith(far2).Classify(t), Coverage::kDisjoint);
}

TEST(ClassifyTest, ClassificationConsistentWithMembershipSamples) {
  // Property check on a moderate sample: FULL implies all sampled points
  // inside; DISJOINT implies none inside.
  Rng rng(9);
  Region r = Region::Circle(120.0, 20.0, 12.0)
                 .UnionWith(Region::LatBand(-60.0, -55.0));
  for (int i = 0; i < 200; ++i) {
    Trixel t = Trixel::FromId(LookupId(rng.UnitSphere(), 4));
    Coverage cov = r.Classify(t);
    for (int j = 0; j < 40; ++j) {
      Vec3 p = rng.UnitCap(t.Center(), t.BoundingCap().radius_rad);
      if (!t.Contains(p)) continue;
      bool inside = r.Contains(p);
      if (cov == Coverage::kFull) {
        EXPECT_TRUE(inside) << t.id().ToName();
      } else if (cov == Coverage::kDisjoint) {
        EXPECT_FALSE(inside) << t.id().ToName();
      }
    }
  }
}

TEST(ClassifyTest, CoverageNames) {
  EXPECT_STREQ(CoverageName(Coverage::kFull), "FULL");
  EXPECT_STREQ(CoverageName(Coverage::kPartial), "PARTIAL");
  EXPECT_STREQ(CoverageName(Coverage::kDisjoint), "DISJOINT");
}

}  // namespace
}  // namespace sdss::htm
