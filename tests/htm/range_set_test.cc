#include "htm/range_set.h"

#include <gtest/gtest.h>

namespace sdss::htm {
namespace {

TEST(RangeSetTest, EmptyByDefault) {
  RangeSet rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.CardinalityCount(), 0u);
  EXPECT_FALSE(rs.Contains(0));
  EXPECT_EQ(rs.ToString(), "{}");
}

TEST(RangeSetTest, SingleRange) {
  RangeSet rs;
  rs.Add(10, 20);
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.CardinalityCount(), 10u);
  EXPECT_TRUE(rs.Contains(10));
  EXPECT_TRUE(rs.Contains(19));
  EXPECT_FALSE(rs.Contains(9));
  EXPECT_FALSE(rs.Contains(20));
}

TEST(RangeSetTest, EmptyIntervalIgnored) {
  RangeSet rs;
  rs.Add(5, 5);
  rs.Add(7, 6);
  EXPECT_TRUE(rs.empty());
}

TEST(RangeSetTest, AdjacentRangesMerge) {
  RangeSet rs;
  rs.Add(10, 20);
  rs.Add(20, 30);
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.ranges()[0], (RangeSet::Range{10, 30}));
}

TEST(RangeSetTest, OverlappingRangesMerge) {
  RangeSet rs;
  rs.Add(10, 25);
  rs.Add(20, 30);
  rs.Add(5, 12);
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.ranges()[0], (RangeSet::Range{5, 30}));
}

TEST(RangeSetTest, DisjointRangesStaySeparate) {
  RangeSet rs;
  rs.Add(10, 20);
  rs.Add(30, 40);
  EXPECT_EQ(rs.range_count(), 2u);
  EXPECT_FALSE(rs.Contains(25));
}

TEST(RangeSetTest, BridgingRangeMergesMany) {
  RangeSet rs;
  rs.Add(0, 5);
  rs.Add(10, 15);
  rs.Add(20, 25);
  rs.Add(3, 22);  // Bridges all three.
  EXPECT_EQ(rs.range_count(), 1u);
  EXPECT_EQ(rs.ranges()[0], (RangeSet::Range{0, 25}));
}

TEST(RangeSetTest, OutOfOrderInsertions) {
  RangeSet rs;
  rs.Add(50, 60);
  rs.Add(10, 20);
  rs.Add(30, 40);
  EXPECT_EQ(rs.range_count(), 3u);
  EXPECT_EQ(rs.ranges()[0].first, 10u);
  EXPECT_EQ(rs.ranges()[1].first, 30u);
  EXPECT_EQ(rs.ranges()[2].first, 50u);
}

TEST(RangeSetTest, AddTrixelExpandsToLevel) {
  RangeSet rs;
  HtmId id = HtmId::Base(0);  // raw 8.
  rs.AddTrixel(id, 2);        // 16 leaf ids: [128, 144).
  EXPECT_EQ(rs.CardinalityCount(), 16u);
  EXPECT_TRUE(rs.Contains(128));
  EXPECT_TRUE(rs.Contains(143));
  EXPECT_FALSE(rs.Contains(144));
}

TEST(RangeSetTest, SiblingTrixelsCoalesce) {
  RangeSet rs;
  for (int c = 0; c < 4; ++c) {
    rs.AddTrixel(HtmId::Base(1).Child(c), 4);
  }
  // Four siblings tile the parent exactly: one contiguous range.
  EXPECT_EQ(rs.range_count(), 1u);
  RangeSet parent;
  parent.AddTrixel(HtmId::Base(1), 4);
  EXPECT_EQ(rs, parent);
}

TEST(RangeSetTest, UnionWith) {
  RangeSet a, b;
  a.Add(0, 10);
  a.Add(20, 30);
  b.Add(5, 25);
  b.Add(40, 50);
  RangeSet u = a.UnionWith(b);
  EXPECT_EQ(u.range_count(), 2u);
  EXPECT_EQ(u.CardinalityCount(), 30u + 10u);
}

TEST(RangeSetTest, IntersectWith) {
  RangeSet a, b;
  a.Add(0, 10);
  a.Add(20, 30);
  b.Add(5, 25);
  RangeSet i = a.IntersectWith(b);
  EXPECT_EQ(i.range_count(), 2u);
  EXPECT_TRUE(i.Contains(5));
  EXPECT_TRUE(i.Contains(9));
  EXPECT_FALSE(i.Contains(10));
  EXPECT_TRUE(i.Contains(20));
  EXPECT_TRUE(i.Contains(24));
  EXPECT_FALSE(i.Contains(25));
  EXPECT_EQ(i.CardinalityCount(), 5u + 5u);
}

TEST(RangeSetTest, IntersectDisjointIsEmpty) {
  RangeSet a, b;
  a.Add(0, 10);
  b.Add(10, 20);
  EXPECT_TRUE(a.IntersectWith(b).empty());
}

TEST(RangeSetTest, DifferenceWith) {
  RangeSet a, b;
  a.Add(0, 100);
  b.Add(10, 20);
  b.Add(50, 60);
  RangeSet d = a.DifferenceWith(b);
  EXPECT_EQ(d.range_count(), 3u);
  EXPECT_EQ(d.CardinalityCount(), 100u - 20u);
  EXPECT_TRUE(d.Contains(0));
  EXPECT_FALSE(d.Contains(15));
  EXPECT_TRUE(d.Contains(25));
  EXPECT_FALSE(d.Contains(55));
  EXPECT_TRUE(d.Contains(99));
}

TEST(RangeSetTest, DifferenceRemovingEverything) {
  RangeSet a, b;
  a.Add(10, 20);
  b.Add(0, 100);
  EXPECT_TRUE(a.DifferenceWith(b).empty());
}

TEST(RangeSetTest, DifferenceWithEmpty) {
  RangeSet a, empty;
  a.Add(1, 5);
  EXPECT_EQ(a.DifferenceWith(empty), a);
  EXPECT_TRUE(empty.DifferenceWith(a).empty());
}

TEST(RangeSetTest, SetAlgebraIdentity) {
  // (A ∪ B) \ B ⊆ A and A ∩ (A ∪ B) == A.
  RangeSet a, b;
  a.Add(0, 50);
  a.Add(100, 150);
  b.Add(40, 110);
  RangeSet u = a.UnionWith(b);
  EXPECT_EQ(a.IntersectWith(u), a);
  RangeSet diff = u.DifferenceWith(b);
  for (const auto& r : diff.ranges()) {
    for (uint64_t v = r.first; v < r.last; ++v) {
      EXPECT_TRUE(a.Contains(v));
    }
  }
}

}  // namespace
}  // namespace sdss::htm
