// Property-based sweeps over the HTM cover algorithm: for many randomly
// generated regions of several shapes and several index depths, the cover
// must be SOUND (no inside point is ever lost) and FULL-EXACT (full
// trixels contain only inside points). These are the two invariants the
// whole query engine's correctness rests on.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/angle.h"
#include "core/coords.h"
#include "core/random.h"
#include "htm/cover.h"

namespace sdss::htm {
namespace {

enum class Shape { kCircle, kBand, kRect, kBandIntersectCircle, kUnion };

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kCircle:
      return "Circle";
    case Shape::kBand:
      return "Band";
    case Shape::kRect:
      return "Rect";
    case Shape::kBandIntersectCircle:
      return "BandIntersectCircle";
    case Shape::kUnion:
      return "Union";
  }
  return "?";
}

Region MakeRegion(Shape shape, Rng* rng) {
  auto rand_frame = [&]() {
    switch (rng->UniformInt(0, 2)) {
      case 0:
        return Frame::kEquatorial;
      case 1:
        return Frame::kGalactic;
      default:
        return Frame::kSupergalactic;
    }
  };
  switch (shape) {
    case Shape::kCircle:
      return Region::Circle(rng->Uniform(0, 360), rng->Uniform(-90, 90),
                            rng->Uniform(0.2, 25.0), rand_frame());
    case Shape::kBand: {
      double lo = rng->Uniform(-80, 70);
      return Region::LatBand(lo, lo + rng->Uniform(1.0, 20.0), rand_frame());
    }
    case Shape::kRect: {
      double lon = rng->Uniform(0, 360);
      double lat = rng->Uniform(-80, 60);
      return Region::Rect(lon, lon + rng->Uniform(2.0, 120.0), lat,
                          lat + rng->Uniform(1.0, 20.0), rand_frame());
    }
    case Shape::kBandIntersectCircle: {
      double lat = rng->Uniform(-60, 50);
      Region band = Region::LatBand(lat, lat + rng->Uniform(2, 15),
                                    rand_frame());
      Region circle = Region::Circle(rng->Uniform(0, 360), lat,
                                     rng->Uniform(5, 40));
      return band.IntersectWith(circle);
    }
    case Shape::kUnion: {
      Region a = Region::Circle(rng->Uniform(0, 360), rng->Uniform(-90, 90),
                                rng->Uniform(0.5, 10));
      Region b = Region::Circle(rng->Uniform(0, 360), rng->Uniform(-90, 90),
                                rng->Uniform(0.5, 10));
      return a.UnionWith(b);
    }
  }
  return Region{};
}

class CoverPropertyTest
    : public ::testing::TestWithParam<std::tuple<Shape, int>> {};

TEST_P(CoverPropertyTest, SoundAndFullExact) {
  auto [shape, level] = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(level) * 31 +
          static_cast<uint64_t>(shape) * 7);

  for (int trial = 0; trial < 8; ++trial) {
    Region region = MakeRegion(shape, &rng);
    CoverResult cover = Cover(region, level);
    RangeSet accepted = cover.ToRangeSet();
    RangeSet full = cover.FullRangeSet();

    // Sample a mix of uniform points and points concentrated inside the
    // region's first convex (to stress the boundary).
    for (int i = 0; i < 400; ++i) {
      Vec3 p;
      if (i % 2 == 0 && !region.convexes().empty()) {
        auto interior = region.convexes()[0].InteriorPoint();
        p = interior ? rng.UnitCap(*interior, DegToRad(30.0))
                     : rng.UnitSphere();
      } else {
        p = rng.UnitSphere();
      }
      uint64_t leaf = LookupId(p, level).raw();
      if (region.Contains(p)) {
        // Soundness: inside points are never pruned away.
        ASSERT_TRUE(accepted.Contains(leaf))
            << ShapeName(shape) << " level " << level << " trial " << trial
            << " point " << p.ToString();
      }
      if (full.Contains(leaf)) {
        // Full-exactness: FULL trixels hold only inside points.
        ASSERT_TRUE(region.Contains(p))
            << ShapeName(shape) << " level " << level << " trial " << trial
            << " point " << p.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoverPropertyTest,
    ::testing::Combine(::testing::Values(Shape::kCircle, Shape::kBand,
                                         Shape::kRect,
                                         Shape::kBandIntersectCircle,
                                         Shape::kUnion),
                       ::testing::Values(3, 5, 7)),
    [](const ::testing::TestParamInfo<std::tuple<Shape, int>>& info) {
      return ShapeName(std::get<0>(info.param)) + "_L" +
             std::to_string(std::get<1>(info.param));
    });

// Point-location properties swept over depth.
class LookupPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LookupPropertyTest, ContainmentAndHierarchy) {
  int level = GetParam();
  Rng rng(500 + static_cast<uint64_t>(level));
  for (int i = 0; i < 500; ++i) {
    Vec3 p = rng.UnitSphere();
    HtmId id = LookupId(p, level);
    ASSERT_EQ(id.level(), level);
    ASSERT_TRUE(Trixel::FromId(id).Contains(p));
    if (level > 0) {
      ASSERT_EQ(LookupId(p, level - 1), id.Parent());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LookupPropertyTest,
                         ::testing::Values(0, 1, 2, 4, 6, 8, 10, 12, 14, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "L" + std::to_string(info.param);
                         });

// Trixel area properties per depth: counts are 8*4^L and areas sum to 4pi.
class AreaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AreaPropertyTest, AreasTileTheSphere) {
  int level = GetParam();
  double total = 0.0;
  uint64_t count = 0;
  // Iterate all trixels at this level via the contiguous raw-id range.
  uint64_t lo = 8ull << (2 * level);
  uint64_t hi = 16ull << (2 * level);
  for (uint64_t raw = lo; raw < hi; ++raw) {
    auto id = HtmId::FromRaw(raw);
    ASSERT_TRUE(id.ok());
    total += Trixel::FromId(*id).AreaSteradians();
    ++count;
  }
  EXPECT_EQ(count, TrixelCountAtLevel(level));
  EXPECT_NEAR(total, 4.0 * kPi, 1e-8 * static_cast<double>(count));
}

INSTANTIATE_TEST_SUITE_P(Depths, AreaPropertyTest, ::testing::Values(0, 1, 2,
                                                                     3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "L" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sdss::htm
