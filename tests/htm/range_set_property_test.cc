// Property sweep: RangeSet algebra vs a reference std::set<uint64_t>
// implementation, over randomized interval workloads of varying density.

#include <gtest/gtest.h>

#include <set>

#include "core/random.h"
#include "htm/range_set.h"

namespace sdss::htm {
namespace {

std::set<uint64_t> Elements(const RangeSet& rs) {
  std::set<uint64_t> out;
  for (const auto& r : rs.ranges()) {
    for (uint64_t v = r.first; v < r.last; ++v) out.insert(v);
  }
  return out;
}

struct Workload {
  int intervals;
  uint64_t universe;
};

class RangeSetPropertyTest : public ::testing::TestWithParam<Workload> {};

TEST_P(RangeSetPropertyTest, InsertionMatchesReference) {
  auto [intervals, universe] = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(intervals) + universe);
  for (int trial = 0; trial < 10; ++trial) {
    RangeSet rs;
    std::set<uint64_t> ref;
    for (int i = 0; i < intervals; ++i) {
      uint64_t a = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(universe)));
      uint64_t b = a + static_cast<uint64_t>(rng.UniformInt(0, 20));
      rs.Add(a, b);
      for (uint64_t v = a; v < b; ++v) ref.insert(v);
    }
    ASSERT_EQ(Elements(rs), ref);
    ASSERT_EQ(rs.CardinalityCount(), ref.size());
    // Ranges are sorted, disjoint and non-adjacent (fully coalesced).
    for (size_t i = 1; i < rs.ranges().size(); ++i) {
      ASSERT_GT(rs.ranges()[i].first, rs.ranges()[i - 1].last);
    }
    // Membership agrees on a sample.
    for (int probe = 0; probe < 100; ++probe) {
      uint64_t v = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(universe) + 25));
      ASSERT_EQ(rs.Contains(v), ref.count(v) > 0) << v;
    }
  }
}

TEST_P(RangeSetPropertyTest, SetAlgebraMatchesReference) {
  auto [intervals, universe] = GetParam();
  Rng rng(9000 + static_cast<uint64_t>(intervals) + universe);
  for (int trial = 0; trial < 8; ++trial) {
    RangeSet a, b;
    std::set<uint64_t> ra, rb;
    for (int i = 0; i < intervals; ++i) {
      uint64_t x = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(universe)));
      uint64_t y = x + static_cast<uint64_t>(rng.UniformInt(0, 15));
      if (rng.Bernoulli(0.5)) {
        a.Add(x, y);
        for (uint64_t v = x; v < y; ++v) ra.insert(v);
      } else {
        b.Add(x, y);
        for (uint64_t v = x; v < y; ++v) rb.insert(v);
      }
    }
    // Union.
    std::set<uint64_t> ref_union = ra;
    ref_union.insert(rb.begin(), rb.end());
    ASSERT_EQ(Elements(a.UnionWith(b)), ref_union);
    // Intersection.
    std::set<uint64_t> ref_inter;
    for (uint64_t v : ra) {
      if (rb.count(v)) ref_inter.insert(v);
    }
    ASSERT_EQ(Elements(a.IntersectWith(b)), ref_inter);
    // Difference.
    std::set<uint64_t> ref_diff;
    for (uint64_t v : ra) {
      if (!rb.count(v)) ref_diff.insert(v);
    }
    ASSERT_EQ(Elements(a.DifferenceWith(b)), ref_diff);
    // De Morgan-ish identity: (A \ B) ∪ (A ∩ B) == A.
    ASSERT_EQ(
        Elements(a.DifferenceWith(b).UnionWith(a.IntersectWith(b))), ra);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RangeSetPropertyTest,
    ::testing::Values(Workload{5, 50},      // Sparse, heavy overlap.
                      Workload{30, 200},    // Medium.
                      Workload{100, 400},   // Dense, mostly merged.
                      Workload{50, 10000}), // Sparse over a big universe.
    [](const ::testing::TestParamInfo<Workload>& info) {
      return "I" + std::to_string(info.param.intervals) + "_U" +
             std::to_string(info.param.universe);
    });

}  // namespace
}  // namespace sdss::htm
